// Scenario: a wire-format debugging tool. Feed it hex bytes of a DNS
// message (e.g. copied out of a packet capture) on stdin, or run it with
// no input to see a demonstration on a self-crafted ECS exchange.
//
//   echo "2b 7e 01 00 ..." | packet_inspector
//
// It pretty-prints the message, decodes any EDNS0/ECS content, and runs
// the RFC 7871 validator over the ECS option — turning the library's
// parser into the kind of lint tool §9 says the developer community needs.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "dnscore/message.h"

using namespace ecsdns::dnscore;

namespace {

std::vector<std::uint8_t> read_hex(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  std::string token;
  while (in >> token) {
    if (token.size() > 2) {
      // Allow long runs like "2b7e0100": split into pairs.
      for (std::size_t i = 0; i + 1 < token.size(); i += 2) {
        bytes.push_back(static_cast<std::uint8_t>(
            std::stoul(token.substr(i, 2), nullptr, 16)));
      }
    } else {
      bytes.push_back(static_cast<std::uint8_t>(std::stoul(token, nullptr, 16)));
    }
  }
  return bytes;
}

void inspect(const std::vector<std::uint8_t>& wire) {
  std::printf("input: %zu bytes\n", wire.size());
  Message m;
  try {
    m = Message::parse({wire.data(), wire.size()});
  } catch (const WireFormatError& e) {
    std::printf("MALFORMED: %s\n", e.what());
    return;
  }
  std::printf("%s", m.to_string().c_str());
  if (const auto ecs = m.ecs()) {
    std::printf("\nECS option detail:\n");
    std::printf("  family       : %u\n", ecs->family());
    std::printf("  source length: %u\n", ecs->source_prefix_length());
    std::printf("  scope length : %u\n", ecs->scope_prefix_length());
    std::printf("  address bytes: %s\n",
                hex_dump({ecs->address_bytes().data(), ecs->address_bytes().size()})
                    .c_str());
    const auto issues = ecs->validate(m.is_query());
    if (issues.empty()) {
      std::printf("  RFC 7871     : compliant\n");
    } else {
      for (const auto issue : issues) {
        std::printf("  RFC 7871     : VIOLATION - %s\n", to_string(issue).c_str());
      }
    }
    if (const auto prefix = ecs->source_prefix()) {
      if (prefix->is_unroutable()) {
        std::printf("  WARNING      : unroutable prefix; CDNs may map this\n"
                    "                 query to an arbitrary far-away edge\n");
      }
    }
  } else if (m.opt) {
    std::printf("\nEDNS0 present, no ECS option.\n");
  } else {
    std::printf("\nno EDNS0.\n");
  }
}

}  // namespace

int main() {
  if (isatty(0)) {
    std::printf("no stdin input; demonstrating on a crafted exchange.\n\n");
    std::printf("---- a compliant query ----\n");
    Message q = Message::make_query(0x1d0c, Name::from_string("www.example.com"),
                                    RRType::A);
    q.set_ecs(EcsOption::for_query(Prefix::parse("198.51.100.0/24")));
    inspect(q.serialize());

    std::printf("\n---- a deviant query (scope set, loopback prefix) ----\n");
    Message bad = Message::make_query(0x1d0d, Name::from_string("www.example.com"),
                                      RRType::A);
    EcsOption ecs = EcsOption::for_query(
        Prefix{IpAddress::parse("127.0.0.1"), 32});
    ecs.set_scope_prefix_length(24);  // queries MUST send scope 0
    bad.set_ecs(ecs);
    inspect(bad.serialize());
    return 0;
  }
  inspect(read_hex(std::cin));
  return 0;
}
