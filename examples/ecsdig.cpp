// ecsdig: a dig-style CLI against the simulated Internet.
//
//   ecsdig [options] <hostname>
//     --client=<city>        where the querying client sits (default Tokyo)
//     --resolver=<behavior>  correct | google | ignore | jammed | clamp22 |
//                            private (default google)
//     --resolver-city=<city> egress location (default Ashburn)
//     --cdn=<policy>         cdn1 | cdn2 | google (default cdn2)
//     --ecs=<prefix>         attach a client-chosen ECS option (e.g.
//                            1.2.3.0/24 or 127.0.0.1/32)
//     --direct               query the CDN authoritative directly,
//                            bypassing the resolver (like dig @auth)
//
// Any hostname resolves — the CDN tailors answers for whatever name you
// invent under its zone. Prints the response dig-style plus the chosen
// edge's location and the client's RTT to it.
#include <cstdio>
#include <cstring>
#include <string>

#include "authoritative/ecs_policy.h"
#include "measurement/testbed.h"

using namespace ecsdns;
using dnscore::EcsOption;
using dnscore::Name;
using dnscore::Prefix;
using dnscore::RRType;

namespace {

const char* flag_value(int argc, char** argv, const char* name, const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  const std::string full = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (full == argv[i]) return true;
  }
  return false;
}

resolver::ResolverConfig resolver_for(const std::string& behavior) {
  if (behavior == "correct") return resolver::ResolverConfig::correct();
  if (behavior == "google") return resolver::ResolverConfig::google_like();
  if (behavior == "ignore") return resolver::ResolverConfig::scope_ignorer();
  if (behavior == "jammed") return resolver::ResolverConfig::jammed_32();
  if (behavior == "clamp22") return resolver::ResolverConfig::clamp22();
  if (behavior == "private") return resolver::ResolverConfig::private_block_bug();
  std::fprintf(stderr, "unknown resolver behavior '%s'\n", behavior.c_str());
  std::exit(2);
}

cdn::ProximityMappingConfig cdn_for(const std::string& policy) {
  if (policy == "cdn1") return cdn::ProximityMapping::cdn1_config();
  if (policy == "cdn2") return cdn::ProximityMapping::cdn2_config();
  if (policy == "google") return cdn::ProximityMapping::google_like_config();
  std::fprintf(stderr, "unknown cdn policy '%s'\n", policy.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string qname_text;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') qname_text = argv[i];
  }
  if (qname_text.empty()) qname_text = "www.video.example";

  const std::string client_city = flag_value(argc, argv, "client", "Tokyo");
  const std::string resolver_city = flag_value(argc, argv, "resolver-city", "Ashburn");
  const std::string behavior = flag_value(argc, argv, "resolver", "google");
  const std::string cdn_policy = flag_value(argc, argv, "cdn", "cdn2");
  const char* ecs_text = flag_value(argc, argv, "ecs", "");
  const bool direct = flag_present(argc, argv, "direct");

  measurement::Testbed bed;
  if (!bed.world().has_city(client_city) || !bed.world().has_city(resolver_city)) {
    std::fprintf(stderr, "unknown city; pick from the catalog, e.g. Tokyo, "
                         "Zurich, Santiago, Beijing, Cleveland...\n");
    return 2;
  }
  auto& fleet = bed.add_global_fleet();
  auto& mapping = bed.add_mapping(cdn_for(cdn_policy), fleet);

  const Name qname = Name::from_string(qname_text);
  if (qname.label_count() < 3) {
    std::fprintf(stderr, "use a hostname below a zone, e.g. www.video.example\n");
    return 2;
  }
  const Name zone = qname.second_level_domain();
  auto& auth = bed.add_auth("cdn", zone, "Ashburn",
                            std::make_unique<authoritative::CdnMappingPolicy>(mapping));
  auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
      qname, 20, dnscore::IpAddress::parse("203.0.113.1")));

  auto& client = bed.add_client(client_city);
  std::optional<EcsOption> ecs;
  if (ecs_text[0] != '\0') {
    ecs = EcsOption::for_query(Prefix::parse(ecs_text));
  }

  dnscore::IpAddress server;
  if (direct) {
    server = bed.auth_address(auth);
  } else {
    auto& res = bed.add_resolver(resolver_for(behavior), resolver_city);
    server = res.address();
  }

  std::printf("; ecsdig %s @%s (%s)\n", qname_text.c_str(),
              server.to_string().c_str(),
              direct ? "authoritative, direct"
                     : (behavior + " resolver in " + resolver_city).c_str());
  std::printf("; client in %s (%s)%s%s\n\n", client_city.c_str(),
              client.address().to_string().c_str(), ecs ? ", sending " : "",
              ecs ? ecs->to_string().c_str() : "");

  const auto t0 = bed.network().now();
  const auto response = client.query(server, qname, RRType::A, ecs);
  const auto elapsed = bed.network().now() - t0;
  if (!response) {
    std::printf(";; no response (timeout)\n");
    return 1;
  }
  std::printf("%s", response->to_string().c_str());
  std::printf("\n;; Query time: %s\n", netsim::format_duration(elapsed).c_str());

  if (const auto addr = response->first_address()) {
    if (const auto where = bed.network().location_of(*addr)) {
      const auto rtt = bed.network().ping(client.address(), *addr);
      std::printf(";; first answer %s is in %s; client RTT %s\n",
                  addr->to_string().c_str(),
                  bed.world().nearest(*where).name.c_str(),
                  rtt ? netsim::format_duration(*rtt).c_str() : "?");
    }
  }
  return 0;
}
