// Scenario: a CDN operator exploring how ECS prefix length changes user
// mapping quality. For a set of client cities, compare the edge chosen (and
// resulting round-trip time) when the resolver sends no ECS, a /16, a /20,
// and a /24 — against both measured CDN policies from the paper.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "measurement/testbed.h"

using namespace ecsdns;
using dnscore::EcsOption;
using dnscore::IpAddress;
using dnscore::Name;
using dnscore::Prefix;
using dnscore::RRType;

namespace {

void explore(measurement::Testbed& bed, const char* cdn_name,
             const cdn::ProximityMapping& mapping,
             const std::vector<std::pair<std::string, IpAddress>>& clients,
             const IpAddress& resolver_addr) {
  std::printf("--- %s (min ECS bits: %d) ---\n", cdn_name,
              mapping.config().min_ecs_bits);
  std::printf("%-14s %10s %18s %18s %18s\n", "client", "no ECS", "/16", "/20", "/24");
  for (const auto& [city, addr] : clients) {
    std::printf("%-14s", city.c_str());
    for (const int bits : {0, 16, 20, 24}) {
      cdn::MappingRequest request;
      request.resolver = resolver_addr;
      if (bits > 0) request.ecs = Prefix{addr, bits};
      const auto result = mapping.map(request);
      const auto edge = result.addresses.front();
      const auto rtt = bed.network().ping(addr, edge);
      const auto where = bed.network().location_of(edge);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s/%dms",
                    where ? bed.world().nearest(*where).name.substr(0, 9).c_str()
                          : "?",
                    rtt ? static_cast<int>(*rtt / netsim::kMillisecond) : -1);
      std::printf(" %18s", cell);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  measurement::Testbed bed;
  auto& fleet = bed.add_global_fleet();
  auto& cdn1 = bed.add_mapping(cdn::ProximityMapping::cdn1_config(), fleet);
  auto& cdn2 = bed.add_mapping(cdn::ProximityMapping::cdn2_config(), fleet);

  // The resolver everyone shares sits in Ashburn — far from most clients,
  // which is exactly why ECS exists.
  auto& resolver = bed.add_resolver(resolver::ResolverConfig::google_like(), "Ashburn");

  std::vector<std::pair<std::string, IpAddress>> clients;
  for (const char* city : {"Tokyo", "Sydney", "Santiago", "Zurich", "Johannesburg",
                           "Mumbai"}) {
    auto& c = bed.add_client(city);
    clients.emplace_back(city, c.address());
  }

  std::printf("ecsdns CDN mapping explorer\n");
  std::printf("cells show: chosen edge city / client-to-edge RTT\n\n");
  explore(bed, "CDN-1 (uses ECS only at /24)", cdn1, clients, resolver.address());
  explore(bed, "CDN-2 (uses ECS at /21+, else resolver proxy)", cdn2, clients,
          resolver.address());

  std::printf(
      "takeaways (matching the paper's section 8.3):\n"
      "  * below each CDN's threshold the mapping collapses to a default\n"
      "    or resolver-proxy choice - often a continent away;\n"
      "  * /24 is the only length that works for both CDNs, which is why\n"
      "    the paper recommends resolvers just send /24.\n");
  return 0;
}
