// Scenario: a resolver operator deciding whether to enable ECS.
//
// The paper's §7 conclusion is that ECS support has a real resource price:
// the cache must hold one answer per (question, client block) instead of
// one per question, and the hit rate collapses. This tool estimates both
// costs for an operator's own workload parameters.
//
// Usage: cache_cost_estimator [clients] [subnets] [hostnames] [qps] [minutes]
#include <cstdio>
#include <cstdlib>

#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  AllNamesConfig config;
  config.clients = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4000;
  config.client_subnets =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 900;
  config.hostnames = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8000;
  config.slds = std::max(1u, config.hostnames / 7);
  config.queries_per_second = argc > 4 ? std::atof(argv[4]) : 100.0;
  config.duration = (argc > 5 ? std::atol(argv[5]) : 45) * netsim::kMinute;

  std::printf("ecsdns cache cost estimator\n");
  std::printf("---------------------------\n");
  std::printf("workload: %u clients in %u subnets, %u hostnames, %.0f qps, %lld min\n\n",
              config.clients, config.client_subnets, config.hostnames,
              config.queries_per_second,
              static_cast<long long>(config.duration / netsim::kMinute));

  const Trace trace = generate_all_names_trace(config);
  const auto with = simulate_cache(trace, CacheSimOptions{true, std::nullopt, std::nullopt});
  const auto without = simulate_cache(trace, CacheSimOptions{false, std::nullopt, std::nullopt});

  const auto& w = with.per_resolver.front();
  const auto& wo = without.per_resolver.front();

  TextTable table({"metric", "without ECS", "with ECS", "impact"});
  table.add_row({"peak cache entries", std::to_string(wo.max_cache_size),
                 std::to_string(w.max_cache_size),
                 TextTable::num(static_cast<double>(w.max_cache_size) /
                                    static_cast<double>(std::max<std::size_t>(
                                        wo.max_cache_size, 1)),
                                1) +
                     "x"});
  table.add_row({"cache hit rate", TextTable::num(100 * wo.hit_rate(), 1) + "%",
                 TextTable::num(100 * w.hit_rate(), 1) + "%",
                 TextTable::num(100 * (wo.hit_rate() - w.hit_rate()), 1) + " pts"});
  table.add_row(
      {"upstream queries", std::to_string(wo.misses), std::to_string(w.misses),
       "+" + std::to_string(w.misses - wo.misses)});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "interpretation:\n"
      "  * size your cache for the with-ECS peak or accept premature\n"
      "    evictions;\n"
      "  * every lost cache hit is an extra upstream query your servers\n"
      "    (and the authoritatives) must absorb - compare the last row;\n"
      "  * weigh this against the latency win for your users\n"
      "    (see examples/cdn_mapping_explorer).\n");
  return 0;
}
