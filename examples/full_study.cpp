// The whole paper in one run: a miniature end-to-end replay of the study's
// pipeline, from vantage-point construction through every analysis, with
// narrative output. Useful as an integration showcase and as a map of how
// the library's pieces compose.
//
//   usage: full_study [scale]    (default 16; smaller = bigger fleets)
#include <cstdio>
#include <cstdlib>
#include <set>

#include "authoritative/ecs_policy.h"
#include "measurement/caching_prober.h"
#include "measurement/cache_sim.h"
#include "measurement/fleet.h"
#include "measurement/hidden.h"
#include "measurement/probing_classifier.h"
#include "measurement/prefix_census.h"
#include "measurement/scanner.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"
#include "measurement/workload.h"

using namespace ecsdns;
using namespace ecsdns::measurement;
using dnscore::Name;

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 16;
  std::printf("ecsdns full study replay (fleet scale 1/%d)\n", scale);
  std::printf("===========================================\n\n");

  // ---- §4: vantage points ----
  std::printf("[1/6] building vantage points...\n");
  Testbed bed;
  Scanner scanner(bed);
  ScanFleetOptions scan_options;
  scan_options.scale = scale;
  Fleet scan_fleet = build_scan_dataset_fleet(bed, scan_options);

  const Name cdn_zone = Name::from_string("cdn.example");
  auto& cdn = bed.add_auth(
      "cdn", cdn_zone, "Ashburn",
      std::make_unique<authoritative::WhitelistPolicy>(
          std::make_unique<authoritative::FixedScopePolicy>(24),
          std::vector<dnscore::IpAddress>{}));
  std::vector<Name> hostnames;
  for (int i = 0; i < 6; ++i) {
    const Name host = cdn_zone.prepend("h" + std::to_string(i));
    cdn.find_zone(cdn_zone)->add(dnscore::ResourceRecord::make_a(
        host, 20, dnscore::IpAddress::v4(203, 0, 113, static_cast<std::uint8_t>(i))));
    hostnames.push_back(host);
  }
  CdnFleetOptions cdn_options;
  cdn_options.scale = scale;
  cdn_options.probe_names = {hostnames[0], hostnames[1]};
  Fleet cdn_fleet = build_cdn_dataset_fleet(bed, cdn_options);
  std::printf("      scan-reachable egress resolvers : %zu\n",
              scan_fleet.members.size());
  std::printf("      CDN-observed resolver fleet     : %zu\n\n",
              cdn_fleet.members.size());

  // ---- §5: discovery, passive vs active ----
  std::printf("[2/6] discovery (passive CDN log vs active scan)...\n");
  WorkloadOptions wl;
  wl.hostnames = hostnames;
  wl.duration = 90 * netsim::kMinute;
  wl.mean_query_gap = 3 * netsim::kMinute;
  drive_fleet(bed, cdn_fleet, wl);

  std::vector<dnscore::IpAddress> targets;
  for (const auto& m : scan_fleet.members) {
    for (const auto* f : m.forwarders) targets.push_back(f->address());
  }
  const ScanResults scan = scanner.scan(targets);
  std::set<std::string> passive;
  for (const auto& e : cdn.log()) {
    if (e.query_ecs) passive.insert(e.sender.to_string());
  }
  std::printf("      passive discovery: %zu ECS resolvers\n", passive.size());
  std::printf("      active discovery : %zu ECS egress resolvers via %zu "
              "forwarders\n\n",
              scan.ecs_egress_addresses().size(), scan.open_ingress_count());

  // ---- §6.1: probing strategies ----
  std::printf("[3/6] classifying probing strategies from the CDN log...\n");
  const auto verdicts = classify_probing(cdn.log(), ProbingClassifierOptions{});
  for (const auto& [cls, count] : probing_histogram(verdicts)) {
    std::printf("      %-26s %zu\n", to_string(cls).c_str(), count);
  }

  // ---- §6.2 / Table 1: source prefix lengths ----
  std::printf("\n[4/6] source-prefix census (Table 1)...\n");
  for (const auto& row : source_prefix_census(cdn.log())) {
    std::printf("      %-30s %zu resolvers\n", row.lengths.c_str(),
                row.resolver_count);
  }

  // ---- §6.3: caching behavior (over the scan's non-MP slice) ----
  std::printf("\n[5/6] probing caching behavior (two-query technique)...\n");
  CachingProber prober(bed);
  std::vector<CachingVerdict> caching;
  for (const auto& m : scan_fleet.members) {
    if (m.as_label == "AS-MP") continue;
    caching.push_back(prober.probe(m));
  }
  for (const auto& [cls, count] : CachingProber::histogram(caching)) {
    std::printf("      %-26s %zu\n", to_string(cls).c_str(), count);
  }

  // ---- §7 + §8.2: cache impact and hidden resolvers ----
  std::printf("\n[6/6] cache impact and hidden resolvers...\n");
  AllNamesConfig trace_config;
  trace_config.clients = 2000;
  trace_config.client_subnets = 420;
  trace_config.hostnames = 4000;
  trace_config.slds = 550;
  trace_config.duration = 30 * netsim::kMinute;
  const Trace trace = generate_all_names_trace(trace_config);
  const auto factors = blowup_factors(trace, std::nullopt);
  const auto with = simulate_cache(trace, CacheSimOptions{true, {}, {}});
  const auto without = simulate_cache(trace, CacheSimOptions{false, {}, {}});
  std::printf("      cache blow-up factor      : %.2f\n",
              factors.empty() ? 0.0 : factors.front());
  std::printf("      hit rate without / with   : %.1f%% / %.1f%%\n",
              100 * without.overall_hit_rate(), 100 * with.overall_hit_rate());

  const auto combos = find_hidden_combinations(scan, bed.geodb());
  const auto hidden = analyze_hidden(combos);
  std::printf("      hidden-resolver combos    : %zu (%.1f%% with the hidden\n"
              "                                  farther than the egress)\n",
              hidden.combinations, 100 * hidden.below_diagonal_fraction);

  std::printf("\nstudy complete. The bench/ binaries run each analysis at "
              "full calibration.\n");
  return 0;
}
