// Scenario: the paper's §4 measurement campaign as a runnable tool — scan
// address space through open forwarders, associate ingress with egress via
// encoded hostnames, census the ECS behavior of what you find, and surface
// hidden resolvers.
#include <cstdio>

#include "measurement/fleet.h"
#include "measurement/hidden.h"
#include "measurement/scanner.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("ecsdns open-resolver scan (fleet scale 1/%d)\n", scale);
  std::printf("--------------------------------------------\n\n");

  Testbed bed;
  Scanner scanner(bed);
  ScanFleetOptions options;
  options.scale = scale;
  Fleet fleet = build_scan_dataset_fleet(bed, options);

  // Target list: every open forwarder, plus some dead space like a real
  // address-space sweep would hit.
  std::vector<dnscore::IpAddress> targets;
  for (const auto& m : fleet.members) {
    for (const auto* f : m.forwarders) targets.push_back(f->address());
  }
  for (std::uint32_t i = 0; i < 64; ++i) {
    targets.push_back(dnscore::IpAddress::v4((198u << 24) | (18u << 16) | i));
  }

  std::printf("probing %zu targets with encoded hostnames "
              "(ip-a-b-c-d.%s)...\n\n",
              targets.size(), scanner.zone().to_string().c_str());
  const ScanResults results = scanner.scan(targets);

  std::printf("probes sent          : %llu\n",
              static_cast<unsigned long long>(results.probes_sent));
  std::printf("responses received   : %llu\n",
              static_cast<unsigned long long>(results.responses_received));
  std::printf("open ingress found   : %zu\n", results.open_ingress_count());
  std::printf("  ...with ECS egress : %zu\n", results.ecs_ingress_count());
  std::printf("ECS egress resolvers : %zu\n\n", results.ecs_egress_addresses().size());

  std::printf("source prefix length census of discovered egress resolvers:\n");
  TextTable table({"lengths", "# egress resolvers"});
  for (const auto& [key, members] : results.source_length_census()) {
    table.add_row({key, std::to_string(members.size())});
  }
  std::printf("%s\n", table.render().c_str());

  const auto hidden = results.hidden_prefixes();
  std::printf("hidden resolver prefixes (ECS covering neither ingress nor "
              "egress): %zu\n",
              hidden.size());
  const auto combos = find_hidden_combinations(results, bed.geodb());
  const auto analysis = analyze_hidden(combos);
  std::printf("(forwarder, hidden, egress) combinations: %zu\n",
              analysis.combinations);
  std::printf("  hidden farther than egress : %.1f%% (ECS hurts mapping here)\n",
              100 * analysis.below_diagonal_fraction);
  std::printf("  hidden closer than egress  : %.1f%% (ECS helps)\n",
              100 * analysis.above_diagonal_fraction);
  std::printf("  worst extra distance       : %.0f km\n", analysis.max_penalty_km);
  return 0;
}
