// Scenario: auditing resolvers for ECS compliance.
//
// This is the tool a resolver operator (or a curious researcher) would run
// against their own fleet: it subjects each resolver to the paper's §6.3
// two-query methodology and reports exactly how the resolver handles ECS —
// does it honor authoritative scopes, does it leak more than 24 bits of
// client address, does it clamp, does it announce private space?
#include <cstdio>

#include "measurement/caching_prober.h"
#include "measurement/fleet.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

namespace {

// One audit subject per known behavior class, plus labels explaining what
// a production audit would conclude.
struct Subject {
  const char* description;
  resolver::ResolverConfig config;
};

}  // namespace

int main() {
  std::printf("ecsdns resolver audit - RFC 7871 compliance check\n");
  std::printf("-------------------------------------------------\n\n");

  Testbed bed;
  CachingProber prober(bed);

  std::vector<Subject> subjects;
  subjects.push_back({"vendor A default config", resolver::ResolverConfig::correct()});
  subjects.push_back(
      {"vendor B (ticket #1423)", resolver::ResolverConfig::scope_ignorer()});
  subjects.push_back({"lab build with privacy cap off",
                      resolver::ResolverConfig::long_prefix_acceptor()});
  subjects.push_back({"appliance with /22 aggregation",
                      resolver::ResolverConfig::clamp22()});
  subjects.push_back({"misconfigured PowerDNS-style box",
                      resolver::ResolverConfig::private_block_bug()});

  int serial = 0;
  for (auto& subject : subjects) {
    // Give each subject two audit forwarders in the /24-vs-/16 layout the
    // methodology requires.
    FleetMember member;
    auto& r = bed.add_resolver(subject.config, "Chicago");
    member.resolver = &r;
    member.address = r.address();
    for (int f = 0; f < 2; ++f) {
      const auto addr = dnscore::IpAddress::v4(
          (62u << 24) | (static_cast<std::uint32_t>(serial) << 16) |
          (static_cast<std::uint32_t>(f) << 8) | 0x30u);
      member.forwarders.push_back(&bed.add_forwarder_at(addr, "Toronto", member.address));
      member.hidden.push_back(nullptr);
    }
    ++serial;

    const CachingVerdict v = prober.probe(member);
    std::printf("subject: %s\n", subject.description);
    std::printf("  resolver address        : %s\n", member.address.to_string().c_str());
    std::printf("  accepts client ECS      : %s\n", v.accepts_client_ecs ? "yes" : "no");
    std::printf("  honors /24 scope        : %s\n", v.honors_scope24 ? "yes" : "NO");
    std::printf("  reuses at /16 scope     : %s\n", v.reuses_scope16 ? "yes" : "NO");
    std::printf("  reuses at scope 0       : %s\n", v.reuses_scope0 ? "yes" : "NO");
    std::printf("  longest prefix conveyed : /%d%s\n", v.max_source_seen,
                v.max_source_seen > 24 ? "  <-- privacy leak" : "");
    std::printf("  private space announced : %s\n",
                v.private_prefix_seen ? "YES <-- confuses CDNs" : "no");
    std::printf("  verdict                 : %s\n\n", to_string(v.cls).c_str());
  }

  std::printf(
      "reading the verdicts:\n"
      "  correct            - deployable as-is\n"
      "  ignores-scope      - breaks CDN traffic engineering; answers leak\n"
      "                       across client subnets\n"
      "  accepts->24        - forwards more client bits than RFC 7871 allows\n"
      "  clamps-at-22       - may get catastrophically mis-mapped by CDNs\n"
      "                       that need /24 (see bench/fig6)\n"
      "  private-prefix-bug - authoritative sees 10/8; mapping is garbage\n");
  return 0;
}
