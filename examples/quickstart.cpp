// Quickstart: the ecsdns library in one file.
//
//  1. Craft a real RFC 7871 ECS query and look at its wire bytes.
//  2. Stand up a miniature Internet — root, TLD, an ECS-aware CDN
//     authoritative, a recursive resolver — and resolve through it.
//  3. Watch the ECS cache at work: same-/24 clients share an answer,
//     other subnets trigger fresh upstream fetches.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "measurement/testbed.h"

using namespace ecsdns;
using dnscore::EcsOption;
using dnscore::IpAddress;
using dnscore::Message;
using dnscore::Name;
using dnscore::Prefix;
using dnscore::RRType;

int main() {
  // --- 1. wire format ---
  std::printf("== 1. crafting an ECS query ==\n");
  Message query = Message::make_query(0x2b7e, Name::from_string("www.example.com"),
                                      RRType::A);
  query.set_ecs(EcsOption::for_query(Prefix::parse("198.51.100.0/24")));
  const auto wire = query.serialize();
  std::printf("%s", query.to_string().c_str());
  std::printf("wire (%zu bytes): %s...\n\n", wire.size(),
              dnscore::hex_dump({wire.data(), 24}).c_str());
  const Message reparsed = Message::parse({wire.data(), wire.size()});
  std::printf("parsed back: ECS option = %s\n\n", reparsed.ecs()->to_string().c_str());

  // --- 2. a miniature Internet ---
  std::printf("== 2. resolving through a simulated hierarchy ==\n");
  measurement::Testbed bed;
  auto& fleet = bed.add_global_fleet();
  auto& mapping = bed.add_mapping(cdn::ProximityMapping::cdn2_config(), fleet);
  const Name zone = Name::from_string("cdn.example");
  auto& auth = bed.add_auth("cdn", zone, "Ashburn",
                            std::make_unique<authoritative::CdnMappingPolicy>(mapping));
  const Name host = zone.prepend("www");
  auth.find_zone(zone)->add(
      dnscore::ResourceRecord::make_a(host, 20, IpAddress::parse("203.0.113.1")));

  auto& resolver = bed.add_resolver(resolver::ResolverConfig::google_like(), "Chicago");
  auto& tokyo_client = bed.add_client("Tokyo");
  auto& berlin_client = bed.add_client("Frankfurt");

  const auto answer_for = [&](resolver::StubClient& client, const char* who) {
    const auto response = client.query(resolver.address(), host, RRType::A);
    if (!response || !response->first_address()) {
      std::printf("%s: resolution failed\n", who);
      return;
    }
    const auto edge = *response->first_address();
    const auto where = bed.network().location_of(edge);
    std::printf("%-16s -> edge %-12s (%s)\n", who, edge.to_string().c_str(),
                where ? bed.world().nearest(*where).name.c_str() : "?");
  };
  answer_for(tokyo_client, "client in Tokyo");
  answer_for(berlin_client, "client in Frankfurt");
  std::printf("one resolver, two clients, two different edges: that is ECS.\n\n");

  // --- 3. the ECS cache ---
  std::printf("== 3. scope-controlled caching ==\n");
  // A repeat from the same client is served from cache...
  auto before = auth.queries_served();
  tokyo_client.query(resolver.address(), host, RRType::A);
  std::printf("repeat query, same client     -> %llu upstream queries (cache hit)\n",
              static_cast<unsigned long long>(auth.queries_served() - before));
  // ...but a client in a different block is outside the cached answer's
  // ECS scope, so the resolver must fetch a fresh, tailored answer.
  before = auth.queries_served();
  auto& sydney_client = bed.add_client("Sydney");
  sydney_client.query(resolver.address(), host, RRType::A);
  std::printf("new client in another subnet  -> %llu upstream queries (scope miss)\n",
              static_cast<unsigned long long>(auth.queries_served() - before));
  std::printf("resolver cache: %zu entries, %llu hits, %llu misses\n",
              resolver.cache().size(),
              static_cast<unsigned long long>(resolver.cache().stats().hits),
              static_cast<unsigned long long>(resolver.cache().stats().misses));
  std::printf("\ndone. see examples/ for deeper scenarios.\n");
  return 0;
}
