// The live authoritative frontend: real UDP sockets feeding
// authoritative::AuthServer::serve_wire.
//
// Socket model (see docs/live_wire.md):
//
//   - one SO_REUSEPORT socket per shard, all bound to the same (addr,
//     port); the kernel hashes flows across them, so shards never contend
//     on a socket;
//   - each shard owns a thread running an epoll readiness loop, draining
//     its socket with recvmmsg batches and answering with sendmmsg;
//   - per shard, one authoritative::DispatchScratch plus caller-owned
//     receive/send buffers, all capacity-retained: the steady-state
//     recv→dispatch→send cycle performs zero heap allocations
//     (tests/test_noalloc_contracts.cpp pins this through MockUdpSocket).
//
// ServerShard is the socket-agnostic cycle — the fault-injection tests
// drive it directly over a MockUdpSocket; UdpServer adds real sockets,
// epoll, and threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "authoritative/server.h"
#include "live/clock.h"
#include "live/sys_socket.h"
#include "netsim/socket.h"
#include "obs/metrics.h"

namespace ecsdns::live {

struct LiveServerConfig {
  netsim::SocketAddress bind{dnscore::IpAddress::v4(127, 0, 0, 1), 0};
  int shards = 1;
  // recvmmsg/sendmmsg batch size per cycle.
  int batch = 32;
  // Per-datagram receive buffer; larger datagrams surface as truncated and
  // are dropped (RFC 6891 default payload size).
  std::size_t recv_buffer_bytes = 4096;
  // Consecutive EAGAIN send retries before the rest of a batch is dropped
  // (a response dropped under backpressure is a normal UDP outcome).
  int max_send_spins = 1024;
  // Pin epoll loop thread N to netsim::Topology::pin_order()[N % cores] —
  // one shard per physical core, SMT siblings last. When affinity is
  // denied (containers, restricted CI) the server warns once and runs
  // unpinned; responses are identical either way.
  bool pin_threads = false;
};

// One recv→dispatch→send cycle over any UdpSocket. Single-threaded.
class ServerShard {
 public:
  ServerShard(netsim::UdpSocket& socket, authoritative::AuthServer& auth,
              MonotonicClock& clock, const LiveServerConfig& config);

  // Receives up to config.batch datagrams, dispatches each through
  // serve_wire, and flushes the responses. Returns datagrams received
  // (0 on EAGAIN/EINTR — callers poll readiness and call again).
  std::size_t process_once();

 private:
  void flush_sends(std::size_t count);

  netsim::UdpSocket& socket_;
  authoritative::AuthServer& auth_;
  MonotonicClock& clock_;
  LiveServerConfig config_;

  authoritative::DispatchScratch scratch_;
  // Receive-side storage: slot i reads into rx_storage_[i].
  std::vector<std::vector<std::uint8_t>> rx_storage_;
  std::vector<netsim::RecvSlot> recv_slots_;
  // Send-side storage: response i serializes into tx_storage_[i].
  std::vector<std::vector<std::uint8_t>> tx_storage_;
  std::vector<netsim::SendSlot> send_slots_;

  struct Metrics {
    obs::CounterHandle rx_batches;
    obs::CounterHandle rx_packets;
    obs::CounterHandle tx_batches;
    obs::CounterHandle tx_packets;
    obs::CounterHandle drops;           // serve_wire said drop
    obs::CounterHandle truncated;       // datagram exceeded the recv buffer
    obs::CounterHandle eagain;          // recv would block
    obs::CounterHandle eintr;           // recv/send interrupted
    obs::CounterHandle tx_eagain;       // send backpressure retries
    obs::CounterHandle send_drops;      // responses abandoned under backpressure
    obs::CounterHandle socket_errors;
  } metrics_;
};

// N shards over N SO_REUSEPORT sockets, each on its own epoll loop thread.
//
// Serving from more than one shard requires auth.config().log_queries ==
// false (the query log is single-writer); the constructor enforces this.
class UdpServer {
 public:
  UdpServer(LiveServerConfig config, authoritative::AuthServer& auth);
  ~UdpServer();
  UdpServer(const UdpServer&) = delete;
  UdpServer& operator=(const UdpServer&) = delete;

  // Spawns the shard threads. Idempotent.
  void start();
  // Signals every shard via eventfd and joins. Idempotent.
  void stop();

  // The bound address (ephemeral port resolved).
  netsim::SocketAddress address() const { return sockets_.front()->local_address(); }
  std::uint16_t port() const { return address().port; }

 private:
  void run_shard(std::size_t index);

  LiveServerConfig config_;
  authoritative::AuthServer& auth_;
  SteadyClock clock_;
  std::vector<std::unique_ptr<SysUdpSocket>> sockets_;
  std::vector<std::unique_ptr<ServerShard>> shards_;
  std::vector<std::thread> threads_;
  std::vector<int> pin_order_;  // resolved once at start() when pinning
  std::atomic<bool> pin_warned_{false};
  int stop_fd_ = -1;  // eventfd, level-triggered wakeup for every shard
  std::atomic<bool> running_{false};
};

}  // namespace ecsdns::live
