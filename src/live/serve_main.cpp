// ecsdns_serve: the live-wire authoritative server on a real UDP port.
//
//   ecsdns_serve --port 5353 --shards 4 --zone scan-experiment.net
//
// Serves the zone with the paper's scan-experiment ECS policy
// (scope = source - 4) by default; query it with dig:
//
//   dig @127.0.0.1 -p 5353 www.scan-experiment.net +subnet=198.51.100.0/24
//
// On exit (SIGINT/SIGTERM or --duration-s) it prints the live.* metrics
// document to stdout.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "authoritative/ecs_policy.h"
#include "authoritative/server.h"
#include "live/udp_server.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace ecsdns;

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }

struct Flags {
  std::uint16_t port = 5353;
  int shards = 1;
  int batch = 32;
  int duration_s = 0;  // 0 = run until SIGINT/SIGTERM
  int scope_delta = 4;
  bool pin = false;
  std::string zone = "scan-experiment.net";
  std::string policy = "delta";  // delta | fixed | noecs
  bool log_queries = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--shards N] [--batch N] [--zone NAME]\n"
               "          [--policy delta|fixed|noecs] [--scope-delta N]\n"
               "          [--duration-s N] [--log-queries] [--pin]\n",
               argv0);
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      flags.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      flags.shards = std::atoi(v);
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      flags.batch = std::atoi(v);
    } else if (arg == "--duration-s") {
      const char* v = next();
      if (v == nullptr) return false;
      flags.duration_s = std::atoi(v);
    } else if (arg == "--scope-delta") {
      const char* v = next();
      if (v == nullptr) return false;
      flags.scope_delta = std::atoi(v);
    } else if (arg == "--zone") {
      const char* v = next();
      if (v == nullptr) return false;
      flags.zone = v;
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      flags.policy = v;
    } else if (arg == "--log-queries") {
      flags.log_queries = true;
    } else if (arg == "--pin") {
      flags.pin = true;
    } else {
      return false;
    }
  }
  return true;
}

std::unique_ptr<authoritative::EcsPolicy> make_policy(const Flags& flags) {
  if (flags.policy == "noecs") {
    return std::make_unique<authoritative::NoEcsPolicy>();
  }
  if (flags.policy == "fixed") {
    return std::make_unique<authoritative::FixedScopePolicy>(flags.scope_delta);
  }
  return std::make_unique<authoritative::ScopeDeltaPolicy>(flags.scope_delta);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) {
    usage(argv[0]);
    return 2;
  }

  obs::preregister_core_metrics(obs::MetricsRegistry::global());

  authoritative::AuthConfig config;
  config.label = "live";
  config.log_queries = flags.log_queries;
  authoritative::AuthServer auth(config, make_policy(flags));
  const auto apex = dnscore::Name::from_string(flags.zone);
  auto& zone = auth.add_zone(apex);
  zone.add(dnscore::ResourceRecord::make_a(apex, 300,
                                           dnscore::IpAddress::v4(192, 0, 2, 1)));
  zone.add(dnscore::ResourceRecord::make_a(apex.prepend("www"), 300,
                                           dnscore::IpAddress::v4(192, 0, 2, 80)));

  live::LiveServerConfig server_config;
  server_config.bind = {dnscore::IpAddress::v4(127, 0, 0, 1), flags.port};
  server_config.shards = flags.shards;
  server_config.batch = flags.batch;
  server_config.pin_threads = flags.pin;

  try {
    live::UdpServer server(server_config, auth);
    server.start();
    std::printf("ecsdns_serve: %d shard(s) on 127.0.0.1:%u, zone %s, policy %s\n",
                flags.shards, server.port(), flags.zone.c_str(),
                flags.policy.c_str());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    const auto started = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (flags.duration_s > 0 &&
          std::chrono::steady_clock::now() - started >=
              std::chrono::seconds(flags.duration_s)) {
        break;
      }
    }
    server.stop();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  started)
            .count();
    std::printf("%s\n",
                obs::metrics_json(obs::MetricsRegistry::global(), "ecsdns_serve",
                                  wall_ms)
                    .c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecsdns_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
