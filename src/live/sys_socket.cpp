#include "live/sys_socket.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <system_error>

namespace ecsdns::live {
namespace {

using netsim::IoStatus;
using netsim::SocketAddress;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

IoStatus map_errno(int err) {
  if (err == EAGAIN || err == EWOULDBLOCK) return IoStatus::kWouldBlock;
  if (err == EINTR) return IoStatus::kInterrupted;
  return IoStatus::kError;
}

// sockaddr_in conversion without htons/htonl: network byte order IS a byte
// sequence, so compose the fields from bytes via bit_cast and stay endian
// agnostic (the wire-codec tidy rule keeps byte-order intrinsics inside
// dnscore/wire.cpp).
sockaddr_in to_sockaddr(const SocketAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = std::bit_cast<std::uint16_t>(std::array<std::uint8_t, 2>{
      static_cast<std::uint8_t>(addr.port >> 8),
      static_cast<std::uint8_t>(addr.port & 0xff)});
  const auto& bytes = addr.ip.bytes();  // v4: first four octets
  sa.sin_addr = std::bit_cast<in_addr>(
      std::array<std::uint8_t, 4>{bytes[0], bytes[1], bytes[2], bytes[3]});
  return sa;
}

SocketAddress from_sockaddr(const sockaddr_in& sa) {
  const auto ip = std::bit_cast<std::array<std::uint8_t, 4>>(sa.sin_addr);
  const auto port = std::bit_cast<std::array<std::uint8_t, 2>>(sa.sin_port);
  return SocketAddress{
      dnscore::IpAddress::v4(ip[0], ip[1], ip[2], ip[3]),
      static_cast<std::uint16_t>((static_cast<std::uint16_t>(port[0]) << 8) |
                                 port[1])};
}

}  // namespace

SysUdpSocket::SysUdpSocket(int fd) : fd_(fd) {}

std::unique_ptr<SysUdpSocket> SysUdpSocket::open(const Options& options) {
  if (!options.bind.ip.is_v4()) {
    throw std::invalid_argument("SysUdpSocket: IPv4 bind addresses only");
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  std::unique_ptr<SysUdpSocket> sock(new SysUdpSocket(fd));

  const int one = 1;
  if (options.reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  if (options.recv_buffer_bytes > 0 &&
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.recv_buffer_bytes,
                   sizeof(options.recv_buffer_bytes)) != 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
  if (options.send_buffer_bytes > 0 &&
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.send_buffer_bytes,
                   sizeof(options.send_buffer_bytes)) != 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }

  sockaddr_in sa = to_sockaddr(options.bind);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw_errno("bind");
  }
  // Resolve the kernel-assigned ephemeral port (bind port 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }
  sock->local_ = from_sockaddr(bound);
  return sock;
}

SysUdpSocket::~SysUdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void SysUdpSocket::ensure_batch_capacity(std::size_t n) {
  if (hdrs_.size() >= n) return;
  hdrs_.resize(n);
  iovs_.resize(n);
  addrs_.resize(n);
}

netsim::IoStatus SysUdpSocket::recv_batch(std::span<netsim::RecvSlot> slots,
                                          std::size_t& received) {
  received = 0;
  if (slots.empty()) return IoStatus::kOk;
  ensure_batch_capacity(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    iovs_[i].iov_base = slots[i].buffer.data();
    iovs_[i].iov_len = slots[i].buffer.size();
    hdrs_[i].msg_hdr = msghdr{};
    hdrs_[i].msg_hdr.msg_name = &addrs_[i];
    hdrs_[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    hdrs_[i].msg_hdr.msg_iov = &iovs_[i];
    hdrs_[i].msg_hdr.msg_iovlen = 1;
    hdrs_[i].msg_len = 0;
  }
  const int n = ::recvmmsg(fd_, hdrs_.data(), static_cast<unsigned>(slots.size()),
                           MSG_DONTWAIT, nullptr);
  if (n < 0) return map_errno(errno);
  for (int i = 0; i < n; ++i) {
    slots[static_cast<std::size_t>(i)].length = hdrs_[static_cast<std::size_t>(i)].msg_len;
    slots[static_cast<std::size_t>(i)].truncated =
        (hdrs_[static_cast<std::size_t>(i)].msg_hdr.msg_flags & MSG_TRUNC) != 0;
    slots[static_cast<std::size_t>(i)].peer =
        from_sockaddr(addrs_[static_cast<std::size_t>(i)]);
  }
  received = static_cast<std::size_t>(n);
  return IoStatus::kOk;
}

netsim::IoStatus SysUdpSocket::send_batch(std::span<const netsim::SendSlot> slots,
                                          std::size_t& sent) {
  sent = 0;
  if (slots.empty()) return IoStatus::kOk;
  ensure_batch_capacity(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    // iovec is not const-aware; sendmmsg never writes through it.
    iovs_[i].iov_base = const_cast<std::uint8_t*>(slots[i].payload.data());
    iovs_[i].iov_len = slots[i].payload.size();
    addrs_[i] = to_sockaddr(slots[i].peer);
    hdrs_[i].msg_hdr = msghdr{};
    hdrs_[i].msg_hdr.msg_name = &addrs_[i];
    hdrs_[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    hdrs_[i].msg_hdr.msg_iov = &iovs_[i];
    hdrs_[i].msg_hdr.msg_iovlen = 1;
    hdrs_[i].msg_len = 0;
  }
  const int n = ::sendmmsg(fd_, hdrs_.data(), static_cast<unsigned>(slots.size()),
                           MSG_DONTWAIT);
  if (n < 0) return map_errno(errno);
  sent = static_cast<std::size_t>(n);
  return IoStatus::kOk;
}

netsim::IoStatus SysUdpSocket::wait_readable(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) return map_errno(errno);
  return n > 0 ? IoStatus::kOk : IoStatus::kWouldBlock;
}

}  // namespace ecsdns::live
