#include "live/udp_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "netsim/topology.h"

namespace ecsdns::live {

using netsim::IoStatus;
using netsim::RecvSlot;
using netsim::SendSlot;

ServerShard::ServerShard(netsim::UdpSocket& socket,
                         authoritative::AuthServer& auth,
                         MonotonicClock& clock, const LiveServerConfig& config)
    : socket_(socket), auth_(auth), clock_(clock), config_(config) {
  const auto batch = static_cast<std::size_t>(config_.batch < 1 ? 1 : config_.batch);
  rx_storage_.resize(batch);
  recv_slots_.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    rx_storage_[i].resize(config_.recv_buffer_bytes);
    recv_slots_[i].buffer = std::span<std::uint8_t>(rx_storage_[i]);
  }
  tx_storage_.resize(batch);
  send_slots_.resize(batch);

  auto& reg = obs::MetricsRegistry::global();
  metrics_.rx_batches = obs::CounterHandle(reg.counter("live.rx_batches"));
  metrics_.rx_packets = obs::CounterHandle(reg.counter("live.rx_packets"));
  metrics_.tx_batches = obs::CounterHandle(reg.counter("live.tx_batches"));
  metrics_.tx_packets = obs::CounterHandle(reg.counter("live.tx_packets"));
  metrics_.drops = obs::CounterHandle(reg.counter("live.drops"));
  metrics_.truncated = obs::CounterHandle(reg.counter("live.truncated"));
  metrics_.eagain = obs::CounterHandle(reg.counter("live.eagain"));
  metrics_.eintr = obs::CounterHandle(reg.counter("live.eintr"));
  metrics_.tx_eagain = obs::CounterHandle(reg.counter("live.tx_eagain"));
  metrics_.send_drops = obs::CounterHandle(reg.counter("live.send_drops"));
  metrics_.socket_errors = obs::CounterHandle(reg.counter("live.socket_errors"));
}

std::size_t ServerShard::process_once() {
  std::size_t received = 0;
  switch (socket_.recv_batch(recv_slots_, received)) {
    case IoStatus::kOk:
      break;
    case IoStatus::kWouldBlock:
      metrics_.eagain.inc();
      return 0;
    case IoStatus::kInterrupted:
      metrics_.eintr.inc();
      return 0;
    case IoStatus::kError:
      metrics_.socket_errors.inc();
      return 0;
  }
  if (received == 0) return 0;
  metrics_.rx_batches.inc();
  metrics_.rx_packets.inc(received);

  const auto now = static_cast<netsim::SimTime>(clock_.now_us());
  std::size_t queued = 0;
  for (std::size_t i = 0; i < received; ++i) {
    const RecvSlot& slot = recv_slots_[i];
    if (slot.truncated) {
      // An oversized datagram arrived mangled; nothing sensible to answer.
      metrics_.truncated.inc();
      continue;
    }
    auto& tx = tx_storage_[queued];
    if (!auth_.serve_wire(slot.buffer.subspan(0, slot.length), slot.peer.ip,
                          now, /*via_tcp=*/false, scratch_, tx)) {
      metrics_.drops.inc();
      continue;
    }
    send_slots_[queued] = SendSlot{std::span<const std::uint8_t>(tx), slot.peer};
    ++queued;
  }
  flush_sends(queued);
  return received;
}

void ServerShard::flush_sends(std::size_t count) {
  if (count == 0) return;
  metrics_.tx_batches.inc();
  std::size_t offset = 0;
  int spins = 0;
  while (offset < count) {
    std::size_t sent = 0;
    const IoStatus status = socket_.send_batch(
        std::span<const SendSlot>(send_slots_.data() + offset, count - offset),
        sent);
    if (sent > 0) {
      metrics_.tx_packets.inc(sent);
      offset += sent;
      spins = 0;
      continue;
    }
    if (status == IoStatus::kInterrupted) {
      metrics_.eintr.inc();
      continue;
    }
    if (status == IoStatus::kError) {
      metrics_.socket_errors.inc();
      metrics_.send_drops.inc(count - offset);
      return;
    }
    // kWouldBlock (or a zero-progress kOk): socket buffer full. Spin a
    // bounded number of times, then shed the rest of the batch — dropping a
    // UDP response under backpressure is a normal outcome, wedging the
    // receive loop is not.
    metrics_.tx_eagain.inc();
    if (++spins >= config_.max_send_spins) {
      metrics_.send_drops.inc(count - offset);
      return;
    }
  }
}

UdpServer::UdpServer(LiveServerConfig config, authoritative::AuthServer& auth)
    : config_(std::move(config)), auth_(auth) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.shards > 1 && auth_.config().log_queries) {
    throw std::invalid_argument(
        "UdpServer: multi-shard serving requires log_queries=false "
        "(the query log is single-writer)");
  }
  SysUdpSocket::Options opts;
  opts.bind = config_.bind;
  opts.reuse_port = config_.shards > 1;
  sockets_.push_back(SysUdpSocket::open(opts));
  // Later shards bind the resolved (possibly ephemeral) port of the first.
  opts.bind = sockets_.front()->local_address();
  for (int i = 1; i < config_.shards; ++i) {
    sockets_.push_back(SysUdpSocket::open(opts));
  }
  shards_.reserve(sockets_.size());
  for (auto& socket : sockets_) {
    shards_.push_back(
        std::make_unique<ServerShard>(*socket, auth_, clock_, config_));
  }
  stop_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (stop_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
}

UdpServer::~UdpServer() {
  stop();
  if (stop_fd_ >= 0) ::close(stop_fd_);
}

void UdpServer::start() {
  if (running_.exchange(true)) return;
  if (config_.pin_threads && pin_order_.empty()) {
    pin_order_ = netsim::Topology::detect().pin_order();
  }
  threads_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    threads_.emplace_back([this, i] { run_shard(i); });
  }
}

void UdpServer::stop() {
  running_.store(false);
  if (stop_fd_ >= 0) {
    // The counter is written once and never read back, so the eventfd stays
    // level-readable and every shard's epoll wakes, now and on re-poll.
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(stop_fd_, &one, sizeof(one));
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void UdpServer::run_shard(std::size_t index) {
  char name[16];
  std::snprintf(name, sizeof(name), "live-epoll-%zu", index);
  netsim::set_current_thread_name(name);
  if (config_.pin_threads && !pin_order_.empty() &&
      !netsim::pin_current_thread_to_cpu(
          pin_order_[index % pin_order_.size()]) &&
      !pin_warned_.exchange(true)) {
    // Graceful fallback: affinity denial (containers, restricted CI) means
    // an unpinned run, not an error — responses are identical either way.
    std::fprintf(stderr,
                 "[udp_server] warning: could not pin shard %zu "
                 "(affinity unavailable); continuing unpinned\n",
                 index);
  }
  ServerShard& shard = *shards_[index];
  const int sock_fd = sockets_[index]->native_handle();
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = sock_fd;
  if (::epoll_ctl(ep, EPOLL_CTL_ADD, sock_fd, &ev) != 0) {
    ::close(ep);
    return;
  }
  ev.data.fd = stop_fd_;
  if (::epoll_ctl(ep, EPOLL_CTL_ADD, stop_fd_, &ev) != 0) {
    ::close(ep);
    return;
  }
  epoll_event events[2];
  while (running_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(ep, events, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_relaxed)) break;
    // Drain the socket until it reports EAGAIN (level-triggered epoll will
    // re-arm if more arrives), re-checking the stop flag between batches so
    // a saturating sender cannot starve shutdown.
    while (running_.load(std::memory_order_relaxed) && shard.process_once() > 0) {
    }
  }
  ::close(ep);
}

}  // namespace ecsdns::live
