// The monotonic-clock seam for live-wire components.
//
// Everything inside the determinism boundary runs on netsim's virtual
// SimTime. The live client/server need real elapsed time for timeouts and
// latency, but hard-wiring std::chrono would make the retry/timeout logic
// untestable — so they take this interface, with SteadyClock in production
// and FakeClock in the deterministic fault-injection tests.
#pragma once

#include <chrono>
#include <cstdint>

#include "dnscore/annotations.h"

namespace ecsdns::live {

class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;
  // Microseconds since an arbitrary fixed origin; never goes backwards.
  virtual std::uint64_t now_us() = 0;
};

// Real time. steady_clock, not system_clock: immune to NTP steps, and
// outside ecstidy's det-clock ban (nothing here feeds committed results —
// latency histograms are measurement outputs of the live harness itself).
class SteadyClock final : public MonotonicClock {
 public:
  ECSDNS_NONDETERMINISTIC_OK std::uint64_t now_us() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

// Test clock: advances only when told to, so timeout/retry schedules are
// exactly reproducible.
class FakeClock final : public MonotonicClock {
 public:
  std::uint64_t now_us() override { return now_; }
  void advance_us(std::uint64_t delta) { now_ += delta; }

 private:
  std::uint64_t now_ = 1;  // nonzero so "never sent" is distinguishable
};

}  // namespace ecsdns::live
