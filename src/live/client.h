// LiveClient: a pipelined UDP DNS client with per-query timeout/retry and a
// bounded in-flight budget, plus the LiveTransport adapter that lets
// resolver::StubClient (and thus the measurement scanner) run over it.
//
// Matching model: queries are correlated to responses by the DNS message ID
// (the first two wire bytes). The client does NOT rewrite IDs — responses
// must stay byte-identical to the simulated path — so the caller guarantees
// distinct IDs among concurrently in-flight queries (StubClient's
// incrementing ID does; exchange() is one-at-a-time and trivially safe).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "live/clock.h"
#include "live/sys_socket.h"
#include "netsim/buffer_pool.h"
#include "netsim/socket.h"
#include "obs/metrics.h"
#include "resolver/transport.h"

namespace ecsdns::live {

struct LiveClientConfig {
  // Where every query goes (a single live endpoint: the loopback server).
  netsim::SocketAddress server{};
  // In-flight budget: submit() refuses past this many outstanding queries.
  int max_in_flight = 64;
  // Transmits per query (1 initial + retries) before a timeout completion.
  int max_attempts = 3;
  // Per-attempt retransmit deadline.
  std::uint64_t timeout_us = 250'000;
  // recvmmsg batch and per-datagram receive buffer.
  int batch = 16;
  std::size_t recv_buffer_bytes = 4096;
};

// One finished query, surfaced by poll(). On ok, `response` holds the wire
// bytes in a buffer from pool() — release it back when done.
struct Completion {
  std::uint64_t tag = 0;
  bool ok = false;
  std::uint64_t latency_us = 0;  // first transmit -> response (or failure)
  std::vector<std::uint8_t> response;
};

class LiveClient {
 public:
  // Production: opens an ephemeral loopback SysUdpSocket and uses the real
  // steady clock.
  ECSDNS_NONDETERMINISTIC_OK explicit LiveClient(LiveClientConfig config);
  // Tests: injected socket and clock (MockUdpSocket + FakeClock makes every
  // timeout/retry schedule exactly reproducible). Note exchange() blocks on
  // wall progress, so FakeClock-driven tests use submit()/poll() directly.
  LiveClient(LiveClientConfig config, netsim::UdpSocket& socket,
             MonotonicClock& clock);

  // Queues one query (bytes are copied; the wire ID must be unique among
  // in-flight queries) and transmits it. Returns false when the in-flight
  // budget is exhausted — the caller polls and resubmits.
  bool submit(std::span<const std::uint8_t> query, std::uint64_t tag);

  // One deterministic pass: optionally waits up to `max_wait_ms` for
  // readability (clamped to the earliest retransmit deadline), drains the
  // socket, matches responses to slots, then expires overdue slots
  // (retransmitting or failing them). Appends completions to `out`; returns
  // how many were appended. Never loops on virtual time, so a FakeClock
  // test advances the clock between calls and observes each step.
  std::size_t poll(std::vector<Completion>& out, int max_wait_ms = 0);

  // Convenience one-at-a-time exchange: submit, poll until this query
  // completes, return the response buffer (from pool(); caller releases) or
  // nullopt on timeout.
  std::optional<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> query);

  // Re-points the client at a (possibly just-started) server. Callers set
  // this before the first submit when the endpoint is not known at
  // construction time (e.g. an ephemeral-port server built afterwards).
  void set_server(const netsim::SocketAddress& server) { config_.server = server; }

  int in_flight() const noexcept { return in_flight_; }
  netsim::BufferPool& pool() noexcept { return pool_; }
  netsim::SocketAddress local_address() const { return socket_->local_address(); }

 private:
  struct Slot {
    bool in_use = false;
    std::uint16_t id = 0;       // wire ID (first two query bytes)
    int attempts = 0;           // transmits so far
    std::uint64_t first_sent_us = 0;
    std::uint64_t deadline_us = 0;
    std::uint64_t tag = 0;
    std::vector<std::uint8_t> query;  // capacity reused across queries
  };

  void init(const LiveClientConfig& config);
  // Transmits slot.query; EINTR retried, EAGAIN left to the retransmit
  // timer.
  void transmit(Slot& slot);
  Slot* match_id(std::uint16_t id);
  void expire(std::uint64_t now, std::vector<Completion>& out,
              std::size_t& completed);

  LiveClientConfig config_;
  std::unique_ptr<SysUdpSocket> owned_socket_;
  SteadyClock owned_clock_;
  netsim::UdpSocket* socket_ = nullptr;
  MonotonicClock* clock_ = nullptr;

  std::vector<Slot> slots_;
  int in_flight_ = 0;
  std::uint64_t next_tag_ = 1;  // exchange()'s internal tags

  std::vector<std::vector<std::uint8_t>> rx_storage_;
  std::vector<netsim::RecvSlot> recv_slots_;
  std::vector<Completion> exchange_scratch_;
  netsim::BufferPool pool_;

  struct Metrics {
    obs::CounterHandle queries;
    obs::CounterHandle responses;
    obs::CounterHandle retries;
    obs::CounterHandle timeouts;
    obs::CounterHandle unmatched;
    obs::CounterHandle send_eagain;
    obs::CounterHandle eintr;
    obs::HistogramHandle latency_us;
  } metrics_;
};

// QueryTransport over a LiveClient: StubClient (and Scanner) run unchanged
// over real sockets. The server address argument is ignored — a LiveClient
// points at exactly one live endpoint (config.server), which is what the
// loopback harness needs.
class LiveTransport final : public resolver::QueryTransport {
 public:
  explicit LiveTransport(LiveClient& client) : client_(client) {}

  std::optional<std::vector<std::uint8_t>> exchange(
      const dnscore::IpAddress& /*server*/,
      std::span<const std::uint8_t> query) override {
    return client_.exchange(query);
  }

  netsim::BufferPool& pool() override { return client_.pool(); }

 private:
  LiveClient& client_;
};

}  // namespace ecsdns::live
