#include "live/client.h"

#include <algorithm>

namespace ecsdns::live {

using netsim::IoStatus;
using netsim::RecvSlot;
using netsim::SendSlot;

LiveClient::LiveClient(LiveClientConfig config) : config_(std::move(config)) {
  SysUdpSocket::Options opts;
  opts.bind = netsim::SocketAddress{dnscore::IpAddress::v4(127, 0, 0, 1), 0};
  owned_socket_ = SysUdpSocket::open(opts);
  socket_ = owned_socket_.get();
  clock_ = &owned_clock_;
  init(config_);
}

LiveClient::LiveClient(LiveClientConfig config, netsim::UdpSocket& socket,
                       MonotonicClock& clock)
    : config_(std::move(config)), socket_(&socket), clock_(&clock) {
  init(config_);
}

void LiveClient::init(const LiveClientConfig& config) {
  slots_.resize(static_cast<std::size_t>(std::max(config.max_in_flight, 1)));
  const auto batch = static_cast<std::size_t>(std::max(config.batch, 1));
  rx_storage_.resize(batch);
  recv_slots_.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    rx_storage_[i].resize(config.recv_buffer_bytes);
    recv_slots_[i].buffer = std::span<std::uint8_t>(rx_storage_[i]);
  }
  auto& reg = obs::MetricsRegistry::global();
  metrics_.queries = obs::CounterHandle(reg.counter("live.client.queries"));
  metrics_.responses = obs::CounterHandle(reg.counter("live.client.responses"));
  metrics_.retries = obs::CounterHandle(reg.counter("live.client.retries"));
  metrics_.timeouts = obs::CounterHandle(reg.counter("live.client.timeouts"));
  metrics_.unmatched = obs::CounterHandle(reg.counter("live.client.unmatched"));
  metrics_.send_eagain = obs::CounterHandle(reg.counter("live.client.send_eagain"));
  metrics_.eintr = obs::CounterHandle(reg.counter("live.client.eintr"));
  metrics_.latency_us =
      obs::HistogramHandle(reg.histogram("live.client.latency_us"));
}

bool LiveClient::submit(std::span<const std::uint8_t> query, std::uint64_t tag) {
  if (query.size() < 2) return false;
  if (in_flight_ >= static_cast<int>(slots_.size())) return false;
  Slot* slot = nullptr;
  for (auto& s : slots_) {
    if (!s.in_use) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) return false;

  slot->in_use = true;
  slot->id = static_cast<std::uint16_t>((static_cast<std::uint16_t>(query[0]) << 8) |
                                        query[1]);
  slot->attempts = 0;
  slot->tag = tag;
  slot->query.assign(query.begin(), query.end());  // capacity reused
  const std::uint64_t now = clock_->now_us();
  slot->first_sent_us = now;
  slot->deadline_us = now + config_.timeout_us;
  ++in_flight_;
  metrics_.queries.inc();
  transmit(*slot);
  return true;
}

void LiveClient::transmit(Slot& slot) {
  ++slot.attempts;
  const SendSlot out{std::span<const std::uint8_t>(slot.query), config_.server};
  for (;;) {
    std::size_t sent = 0;
    const IoStatus status =
        socket_->send_batch(std::span<const SendSlot>(&out, 1), sent);
    if (status == IoStatus::kInterrupted) {
      metrics_.eintr.inc();
      continue;  // injections are finite; real EINTR storms end
    }
    if (sent == 0 && status != IoStatus::kError) {
      // Socket buffer full: the retransmit timer recovers the query, so
      // treat the lost transmit like network loss instead of blocking.
      metrics_.send_eagain.inc();
    }
    return;
  }
}

LiveClient::Slot* LiveClient::match_id(std::uint16_t id) {
  // Linear scan: max_in_flight is small (tens), and slots are a flat array.
  for (auto& s : slots_) {
    if (s.in_use && s.id == id) return &s;
  }
  return nullptr;
}

std::size_t LiveClient::poll(std::vector<Completion>& out, int max_wait_ms) {
  std::size_t completed = 0;
  std::uint64_t now = clock_->now_us();

  if (max_wait_ms != 0) {
    // Clamp the wait to the earliest retransmit deadline so expiry is not
    // delayed past it.
    std::int64_t wait = max_wait_ms;
    for (const auto& s : slots_) {
      if (!s.in_use) continue;
      const std::int64_t until_ms =
          s.deadline_us > now
              ? static_cast<std::int64_t>((s.deadline_us - now) / 1000) + 1
              : 0;
      wait = std::min(wait, until_ms);
    }
    if (wait > 0) {
      const IoStatus status = socket_->wait_readable(static_cast<int>(wait));
      if (status == IoStatus::kInterrupted) metrics_.eintr.inc();
    }
    now = clock_->now_us();
  }

  // Drain everything readable right now.
  for (;;) {
    std::size_t received = 0;
    const IoStatus status = socket_->recv_batch(recv_slots_, received);
    if (status == IoStatus::kInterrupted) {
      metrics_.eintr.inc();
      continue;
    }
    if (status != IoStatus::kOk || received == 0) break;
    for (std::size_t i = 0; i < received; ++i) {
      const RecvSlot& rx = recv_slots_[i];
      if (rx.truncated || rx.length < 2) {
        metrics_.unmatched.inc();
        continue;
      }
      const auto id = static_cast<std::uint16_t>(
          (static_cast<std::uint16_t>(rx.buffer[0]) << 8) | rx.buffer[1]);
      Slot* slot = match_id(id);
      if (slot == nullptr) {
        // A duplicate (answered retransmit) or stray datagram.
        metrics_.unmatched.inc();
        continue;
      }
      Completion c;
      c.tag = slot->tag;
      c.ok = true;
      c.latency_us = now >= slot->first_sent_us ? now - slot->first_sent_us : 0;
      c.response = pool_.acquire();
      c.response.assign(rx.buffer.begin(),
                        rx.buffer.begin() + static_cast<std::ptrdiff_t>(rx.length));
      metrics_.responses.inc();
      metrics_.latency_us.observe(c.latency_us);
      slot->in_use = false;
      --in_flight_;
      out.push_back(std::move(c));
      ++completed;
    }
    if (received < recv_slots_.size()) break;  // socket drained
  }

  expire(now, out, completed);
  return completed;
}

void LiveClient::expire(std::uint64_t now, std::vector<Completion>& out,
                        std::size_t& completed) {
  for (auto& s : slots_) {
    if (!s.in_use || s.deadline_us > now) continue;
    if (s.attempts < config_.max_attempts) {
      metrics_.retries.inc();
      s.deadline_us = now + config_.timeout_us;
      transmit(s);
      continue;
    }
    Completion c;
    c.tag = s.tag;
    c.ok = false;
    c.latency_us = now >= s.first_sent_us ? now - s.first_sent_us : 0;
    metrics_.timeouts.inc();
    s.in_use = false;
    --in_flight_;
    out.push_back(std::move(c));
    ++completed;
  }
}

std::optional<std::vector<std::uint8_t>> LiveClient::exchange(
    std::span<const std::uint8_t> query) {
  const std::uint64_t tag = next_tag_++;
  if (!submit(query, tag)) return std::nullopt;
  for (;;) {
    exchange_scratch_.clear();
    poll(exchange_scratch_, /*max_wait_ms=*/10);
    for (auto& c : exchange_scratch_) {
      if (c.tag == tag) {
        if (!c.ok) return std::nullopt;
        return std::move(c.response);
      }
      // A completion for some other in-flight query (callers mixing
      // exchange() with submit() drain those via their own poll loop);
      // recycle its buffer.
      pool_.release(std::move(c.response));
    }
  }
}

}  // namespace ecsdns::live
