// A real nonblocking UDP socket behind the netsim::UdpSocket seam.
//
// This file (with udp_server/client) is the live side of the determinism
// boundary: everything here talks to the kernel and is explicitly
// ECSDNS_NONDETERMINISTIC_OK. The simulator core never includes it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dnscore/annotations.h"
#include "netsim/socket.h"

// recvmmsg/sendmmsg scatter-gather bookkeeping (filled per batch, capacity
// retained across calls).
struct mmsghdr;
struct iovec;
struct sockaddr_in;

namespace ecsdns::live {

class SysUdpSocket final : public netsim::UdpSocket {
 public:
  struct Options {
    // IPv4 only for now (the paper's live measurements are v4). Port 0
    // binds an ephemeral port, resolved into local_address().
    netsim::SocketAddress bind{};
    // SO_REUSEPORT: the kernel load-balances datagrams across every socket
    // bound to the same (addr, port) — one socket per server shard.
    bool reuse_port = false;
    // SO_RCVBUF / SO_SNDBUF overrides; 0 keeps the system default.
    int recv_buffer_bytes = 0;
    int send_buffer_bytes = 0;
  };

  // Opens, configures, and binds; throws std::system_error on any failure.
  ECSDNS_NONDETERMINISTIC_OK static std::unique_ptr<SysUdpSocket> open(
      const Options& options);

  ~SysUdpSocket() override;
  SysUdpSocket(const SysUdpSocket&) = delete;
  SysUdpSocket& operator=(const SysUdpSocket&) = delete;

  ECSDNS_NONDETERMINISTIC_OK netsim::IoStatus recv_batch(
      std::span<netsim::RecvSlot> slots, std::size_t& received) override;
  ECSDNS_NONDETERMINISTIC_OK netsim::IoStatus send_batch(
      std::span<const netsim::SendSlot> slots, std::size_t& sent) override;
  // poll(2) on the fd; kWouldBlock on timeout.
  ECSDNS_NONDETERMINISTIC_OK netsim::IoStatus wait_readable(int timeout_ms) override;

  netsim::SocketAddress local_address() const override { return local_; }
  int native_handle() const override { return fd_; }

 private:
  explicit SysUdpSocket(int fd);
  void ensure_batch_capacity(std::size_t n);

  int fd_ = -1;
  netsim::SocketAddress local_;
  std::vector<::mmsghdr> hdrs_;
  std::vector<::iovec> iovs_;
  std::vector<::sockaddr_in> addrs_;
};

}  // namespace ecsdns::live
