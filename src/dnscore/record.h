// Question and resource-record structures (RFC 1035 §4.1.2, §4.1.3).
#pragma once

#include <cstdint>
#include <string>

#include "dnscore/name.h"
#include "dnscore/rdata.h"
#include "dnscore/types.h"

namespace ecsdns::dnscore {

struct Question {
  Name qname;
  RRType qtype = RRType::A;
  RRClass qclass = RRClass::IN;

  bool operator==(const Question&) const = default;

  void serialize(WireWriter& writer,
                 Name::CompressionTable* table = nullptr) const;
  static Question parse(WireReader& reader);
  std::string to_string() const;
};

struct ResourceRecord {
  Name name;
  RRType type = RRType::A;
  RRClass rrclass = RRClass::IN;
  std::uint32_t ttl = 0;
  Rdata rdata;

  bool operator==(const ResourceRecord&) const = default;

  static ResourceRecord make_a(const Name& name, std::uint32_t ttl,
                               const IpAddress& address);
  static ResourceRecord make_aaaa(const Name& name, std::uint32_t ttl,
                                  const IpAddress& address);
  static ResourceRecord make_cname(const Name& name, std::uint32_t ttl,
                                   const Name& target);
  static ResourceRecord make_ns(const Name& name, std::uint32_t ttl,
                                const Name& nameserver);
  static ResourceRecord make_txt(const Name& name, std::uint32_t ttl,
                                 const std::string& text);
  static ResourceRecord make_soa(const Name& name, std::uint32_t ttl,
                                 const Name& mname, const Name& rname,
                                 std::uint32_t serial, std::uint32_t minimum);

  // Serializes the record; when `table` is non-null the owner name is
  // compressed against it (rdata names stay uncompressed, which is always
  // legal).
  void serialize(WireWriter& writer,
                 Name::CompressionTable* table = nullptr) const;
  static ResourceRecord parse(WireReader& reader);
  // Zone-file-style line: "name ttl IN TYPE rdata".
  std::string to_string() const;
};

}  // namespace ecsdns::dnscore
