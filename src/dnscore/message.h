// The complete DNS message (RFC 1035 §4.1) with EDNS0 integration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnscore/annotations.h"
#include "dnscore/ecs.h"
#include "dnscore/edns.h"
#include "dnscore/record.h"

namespace ecsdns::dnscore {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::QUERY;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = true;   // recursion desired
  bool ra = false;  // recursion available
  bool ad = false;  // authentic data (RFC 4035)
  bool cd = false;  // checking disabled
  RCode rcode = RCode::NOERROR;

  bool operator==(const Header&) const = default;
};

// A parsed or under-construction DNS message. The OPT pseudo-RR is lifted
// out of the additional section into `opt`, so `additional` holds only real
// records; serialization appends OPT last (RFC 6891 §6.1.1).
class Message {
 public:
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additional;
  std::optional<OptRecord> opt;

  // --- construction helpers ---
  static Message make_query(std::uint16_t id, const Name& qname, RRType qtype);
  // Builds a response skeleton from a query: copies id, question, opcode,
  // sets QR/RA, and echoes EDNS presence with an empty option list.
  static Message make_response(const Message& query);

  const Question& question() const;
  bool is_query() const noexcept { return !header.qr; }
  bool is_response() const noexcept { return header.qr; }

  // --- ECS convenience ---
  // The decoded ECS option, if an OPT record with one is present.
  std::optional<EcsOption> ecs() const;
  // Installs (or replaces) the ECS option, creating the OPT record if
  // needed.
  void set_ecs(const EcsOption& ecs);
  // Removes the ECS option; keeps the OPT record (a resolver that strips
  // ECS still speaks EDNS). Returns true if one was removed.
  bool clear_ecs();
  // Pure presence probe on the OPT option list — no payload decode, no
  // allocation. Note: unlike ecs(), this returns true for a present but
  // structurally unparseable option (ecs() throws on those).
  bool has_ecs() const noexcept {
    return opt && opt->find_option(EdnsOptionCode::ECS) != nullptr;
  }

  // First A/AAAA address in the answer section, if any — the "first answer"
  // the paper's Table 2 methodology pings.
  std::optional<IpAddress> first_address() const;
  // All A/AAAA addresses in the answer section.
  std::vector<IpAddress> all_addresses() const;
  // Minimum answer-section TTL (used as the cache lifetime); nullopt when
  // the answer section is empty.
  std::optional<std::uint32_t> min_answer_ttl() const;

  // --- wire ---
  // `compress` applies RFC 1035 §4.1.4 name compression to owner names,
  // as production servers do; pass false for byte layouts that are easier
  // to inspect by hand.
  ECSDNS_MAY_BLOCK std::vector<std::uint8_t> serialize(bool compress = true) const;
  // Serializes into a caller-supplied writer — the pooled-buffer hot path
  // (no fresh vector per packet). The writer must be empty: compression
  // pointer offsets are writer-relative, so the message has to start at
  // offset 0. Steady-state noalloc: appends reuse pooled capacity and the
  // compression table is bounded by the message's owner names.
  ECSDNS_NOALLOC void serialize_into(WireWriter& writer, bool compress = true) const;
  // Compressed serialization against a caller-owned table (cleared on
  // entry, capacity retained): the per-shard dispatch path reuses one table
  // for every packet so compression itself stops allocating once the
  // table's capacity has converged.
  ECSDNS_NOALLOC void serialize_into(WireWriter& writer,
                                     Name::CompressionTable& table) const;
  ECSDNS_MAY_BLOCK static Message parse(std::span<const std::uint8_t> wire);

  // Multi-line dig-style rendering for logs and examples.
  std::string to_string() const;

 private:
  void serialize_body(WireWriter& writer, Name::CompressionTable* table) const;
};

}  // namespace ecsdns::dnscore
