// Open-addressing hash map with flat storage.
//
// The node-based std::unordered_map costs one heap allocation per entry and
// a pointer chase per probe; under the §7 cache experiments that allocation
// traffic dominates the replay loop. FlatHashMap stores all slots in ONE
// allocation (a hash array and a slot array carved out of the same block),
// probes linearly, and deletes tombstone-free by backward-shifting the
// displaced run (Knuth's Algorithm R), so the table never degrades and
// never needs a tombstone-purging rehash.
//
// Deliberate scope limits, matching how the resolver cache and the trace
// replay actually use it:
//   * pointers/iterators invalidate on EVERY insert or erase (backward
//     shift relocates slots; growth reallocates) — read everything you need
//     from a found slot before mutating the table;
//   * iteration order is unspecified and changes across rehashes — callers
//     must only fold order-independent quantities (counts, sums) out of
//     for_each/erase_if, which is what keeps sharded results bit-identical;
//   * Key and Value must be movable; the stored hash is computed once per
//     insert and reused for growth, probing, and backward-shift homing, so
//     hashing a Key (e.g. Name) never happens twice for resident entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "dnscore/contracts.h"
#include "dnscore/hashing.h"

namespace ecsdns::dnscore {

template <class Key, class Value, class Hash>
class FlatHashMap {
 public:
  struct Slot {
    Key key;
    Value value;
  };

  FlatHashMap() = default;
  explicit FlatHashMap(std::size_t expected) { reserve(expected); }

  FlatHashMap(FlatHashMap&& other) noexcept { swap(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      destroy();
      swap(other);
    }
    return *this;
  }
  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;

  ~FlatHashMap() { destroy(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  // Grows so `expected` entries fit without rehashing.
  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    // Max load factor 3/4: grow while expected exceeds 3/4 of cap.
    while (expected * 4 > cap * 3) cap <<= 1;
    if (cap > capacity_) rehash(cap);
  }

  Value* find(const Key& key) noexcept {
    const std::size_t i = find_index(key);
    return i == kNotFound ? nullptr : &slots_[i].value;
  }
  const Value* find(const Key& key) const noexcept {
    const std::size_t i = find_index(key);
    return i == kNotFound ? nullptr : &slots_[i].value;
  }
  bool contains(const Key& key) const noexcept {
    return find_index(key) != kNotFound;
  }

  // Heterogeneous lookup: probe with a precomputed raw hash and an equality
  // predicate over the stored key, so callers can look up by the pieces of a
  // composite key without materializing one (e.g. without copying a Name).
  // `raw_hash` must equal Hash{}(key) for the key being sought, and `eq`
  // must agree with Key::operator== for hash-equal candidates.
  template <class Eq>
  Value* find_with(std::uint64_t raw_hash, Eq&& eq) noexcept {
    const std::size_t i = find_index_with(raw_hash, eq);
    return i == kNotFound ? nullptr : &slots_[i].value;
  }
  template <class Eq>
  const Value* find_with(std::uint64_t raw_hash, Eq&& eq) const noexcept {
    const std::size_t i = find_index_with(raw_hash, eq);
    return i == kNotFound ? nullptr : &slots_[i].value;
  }

  // Inserts or overwrites. Returns {slot, inserted}; the pointer is valid
  // only until the next mutation.
  template <class V>
  std::pair<Slot*, bool> insert_or_assign(const Key& key, V&& value) {
    grow_if_needed();
    const std::uint64_t h = adjusted_hash(key);
    std::size_t i = static_cast<std::size_t>(h) & mask();
    for (;;) {
      if (hashes_[i] == kEmpty) {
        new (&slots_[i]) Slot{key, Value(std::forward<V>(value))};
        hashes_[i] = h;
        ++size_;
        return {&slots_[i], true};
      }
      if (hashes_[i] == h && slots_[i].key == key) {
        slots_[i].value = Value(std::forward<V>(value));
        return {&slots_[i], false};
      }
      i = (i + 1) & mask();
    }
  }

  // Finds `key`, default-constructing its value first if absent.
  Value& operator[](const Key& key) {
    grow_if_needed();
    const std::uint64_t h = adjusted_hash(key);
    std::size_t i = static_cast<std::size_t>(h) & mask();
    for (;;) {
      if (hashes_[i] == kEmpty) {
        new (&slots_[i]) Slot{key, Value{}};
        hashes_[i] = h;
        ++size_;
        return slots_[i].value;
      }
      if (hashes_[i] == h && slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask();
    }
  }

  // Tombstone-free removal: empty the slot, then backward-shift every
  // displaced successor whose home position cannot reach it through the new
  // hole (Knuth 6.4 Algorithm R). The table is exactly as if the key had
  // never been inserted, so probe lengths never grow with churn.
  bool erase(const Key& key) {
    std::size_t i = find_index(key);
    if (i == kNotFound) return false;
    slots_[i].~Slot();
    hashes_[i] = kEmpty;
    --size_;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask();
      if (hashes_[j] == kEmpty) break;
      const std::size_t home = static_cast<std::size_t>(hashes_[j]) & mask();
      // Leave slot j alone iff its home lies cyclically within (i, j]: the
      // element is still reachable from home without crossing the hole.
      const bool reachable =
          i < j ? (home > i && home <= j) : (home > i || home <= j);
      if (!reachable) {
        new (&slots_[i]) Slot(std::move(slots_[j]));
        hashes_[i] = hashes_[j];
        slots_[j].~Slot();
        hashes_[j] = kEmpty;
        i = j;
      }
    }
    return true;
  }

  // Applies `fn(slot)` to every live entry. The callback may mutate the
  // value but must not mutate the table.
  template <class Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] != kEmpty) fn(slots_[i]);
    }
  }
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] != kEmpty) fn(const_cast<const Slot&>(slots_[i]));
    }
  }

  // Erases every entry matching `pred(slot)`; returns how many went.
  // Backward shift relocates survivors mid-scan, so matches are collected
  // first and erased by key afterwards — the predicate sees each live entry
  // exactly once.
  template <class Pred>
  std::size_t erase_if(Pred&& pred) {
    std::vector<Key> doomed;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] != kEmpty && pred(const_cast<const Slot&>(slots_[i]))) {
        doomed.push_back(slots_[i].key);
      }
    }
    for (const Key& key : doomed) erase(key);
    return doomed.size();
  }

  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] != kEmpty) {
        slots_[i].~Slot();
        hashes_[i] = kEmpty;
      }
    }
    size_ = 0;
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 8;

  std::size_t mask() const noexcept { return capacity_ - 1; }

  // The stored hash doubles as the occupancy marker, so the (astronomically
  // rare) true hash of 0 is remapped to a fixed non-zero constant. Probing
  // and backward-shift homing both use the adjusted value consistently.
  static std::uint64_t remap_zero(std::uint64_t h) noexcept {
    return h == kEmpty ? 0x9e3779b97f4a7c15ull : h;
  }
  std::uint64_t adjusted_hash(const Key& key) const noexcept {
    return remap_zero(static_cast<std::uint64_t>(Hash{}(key)));
  }

  std::size_t find_index(const Key& key) const noexcept {
    return find_index_with(static_cast<std::uint64_t>(Hash{}(key)),
                           [&key](const Key& k) { return k == key; });
  }

  template <class Eq>
  std::size_t find_index_with(std::uint64_t raw_hash, Eq&& eq) const noexcept {
    if (capacity_ == 0) return kNotFound;
    const std::uint64_t h = remap_zero(raw_hash);
    std::size_t i = static_cast<std::size_t>(h) & mask();
    for (;;) {
      if (hashes_[i] == kEmpty) return kNotFound;
      if (hashes_[i] == h && eq(slots_[i].key)) return i;
      i = (i + 1) & mask();
    }
  }

  void grow_if_needed() {
    if (capacity_ == 0) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > capacity_ * 3) {
      rehash(capacity_ * 2);
    }
  }

  // One block holds both arrays: [hash x cap][pad][Slot x cap].
  static std::size_t slots_offset(std::size_t cap) noexcept {
    const std::size_t raw = cap * sizeof(std::uint64_t);
    const std::size_t align = alignof(Slot);
    return (raw + align - 1) / align * align;
  }

  void rehash(std::size_t new_capacity) {
    ECSDNS_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    static_assert(alignof(Slot) <= alignof(std::max_align_t),
                  "over-aligned slots need an aligned allocation path");
    const std::size_t offset = slots_offset(new_capacity);
    // new[] of char returns max_align_t-aligned storage, which covers Slot.
    auto block = std::unique_ptr<unsigned char[]>(
        new unsigned char[offset + new_capacity * sizeof(Slot)]);
    auto* new_hashes = reinterpret_cast<std::uint64_t*>(block.get());
    auto* new_slots = reinterpret_cast<Slot*>(block.get() + offset);
    for (std::size_t i = 0; i < new_capacity; ++i) new_hashes[i] = kEmpty;

    const std::size_t new_mask = new_capacity - 1;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] == kEmpty) continue;
      std::size_t j = static_cast<std::size_t>(hashes_[i]) & new_mask;
      while (new_hashes[j] != kEmpty) j = (j + 1) & new_mask;
      new (&new_slots[j]) Slot(std::move(slots_[i]));
      new_hashes[j] = hashes_[i];
      slots_[i].~Slot();
    }

    block_ = std::move(block);
    hashes_ = new_hashes;
    slots_ = new_slots;
    capacity_ = new_capacity;
  }

  void destroy() {
    clear();
    block_.reset();
    hashes_ = nullptr;
    slots_ = nullptr;
    capacity_ = 0;
  }

  void swap(FlatHashMap& other) noexcept {
    std::swap(block_, other.block_);
    std::swap(hashes_, other.hashes_);
    std::swap(slots_, other.slots_);
    std::swap(capacity_, other.capacity_);
    std::swap(size_, other.size_);
  }

  std::unique_ptr<unsigned char[]> block_;
  std::uint64_t* hashes_ = nullptr;
  Slot* slots_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ecsdns::dnscore
