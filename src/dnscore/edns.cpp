#include "dnscore/edns.h"

#include <algorithm>
#include <utility>

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {

const EdnsOption* OptRecord::find_option(EdnsOptionCode code) const noexcept {
  const auto wanted = static_cast<std::uint16_t>(code);
  for (const auto& opt : options) {
    if (opt.code == wanted) return &opt;
  }
  return nullptr;
}

EdnsOption* OptRecord::find_option(EdnsOptionCode code) noexcept {
  return const_cast<EdnsOption*>(std::as_const(*this).find_option(code));
}

EdnsOption& OptRecord::ensure_option(EdnsOptionCode code) {
  const auto wanted = static_cast<std::uint16_t>(code);
  std::size_t keep = options.size();
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (options[i].code == wanted) {
      keep = i;
      break;
    }
  }
  if (keep == options.size()) {
    options.push_back(EdnsOption{wanted, {}});
    return options.back();
  }
  // Collapse duplicates onto the first slot so set-style callers converge
  // on exactly one option of this code.
  options.erase(std::remove_if(options.begin() + static_cast<std::ptrdiff_t>(keep) + 1,
                               options.end(),
                               [wanted](const EdnsOption& o) { return o.code == wanted; }),
                options.end());
  return options[keep];
}

std::size_t OptRecord::remove_option(EdnsOptionCode code) {
  const auto wanted = static_cast<std::uint16_t>(code);
  const auto removed = std::erase_if(
      options, [wanted](const EdnsOption& o) { return o.code == wanted; });
  return removed;
}

void OptRecord::serialize(WireWriter& writer) const {
  serialize(writer, extended_rcode);
}

void OptRecord::serialize(WireWriter& writer, std::uint8_t extended_rcode_bits) const {
  writer.u8(0);  // root owner name
  writer.u16(static_cast<std::uint16_t>(RRType::OPT));
  writer.u16(udp_payload_size);
  std::uint32_t ttl = static_cast<std::uint32_t>(extended_rcode_bits) << 24;
  ttl |= static_cast<std::uint32_t>(version) << 16;
  if (dnssec_ok) ttl |= 0x8000u;
  writer.u32(ttl);
  const std::size_t rdlen_at = writer.reserve_u16();
  const std::size_t rdata_start = writer.size();
  for (const auto& opt : options) {
    ECSDNS_DCHECK(opt.payload.size() <= 0xffff);
    writer.u16(opt.code);
    writer.u16(static_cast<std::uint16_t>(opt.payload.size()));
    writer.bytes({opt.payload.data(), opt.payload.size()});
  }
  ECSDNS_DCHECK(writer.size() - rdata_start <= 0xffff);
  writer.patch_u16(rdlen_at, static_cast<std::uint16_t>(writer.size() - rdata_start));
}

OptRecord OptRecord::parse_body(WireReader& reader) {
  OptRecord opt;
  opt.udp_payload_size = reader.u16();
  const std::uint32_t ttl = reader.u32();
  opt.extended_rcode = static_cast<std::uint8_t>(ttl >> 24);
  opt.version = static_cast<std::uint8_t>((ttl >> 16) & 0xff);
  opt.dnssec_ok = (ttl & 0x8000u) != 0;
  const std::uint16_t rdlength = reader.u16();
  const std::size_t end = reader.offset() + rdlength;
  while (reader.offset() < end) {
    if (end - reader.offset() < 4) {
      throw WireFormatError("truncated EDNS option header");
    }
    EdnsOption o;
    o.code = reader.u16();
    const std::uint16_t optlen = reader.u16();
    if (reader.offset() + optlen > end) {
      throw WireFormatError("EDNS option overruns OPT rdata");
    }
    const auto raw = reader.bytes(optlen);
    o.payload.assign(raw.begin(), raw.end());
    opt.options.push_back(std::move(o));
  }
  // Each TLV was bounds-checked against `end`, so a successful parse lands
  // exactly on the declared RDLENGTH boundary.
  ECSDNS_DCHECK(reader.offset() == end);
  return opt;
}

}  // namespace ecsdns::dnscore
