#include "dnscore/rdata.h"

#include <array>

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {
namespace {

// Guards against name-bearing rdata whose names (via compression) extend
// past the declared RDLENGTH.
struct RdataBounds {
  std::size_t end;
  void check(const WireReader& reader, const char* what) const {
    ECSDNS_DCHECK(end <= reader.size() + 0xffffu);  // offset + u16 rdlength
    if (reader.offset() > end) {
      throw WireFormatError(std::string("rdata overruns RDLENGTH in ") + what);
    }
  }
};

}  // namespace

RRType rdata_type(const Rdata& rdata) {
  return std::visit(
      [](const auto& r) -> RRType {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) return RRType::A;
        else if constexpr (std::is_same_v<T, AaaaRdata>) return RRType::AAAA;
        else if constexpr (std::is_same_v<T, NsRdata>) return RRType::NS;
        else if constexpr (std::is_same_v<T, CnameRdata>) return RRType::CNAME;
        else if constexpr (std::is_same_v<T, PtrRdata>) return RRType::PTR;
        else if constexpr (std::is_same_v<T, MxRdata>) return RRType::MX;
        else if constexpr (std::is_same_v<T, TxtRdata>) return RRType::TXT;
        else if constexpr (std::is_same_v<T, SoaRdata>) return RRType::SOA;
        else return static_cast<RRType>(r.type);
      },
      rdata);
}

Rdata parse_rdata(RRType type, std::uint16_t rdlength, WireReader& reader) {
  const RdataBounds bounds{reader.offset() + rdlength};
  switch (type) {
    case RRType::A: {
      if (rdlength != 4) throw WireFormatError("A rdata must be 4 octets");
      const auto b = reader.bytes(4);
      return ARdata{IpAddress::v4(b[0], b[1], b[2], b[3])};
    }
    case RRType::AAAA: {
      if (rdlength != 16) throw WireFormatError("AAAA rdata must be 16 octets");
      const auto b = reader.bytes(16);
      std::array<std::uint8_t, 16> bytes{};
      std::copy(b.begin(), b.end(), bytes.begin());
      return AaaaRdata{IpAddress::v6(bytes)};
    }
    case RRType::NS: {
      NsRdata r{Name::parse(reader)};
      bounds.check(reader, "NS");
      return r;
    }
    case RRType::CNAME: {
      CnameRdata r{Name::parse(reader)};
      bounds.check(reader, "CNAME");
      return r;
    }
    case RRType::PTR: {
      PtrRdata r{Name::parse(reader)};
      bounds.check(reader, "PTR");
      return r;
    }
    case RRType::MX: {
      MxRdata r;
      r.preference = reader.u16();
      r.exchange = Name::parse(reader);
      bounds.check(reader, "MX");
      return r;
    }
    case RRType::TXT: {
      TxtRdata r;
      std::size_t consumed = 0;
      while (consumed < rdlength) {
        const std::uint8_t len = reader.u8();
        const auto raw = reader.bytes(len);
        r.strings.emplace_back(reinterpret_cast<const char*>(raw.data()), raw.size());
        consumed += 1u + len;
      }
      if (consumed != rdlength) throw WireFormatError("TXT rdata length mismatch");
      return r;
    }
    case RRType::SOA: {
      SoaRdata r;
      r.mname = Name::parse(reader);
      r.rname = Name::parse(reader);
      r.serial = reader.u32();
      r.refresh = reader.u32();
      r.retry = reader.u32();
      r.expire = reader.u32();
      r.minimum = reader.u32();
      bounds.check(reader, "SOA");
      return r;
    }
    default: {
      const auto raw = reader.bytes(rdlength);
      return RawRdata{static_cast<std::uint16_t>(type),
                      std::vector<std::uint8_t>(raw.begin(), raw.end())};
    }
  }
}

void serialize_rdata(const Rdata& rdata, WireWriter& writer) {
  std::visit(
      [&writer](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          writer.bytes({r.address.bytes().data(), 4});
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          writer.bytes({r.address.bytes().data(), 16});
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          r.nameserver.serialize(writer);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          r.target.serialize(writer);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          r.target.serialize(writer);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          writer.u16(r.preference);
          r.exchange.serialize(writer);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : r.strings) {
            if (s.size() > 255) throw WireFormatError("TXT string exceeds 255 octets");
            writer.u8(static_cast<std::uint8_t>(s.size()));
            writer.bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
          }
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          r.mname.serialize(writer);
          r.rname.serialize(writer);
          writer.u32(r.serial);
          writer.u32(r.refresh);
          writer.u32(r.retry);
          writer.u32(r.expire);
          writer.u32(r.minimum);
        } else {
          writer.bytes({r.data.data(), r.data.size()});
        }
      },
      rdata);
}

std::string rdata_to_string(const Rdata& rdata) {
  return std::visit(
      [](const auto& r) -> std::string {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          return r.address.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          return r.address.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          return r.nameserver.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          return r.target.to_string();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          return r.target.to_string();
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          return std::to_string(r.preference) + " " + r.exchange.to_string();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          std::string out;
          for (const auto& s : r.strings) {
            if (!out.empty()) out.push_back(' ');
            out += '"' + s + '"';
          }
          return out;
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          return r.mname.to_string() + " " + r.rname.to_string() + " " +
                 std::to_string(r.serial) + " " + std::to_string(r.refresh) + " " +
                 std::to_string(r.retry) + " " + std::to_string(r.expire) + " " +
                 std::to_string(r.minimum);
        } else {
          return "\\# " + std::to_string(r.data.size()) + " " +
                 hex_dump({r.data.data(), r.data.size()});
        }
      },
      rdata);
}

}  // namespace ecsdns::dnscore
