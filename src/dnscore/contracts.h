// Invariant-checking macros for internal contracts.
//
// These are NOT input validation: untrusted bytes keep raising
// WireFormatError (or std::invalid_argument) so callers can handle them.
// Contracts assert what the code itself guarantees — cursor never passes the
// buffer, a Name constructed through validate() fits in 255 octets, a cache
// entry's scope never exceeds its family — and abort loudly when a refactor
// breaks one. libFuzzer and the sanitizer CI job treat that abort as a
// finding, which turns every documented invariant into a fuzzable oracle.
//
//   ECSDNS_CHECK(cond)       always active, aborts on violation
//   ECSDNS_DCHECK(cond)      active in Debug builds and whenever
//                            ECSDNS_ENABLE_CONTRACTS is defined (the
//                            sanitizer and fuzz builds define it); in plain
//                            Release builds it compiles to nothing but still
//                            type-checks its expression.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ecsdns::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ecsdns::detail

#define ECSDNS_CHECK(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ecsdns::detail::contract_failure("ECSDNS_CHECK", #cond,      \
                                               __FILE__, __LINE__))

#if !defined(NDEBUG) || defined(ECSDNS_ENABLE_CONTRACTS)
#define ECSDNS_CONTRACTS_ACTIVE 1
#define ECSDNS_DCHECK(cond)                                                \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ecsdns::detail::contract_failure("ECSDNS_DCHECK", #cond,     \
                                               __FILE__, __LINE__))
#else
#define ECSDNS_CONTRACTS_ACTIVE 0
// Compiled out, but the expression still parses so it cannot rot.
#define ECSDNS_DCHECK(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#endif
