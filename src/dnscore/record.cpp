#include "dnscore/record.h"

namespace ecsdns::dnscore {

void Question::serialize(WireWriter& writer, Name::CompressionTable* table) const {
  if (table != nullptr) {
    qname.serialize_compressed(writer, *table);
  } else {
    qname.serialize(writer);
  }
  writer.u16(static_cast<std::uint16_t>(qtype));
  writer.u16(static_cast<std::uint16_t>(qclass));
}

Question Question::parse(WireReader& reader) {
  Question q;
  q.qname = Name::parse(reader);
  q.qtype = static_cast<RRType>(reader.u16());
  q.qclass = static_cast<RRClass>(reader.u16());
  return q;
}

std::string Question::to_string() const {
  return qname.to_string() + " " + dnscore::to_string(qclass) + " " +
         dnscore::to_string(qtype);
}

ResourceRecord ResourceRecord::make_a(const Name& name, std::uint32_t ttl,
                                      const IpAddress& address) {
  if (!address.is_v4()) throw WireFormatError("A record requires an IPv4 address");
  return ResourceRecord{name, RRType::A, RRClass::IN, ttl, ARdata{address}};
}

ResourceRecord ResourceRecord::make_aaaa(const Name& name, std::uint32_t ttl,
                                         const IpAddress& address) {
  if (!address.is_v6()) throw WireFormatError("AAAA record requires an IPv6 address");
  return ResourceRecord{name, RRType::AAAA, RRClass::IN, ttl, AaaaRdata{address}};
}

ResourceRecord ResourceRecord::make_cname(const Name& name, std::uint32_t ttl,
                                          const Name& target) {
  return ResourceRecord{name, RRType::CNAME, RRClass::IN, ttl, CnameRdata{target}};
}

ResourceRecord ResourceRecord::make_ns(const Name& name, std::uint32_t ttl,
                                       const Name& nameserver) {
  return ResourceRecord{name, RRType::NS, RRClass::IN, ttl, NsRdata{nameserver}};
}

ResourceRecord ResourceRecord::make_txt(const Name& name, std::uint32_t ttl,
                                        const std::string& text) {
  return ResourceRecord{name, RRType::TXT, RRClass::IN, ttl, TxtRdata{{text}}};
}

ResourceRecord ResourceRecord::make_soa(const Name& name, std::uint32_t ttl,
                                        const Name& mname, const Name& rname,
                                        std::uint32_t serial, std::uint32_t minimum) {
  return ResourceRecord{name, RRType::SOA, RRClass::IN, ttl,
                        SoaRdata{mname, rname, serial, 7200, 3600, 1209600, minimum}};
}

void ResourceRecord::serialize(WireWriter& writer,
                               Name::CompressionTable* table) const {
  if (table != nullptr) {
    name.serialize_compressed(writer, *table);
  } else {
    name.serialize(writer);
  }
  writer.u16(static_cast<std::uint16_t>(type));
  writer.u16(static_cast<std::uint16_t>(rrclass));
  writer.u32(ttl);
  const std::size_t rdlen_at = writer.reserve_u16();
  const std::size_t start = writer.size();
  serialize_rdata(rdata, writer);
  writer.patch_u16(rdlen_at, static_cast<std::uint16_t>(writer.size() - start));
}

ResourceRecord ResourceRecord::parse(WireReader& reader) {
  ResourceRecord rr;
  rr.name = Name::parse(reader);
  rr.type = static_cast<RRType>(reader.u16());
  rr.rrclass = static_cast<RRClass>(reader.u16());
  rr.ttl = reader.u32();
  const std::uint16_t rdlength = reader.u16();
  const std::size_t end = reader.offset() + rdlength;
  rr.rdata = parse_rdata(rr.type, rdlength, reader);
  // Typed parsers consume exactly rdlength (checked internally); raw
  // fallback consumes it by construction. Normalize the cursor anyway so a
  // short typed parse cannot desynchronize the section walk.
  reader.seek(end);
  return rr;
}

std::string ResourceRecord::to_string() const {
  return name.to_string() + " " + std::to_string(ttl) + " " +
         dnscore::to_string(rrclass) + " " + dnscore::to_string(type) + " " +
         rdata_to_string(rdata);
}

}  // namespace ecsdns::dnscore
