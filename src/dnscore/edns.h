// EDNS0 (RFC 6891): the OPT pseudo-RR and its option list.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dnscore/types.h"
#include "dnscore/wire.h"

namespace ecsdns::dnscore {

// One EDNS option TLV. Typed options (like ECS) are encoded to/decoded from
// this generic form by their own modules.
struct EdnsOption {
  std::uint16_t code = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const EdnsOption&) const = default;
};

// The decoded OPT pseudo-RR. The OPT record abuses the RR fields: CLASS
// carries the requestor's UDP payload size and TTL packs the extended
// rcode, EDNS version, and DO bit.
struct OptRecord {
  std::uint16_t udp_payload_size = 4096;
  std::uint8_t extended_rcode = 0;  // upper 8 bits of the 12-bit rcode
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  std::vector<EdnsOption> options;

  bool operator==(const OptRecord&) const = default;

  // Returns the first option with `code`, if present.
  const EdnsOption* find_option(EdnsOptionCode code) const noexcept;
  EdnsOption* find_option(EdnsOptionCode code) noexcept;
  // Removes every option with `code`; returns how many were removed.
  std::size_t remove_option(EdnsOptionCode code);
  // Returns the option with `code`, creating an empty one if absent and
  // dropping any duplicates. The surviving slot keeps its payload capacity,
  // so refilling it on the packet path is allocation-free in steady state.
  EdnsOption& ensure_option(EdnsOptionCode code);

  // Serializes the full OPT RR (root name, TYPE=41, fields, options).
  void serialize(WireWriter& writer) const;
  // Same, but with the extended-rcode TTL bits overridden — lets
  // Message::serialize_into patch the response rcode without copying the
  // whole OptRecord per packet.
  void serialize(WireWriter& writer, std::uint8_t extended_rcode_bits) const;
  // Parses the body of an OPT RR; the caller has already consumed the root
  // name and TYPE and passes the remaining header fields via the reader.
  static OptRecord parse_body(WireReader& reader);
};

}  // namespace ecsdns::dnscore
