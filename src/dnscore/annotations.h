// Static-analysis annotation macros, consumed by scripts/ecstidy/.
//
// These expand to clang `annotate` attributes (visible to the libclang
// backend) and to nothing elsewhere — they never change codegen. The text
// backend recognizes the macro names directly, so the contracts are
// enforced under any toolchain. See docs/static_analysis.md.
//
//   ECSDNS_NOALLOC
//       This function and everything it (transitively) calls must not
//       allocate: no new-expressions, no container growth, no std::string
//       construction. Applied to the zero-copy packet path (MessageView,
//       BufferPool, serialize_into) and the bounded cache's eviction path,
//       where the perf gate's run.allocations counter enforces the same
//       contract dynamically. Amortized growth into pooled storage is the
//       only sanctioned exception, and each such site carries a justified
//       allow-comment (see docs/static_analysis.md for the syntax).
//
//   ECSDNS_MAY_BLOCK
//       The explicit slow-path boundary: this function may allocate,
//       take locks, or otherwise stall. Calling one from an
//       ECSDNS_NOALLOC context is itself a finding; the checker does not
//       descend further, so the boundary stays visible at the call site.
//
//   ECSDNS_NONDETERMINISTIC_OK
//       Output of this function may legitimately depend on wall-clock
//       time or unordered iteration (e.g. operator tooling that prints a
//       local timestamp). Exempts the function's body from det-clock and
//       det-iter. Never valid on anything that feeds committed results/
//       CSVs, metrics JSON, or the serial-equivalence oracle.
#pragma once

#if defined(__clang__)
#define ECSDNS_NOALLOC __attribute__((annotate("ecsdns::noalloc")))
#define ECSDNS_MAY_BLOCK __attribute__((annotate("ecsdns::may_block")))
#define ECSDNS_NONDETERMINISTIC_OK \
  __attribute__((annotate("ecsdns::nondeterministic_ok")))
#else
#define ECSDNS_NOALLOC
#define ECSDNS_MAY_BLOCK
#define ECSDNS_NONDETERMINISTIC_OK
#endif
