// IPv4/IPv6 addresses and prefixes.
//
// These live in dnscore because the DNS wire format itself carries addresses
// (A/AAAA rdata) and address prefixes (the RFC 7871 ECS option). Higher
// layers (netsim, resolver, cdn) reuse the same types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace ecsdns::dnscore {

enum class IpFamily : std::uint8_t { V4, V6 };

// A single IP address of either family. IPv4 addresses occupy the first four
// bytes of the internal array; the remaining bytes are zero.
class IpAddress {
 public:
  // Default-constructs the IPv4 unspecified address 0.0.0.0.
  IpAddress() = default;

  static IpAddress v4(std::uint32_t host_order_bits);
  static IpAddress v4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d);
  static IpAddress v6(const std::array<std::uint8_t, 16>& bytes);
  // Parses dotted-quad IPv4 or RFC 4291 IPv6 text (including "::"
  // compression). Throws std::invalid_argument on malformed input.
  static IpAddress parse(const std::string& text);

  IpFamily family() const noexcept { return family_; }
  bool is_v4() const noexcept { return family_ == IpFamily::V4; }
  bool is_v6() const noexcept { return family_ == IpFamily::V6; }

  // Number of bytes of address material: 4 or 16.
  std::size_t byte_length() const noexcept { return is_v4() ? 4 : 16; }
  // Number of bits: 32 or 128.
  int bit_length() const noexcept { return is_v4() ? 32 : 128; }

  const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }
  // IPv4 address as a host-order 32-bit integer; throws on IPv6.
  std::uint32_t v4_bits() const;

  // --- classification (used by the paper's "unroutable prefix" analysis) ---
  bool is_unspecified() const noexcept;           // 0.0.0.0 or ::
  bool is_loopback() const noexcept;              // 127.0.0.0/8 or ::1
  bool is_private() const noexcept;               // RFC 1918 (v4 only)
  bool is_link_local() const noexcept;            // 169.254/16 or fe80::/10
  // Anything a BGP speaker would never accept: loopback, private,
  // link-local, or unspecified.
  bool is_unroutable() const noexcept;

  std::string to_string() const;

  bool operator==(const IpAddress& other) const noexcept;
  bool operator!=(const IpAddress& other) const noexcept { return !(*this == other); }
  std::strong_ordering operator<=>(const IpAddress& other) const noexcept;

  std::size_t hash() const noexcept;

 private:
  IpFamily family_ = IpFamily::V4;
  std::array<std::uint8_t, 16> bytes_{};
};

struct IpAddressHash {
  std::size_t operator()(const IpAddress& a) const noexcept { return a.hash(); }
};

// An address prefix: an address plus a prefix length in bits. Construction
// zeroes all host bits, so two prefixes that cover the same block compare
// equal regardless of the address they were derived from.
class Prefix {
 public:
  Prefix() = default;  // 0.0.0.0/0

  // Throws std::invalid_argument if `len` exceeds the family's bit length.
  Prefix(const IpAddress& address, int len);
  // Parses "10.1.2.0/24" or "2001:db8::/32".
  static Prefix parse(const std::string& text);

  const IpAddress& address() const noexcept { return address_; }
  int length() const noexcept { return length_; }
  IpFamily family() const noexcept { return address_.family(); }

  bool contains(const IpAddress& addr) const noexcept;
  // True if `other` is equal to or more specific than this prefix.
  bool contains(const Prefix& other) const noexcept;

  // Re-truncates to a shorter (or equal) length. Throws if `len` is longer
  // than the current length's family limit.
  Prefix truncated(int len) const;

  bool is_unroutable() const noexcept { return address_.is_unroutable(); }

  std::string to_string() const;

  bool operator==(const Prefix& other) const noexcept {
    return length_ == other.length_ && address_ == other.address_;
  }
  bool operator!=(const Prefix& other) const noexcept { return !(*this == other); }
  bool operator<(const Prefix& other) const noexcept {
    if (address_ != other.address_) return address_ < other.address_;
    return length_ < other.length_;
  }

  std::size_t hash() const noexcept {
    return address_.hash() * 31 + static_cast<std::size_t>(length_);
  }

 private:
  IpAddress address_;
  int length_ = 0;
};

struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept { return p.hash(); }
};

// Zeroes every bit of `addr` past `len` bits; the workhorse behind Prefix
// and ECS address-field validation.
IpAddress truncate_address(const IpAddress& addr, int len);

// The reverse-DNS owner name for an address: "4.3.2.1.in-addr.arpa" for
// IPv4, nibble-reversed "ip6.arpa" form for IPv6 (RFC 1035 §3.5,
// RFC 3596 §2.5). Returned as presentation text; feed to Name::from_string.
std::string reverse_pointer_name(const IpAddress& addr);

}  // namespace ecsdns::dnscore
