#include "dnscore/ecs.h"

#include <algorithm>
#include <array>

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {
namespace {

std::size_t address_octets_for(std::uint8_t source_bits) {
  return (static_cast<std::size_t>(source_bits) + 7) / 8;
}

std::vector<std::uint8_t> prefix_address_bytes(const Prefix& prefix) {
  const std::size_t n = address_octets_for(static_cast<std::uint8_t>(prefix.length()));
  const auto& all = prefix.address().bytes();
  return {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(n)};
}

}  // namespace

std::string to_string(EcsIssue issue) {
  switch (issue) {
    case EcsIssue::kUnknownFamily: return "unknown address family";
    case EcsIssue::kSourceLengthTooLong: return "source prefix length exceeds family";
    case EcsIssue::kScopeLengthTooLong: return "scope prefix length exceeds family";
    case EcsIssue::kAddressLengthMismatch: return "address field length mismatch";
    case EcsIssue::kNonZeroTrailingBits: return "non-zero bits beyond source prefix";
    case EcsIssue::kScopeNonZeroInQuery: return "non-zero scope in query";
  }
  return "unknown issue";
}

EcsOption EcsOption::for_query(const Prefix& prefix) {
  EcsOption o;
  o.family_ = static_cast<std::uint16_t>(
      prefix.family() == IpFamily::V4 ? EcsFamily::IPv4 : EcsFamily::IPv6);
  o.source_ = static_cast<std::uint8_t>(prefix.length());
  o.scope_ = 0;
  o.address_ = prefix_address_bytes(prefix);
  return o;
}

EcsOption EcsOption::for_response(const Prefix& prefix, int scope) {
  EcsOption o = for_query(prefix);
  o.scope_ = static_cast<std::uint8_t>(scope);
  return o;
}

EcsOption EcsOption::anonymous(EcsFamily family) {
  EcsOption o;
  o.family_ = static_cast<std::uint16_t>(family);
  o.source_ = 0;
  o.scope_ = 0;
  return o;
}

std::optional<Prefix> EcsOption::source_prefix() const {
  const int max_bits = family_ == static_cast<std::uint16_t>(EcsFamily::IPv4) ? 32
                       : family_ == static_cast<std::uint16_t>(EcsFamily::IPv6)
                           ? 128
                           : -1;
  if (max_bits < 0 || source_ > max_bits) return std::nullopt;
  if (address_.size() != address_octets_for(source_)) return std::nullopt;
  std::array<std::uint8_t, 16> bytes{};
  std::copy(address_.begin(), address_.end(), bytes.begin());
  const IpAddress addr = max_bits == 32
                             ? IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3])
                             : IpAddress::v6(bytes);
  return Prefix{addr, source_};
}

std::optional<Prefix> EcsOption::scope_prefix() const {
  auto src = source_prefix();
  if (!src) return std::nullopt;
  if (scope_ > src->address().bit_length()) return std::nullopt;
  return Prefix{src->address(), scope_};
}

std::vector<EcsIssue> EcsOption::validate(bool in_query) const {
  std::vector<EcsIssue> issues;
  int max_bits = -1;
  if (family_ == static_cast<std::uint16_t>(EcsFamily::IPv4)) {
    max_bits = 32;
  } else if (family_ == static_cast<std::uint16_t>(EcsFamily::IPv6)) {
    max_bits = 128;
  } else {
    issues.push_back(EcsIssue::kUnknownFamily);
  }
  if (max_bits > 0) {
    if (source_ > max_bits) issues.push_back(EcsIssue::kSourceLengthTooLong);
    if (scope_ > max_bits) issues.push_back(EcsIssue::kScopeLengthTooLong);
  }
  if (address_.size() != address_octets_for(source_)) {
    issues.push_back(EcsIssue::kAddressLengthMismatch);
  } else if (source_ % 8 != 0 && !address_.empty()) {
    // Bits of the final octet past the source prefix must be zero.
    const std::uint8_t mask = static_cast<std::uint8_t>(0xff >> (source_ % 8));
    if ((address_.back() & mask) != 0) {
      issues.push_back(EcsIssue::kNonZeroTrailingBits);
    }
  }
  if (in_query && scope_ != 0) issues.push_back(EcsIssue::kScopeNonZeroInQuery);
  return issues;
}

EdnsOption EcsOption::to_edns() const {
  EdnsOption opt;
  opt.code = static_cast<std::uint16_t>(EdnsOptionCode::ECS);
  payload_into(opt.payload);
  return opt;
}

void EcsOption::payload_into(std::vector<std::uint8_t>& out) const {
  WireWriter w(out);
  w.u16(family_);
  w.u8(source_);
  w.u8(scope_);
  w.bytes({address_.data(), address_.size()});
}

EcsOption EcsOption::from_edns(const EdnsOption& option) {
  if (option.code != static_cast<std::uint16_t>(EdnsOptionCode::ECS)) {
    throw WireFormatError("not an ECS option (code " + std::to_string(option.code) + ")");
  }
  return parse_payload({option.payload.data(), option.payload.size()});
}

EcsOption EcsOption::parse_payload(std::span<const std::uint8_t> payload) {
  EcsOption o;
  o.assign_from_payload(payload);
  return o;
}

void EcsOption::assign_from_payload(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  family_ = r.u16();
  source_ = r.u8();
  scope_ = r.u8();
  const auto rest = r.bytes(r.remaining());
  address_.assign(rest.begin(), rest.end());
  ECSDNS_DCHECK(r.at_end());
}

std::string EcsOption::to_string() const {
  std::string out = "ECS ";
  if (auto p = source_prefix()) {
    out += p->to_string();
  } else {
    out += "family=" + std::to_string(family_) + " source=" + std::to_string(source_) +
           " addr=" + hex_dump({address_.data(), address_.size()});
  }
  out += " scope " + std::to_string(scope_);
  return out;
}

}  // namespace ecsdns::dnscore
