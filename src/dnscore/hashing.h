// Shared hash primitives.
//
// Every container key in the hot path (cache keys, shard partitions, name
// interning) funnels through these two functions so the whole project mixes
// bits the same way. Both are pure value functions — no pointers, no
// iteration order — which keeps them inside the determinism contract of
// docs/parallel_engine.md.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ecsdns::dnscore {

// SplitMix64 finalizer: one cheap, well-mixed avalanche round. Dense inputs
// (resolver ids, interned name ids, small enums) spread over the full 64-bit
// range, so open-addressing tables and shard partitions see uniform keys.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Combines two hashes with a full SplitMix64-style finalize. Replaces the
// assorted `h * 31 + x` combiners that used to live in EcsCache::KeyHash and
// NegativeKeyHash: a multiply-add leaves the low bits of `seed` nearly
// intact, so keys differing only in a small enum (e.g. qtype) collided into
// adjacent buckets. The finalize avalanches every input bit into every
// output bit.
inline std::size_t hash_combine(std::size_t seed, std::size_t value) noexcept {
  return static_cast<std::size_t>(
      mix64(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ull ^
            static_cast<std::uint64_t>(value)));
}

}  // namespace ecsdns::dnscore
