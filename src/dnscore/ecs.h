// The EDNS Client Subnet option (RFC 7871).
//
// Wire format of the option payload (§6):
//
//      +0 (MSB)                            +1 (LSB)
//   +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+
//   |                   FAMILY                      |
//   +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+
//   |  SOURCE PREFIX-LENGTH  |  SCOPE PREFIX-LENGTH |
//   +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+
//   |                 ADDRESS...                    /
//   +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+
//
// ADDRESS is exactly ceil(SOURCE PREFIX-LENGTH / 8) octets; bits past the
// source prefix length MUST be zero.
//
// The struct is deliberately permissive: it can represent non-compliant
// options (the paper catalogs resolvers that emit them), and validate()
// reports every deviation so measurement code can classify behaviors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnscore/annotations.h"
#include "dnscore/edns.h"
#include "dnscore/ip.h"
#include "dnscore/types.h"

namespace ecsdns::dnscore {

// Specific compliance problems validate() can flag.
enum class EcsIssue {
  kUnknownFamily,          // FAMILY not 1 (IPv4) or 2 (IPv6)
  kSourceLengthTooLong,    // source prefix exceeds the family bit length
  kScopeLengthTooLong,     // scope prefix exceeds the family bit length
  kAddressLengthMismatch,  // ADDRESS not exactly ceil(source/8) octets
  kNonZeroTrailingBits,    // address bits beyond the source prefix set
  kScopeNonZeroInQuery,    // queries MUST send scope 0 (§6)
};

std::string to_string(EcsIssue issue);

class EcsOption {
 public:
  EcsOption() = default;

  // Compliant query option announcing `prefix` with scope 0.
  static EcsOption for_query(const Prefix& prefix);
  // Compliant response option echoing the query's prefix with the
  // authoritative `scope`.
  static EcsOption for_response(const Prefix& prefix, int scope);
  // The RFC 7871 §7.1.2 opt-out: source prefix length 0, empty address,
  // asking the authoritative not to use (and not to need) client info.
  static EcsOption anonymous(EcsFamily family = EcsFamily::IPv4);

  std::uint16_t family() const noexcept { return family_; }
  std::uint8_t source_prefix_length() const noexcept { return source_; }
  std::uint8_t scope_prefix_length() const noexcept { return scope_; }
  const std::vector<std::uint8_t>& address_bytes() const noexcept { return address_; }

  void set_family(std::uint16_t f) noexcept { family_ = f; }
  void set_source_prefix_length(std::uint8_t s) noexcept { source_ = s; }
  void set_scope_prefix_length(std::uint8_t s) noexcept { scope_ = s; }
  void set_address_bytes(std::vector<std::uint8_t> b) { address_ = std::move(b); }

  // Interprets FAMILY + ADDRESS as a Prefix at the source prefix length.
  // Returns nullopt when the family is unknown or lengths are inconsistent.
  std::optional<Prefix> source_prefix() const;
  // Same but at the scope prefix length (meaningful in responses).
  std::optional<Prefix> scope_prefix() const;

  // Every compliance problem with this option. `in_query` additionally
  // enforces the scope-must-be-zero rule.
  std::vector<EcsIssue> validate(bool in_query) const;
  bool is_valid(bool in_query) const { return validate(in_query).empty(); }

  // Encodes to the generic EDNS option TLV (code 8).
  EdnsOption to_edns() const;
  // Decodes; throws WireFormatError if the payload is structurally
  // unparseable (too short for its own declared lengths). Semantic issues
  // are preserved for validate() instead of throwing, because observing
  // them is the whole point of this library.
  static EcsOption from_edns(const EdnsOption& option);
  // Same decode from the raw option payload (no TLV header). MessageView
  // hands its in-place payload span here, so the two decode paths cannot
  // diverge.
  static EcsOption parse_payload(std::span<const std::uint8_t> payload);
  // In-place variant of parse_payload: decodes into this object, reusing
  // the address buffer's capacity. The packet path decodes every query's
  // ECS into a per-shard scratch option through this, so steady-state
  // dispatch never allocates for it. Throws like parse_payload; fields may
  // be partially overwritten on throw.
  void assign_from_payload(std::span<const std::uint8_t> payload);
  // Appends the option payload wire bytes (no TLV header) into `out`,
  // replacing its contents but reusing its capacity — the in-place dual of
  // to_edns() for Message::set_ecs's retained option slot.
  ECSDNS_NOALLOC void payload_into(std::vector<std::uint8_t>& out) const;

  // e.g. "ECS 1.2.3.0/24 scope 0".
  std::string to_string() const;

  bool operator==(const EcsOption&) const = default;

 private:
  std::uint16_t family_ = static_cast<std::uint16_t>(EcsFamily::IPv4);
  std::uint8_t source_ = 0;
  std::uint8_t scope_ = 0;
  std::vector<std::uint8_t> address_;
};

}  // namespace ecsdns::dnscore
