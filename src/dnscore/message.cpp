#include "dnscore/message.h"

#include <algorithm>
#include <stdexcept>

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {
namespace {

constexpr std::uint16_t kQrMask = 0x8000;
constexpr std::uint16_t kAaMask = 0x0400;
constexpr std::uint16_t kTcMask = 0x0200;
constexpr std::uint16_t kRdMask = 0x0100;
constexpr std::uint16_t kRaMask = 0x0080;
constexpr std::uint16_t kAdMask = 0x0020;
constexpr std::uint16_t kCdMask = 0x0010;

}  // namespace

Message Message::make_query(std::uint16_t id, const Name& qname, RRType qtype) {
  Message m;
  m.header.id = id;
  m.header.rd = true;
  m.questions.push_back(Question{qname, qtype, RRClass::IN});
  return m;
}

Message Message::make_response(const Message& query) {
  Message m;
  m.header.id = query.header.id;
  m.header.qr = true;
  m.header.opcode = query.header.opcode;
  m.header.rd = query.header.rd;
  m.header.ra = true;
  m.questions = query.questions;
  if (query.opt) {
    OptRecord opt;
    opt.udp_payload_size = 4096;
    m.opt = opt;
  }
  return m;
}

const Question& Message::question() const {
  if (questions.empty()) throw std::logic_error("message has no question");
  return questions.front();
}

std::optional<EcsOption> Message::ecs() const {
  if (!opt) return std::nullopt;
  const EdnsOption* raw = opt->find_option(EdnsOptionCode::ECS);
  if (raw == nullptr) return std::nullopt;
  return EcsOption::from_edns(*raw);
}

void Message::set_ecs(const EcsOption& ecs) {
  if (!opt) opt = OptRecord{};
  // Encode into the retained option slot: once a message object has carried
  // ECS, re-setting it is allocation-free (the dispatch scratch relies on
  // this).
  ecs.payload_into(opt->ensure_option(EdnsOptionCode::ECS).payload);
}

bool Message::clear_ecs() {
  if (!opt) return false;
  return opt->remove_option(EdnsOptionCode::ECS) > 0;
}

std::optional<IpAddress> Message::first_address() const {
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARdata>(&rr.rdata)) return a->address;
    if (const auto* aaaa = std::get_if<AaaaRdata>(&rr.rdata)) return aaaa->address;
  }
  return std::nullopt;
}

std::vector<IpAddress> Message::all_addresses() const {
  std::vector<IpAddress> out;
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARdata>(&rr.rdata)) out.push_back(a->address);
    if (const auto* aaaa = std::get_if<AaaaRdata>(&rr.rdata)) out.push_back(aaaa->address);
  }
  return out;
}

std::optional<std::uint32_t> Message::min_answer_ttl() const {
  std::optional<std::uint32_t> min;
  for (const auto& rr : answers) {
    if (!min || rr.ttl < *min) min = rr.ttl;
  }
  return min;
}

std::vector<std::uint8_t> Message::serialize(bool compress) const {
  WireWriter w;
  serialize_into(w, compress);
  return std::move(w).take();
}

void Message::serialize_into(WireWriter& w, bool compress) const {
  Name::CompressionTable table;
  serialize_body(w, compress ? &table : nullptr);
}

void Message::serialize_into(WireWriter& w, Name::CompressionTable& table) const {
  table.clear();
  serialize_body(w, &table);
}

void Message::serialize_body(WireWriter& w, Name::CompressionTable* tp) const {
  ECSDNS_DCHECK(w.size() == 0);
  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= kQrMask;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(header.opcode) << 11);
  if (header.aa) flags |= kAaMask;
  if (header.tc) flags |= kTcMask;
  if (header.rd) flags |= kRdMask;
  if (header.ra) flags |= kRaMask;
  if (header.ad) flags |= kAdMask;
  if (header.cd) flags |= kCdMask;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(header.rcode) & 0x0f);
  w.u16(flags);
  // Section counts are 16-bit on the wire; a message that outgrew them is a
  // construction bug, not a parse problem.
  ECSDNS_DCHECK(questions.size() <= 0xffff);
  ECSDNS_DCHECK(answers.size() <= 0xffff);
  ECSDNS_DCHECK(authorities.size() <= 0xffff);
  ECSDNS_DCHECK(additional.size() + (opt ? 1 : 0) <= 0xffff);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additional.size() + (opt ? 1 : 0)));
  for (const auto& q : questions) q.serialize(w, tp);
  for (const auto& rr : answers) rr.serialize(w, tp);
  for (const auto& rr : authorities) rr.serialize(w, tp);
  for (const auto& rr : additional) rr.serialize(w, tp);
  if (opt) {
    // Extended rcode bits live in the OPT TTL field (RFC 6891 §6.1.3);
    // passing them as an override avoids copying the OptRecord per packet.
    opt->serialize(w, static_cast<std::uint8_t>(
                          static_cast<std::uint16_t>(header.rcode) >> 4));
  }
}

Message Message::parse(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  Message m;
  m.header.id = r.u16();
  const std::uint16_t flags = r.u16();
  m.header.qr = (flags & kQrMask) != 0;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0x0f);
  m.header.aa = (flags & kAaMask) != 0;
  m.header.tc = (flags & kTcMask) != 0;
  m.header.rd = (flags & kRdMask) != 0;
  m.header.ra = (flags & kRaMask) != 0;
  m.header.ad = (flags & kAdMask) != 0;
  m.header.cd = (flags & kCdMask) != 0;
  std::uint16_t rcode_bits = flags & 0x0f;

  const std::uint16_t qdcount = r.u16();
  const std::uint16_t ancount = r.u16();
  const std::uint16_t nscount = r.u16();
  const std::uint16_t arcount = r.u16();

  // Reserve using a per-entry wire minimum (question 5 octets, record 11)
  // so declared-but-truncated counts cannot drive huge allocations while
  // well-formed messages get exactly one vector growth per section.
  m.questions.reserve(std::min<std::size_t>(qdcount, r.remaining() / 5));
  m.answers.reserve(std::min<std::size_t>(ancount, r.remaining() / 11));
  m.authorities.reserve(std::min<std::size_t>(nscount, r.remaining() / 11));
  m.additional.reserve(std::min<std::size_t>(arcount, r.remaining() / 11));

  for (std::uint16_t i = 0; i < qdcount; ++i) m.questions.push_back(Question::parse(r));
  for (std::uint16_t i = 0; i < ancount; ++i) m.answers.push_back(ResourceRecord::parse(r));
  for (std::uint16_t i = 0; i < nscount; ++i) {
    m.authorities.push_back(ResourceRecord::parse(r));
  }
  for (std::uint16_t i = 0; i < arcount; ++i) {
    // OPT must be detected before committing to ResourceRecord::parse so we
    // can decode its overloaded fields.
    const std::size_t mark = r.offset();
    const Name owner = Name::parse(r);
    const RRType type = static_cast<RRType>(r.u16());
    if (type == RRType::OPT) {
      if (!owner.is_root()) throw WireFormatError("OPT record with non-root owner");
      if (m.opt) throw WireFormatError("duplicate OPT record");
      m.opt = OptRecord::parse_body(r);
      rcode_bits = static_cast<std::uint16_t>(
          rcode_bits | (static_cast<std::uint16_t>(m.opt->extended_rcode) << 4));
    } else {
      r.seek(mark);
      m.additional.push_back(ResourceRecord::parse(r));
    }
  }
  m.header.rcode = static_cast<RCode>(rcode_bits);
  if (!r.at_end()) throw WireFormatError("trailing bytes after message");
  return m;
}

std::string Message::to_string() const {
  std::string out;
  out += ";; " + dnscore::to_string(header.opcode) + " " +
         dnscore::to_string(header.rcode) + " id " + std::to_string(header.id);
  out += header.qr ? " (response)" : " (query)";
  if (header.aa) out += " aa";
  if (header.tc) out += " tc";
  if (header.rd) out += " rd";
  if (header.ra) out += " ra";
  out += "\n";
  if (opt) {
    out += ";; EDNS0 udp=" + std::to_string(opt->udp_payload_size);
    if (auto e = ecs()) out += " " + e->to_string();
    out += "\n";
  }
  out += ";; QUESTION\n";
  for (const auto& q : questions) out += ";  " + q.to_string() + "\n";
  if (!answers.empty()) {
    out += ";; ANSWER\n";
    for (const auto& rr : answers) out += rr.to_string() + "\n";
  }
  if (!authorities.empty()) {
    out += ";; AUTHORITY\n";
    for (const auto& rr : authorities) out += rr.to_string() + "\n";
  }
  if (!additional.empty()) {
    out += ";; ADDITIONAL\n";
    for (const auto& rr : additional) out += rr.to_string() + "\n";
  }
  return out;
}

}  // namespace ecsdns::dnscore
