// Domain names (RFC 1035 §3.1) with wire encoding, decompression, and
// case-insensitive comparison semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/wire.h"

namespace ecsdns::dnscore {

// An absolute domain name stored as a sequence of labels (without the
// terminating empty root label). The empty vector is the root name ".".
//
// Invariants enforced on construction:
//   * each label is 1..63 octets,
//   * total wire length (labels + separators + root byte) <= 255 octets.
// Comparison and hashing are ASCII-case-insensitive per RFC 1035 §2.3.3.
class Name {
 public:
  Name() = default;  // the root name "."

  // Parses presentation format. Accepted grammar:
  //
  //   name   = "." | label *("." label) ["."]
  //   label  = 1*63 octets, where a backslash escapes the next octet:
  //            "\." is a literal dot inside a label, "\\" a literal
  //            backslash, and "\X" for any other X is X itself. Decimal
  //            escapes ("\065") are NOT supported.
  //
  // Throws WireFormatError on empty labels, a trailing backslash, labels
  // over 63 octets, or names whose wire form exceeds 255 octets.
  // to_string() re-escapes "." and "\" so from_string(to_string(n)) == n.
  static Name from_string(const std::string& text);

  // Reads a (possibly compressed) name from the current reader position.
  // Compression pointers may only point backwards; loops and forward
  // pointers raise WireFormatError (RFC 1035 §4.1.4).
  static Name parse(WireReader& reader);

  const std::vector<std::string>& labels() const noexcept { return labels_; }
  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }

  // Wire length in octets if written without compression.
  std::size_t wire_length() const noexcept;

  // Writes the uncompressed wire form.
  void serialize(WireWriter& writer) const;

  // Writes the wire form using RFC 1035 §4.1.4 compression against names
  // already emitted through the same table: the longest previously written
  // suffix is replaced by a pointer, and newly written label positions are
  // recorded for later names. The table maps canonical (lowercased) suffix
  // text to its wire offset.
  class CompressionTable {
   public:
    // Offsets beyond 0x3fff cannot be pointed at (14-bit pointers).
    std::optional<std::uint16_t> find(const Name& name, std::size_t from_label) const;
    void remember(const Name& name, std::size_t from_label, std::size_t offset);

   private:
    std::unordered_map<std::string, std::uint16_t> offsets_;
  };
  void serialize_compressed(WireWriter& writer, CompressionTable& table) const;

  // Presentation form without the trailing dot except for the root (".").
  // Dots and backslashes inside a label are escaped ("\." / "\\") so the
  // output always parses back to the same name.
  std::string to_string() const;

  // True if this name equals `zone` or is a subdomain of it.
  bool is_subdomain_of(const Name& zone) const;

  // Returns the name without its leftmost label; throws std::logic_error on
  // the root name.
  Name parent() const;

  // The two most senior labels, e.g. "cnn.com" for "edition.cnn.com"; used
  // for the paper's SLD statistics. Returns the name itself if it has fewer
  // than two labels.
  Name second_level_domain() const;

  // Prepends one label, e.g. Name("example.com").prepend("www").
  Name prepend(const std::string& label) const;

  bool operator==(const Name& other) const noexcept;
  bool operator!=(const Name& other) const noexcept { return !(*this == other); }
  // Canonical ordering (case-insensitive, label-wise from the right) so
  // Name can key ordered containers.
  bool operator<(const Name& other) const noexcept;

  // Case-insensitive FNV-1a over the canonical lowercase form.
  std::size_t hash() const noexcept;

 private:
  explicit Name(std::vector<std::string> labels);
  void validate() const;

  std::vector<std::string> labels_;
};

struct NameHash {
  std::size_t operator()(const Name& n) const noexcept { return n.hash(); }
};

}  // namespace ecsdns::dnscore
