// Domain names (RFC 1035 §3.1) with wire encoding, decompression, and
// case-insensitive comparison semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dnscore/annotations.h"
#include "dnscore/flat_hash.h"
#include "dnscore/wire.h"

namespace ecsdns::dnscore {

// An absolute domain name stored as ONE contiguous buffer of labels in wire
// form — [len][octets][len][octets]... without the terminating root byte.
// Names whose packed form fits kInlineCapacity octets (the overwhelming
// majority of real hostnames) live entirely inside the object; longer names
// spill to a single exact-size heap block. An empty buffer is the root
// name ".".
//
// Invariants enforced on construction:
//   * each label is 1..63 octets,
//   * total wire length (labels + separators + root byte) <= 255 octets.
// Comparison and hashing are ASCII-case-insensitive per RFC 1035 §2.3.3.
// The hash is computed once on first use and cached; Name is immutable
// after construction (assignment replaces the whole value, carrying the
// source's cached hash with it), so the cache can never go stale.
class Name {
 public:
  // Packed octets stored inline; chosen so sizeof(Name) is one cache line.
  // A name packs to wire_length()-1 octets, so everything up to 47 octets
  // on the wire — e.g. any name of at most 45 characters — avoids the heap.
  static constexpr std::size_t kInlineCapacity = 46;

  Name() noexcept {}  // the root name "."
  Name(const Name& other);
  Name(Name&& other) noexcept;
  Name& operator=(const Name& other);
  Name& operator=(Name&& other) noexcept;
  ~Name() { release(); }

  // Parses presentation format. Accepted grammar:
  //
  //   name   = "." | label *("." label) ["."]
  //   label  = 1*63 octets, where a backslash escapes the next octet:
  //            "\." is a literal dot inside a label, "\\" a literal
  //            backslash, and "\X" for any other X is X itself. Decimal
  //            escapes ("\065") are NOT supported.
  //
  // Throws WireFormatError on empty labels, a trailing backslash, labels
  // over 63 octets, or names whose wire form exceeds 255 octets.
  // to_string() re-escapes "." and "\" so from_string(to_string(n)) == n.
  static Name from_string(const std::string& text);

  // Reads a (possibly compressed) name from the current reader position.
  // Compression pointers may only point backwards; loops and forward
  // pointers raise WireFormatError (RFC 1035 §4.1.4).
  static Name parse(WireReader& reader);

  // Walks past a wire-format name, enforcing exactly the validation rules
  // of parse() — pointer direction, jump bound, reserved label types, the
  // 255-octet decompressed limit — without materializing a Name. Returns
  // the label count of the (decompressed) name; the reader ends up where
  // parse() would leave it. MessageView's lazy decode is built on this, so
  // skip() and parse() must accept and reject identical inputs.
  static std::size_t skip(WireReader& reader);

  // Label `i` (0 = leftmost), viewing the packed buffer — no allocation.
  // The view is invalidated by assigning to or destroying this Name.
  std::string_view label(std::size_t i) const noexcept;
  // All labels, materialized. Prefer label()/label_count() on hot paths.
  std::vector<std::string> labels() const;
  bool is_root() const noexcept { return label_count_ == 0; }
  std::size_t label_count() const noexcept { return label_count_; }

  // True when the packed form lives inside the object (no heap block).
  bool is_inline() const noexcept { return packed_size_ <= kInlineCapacity; }

  // Wire length in octets if written without compression.
  std::size_t wire_length() const noexcept { return packed_size_ + 1u; }

  // Writes the uncompressed wire form.
  void serialize(WireWriter& writer) const;

  // Writes the wire form using RFC 1035 §4.1.4 compression against names
  // already emitted through the same table: the longest previously written
  // suffix is replaced by a pointer, and newly written label positions are
  // recorded for later names.
  //
  // The table keys on views into the names' packed buffers (hashed and
  // compared case-insensitively), so finding and remembering a suffix never
  // allocates or copies label text. Lifetime contract: every Name passed to
  // remember() must outlive the table — trivially true inside
  // Message::serialize, where the table is scoped to one message whose
  // names it indexes.
  class CompressionTable {
   public:
    // Offsets beyond 0x3fff cannot be pointed at (14-bit pointers).
    std::optional<std::uint16_t> find(const Name& name, std::size_t from_label) const;
    void remember(const Name& name, std::size_t from_label, std::size_t offset);
    // Resets the index for a new message while keeping its capacity, so one
    // table can serve every serialize_into call on a dispatch path without
    // re-allocating per packet.
    void clear() noexcept { offsets_.clear(); }

   private:
    friend class Name;
    // A name suffix in packed wire form: [len][octets]... to the buffer end.
    struct SuffixRef {
      const std::uint8_t* data = nullptr;
      std::uint16_t size = 0;
      bool operator==(const SuffixRef& other) const noexcept;
    };
    struct SuffixHash {
      std::size_t operator()(const SuffixRef& s) const noexcept;
    };
    std::optional<std::uint16_t> find_suffix(SuffixRef suffix) const;
    // Grows the suffix index — the one allocating step of compressed
    // serialization. MAY_BLOCK marks the boundary so noalloc callers
    // justify it at the call site instead of blanket-suppressing the
    // generic FlatHashMap growth underneath.
    ECSDNS_MAY_BLOCK void remember_suffix(SuffixRef suffix, std::size_t offset);

    FlatHashMap<SuffixRef, std::uint16_t, SuffixHash> offsets_;
  };
  void serialize_compressed(WireWriter& writer, CompressionTable& table) const;

  // Presentation form without the trailing dot except for the root (".").
  // Dots and backslashes inside a label are escaped ("\." / "\\") so the
  // output always parses back to the same name.
  std::string to_string() const;

  // True if this name equals `zone` or is a subdomain of it.
  bool is_subdomain_of(const Name& zone) const;

  // Returns the name without its leftmost label; throws std::logic_error on
  // the root name.
  Name parent() const;

  // The two most senior labels, e.g. "cnn.com" for "edition.cnn.com"; used
  // for the paper's SLD statistics. Returns the name itself if it has fewer
  // than two labels.
  Name second_level_domain() const;

  // Prepends one label, e.g. Name("example.com").prepend("www").
  Name prepend(std::string_view label) const;

  bool operator==(const Name& other) const noexcept;
  bool operator!=(const Name& other) const noexcept { return !(*this == other); }
  // Canonical ordering (case-insensitive, label-wise from the right) so
  // Name can key ordered containers.
  bool operator<(const Name& other) const noexcept;

  // Case-insensitive FNV-1a over the canonical lowercase form. Computed
  // lazily on first call and cached (an atomic store, so concurrent readers
  // of a shared const Name are race-free); every later call is one load.
  std::size_t hash() const noexcept;

 private:
  // Adopts `size` packed octets holding `labels` validated labels. The
  // octets are copied; callers guarantee they came from an already
  // validated name (every factory funnels through validated paths).
  Name(const std::uint8_t* packed, std::size_t size, std::size_t labels);

  const std::uint8_t* packed() const noexcept {
    return is_inline() ? storage_.inline_octets : storage_.heap;
  }
  std::uint8_t* mutable_packed() noexcept {
    return is_inline() ? storage_.inline_octets : storage_.heap;
  }
  // Byte offset of label `i` in the packed buffer.
  std::size_t label_offset(std::size_t i) const noexcept;
  void adopt(const std::uint8_t* packed, std::size_t size, std::size_t labels);
  void release() noexcept;

  // Sentinel for "hash not computed yet"; a real hash that lands on 0 is
  // remapped to a fixed non-zero constant by the computation.
  static constexpr std::uint64_t kHashUnset = 0;

  mutable std::atomic<std::uint64_t> hash_{kHashUnset};
  union Storage {
    std::uint8_t inline_octets[kInlineCapacity];
    std::uint8_t* heap;
    Storage() noexcept {}  // storage is managed by Name
  } storage_;
  std::uint8_t packed_size_ = 0;
  std::uint8_t label_count_ = 0;
};

static_assert(sizeof(Name) == 64, "Name should stay one cache line");

struct NameHash {
  std::size_t operator()(const Name& n) const noexcept { return n.hash(); }
};

}  // namespace ecsdns::dnscore
