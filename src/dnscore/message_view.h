// Lazy, bounds-checked read-only view over a DNS message in wire form.
//
// MessageView is the zero-copy half of the packet path: services that only
// route on the question and the ECS option (the authoritative dispatch, the
// forwarder's strip decision, the measurement probers) construct a view
// instead of a full Message and skip materializing record vectors, Names,
// and option payloads for sections they never read.
//
// The constructor walks the ENTIRE message eagerly with exactly the
// validation rules of Message::parse — same reader primitives, same order,
// same WireFormatError conditions — so a wire buffer is accepted by
// MessageView if and only if Message::parse accepts it (the differential
// oracle in tests/ and fuzz/ holds the two implementations to that
// contract). What the walk skips is materialization: it records offsets
// into the buffer instead of building Names, records, and option vectors.
// qname() and ecs() decode on demand from the recorded offsets.
//
// Lifetime: the view borrows the buffer. The caller keeps the wire bytes
// alive and unmodified for as long as the view (or any span returned from
// it) is in use — in this codebase that is trivially true inside a netsim
// service callback, where the datagram payload outlives the synchronous
// handler.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dnscore/annotations.h"
#include "dnscore/ecs.h"
#include "dnscore/message.h"

namespace ecsdns::dnscore {

class MessageView {
 public:
  // Validates the whole message; throws WireFormatError on any input that
  // Message::parse would reject. The walk is the zero-copy contract: it
  // records offsets and never materializes, so it must not allocate
  // (except to build the diagnostic when throwing on malformed input).
  ECSDNS_NOALLOC explicit MessageView(std::span<const std::uint8_t> wire);

  std::span<const std::uint8_t> wire() const noexcept { return wire_; }

  // --- header ---
  std::uint16_t id() const noexcept { return id_; }
  bool qr() const noexcept { return qr_; }
  Opcode opcode() const noexcept { return opcode_; }
  bool aa() const noexcept { return aa_; }
  bool tc() const noexcept { return tc_; }
  bool rd() const noexcept { return rd_; }
  bool ra() const noexcept { return ra_; }
  bool ad() const noexcept { return ad_; }
  bool cd() const noexcept { return cd_; }
  // Includes the extended-rcode bits from the OPT TTL, like Message.
  RCode rcode() const noexcept { return rcode_; }
  bool is_query() const noexcept { return !qr_; }
  bool is_response() const noexcept { return qr_; }

  std::uint16_t question_count() const noexcept { return qdcount_; }
  std::uint16_t answer_count() const noexcept { return ancount_; }
  std::uint16_t authority_count() const noexcept { return nscount_; }
  // Raw ARCOUNT from the header; includes the OPT pseudo-RR if present.
  std::uint16_t additional_count() const noexcept { return arcount_; }

  // --- first question (the only one DNS software acts on) ---
  // Type/class are pre-decoded; the name is parsed on demand.
  Name qname() const;  // requires question_count() >= 1
  RRType qtype() const noexcept { return qtype_; }
  RRClass qclass() const noexcept { return qclass_; }

  // --- EDNS / ECS ---
  bool has_opt() const noexcept { return has_opt_; }
  std::uint16_t udp_payload_size() const noexcept { return udp_payload_size_; }
  std::uint8_t edns_version() const noexcept { return edns_version_; }
  bool dnssec_ok() const noexcept { return dnssec_ok_; }
  std::uint8_t extended_rcode() const noexcept { return extended_rcode_; }

  // True when an ECS option TLV is present — a pure presence probe, no
  // payload decode (agrees with Message::has_ecs()).
  bool has_ecs() const noexcept { return has_ecs_; }
  // The first ECS option's raw payload (empty span when absent).
  ECSDNS_NOALLOC std::span<const std::uint8_t> ecs_payload() const noexcept;
  // Decodes the ECS option. Throws WireFormatError on a present but
  // structurally short payload — exactly when Message::ecs() would.
  std::optional<EcsOption> ecs() const;

  // Full materialization for callers that outgrow the view. Never throws
  // for a successfully constructed view (the constructor already ran the
  // same validation). Leaves the zero-copy regime — allocates freely.
  ECSDNS_MAY_BLOCK Message to_message() const { return Message::parse(wire_); }

 private:
  std::span<const std::uint8_t> wire_;

  std::uint16_t id_ = 0;
  bool qr_ = false, aa_ = false, tc_ = false, rd_ = false, ra_ = false;
  bool ad_ = false, cd_ = false;
  Opcode opcode_ = Opcode::QUERY;
  RCode rcode_ = RCode::NOERROR;
  std::uint16_t qdcount_ = 0, ancount_ = 0, nscount_ = 0, arcount_ = 0;

  std::size_t qname_offset_ = 0;
  RRType qtype_ = RRType::A;
  RRClass qclass_ = RRClass::IN;

  bool has_opt_ = false;
  std::uint16_t udp_payload_size_ = 0;
  std::uint8_t extended_rcode_ = 0;
  std::uint8_t edns_version_ = 0;
  bool dnssec_ok_ = false;

  bool has_ecs_ = false;
  std::size_t ecs_offset_ = 0;
  std::uint16_t ecs_length_ = 0;
};

}  // namespace ecsdns::dnscore
