// Typed RDATA for the record types this library understands, plus a raw
// fallback for everything else (RFC 1035 §3.3, RFC 3596).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dnscore/ip.h"
#include "dnscore/name.h"
#include "dnscore/types.h"
#include "dnscore/wire.h"

namespace ecsdns::dnscore {

struct ARdata {
  IpAddress address;  // always IPv4
  bool operator==(const ARdata&) const = default;
};

struct AaaaRdata {
  IpAddress address;  // always IPv6
  bool operator==(const AaaaRdata&) const = default;
};

struct NsRdata {
  Name nameserver;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  Name target;
  bool operator==(const CnameRdata&) const = default;
};

struct PtrRdata {
  Name target;
  bool operator==(const PtrRdata&) const = default;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;
  bool operator==(const MxRdata&) const = default;
};

struct TxtRdata {
  // One or more character-strings, each at most 255 octets.
  std::vector<std::string> strings;
  bool operator==(const TxtRdata&) const = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  bool operator==(const SoaRdata&) const = default;
};

// Uninterpreted rdata carried verbatim (types we do not model).
struct RawRdata {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const RawRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata,
                           MxRdata, TxtRdata, SoaRdata, RawRdata>;

// The wire RR type corresponding to the active alternative.
RRType rdata_type(const Rdata& rdata);

// Parses `rdlength` bytes of rdata for `type` from the reader. Name-bearing
// rdata (NS/CNAME/PTR/MX/SOA) may use compression pointers into the larger
// message, which is why parsing happens in message context.
Rdata parse_rdata(RRType type, std::uint16_t rdlength, WireReader& reader);

// Serializes without the RDLENGTH prefix (the record writer patches it in).
void serialize_rdata(const Rdata& rdata, WireWriter& writer);

// Zone-file-style presentation ("192.0.2.1", "10 mail.example.com", ...).
std::string rdata_to_string(const Rdata& rdata);

}  // namespace ecsdns::dnscore
