#include "dnscore/message_view.h"

#include <stdexcept>

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {
namespace {

constexpr std::uint16_t kQrMask = 0x8000;
constexpr std::uint16_t kAaMask = 0x0400;
constexpr std::uint16_t kTcMask = 0x0200;
constexpr std::uint16_t kRdMask = 0x0100;
constexpr std::uint16_t kRaMask = 0x0080;
constexpr std::uint16_t kAdMask = 0x0020;
constexpr std::uint16_t kCdMask = 0x0010;

// The skip_* functions below are validation mirrors of parse_rdata /
// ResourceRecord::parse: same reader calls in the same order, same throw
// conditions, no materialization. Any edit to the parsers must be mirrored
// here — the differential fuzz oracle will catch a drift, but don't make it.

void check_rdata_bounds(const WireReader& reader, std::size_t end,
                        const char* what) {
  if (reader.offset() > end) {
    throw WireFormatError(std::string("rdata overruns RDLENGTH in ") + what);
  }
}

void skip_rdata(RRType type, std::uint16_t rdlength, WireReader& reader) {
  const std::size_t end = reader.offset() + rdlength;
  switch (type) {
    case RRType::A:
      if (rdlength != 4) throw WireFormatError("A rdata must be 4 octets");
      reader.skip(4);
      return;
    case RRType::AAAA:
      if (rdlength != 16) throw WireFormatError("AAAA rdata must be 16 octets");
      reader.skip(16);
      return;
    case RRType::NS:
      Name::skip(reader);
      check_rdata_bounds(reader, end, "NS");
      return;
    case RRType::CNAME:
      Name::skip(reader);
      check_rdata_bounds(reader, end, "CNAME");
      return;
    case RRType::PTR:
      Name::skip(reader);
      check_rdata_bounds(reader, end, "PTR");
      return;
    case RRType::MX:
      reader.skip(2);  // preference
      Name::skip(reader);
      check_rdata_bounds(reader, end, "MX");
      return;
    case RRType::TXT: {
      std::size_t consumed = 0;
      while (consumed < rdlength) {
        const std::uint8_t len = reader.u8();
        reader.skip(len);
        consumed += 1u + len;
      }
      if (consumed != rdlength) throw WireFormatError("TXT rdata length mismatch");
      return;
    }
    case RRType::SOA:
      Name::skip(reader);  // mname
      Name::skip(reader);  // rname
      for (int i = 0; i < 5; ++i) reader.skip(4);  // serial..minimum
      check_rdata_bounds(reader, end, "SOA");
      return;
    default:
      reader.skip(rdlength);
      return;
  }
}

// Skips class/TTL/RDLENGTH/rdata; the caller already consumed owner + TYPE.
void skip_record_tail(RRType type, WireReader& reader) {
  reader.skip(2);  // class
  reader.skip(4);  // ttl
  const std::uint16_t rdlength = reader.u16();
  const std::size_t end = reader.offset() + rdlength;
  skip_rdata(type, rdlength, reader);
  reader.seek(end);
}

void skip_record(WireReader& reader) {
  Name::skip(reader);
  const RRType type = static_cast<RRType>(reader.u16());
  skip_record_tail(type, reader);
}

}  // namespace

MessageView::MessageView(std::span<const std::uint8_t> wire) : wire_(wire) {
  WireReader r(wire);
  id_ = r.u16();
  const std::uint16_t flags = r.u16();
  qr_ = (flags & kQrMask) != 0;
  opcode_ = static_cast<Opcode>((flags >> 11) & 0x0f);
  aa_ = (flags & kAaMask) != 0;
  tc_ = (flags & kTcMask) != 0;
  rd_ = (flags & kRdMask) != 0;
  ra_ = (flags & kRaMask) != 0;
  ad_ = (flags & kAdMask) != 0;
  cd_ = (flags & kCdMask) != 0;
  std::uint16_t rcode_bits = flags & 0x0f;

  qdcount_ = r.u16();
  ancount_ = r.u16();
  nscount_ = r.u16();
  arcount_ = r.u16();

  for (std::uint16_t i = 0; i < qdcount_; ++i) {
    const std::size_t name_at = r.offset();
    Name::skip(r);
    const RRType qtype = static_cast<RRType>(r.u16());
    const RRClass qclass = static_cast<RRClass>(r.u16());
    if (i == 0) {
      qname_offset_ = name_at;
      qtype_ = qtype;
      qclass_ = qclass;
    }
  }
  for (std::uint16_t i = 0; i < ancount_; ++i) skip_record(r);
  for (std::uint16_t i = 0; i < nscount_; ++i) skip_record(r);
  for (std::uint16_t i = 0; i < arcount_; ++i) {
    const std::size_t labels = Name::skip(r);
    const RRType type = static_cast<RRType>(r.u16());
    if (type == RRType::OPT) {
      if (labels != 0) throw WireFormatError("OPT record with non-root owner");
      if (has_opt_) throw WireFormatError("duplicate OPT record");
      has_opt_ = true;
      // Mirror of OptRecord::parse_body, recording field values and the
      // first ECS payload location instead of copying option payloads.
      udp_payload_size_ = r.u16();
      const std::uint32_t ttl = r.u32();
      extended_rcode_ = static_cast<std::uint8_t>(ttl >> 24);
      edns_version_ = static_cast<std::uint8_t>((ttl >> 16) & 0xff);
      dnssec_ok_ = (ttl & 0x8000u) != 0;
      const std::uint16_t rdlength = r.u16();
      const std::size_t end = r.offset() + rdlength;
      while (r.offset() < end) {
        if (end - r.offset() < 4) {
          throw WireFormatError("truncated EDNS option header");
        }
        const std::uint16_t code = r.u16();
        const std::uint16_t optlen = r.u16();
        if (r.offset() + optlen > end) {
          throw WireFormatError("EDNS option overruns OPT rdata");
        }
        if (!has_ecs_ &&
            code == static_cast<std::uint16_t>(EdnsOptionCode::ECS)) {
          has_ecs_ = true;
          ecs_offset_ = r.offset();
          ecs_length_ = optlen;
        }
        r.skip(optlen);
      }
      rcode_bits = static_cast<std::uint16_t>(
          rcode_bits | (static_cast<std::uint16_t>(extended_rcode_) << 4));
    } else {
      skip_record_tail(type, r);
    }
  }
  rcode_ = static_cast<RCode>(rcode_bits);
  if (!r.at_end()) throw WireFormatError("trailing bytes after message");
}

Name MessageView::qname() const {
  if (qdcount_ == 0) throw std::logic_error("message has no question");
  WireReader r(wire_);
  r.seek(qname_offset_);
  return Name::parse(r);
}

std::span<const std::uint8_t> MessageView::ecs_payload() const noexcept {
  if (!has_ecs_) return {};
  return wire_.subspan(ecs_offset_, ecs_length_);
}

std::optional<EcsOption> MessageView::ecs() const {
  if (!has_ecs_) return std::nullopt;
  return EcsOption::parse_payload(ecs_payload());
}

}  // namespace ecsdns::dnscore
