#include "dnscore/types.h"

#include <stdexcept>

namespace ecsdns::dnscore {

std::string to_string(RRType t) {
  switch (t) {
    case RRType::A: return "A";
    case RRType::NS: return "NS";
    case RRType::CNAME: return "CNAME";
    case RRType::SOA: return "SOA";
    case RRType::PTR: return "PTR";
    case RRType::MX: return "MX";
    case RRType::TXT: return "TXT";
    case RRType::AAAA: return "AAAA";
    case RRType::OPT: return "OPT";
    case RRType::ANY: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

std::string to_string(RRClass c) {
  switch (c) {
    case RRClass::IN: return "IN";
    case RRClass::CH: return "CH";
    case RRClass::ANY: return "ANY";
  }
  return "CLASS" + std::to_string(static_cast<std::uint16_t>(c));
}

std::string to_string(Opcode o) {
  switch (o) {
    case Opcode::QUERY: return "QUERY";
    case Opcode::IQUERY: return "IQUERY";
    case Opcode::STATUS: return "STATUS";
    case Opcode::NOTIFY: return "NOTIFY";
    case Opcode::UPDATE: return "UPDATE";
  }
  return "OPCODE" + std::to_string(static_cast<int>(o));
}

std::string to_string(RCode r) {
  switch (r) {
    case RCode::NOERROR: return "NOERROR";
    case RCode::FORMERR: return "FORMERR";
    case RCode::SERVFAIL: return "SERVFAIL";
    case RCode::NXDOMAIN: return "NXDOMAIN";
    case RCode::NOTIMP: return "NOTIMP";
    case RCode::REFUSED: return "REFUSED";
    case RCode::BADVERS: return "BADVERS";
  }
  return "RCODE" + std::to_string(static_cast<std::uint16_t>(r));
}

RRType rrtype_from_string(const std::string& s) {
  if (s == "A") return RRType::A;
  if (s == "NS") return RRType::NS;
  if (s == "CNAME") return RRType::CNAME;
  if (s == "SOA") return RRType::SOA;
  if (s == "PTR") return RRType::PTR;
  if (s == "MX") return RRType::MX;
  if (s == "TXT") return RRType::TXT;
  if (s == "AAAA") return RRType::AAAA;
  if (s == "OPT") return RRType::OPT;
  if (s == "ANY") return RRType::ANY;
  throw std::invalid_argument("unknown RR type mnemonic: " + s);
}

}  // namespace ecsdns::dnscore
