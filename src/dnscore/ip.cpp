#include "dnscore/ip.h"

#include <cstdio>
#include <stdexcept>
#include <vector>

namespace ecsdns::dnscore {
namespace {

bool parse_u8(const std::string& s, std::size_t& pos, std::uint8_t& out) {
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
  unsigned value = 0;
  std::size_t digits = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    value = value * 10 + static_cast<unsigned>(s[pos] - '0');
    ++pos;
    if (++digits > 3 || value > 255) return false;
  }
  out = static_cast<std::uint8_t>(value);
  return true;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

IpAddress IpAddress::v4(std::uint32_t bits) {
  IpAddress a;
  a.family_ = IpFamily::V4;
  a.bytes_[0] = static_cast<std::uint8_t>(bits >> 24);
  a.bytes_[1] = static_cast<std::uint8_t>(bits >> 16);
  a.bytes_[2] = static_cast<std::uint8_t>(bits >> 8);
  a.bytes_[3] = static_cast<std::uint8_t>(bits);
  return a;
}

IpAddress IpAddress::v4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  IpAddress out;
  out.family_ = IpFamily::V4;
  out.bytes_[0] = a;
  out.bytes_[1] = b;
  out.bytes_[2] = c;
  out.bytes_[3] = d;
  return out;
}

IpAddress IpAddress::v6(const std::array<std::uint8_t, 16>& bytes) {
  IpAddress a;
  a.family_ = IpFamily::V6;
  a.bytes_ = bytes;
  return a;
}

IpAddress IpAddress::parse(const std::string& text) {
  if (text.find(':') == std::string::npos) {
    // IPv4 dotted quad.
    std::size_t pos = 0;
    std::array<std::uint8_t, 4> q{};
    for (std::size_t i = 0; i < 4; ++i) {
      if (i != 0) {
        if (pos >= text.size() || text[pos] != '.') {
          throw std::invalid_argument("bad IPv4 address: " + text);
        }
        ++pos;
      }
      if (!parse_u8(text, pos, q[i])) {
        throw std::invalid_argument("bad IPv4 address: " + text);
      }
    }
    if (pos != text.size()) throw std::invalid_argument("bad IPv4 address: " + text);
    return v4(q[0], q[1], q[2], q[3]);
  }

  // IPv6: split on ':' into 16-bit groups, with at most one "::" gap.
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;
  std::size_t pos = 0;
  // Leading "::"
  if (text.size() >= 2 && text[0] == ':' && text[1] == ':') {
    seen_gap = true;
    pos = 2;
  } else if (!text.empty() && text[0] == ':') {
    throw std::invalid_argument("bad IPv6 address: " + text);
  }
  while (pos < text.size()) {
    // Parse one hex group (1..4 digits).
    unsigned value = 0;
    std::size_t digits = 0;
    while (pos < text.size() && hex_value(text[pos]) >= 0) {
      value = (value << 4) | static_cast<unsigned>(hex_value(text[pos]));
      ++pos;
      if (++digits > 4) throw std::invalid_argument("bad IPv6 address: " + text);
    }
    if (digits == 0) throw std::invalid_argument("bad IPv6 address: " + text);
    (seen_gap ? tail : head).push_back(static_cast<std::uint16_t>(value));
    if (pos == text.size()) break;
    if (text[pos] != ':') throw std::invalid_argument("bad IPv6 address: " + text);
    ++pos;
    if (pos < text.size() && text[pos] == ':') {
      if (seen_gap) throw std::invalid_argument("bad IPv6 address (two '::'): " + text);
      seen_gap = true;
      ++pos;
      if (pos == text.size()) break;  // trailing "::"
    } else if (pos == text.size()) {
      throw std::invalid_argument("bad IPv6 address (trailing ':'): " + text);
    }
  }
  const std::size_t groups = head.size() + tail.size();
  if (groups > 8 || (!seen_gap && groups != 8)) {
    throw std::invalid_argument("bad IPv6 address: " + text);
  }
  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    bytes[i * 2] = static_cast<std::uint8_t>(head[i] >> 8);
    bytes[i * 2 + 1] = static_cast<std::uint8_t>(head[i] & 0xff);
  }
  const std::size_t tail_start = 8 - tail.size();
  for (std::size_t i = 0; i < tail.size(); ++i) {
    bytes[(tail_start + i) * 2] = static_cast<std::uint8_t>(tail[i] >> 8);
    bytes[(tail_start + i) * 2 + 1] = static_cast<std::uint8_t>(tail[i] & 0xff);
  }
  return v6(bytes);
}

std::uint32_t IpAddress::v4_bits() const {
  if (!is_v4()) throw std::logic_error("v4_bits() on an IPv6 address");
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) |
         static_cast<std::uint32_t>(bytes_[3]);
}

bool IpAddress::is_unspecified() const noexcept {
  for (std::size_t i = 0; i < byte_length(); ++i) {
    if (bytes_[i] != 0) return false;
  }
  return true;
}

bool IpAddress::is_loopback() const noexcept {
  if (is_v4()) return bytes_[0] == 127;
  for (int i = 0; i < 15; ++i) {
    if (bytes_[static_cast<std::size_t>(i)] != 0) return false;
  }
  return bytes_[15] == 1;
}

bool IpAddress::is_private() const noexcept {
  if (!is_v4()) return false;
  if (bytes_[0] == 10) return true;
  if (bytes_[0] == 172 && bytes_[1] >= 16 && bytes_[1] <= 31) return true;
  if (bytes_[0] == 192 && bytes_[1] == 168) return true;
  return false;
}

bool IpAddress::is_link_local() const noexcept {
  if (is_v4()) return bytes_[0] == 169 && bytes_[1] == 254;
  return bytes_[0] == 0xfe && (bytes_[1] & 0xc0) == 0x80;
}

bool IpAddress::is_unroutable() const noexcept {
  return is_unspecified() || is_loopback() || is_private() || is_link_local();
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1], bytes_[2],
                  bytes_[3]);
    return buf;
  }
  // RFC 5952-style: lowercase hex, compress the longest zero run (>= 2).
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 8; ++i) {
    groups[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(
        (bytes_[static_cast<std::size_t>(i * 2)] << 8) |
        bytes_[static_cast<std::size_t>(i * 2 + 1)]);
  }
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;
  std::string out;
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out += "::";
      i += best_len - 1;
      if (i == 7) break;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    std::snprintf(buf, sizeof(buf), "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
  }
  if (out.empty()) out = "::";
  return out;
}

bool IpAddress::operator==(const IpAddress& other) const noexcept {
  return family_ == other.family_ && bytes_ == other.bytes_;
}

std::strong_ordering IpAddress::operator<=>(const IpAddress& other) const noexcept {
  if (family_ != other.family_) {
    return family_ == IpFamily::V4 ? std::strong_ordering::less
                                   : std::strong_ordering::greater;
  }
  return bytes_ <=> other.bytes_;
}

std::size_t IpAddress::hash() const noexcept {
  std::size_t h = family_ == IpFamily::V4 ? 0x9e3779b97f4a7c15ull : 0xbf58476d1ce4e5b9ull;
  for (std::size_t i = 0; i < byte_length(); ++i) {
    h ^= bytes_[i];
    h *= 1099511628211ull;
  }
  return h;
}

IpAddress truncate_address(const IpAddress& addr, int len) {
  if (len < 0 || len > addr.bit_length()) {
    throw std::invalid_argument("prefix length " + std::to_string(len) +
                                " out of range for family");
  }
  std::array<std::uint8_t, 16> bytes = addr.bytes();
  const std::size_t total = addr.byte_length();
  const std::size_t full_bytes = static_cast<std::size_t>(len) / 8;
  const int partial_bits = len % 8;
  if (full_bytes < total && partial_bits != 0) {
    const std::uint8_t mask =
        static_cast<std::uint8_t>(0xff << (8 - partial_bits));
    bytes[full_bytes] &= mask;
  }
  for (std::size_t i = full_bytes + (partial_bits != 0 ? 1 : 0); i < total; ++i) {
    bytes[i] = 0;
  }
  if (addr.is_v4()) {
    return IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3]);
  }
  return IpAddress::v6(bytes);
}

std::string reverse_pointer_name(const IpAddress& addr) {
  char buf[80];
  if (addr.is_v4()) {
    const auto& b = addr.bytes();
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u.in-addr.arpa", b[3], b[2], b[1],
                  b[0]);
    return buf;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(72);
  for (int i = 15; i >= 0; --i) {
    const std::uint8_t byte = addr.bytes()[static_cast<std::size_t>(i)];
    out.push_back(kHex[byte & 0xf]);
    out.push_back('.');
    out.push_back(kHex[byte >> 4]);
    out.push_back('.');
  }
  out += "ip6.arpa";
  return out;
}

Prefix::Prefix(const IpAddress& address, int len)
    : address_(truncate_address(address, len)), length_(len) {}

Prefix Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("prefix missing '/': " + text);
  }
  const IpAddress addr = IpAddress::parse(text.substr(0, slash));
  const int len = std::stoi(text.substr(slash + 1));
  return Prefix{addr, len};
}

bool Prefix::contains(const IpAddress& addr) const noexcept {
  if (addr.family() != address_.family()) return false;
  return truncate_address(addr, length_) == address_;
}

bool Prefix::contains(const Prefix& other) const noexcept {
  if (other.family() != family() || other.length_ < length_) return false;
  return contains(other.address_);
}

Prefix Prefix::truncated(int len) const { return Prefix{address_, len}; }

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace ecsdns::dnscore
