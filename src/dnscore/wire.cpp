#include "dnscore/wire.h"

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {

void WireReader::require(std::size_t n) const {
  ECSDNS_DCHECK(pos_ <= data_.size());
  if (remaining() < n) {
    throw WireFormatError("truncated message: need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) +
                          ", have " + std::to_string(remaining()));
  }
}

std::uint8_t WireReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::span<const std::uint8_t> WireReader::bytes(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  ECSDNS_DCHECK(pos_ <= data_.size());
  return out;
}

void WireReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
  ECSDNS_DCHECK(pos_ <= data_.size());
}

void WireReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    throw WireFormatError("seek beyond buffer: " + std::to_string(offset));
  }
  pos_ = offset;
}

std::uint8_t WireReader::peek_at(std::size_t offset) const {
  if (offset >= data_.size()) {
    throw WireFormatError("peek beyond buffer: " + std::to_string(offset));
  }
  return data_[offset];
}

// The appends below are the one sanctioned growth site on the noalloc
// packet path: in external (pooled) mode the buffer arrived from a
// BufferPool with capacity converged on the run's packet sizes, so the
// steady state never reallocates — run.allocations in the perf gate
// enforces that dynamically.

// ecstidy:allow(noalloc): amortized append into a pooled buffer whose
// capacity has converged; steady state never grows (perf gate enforces).
void WireWriter::u8(std::uint8_t v) { buf_->push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  // ecstidy:allow(noalloc): amortized append into pooled capacity (see u8).
  buf_->push_back(static_cast<std::uint8_t>(v >> 8));
  // ecstidy:allow(noalloc): amortized append into pooled capacity (see u8).
  buf_->push_back(static_cast<std::uint8_t>(v & 0xff));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    // ecstidy:allow(noalloc): amortized append into pooled capacity (see u8).
    buf_->push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void WireWriter::bytes(std::span<const std::uint8_t> b) {
  // ecstidy:allow(noalloc): amortized append into pooled capacity (see u8).
  buf_->insert(buf_->end(), b.begin(), b.end());
}

std::size_t WireWriter::reserve_u16() {
  const std::size_t at = buf_->size();
  // ecstidy:allow(noalloc): amortized append into pooled capacity (see u8).
  buf_->push_back(0);
  // ecstidy:allow(noalloc): amortized append into pooled capacity (see u8).
  buf_->push_back(0);
  return at;
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  // Patching a slot that was never reserved is a caller bug, not bad input.
  ECSDNS_CHECK(offset + 2 <= buf_->size());
  (*buf_)[offset] = static_cast<std::uint8_t>(v >> 8);
  (*buf_)[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

std::string hex_dump(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace ecsdns::dnscore
