// Bounds-checked big-endian wire codec used by all DNS serialization.
//
// DNS is a binary big-endian protocol (RFC 1035 §3). Every parse in this
// library goes through WireReader, which throws WireFormatError instead of
// reading out of bounds, and every serialization goes through WireWriter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnscore/annotations.h"

namespace ecsdns::dnscore {

// Thrown on any malformed wire input: truncated fields, label overruns,
// compression-pointer loops, invalid option payloads, and the like.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what) : std::runtime_error(what) {}
};

// Sequential reader over an immutable byte buffer. The reader never owns the
// bytes; callers keep the buffer alive for the reader's lifetime.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t offset() const noexcept { return pos_; }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  // Readers are on the zero-copy hot path (every MessageView construction
  // goes through them); they only allocate when building the diagnostic for
  // a WireFormatError throw.
  ECSDNS_NOALLOC std::uint8_t u8();
  ECSDNS_NOALLOC std::uint16_t u16();
  ECSDNS_NOALLOC std::uint32_t u32();
  // Reads exactly n bytes, throwing if fewer remain.
  ECSDNS_NOALLOC std::span<const std::uint8_t> bytes(std::size_t n);
  ECSDNS_NOALLOC void skip(std::size_t n);
  // Repositions the cursor (used to follow DNS name-compression pointers).
  ECSDNS_NOALLOC void seek(std::size_t offset);
  // Peek a byte at an absolute offset without moving the cursor.
  ECSDNS_NOALLOC std::uint8_t peek_at(std::size_t offset) const;

 private:
  ECSDNS_NOALLOC void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Append-only big-endian writer. Supports patching previously written 16-bit
// fields, which DNS needs for RDLENGTH and for message section counts.
//
// The writer targets either its own internal vector (default constructor)
// or a caller-supplied one (the pooled-buffer hot path: a recycled buffer's
// capacity is reused instead of growing a fresh vector per packet). In
// external mode the target is cleared on adoption and must outlive the
// writer; the bytes land directly in the caller's vector, so there is
// nothing to take() back out.
class WireWriter {
 public:
  WireWriter() noexcept : buf_(&owned_) {}
  explicit WireWriter(std::vector<std::uint8_t>& external) noexcept
      : buf_(&external) {
    buf_->clear();
  }

  WireWriter(const WireWriter&) = delete;
  WireWriter& operator=(const WireWriter&) = delete;

  std::size_t size() const noexcept { return buf_->size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return *buf_; }
  // Moves the target buffer out. In external mode this steals the caller's
  // vector — prefer reading the vector directly there.
  std::vector<std::uint8_t> take() && { return std::move(*buf_); }

  // Appends are amortized-noalloc: in external (pooled-buffer) mode the
  // target's capacity has converged on the run's packet sizes, so the
  // steady state never grows. The perf gate's allocation counter enforces
  // this dynamically; the annotation keeps new calls on the path honest.
  ECSDNS_NOALLOC void u8(std::uint8_t v);
  ECSDNS_NOALLOC void u16(std::uint16_t v);
  ECSDNS_NOALLOC void u32(std::uint32_t v);
  ECSDNS_NOALLOC void bytes(std::span<const std::uint8_t> b);

  // Reserves a 16-bit slot and returns its offset for later patching.
  ECSDNS_NOALLOC std::size_t reserve_u16();
  ECSDNS_NOALLOC void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* buf_;
};

// Renders bytes as lowercase hex pairs separated by spaces; debugging aid.
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace ecsdns::dnscore
