#include "dnscore/name.h"

#include <algorithm>
#include <stdexcept>

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {
namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;
// Packed form excludes the root byte, so it has one octet less headroom.
constexpr std::size_t kMaxPacked = kMaxName - 1;
constexpr std::uint8_t kPointerMask = 0xc0;
// A 14-bit pointer can target at most 0x3fff distinct offsets and each hop
// must move strictly backwards, so any chain longer than this is a loop.
constexpr std::size_t kMaxPointerJumps = 64;

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::uint8_t lower_octet(std::uint8_t c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<std::uint8_t>(c - 'A' + 'a') : c;
}

// Case-insensitive label comparison returning <0, 0, >0.
int label_cmp(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = ascii_lower(a[i]);
    const char cb = ascii_lower(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

// Builds a packed name in a stack buffer during parsing; committed into a
// Name (and onto the heap, if large) only once the whole name validated.
struct PackedBuilder {
  std::uint8_t octets[kMaxPacked];
  std::size_t size = 0;
  std::size_t labels = 0;

  void append_label(const char* data, std::size_t len) {
    if (len == 0) throw WireFormatError("empty label in name");
    if (len > kMaxLabel) {
      throw WireFormatError("label exceeds 63 octets: " + std::string(data, len));
    }
    if (size + 1 + len > kMaxPacked) {
      throw WireFormatError("name exceeds 255 octets");
    }
    octets[size++] = static_cast<std::uint8_t>(len);
    for (std::size_t i = 0; i < len; ++i) {
      octets[size++] = static_cast<std::uint8_t>(data[i]);
    }
    ++labels;
  }
};

}  // namespace

Name::Name(const std::uint8_t* packed, std::size_t size, std::size_t labels) {
  adopt(packed, size, labels);
}

void Name::adopt(const std::uint8_t* packed, std::size_t size, std::size_t labels) {
  ECSDNS_DCHECK(size <= kMaxPacked);
  ECSDNS_DCHECK(labels <= kMaxPacked / 2 + 1);
  packed_size_ = static_cast<std::uint8_t>(size);
  label_count_ = static_cast<std::uint8_t>(labels);
  std::uint8_t* dst =
      size <= kInlineCapacity ? storage_.inline_octets : (storage_.heap = new std::uint8_t[size]);
  std::copy(packed, packed + size, dst);
}

void Name::release() noexcept {
  if (!is_inline()) delete[] storage_.heap;
  packed_size_ = 0;
  label_count_ = 0;
}

Name::Name(const Name& other) : hash_(other.hash_.load(std::memory_order_relaxed)) {
  adopt(other.packed(), other.packed_size_, other.label_count_);
}

Name::Name(Name&& other) noexcept
    : hash_(other.hash_.load(std::memory_order_relaxed)) {
  packed_size_ = other.packed_size_;
  label_count_ = other.label_count_;
  if (is_inline()) {
    std::copy(other.storage_.inline_octets,
              other.storage_.inline_octets + packed_size_, storage_.inline_octets);
  } else {
    storage_.heap = other.storage_.heap;  // steal the block
    other.packed_size_ = 0;
    other.label_count_ = 0;
  }
}

Name& Name::operator=(const Name& other) {
  if (this == &other) return *this;
  release();
  hash_.store(other.hash_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  adopt(other.packed(), other.packed_size_, other.label_count_);
  return *this;
}

Name& Name::operator=(Name&& other) noexcept {
  if (this == &other) return *this;
  release();
  hash_.store(other.hash_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  packed_size_ = other.packed_size_;
  label_count_ = other.label_count_;
  if (is_inline()) {
    std::copy(other.storage_.inline_octets,
              other.storage_.inline_octets + packed_size_, storage_.inline_octets);
  } else {
    storage_.heap = other.storage_.heap;
    other.packed_size_ = 0;
    other.label_count_ = 0;
  }
  return *this;
}

std::size_t Name::label_offset(std::size_t i) const noexcept {
  ECSDNS_DCHECK(i < label_count_);
  const std::uint8_t* p = packed();
  std::size_t off = 0;
  while (i-- > 0) off += 1u + p[off];
  return off;
}

std::string_view Name::label(std::size_t i) const noexcept {
  const std::size_t off = label_offset(i);
  const std::uint8_t* p = packed();
  return {reinterpret_cast<const char*>(p + off + 1), p[off]};
}

std::vector<std::string> Name::labels() const {
  std::vector<std::string> out;
  out.reserve(label_count_);
  const std::uint8_t* p = packed();
  for (std::size_t off = 0; off < packed_size_; off += 1u + p[off]) {
    out.emplace_back(reinterpret_cast<const char*>(p + off + 1), p[off]);
  }
  return out;
}

Name Name::from_string(const std::string& text) {
  if (text.empty() || text == ".") return Name{};
  PackedBuilder packed;
  char current[kMaxLabel + 1];  // one slack octet so overlong labels throw
  std::size_t current_len = 0;
  const auto push_octet = [&](char c) {
    if (current_len > kMaxLabel) {
      throw WireFormatError("label exceeds 63 octets: " + text);
    }
    current[current_len++] = c;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        throw WireFormatError("trailing backslash in name: " + text);
      }
      push_octet(text[++i]);
    } else if (c == '.') {
      if (current_len == 0) throw WireFormatError("empty label in name: " + text);
      packed.append_label(current, current_len);
      current_len = 0;
    } else {
      push_octet(c);
    }
  }
  if (current_len != 0) packed.append_label(current, current_len);
  return Name{packed.octets, packed.size, packed.labels};
}

Name Name::parse(WireReader& reader) {
  PackedBuilder packed;
  // After the first compression pointer we keep reading at the pointed-to
  // offset but remember where the name's wire representation ended.
  std::optional<std::size_t> resume_at;
  std::size_t jumps = 0;

  for (;;) {
    const std::size_t label_start = reader.offset();
    const std::uint8_t len = reader.u8();
    if ((len & kPointerMask) == kPointerMask) {
      const std::uint8_t low = reader.u8();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low;
      if (target >= label_start) {
        throw WireFormatError("compression pointer does not point backwards");
      }
      if (++jumps > kMaxPointerJumps) {
        throw WireFormatError("compression pointer loop");
      }
      if (!resume_at) resume_at = reader.offset();
      reader.seek(target);
      continue;
    }
    if ((len & kPointerMask) != 0) {
      throw WireFormatError("reserved label type 0x" + std::to_string(len >> 6));
    }
    if (len == 0) break;
    if (packed.size + 1u + len > kMaxPacked) {
      throw WireFormatError("decompressed name exceeds 255 octets");
    }
    const auto raw = reader.bytes(len);
    packed.append_label(reinterpret_cast<const char*>(raw.data()), raw.size());
  }
  ECSDNS_DCHECK(packed.size <= kMaxPacked);
  ECSDNS_DCHECK(jumps <= kMaxPointerJumps);
  if (resume_at) reader.seek(*resume_at);
  return Name{packed.octets, packed.size, packed.labels};
}

std::size_t Name::skip(WireReader& reader) {
  // Mirror of parse() above with the label copies removed. Every validation
  // branch — and therefore every WireFormatError — must stay in lockstep
  // with parse(): the MessageView differential oracle holds the two to
  // byte-identical accept/reject behavior.
  std::size_t packed_size = 0;
  std::size_t labels = 0;
  std::optional<std::size_t> resume_at;
  std::size_t jumps = 0;

  for (;;) {
    const std::size_t label_start = reader.offset();
    const std::uint8_t len = reader.u8();
    if ((len & kPointerMask) == kPointerMask) {
      const std::uint8_t low = reader.u8();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low;
      if (target >= label_start) {
        throw WireFormatError("compression pointer does not point backwards");
      }
      if (++jumps > kMaxPointerJumps) {
        throw WireFormatError("compression pointer loop");
      }
      if (!resume_at) resume_at = reader.offset();
      reader.seek(target);
      continue;
    }
    if ((len & kPointerMask) != 0) {
      throw WireFormatError("reserved label type 0x" + std::to_string(len >> 6));
    }
    if (len == 0) break;
    if (packed_size + 1u + len > kMaxPacked) {
      throw WireFormatError("decompressed name exceeds 255 octets");
    }
    reader.skip(len);
    packed_size += 1u + len;
    ++labels;
  }
  if (resume_at) reader.seek(*resume_at);
  return labels;
}

void Name::serialize(WireWriter& writer) const {
  // The packed representation IS the uncompressed wire form minus the root
  // byte, so serialization is a single bulk append.
  writer.bytes({packed(), packed_size_});
  writer.u8(0);
}

bool Name::CompressionTable::SuffixRef::operator==(
    const SuffixRef& other) const noexcept {
  if (size != other.size) return false;
  // Interior length octets are < 64 and thus fixed points of lower_octet,
  // so the whole suffix folds through one pass (same trick as Name::==).
  for (std::uint16_t i = 0; i < size; ++i) {
    if (lower_octet(data[i]) != lower_octet(other.data[i])) return false;
  }
  return true;
}

std::size_t Name::CompressionTable::SuffixHash::operator()(
    const SuffixRef& s) const noexcept {
  // Case-insensitive FNV-1a over the packed suffix octets. Length octets
  // participate, which keeps ("ab","c") and ("a","bc") distinct.
  std::uint64_t h = 14695981039346656037ull;
  for (std::uint16_t i = 0; i < s.size; ++i) {
    h ^= lower_octet(s.data[i]);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

std::optional<std::uint16_t> Name::CompressionTable::find_suffix(
    SuffixRef suffix) const {
  const std::uint16_t* found = offsets_.find(suffix);
  if (found == nullptr) return std::nullopt;
  return *found;
}

void Name::CompressionTable::remember_suffix(SuffixRef suffix,
                                             std::size_t offset) {
  if (offset > 0x3fff) return;  // unreachable by a 14-bit pointer
  offsets_.insert_or_assign(suffix, static_cast<std::uint16_t>(offset));
}

std::optional<std::uint16_t> Name::CompressionTable::find(
    const Name& name, std::size_t from_label) const {
  if (from_label >= name.label_count()) return std::nullopt;
  const std::size_t off = name.label_offset(from_label);
  return find_suffix(SuffixRef{
      name.packed() + off,
      static_cast<std::uint16_t>(name.packed_size_ - off)});
}

void Name::CompressionTable::remember(const Name& name, std::size_t from_label,
                                      std::size_t offset) {
  if (from_label >= name.label_count()) return;
  const std::size_t off = name.label_offset(from_label);
  remember_suffix(SuffixRef{name.packed() + off,
                            static_cast<std::uint16_t>(name.packed_size_ - off)},
                  offset);
}

void Name::serialize_compressed(WireWriter& writer, CompressionTable& table) const {
  const std::uint8_t* p = packed();
  for (std::size_t off = 0; off < packed_size_;) {
    const CompressionTable::SuffixRef suffix{
        p + off, static_cast<std::uint16_t>(packed_size_ - off)};
    if (const auto target = table.find_suffix(suffix)) {
      writer.u16(static_cast<std::uint16_t>(0xc000 | *target));
      return;
    }
    // ecstidy:allow(noalloc): suffix-index growth is bounded by this
    // message's distinct name suffixes; the table is per-message and tiny.
    table.remember_suffix(suffix, writer.size());
    const std::size_t len = p[off];
    ECSDNS_DCHECK(len > 0 && len <= kMaxLabel);
    writer.bytes({p + off, 1 + len});
    off += 1 + len;
  }
  writer.u8(0);
}

std::string Name::to_string() const {
  if (label_count_ == 0) return ".";
  std::string out;
  out.reserve(packed_size_);
  const std::uint8_t* p = packed();
  bool first = true;
  for (std::size_t off = 0; off < packed_size_;) {
    if (!first) out.push_back('.');
    first = false;
    const std::size_t len = p[off++];
    for (std::size_t i = 0; i < len; ++i) {
      const char c = static_cast<char>(p[off + i]);
      if (c == '.' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    off += len;
  }
  return out;
}

bool Name::is_subdomain_of(const Name& zone) const {
  if (zone.label_count_ > label_count_) return false;
  for (std::size_t i = 0; i < zone.label_count_; ++i) {
    if (label_cmp(label(label_count_ - 1 - i),
                  zone.label(zone.label_count_ - 1 - i)) != 0) {
      return false;
    }
  }
  return true;
}

Name Name::parent() const {
  if (label_count_ == 0) throw std::logic_error("root name has no parent");
  const std::uint8_t* p = packed();
  const std::size_t skip = 1u + p[0];
  return Name{p + skip, packed_size_ - skip, label_count_ - 1u};
}

Name Name::second_level_domain() const {
  if (label_count_ <= 2) return *this;
  const std::size_t off = label_offset(label_count_ - 2);
  return Name{packed() + off, packed_size_ - off, 2};
}

Name Name::prepend(std::string_view label) const {
  if (label.empty()) throw WireFormatError("empty label in name");
  if (label.size() > kMaxLabel) {
    throw WireFormatError("label exceeds 63 octets: " + std::string(label));
  }
  const std::size_t new_size = 1 + label.size() + packed_size_;
  if (new_size > kMaxPacked) throw WireFormatError("name exceeds 255 octets");
  std::uint8_t octets[kMaxPacked];
  octets[0] = static_cast<std::uint8_t>(label.size());
  std::copy(label.begin(), label.end(), reinterpret_cast<char*>(octets + 1));
  std::copy(packed(), packed() + packed_size_, octets + 1 + label.size());
  return Name{octets, new_size, label_count_ + 1u};
}

bool Name::operator==(const Name& other) const noexcept {
  if (packed_size_ != other.packed_size_ || label_count_ != other.label_count_) {
    return false;
  }
  // Cached hashes are equality witnesses: equal names hash equal, so two
  // different cached values prove inequality without touching the octets.
  const std::uint64_t ha = hash_.load(std::memory_order_relaxed);
  const std::uint64_t hb = other.hash_.load(std::memory_order_relaxed);
  if (ha != kHashUnset && hb != kHashUnset && ha != hb) return false;
  const std::uint8_t* a = packed();
  const std::uint8_t* b = other.packed();
  // Byte-identical buffers are the overwhelmingly common case (names in the
  // simulators come from a single spelling), and std::equal vectorizes where
  // the folding loop cannot.
  if (std::equal(a, a + packed_size_, b)) return true;
  // Length octets are < 64 and thus fixed points of lower_octet, so the
  // whole packed buffer — labels and interior length bytes alike — can be
  // compared through one case-folding pass.
  for (std::size_t i = 0; i < packed_size_; ++i) {
    if (lower_octet(a[i]) != lower_octet(b[i])) return false;
  }
  return true;
}

bool Name::operator<(const Name& other) const noexcept {
  // Canonical DNS ordering compares labels from the most significant (root)
  // side so that subdomains sort adjacent to their parents.
  const std::size_t common = std::min(label_count_, other.label_count_);
  for (std::size_t i = 0; i < common; ++i) {
    const int c = label_cmp(label(label_count_ - 1 - i),
                            other.label(other.label_count_ - 1 - i));
    if (c != 0) return c < 0;
  }
  return label_count_ < other.label_count_;
}

std::size_t Name::hash() const noexcept {
  const std::uint64_t cached = hash_.load(std::memory_order_relaxed);
  if (cached != kHashUnset) return static_cast<std::size_t>(cached);
  std::uint64_t h = 14695981039346656037ull;
  const std::uint8_t* p = packed();
  for (std::size_t off = 0; off < packed_size_;) {
    const std::size_t len = p[off++];
    for (std::size_t i = 0; i < len; ++i) {
      h ^= lower_octet(p[off + i]);
      h *= 1099511628211ull;
    }
    off += len;
    h ^= 0xff;  // label separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ull;
  }
  if (h == kHashUnset) h = 0x9e3779b97f4a7c15ull;  // keep the sentinel free
  hash_.store(h, std::memory_order_relaxed);
  return static_cast<std::size_t>(h);
}

}  // namespace ecsdns::dnscore
