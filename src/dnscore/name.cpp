#include "dnscore/name.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "dnscore/contracts.h"

namespace ecsdns::dnscore {
namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;
constexpr std::uint8_t kPointerMask = 0xc0;
// A 14-bit pointer can target at most 0x3fff distinct offsets and each hop
// must move strictly backwards, so any chain longer than this is a loop.
constexpr std::size_t kMaxPointerJumps = 64;

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// Case-insensitive label comparison returning <0, 0, >0.
int label_cmp(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = ascii_lower(a[i]);
    const char cb = ascii_lower(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace

Name::Name(std::vector<std::string> labels) : labels_(std::move(labels)) { validate(); }

void Name::validate() const {
  std::size_t total = 1;  // root byte
  for (const auto& label : labels_) {
    if (label.empty()) throw WireFormatError("empty label in name");
    if (label.size() > kMaxLabel) {
      throw WireFormatError("label exceeds 63 octets: " + label);
    }
    total += label.size() + 1;
  }
  if (total > kMaxName) throw WireFormatError("name exceeds 255 octets");
}

Name Name::from_string(const std::string& text) {
  if (text.empty() || text == ".") return Name{};
  std::vector<std::string> labels;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        throw WireFormatError("trailing backslash in name: " + text);
      }
      current.push_back(text[++i]);
    } else if (c == '.') {
      if (current.empty()) throw WireFormatError("empty label in name: " + text);
      labels.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) labels.push_back(std::move(current));
  return Name{std::move(labels)};
}

Name Name::parse(WireReader& reader) {
  std::vector<std::string> labels;
  std::size_t total = 1;
  // After the first compression pointer we keep reading at the pointed-to
  // offset but remember where the name's wire representation ended.
  std::optional<std::size_t> resume_at;
  std::size_t jumps = 0;

  for (;;) {
    const std::size_t label_start = reader.offset();
    const std::uint8_t len = reader.u8();
    if ((len & kPointerMask) == kPointerMask) {
      const std::uint8_t low = reader.u8();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low;
      if (target >= label_start) {
        throw WireFormatError("compression pointer does not point backwards");
      }
      if (++jumps > kMaxPointerJumps) {
        throw WireFormatError("compression pointer loop");
      }
      if (!resume_at) resume_at = reader.offset();
      reader.seek(target);
      continue;
    }
    if ((len & kPointerMask) != 0) {
      throw WireFormatError("reserved label type 0x" + std::to_string(len >> 6));
    }
    if (len == 0) break;
    total += static_cast<std::size_t>(len) + 1;
    if (total > kMaxName) throw WireFormatError("decompressed name exceeds 255 octets");
    const auto raw = reader.bytes(len);
    labels.emplace_back(reinterpret_cast<const char*>(raw.data()), raw.size());
  }
  ECSDNS_DCHECK(total <= kMaxName);
  ECSDNS_DCHECK(jumps <= kMaxPointerJumps);
  if (resume_at) reader.seek(*resume_at);
  return Name{std::move(labels)};
}

std::size_t Name::wire_length() const noexcept {
  std::size_t total = 1;
  for (const auto& label : labels_) total += label.size() + 1;
  return total;
}

void Name::serialize(WireWriter& writer) const {
  for (const auto& label : labels_) {
    // validate() bounded every label at construction.
    ECSDNS_DCHECK(!label.empty() && label.size() <= kMaxLabel);
    writer.u8(static_cast<std::uint8_t>(label.size()));
    writer.bytes({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  }
  writer.u8(0);
}

namespace {

// Canonical key for a name suffix starting at `from_label`: lowercased
// labels joined by an unescapable separator.
std::string suffix_key(const std::vector<std::string>& labels, std::size_t from_label) {
  std::string key;
  for (std::size_t i = from_label; i < labels.size(); ++i) {
    for (const char c : labels[i]) key.push_back(ascii_lower(c));
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

std::optional<std::uint16_t> Name::CompressionTable::find(
    const Name& name, std::size_t from_label) const {
  const auto it = offsets_.find(suffix_key(name.labels(), from_label));
  if (it == offsets_.end()) return std::nullopt;
  return it->second;
}

void Name::CompressionTable::remember(const Name& name, std::size_t from_label,
                                      std::size_t offset) {
  if (offset > 0x3fff) return;  // unreachable by a 14-bit pointer
  offsets_.emplace(suffix_key(name.labels(), from_label),
                   static_cast<std::uint16_t>(offset));
}

void Name::serialize_compressed(WireWriter& writer, CompressionTable& table) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (const auto target = table.find(*this, i)) {
      writer.u16(static_cast<std::uint16_t>(0xc000 | *target));
      return;
    }
    table.remember(*this, i, writer.size());
    const std::string& label = labels_[i];
    ECSDNS_DCHECK(!label.empty() && label.size() <= kMaxLabel);
    writer.u8(static_cast<std::uint8_t>(label.size()));
    writer.bytes({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  }
  writer.u8(0);
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i != 0) out.push_back('.');
    for (const char c : labels_[i]) {
      if (c == '.' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
  }
  return out;
}

bool Name::is_subdomain_of(const Name& zone) const {
  if (zone.labels_.size() > labels_.size()) return false;
  auto it = labels_.rbegin();
  for (auto zit = zone.labels_.rbegin(); zit != zone.labels_.rend(); ++zit, ++it) {
    if (label_cmp(*it, *zit) != 0) return false;
  }
  return true;
}

Name Name::parent() const {
  if (labels_.empty()) throw std::logic_error("root name has no parent");
  return Name{std::vector<std::string>(labels_.begin() + 1, labels_.end())};
}

Name Name::second_level_domain() const {
  if (labels_.size() <= 2) return *this;
  return Name{std::vector<std::string>(labels_.end() - 2, labels_.end())};
}

Name Name::prepend(const std::string& label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.push_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return Name{std::move(labels)};
}

bool Name::operator==(const Name& other) const noexcept {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (label_cmp(labels_[i], other.labels_[i]) != 0) return false;
  }
  return true;
}

bool Name::operator<(const Name& other) const noexcept {
  // Canonical DNS ordering compares labels from the most significant (root)
  // side so that subdomains sort adjacent to their parents.
  auto a = labels_.rbegin();
  auto b = other.labels_.rbegin();
  for (; a != labels_.rend() && b != other.labels_.rend(); ++a, ++b) {
    const int c = label_cmp(*a, *b);
    if (c != 0) return c < 0;
  }
  return labels_.size() < other.labels_.size();
}

std::size_t Name::hash() const noexcept {
  std::size_t h = 14695981039346656037ull;
  for (const auto& label : labels_) {
    for (const char c : label) {
      h ^= static_cast<std::size_t>(static_cast<unsigned char>(ascii_lower(c)));
      h *= 1099511628211ull;
    }
    h ^= 0xff;  // label separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ecsdns::dnscore
