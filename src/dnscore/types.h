// Core DNS enumerations (RFC 1035, RFC 6891) and their string forms.
#pragma once

#include <cstdint>
#include <string>

namespace ecsdns::dnscore {

// Resource record types. Values are the IANA-assigned wire values.
enum class RRType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  OPT = 41,   // EDNS0 pseudo-RR (RFC 6891)
  ANY = 255,
};

enum class RRClass : std::uint16_t {
  IN = 1,
  CH = 3,
  ANY = 255,
};

enum class Opcode : std::uint8_t {
  QUERY = 0,
  IQUERY = 1,
  STATUS = 2,
  NOTIFY = 4,
  UPDATE = 5,
};

// Response codes. Values above 15 require the EDNS0 extended-rcode field.
enum class RCode : std::uint16_t {
  NOERROR = 0,
  FORMERR = 1,
  SERVFAIL = 2,
  NXDOMAIN = 3,
  NOTIMP = 4,
  REFUSED = 5,
  BADVERS = 16,
};

// EDNS0 option codes relevant to this library (RFC 7871 assigns 8 to ECS).
enum class EdnsOptionCode : std::uint16_t {
  ECS = 8,
  COOKIE = 10,
};

// Address family numbers used inside the ECS option (RFC 7871 §6 refers to
// the IANA Address Family Numbers registry).
enum class EcsFamily : std::uint16_t {
  IPv4 = 1,
  IPv6 = 2,
};

std::string to_string(RRType t);
std::string to_string(RRClass c);
std::string to_string(Opcode o);
std::string to_string(RCode r);

// Parses "A", "AAAA", ... (as used by the zone loader); throws
// std::invalid_argument on unknown mnemonics.
RRType rrtype_from_string(const std::string& s);

}  // namespace ecsdns::dnscore
