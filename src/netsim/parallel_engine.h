// Sharded parallel execution for the discrete-event simulator.
//
// The population of a simulation is partitioned by stable hash into N
// shards. Each shard owns its own EventLoop, its own RNG stream (split from
// the run seed, see netsim::stream_seed), and its own MetricsRegistry, so
// nothing on the hot path is shared between threads. Shards advance in
// conservative lock-step epochs: during an epoch a shard may only touch its
// own state; anything destined for another shard goes into a per-pair SPSC
// mailbox that the receiver drains at the next epoch boundary. A message
// scheduled at a simulation time must therefore lie at least one epoch in
// the future — which is safe exactly when the epoch length is no larger
// than the minimum cross-shard latency of the network model, because no
// simulated packet can cross shards faster than that.
//
// The determinism contract (docs/parallel_engine.md): with a fixed seed and
// shard count, results are bit-identical regardless of the thread count or
// the OS scheduler. Within an epoch shards share nothing; between epochs
// mailboxes are drained in (source shard, FIFO) order; per-shard registries
// merge in shard-index order with commutative rules. Programs that also
// need identical results across *shard counts* (the serial-equivalence
// oracle) must additionally make their own cross-shard reductions
// order-independent — the sharded cache replay in measurement/cache_sim.cpp
// is the worked example.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "netsim/arena.h"
#include "netsim/buffer_pool.h"
#include "netsim/event_loop.h"
#include "netsim/geo.h"
#include "netsim/rng.h"
#include "obs/metrics.h"

namespace ecsdns::netsim {

class ParallelEngine;

struct ParallelConfig {
  std::size_t shards = 1;
  // Worker threads; 0 = one per shard, capped at the hardware concurrency.
  // Thread count never affects results, only wall-clock time.
  std::size_t threads = 0;
  // Epoch (lookahead) length. Event-driven programs that exchange
  // simulation messages must keep this <= conservative_epoch(model);
  // programs whose cross-shard traffic is pure accounting (the cache
  // replay) may use any epoch.
  SimTime epoch = kSecond;
  std::uint64_t seed = 1;
  // Pin worker w to Topology::detect().pin_order()[w % cores] — one shard
  // per physical core, SMT siblings last. When the affinity syscall is
  // denied (containers, cgroup cpusets, restricted CI) the engine prints
  // one warning to stderr and runs unpinned; results are byte-identical
  // either way, pinning only steadies the per-epoch barrier latency.
  // With pinning requested the engine always spawns worker threads (even
  // for threads == 1) so the caller's own affinity mask is never touched.
  bool pin_threads = false;
  // Explicit pin targets overriding topology detection. Tests pass an
  // invalid CPU ({-1}) to exercise the warn-and-run-unpinned fallback
  // deterministically. Ignored unless pin_threads is set.
  std::vector<int> pin_cpus;
  // Record wall-clock runtime metrics into the per-shard registries:
  // an `engine.shard<i>.busy_us` counter per shard (time spent stepping
  // that shard — stragglers show up as outliers instead of being
  // inferred) and an `engine.barrier_wait_us` log2 histogram per worker
  // (time parked at the inter-round barrier). Off by default: timing is
  // run metadata — like `wall_ms` — exempt from the byte-identity
  // contract, so only benches and live runs turn it on. The determinism
  // tests compare full metric exports and must keep it off.
  bool runtime_metrics = false;
};

// The largest epoch that is conservatively safe for simulation messages:
// the minimum one-way cross-shard latency of the latency model (two nodes
// at zero distance still pay the fixed per-direction overhead).
SimTime conservative_epoch(const LatencyModel& model);

// Everything a shard owns. Handed to the program's callbacks; never shared
// across threads within an epoch. Aligned to a cache line so two shards'
// hot members (loop cursor, RNG state) never share one.
class alignas(64) ShardContext {
 public:
  using Mail = std::function<void(ShardContext&)>;

  std::size_t index() const noexcept { return index_; }
  std::size_t shard_count() const noexcept;
  EventLoop& loop() noexcept { return loop_; }
  Rng& rng() noexcept { return rng_; }
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  // Shard-local wire-buffer freelist (never shared across threads, like
  // everything else here); programs that serialize packets inside epochs
  // recycle buffers through it instead of allocating per event.
  BufferPool& buffer_pool() noexcept { return pool_; }
  // Per-epoch scratch arena for batches shipped through post(): memory
  // allocated here during round k stays valid while receivers read it in
  // round k+1 and is recycled at the start of round k+2 (the engine
  // double-buffers two arenas by epoch parity, mirroring the mailboxes).
  // Never hand its memory to anything that outlives that window.
  Arena& epoch_arena() noexcept;
  // End of the epoch currently executing (exclusive).
  SimTime epoch_end() const noexcept;

  // Control-plane message: runs on shard `to` at the start of the next
  // epoch, before that shard's events. Delivery order is deterministic:
  // ascending source shard index, FIFO within a source. Carries no
  // simulation timestamp — use it for accounting streams and merges.
  void post(std::size_t to, Mail mail);

  // Simulation message: scheduled on shard `to`'s event loop at absolute
  // time `when`. Enforces the conservative bound `when >= epoch_end()` —
  // the receiver may already have advanced to the epoch boundary, so an
  // earlier delivery would rewind its clock.
  void post_at(std::size_t to, SimTime when, EventLoop::Callback fn);

  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;

 private:
  friend class ParallelEngine;
  ShardContext(ParallelEngine& engine, std::size_t index, std::uint64_t seed)
      : engine_(engine), index_(index), rng_(Rng::stream(seed, index)) {}

  ParallelEngine& engine_;
  std::size_t index_;
  EventLoop loop_;
  Rng rng_;
  obs::MetricsRegistry metrics_;
  BufferPool pool_;
  Arena arenas_[2];
};

// One shard's slice of a simulation. The engine drives each program
// through setup -> {epoch}* -> finish on its own shard.
class ShardProgram {
 public:
  virtual ~ShardProgram() = default;

  // Runs once before the first epoch, on the shard's context.
  virtual void setup(ShardContext&) {}

  // Advance local work to exactly `epoch_end`. Called every epoch after
  // the shard's inbound mail was drained; the engine runs
  // loop().run_until(epoch_end) afterwards, so event-driven programs can
  // leave this empty.
  virtual void epoch(ShardContext&, SimTime epoch_end) = 0;

  // True once this shard has no local work left (mail in flight is the
  // engine's business). The engine keeps running epochs while any program
  // is unfinished, any loop has pending events, or any mailbox is
  // non-empty.
  virtual bool done(const ShardContext&) const = 0;

  // Runs after global termination, serially in shard-index order — the
  // place for deterministic result extraction.
  virtual void finish(ShardContext&) {}
};

class ParallelEngine {
 public:
  ParallelEngine(ParallelConfig config,
                 std::vector<std::unique_ptr<ShardProgram>> programs);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // Runs all shards in lock-step epochs to completion; returns the number
  // of epochs executed. If a shard program throws, every shard is wound
  // down at the next barrier and the first exception (by shard index) is
  // rethrown here.
  std::uint64_t run();

  std::size_t shard_count() const noexcept { return shards_.size(); }
  ShardContext& shard(std::size_t i) { return *shards_[i]; }

  // The worker count run() will actually use (threads capped at shards and
  // hardware concurrency); benches print it next to the q/s they measured.
  std::size_t effective_threads() const;

  // Workers whose pin succeeded during the last run(); equals
  // effective_threads() on a machine that allows affinity, 0 when the
  // fallback engaged (or pinning was never requested).
  std::size_t pinned_workers() const noexcept { return pinned_workers_; }

  // Folds every per-shard registry into `into`, in shard-index order.
  void merge_metrics(obs::MetricsRegistry& into) const;

 private:
  friend class ShardContext;

  struct TimedMail {
    SimTime when;
    EventLoop::Callback fn;
  };

  // One SPSC mailbox, padded to its own cache line. Adjacent mailboxes
  // belong to different (src, dst) pairs that are touched concurrently by
  // different threads within a round; without the padding a writer's
  // push_back and an unrelated pair's drain would bounce the same line
  // (false sharing — measurable at 8+ shards).
  struct alignas(64) ControlBox {
    std::vector<ShardContext::Mail> items;
  };
  struct alignas(64) TimedBox {
    std::vector<TimedMail> items;
  };

  // Per-shard drain scratch: step_shard swaps a full inbox into here, runs
  // the batch locally, then hands the (cleared) buffer back on the next
  // swap. The writer's vector header is touched exactly once per drain
  // instead of once per message, and capacities recirculate so the steady
  // state allocates nothing. Padded for the same reason as the mailboxes.
  struct alignas(64) DrainScratch {
    std::vector<ShardContext::Mail> control;
    std::vector<TimedMail> timed;
  };

  std::size_t mailbox_index(std::size_t src, std::size_t dst) const noexcept {
    return src * shards_.size() + dst;
  }
  // One shard's work for the current round: drain inbox, run the program's
  // epoch, run the loop to the boundary.
  void step_shard(std::size_t i);
  // Runs between rounds with every worker quiescent: decides termination
  // and opens the next epoch. Returns false to stop. noexcept because it
  // runs as a barrier completion step.
  bool coordinate() noexcept;
  // The CPUs workers pin to: config_.pin_cpus when set, else the detected
  // topology's pin_order(). Empty disables pinning (with the warning).
  std::vector<int> pin_targets() const;

  ParallelConfig config_;
  std::vector<std::unique_ptr<ShardProgram>> programs_;
  std::vector<std::unique_ptr<ShardContext>> shards_;

  // Per-pair SPSC mailboxes, double-buffered by epoch parity: during round
  // k writers append to buffer (k & 1) and readers drain buffer (~k & 1),
  // so a pair's buffers are never touched from two threads at once. The
  // inter-round barrier provides the happens-before edge.
  std::vector<ControlBox> control_mail_[2];
  std::vector<TimedBox> timed_mail_[2];
  std::vector<DrainScratch> scratch_;  // one per shard, worker-local use

  // Runtime-metric handles, resolved once per run() (registry lookups take
  // a mutex — never on the per-epoch path). busy_[i] lives in shard i's
  // registry; barrier_wait_[w] in shard w's (worker w is the only thread
  // stepping shard w, so no cross-thread registry writes inside a round).
  std::vector<obs::Counter*> busy_;
  std::vector<obs::Histogram*> barrier_wait_;

  // Round state, grouped on its own cache line: mutated only in
  // coordinate() (all workers parked), read by every worker each round —
  // keep it off the lines the workers write.
  struct alignas(64) RoundState {
    std::size_t parity = 0;
    SimTime epoch_end = 0;
    std::uint64_t rounds = 0;
    bool stop = false;
  };
  RoundState round_;
  std::size_t pinned_workers_ = 0;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace ecsdns::netsim
