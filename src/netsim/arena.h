// Chunked bump allocator for per-epoch scratch.
//
// A shard's hot loop produces short-lived batches every epoch (delta
// records, mail payloads, census rows in flight). Allocating them
// individually puts malloc on the per-query path; an Arena turns the whole
// batch into pointer bumps and one reset() at a deterministic lifetime
// boundary. Chunks are retained across reset(), so a steady-state epoch
// performs zero heap allocations (the run.allocations perf gate relies on
// this).
//
// Lifetime rule (docs/perf.md): memory from an Arena is valid until its
// owner's reset(). The parallel engine double-buffers one Arena per shard
// by epoch parity — epoch_arena() memory written in round k may be read by
// mail receivers in round k+1 and is recycled in round k+2, mirroring the
// mailbox buffers exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "dnscore/annotations.h"

namespace ecsdns::netsim {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (a power of two). Grows by
  // whole chunks; requests larger than the chunk size get a dedicated
  // chunk. Steady state (reset + reuse) never touches the heap.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (p + bytes > limit_) return allocate_slow(bytes, align);
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  template <typename T>
  T* alloc_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds to empty, keeping every chunk for reuse. Invalidates all
  // outstanding pointers — callers own that lifetime contract.
  void reset() noexcept {
    active_ = 0;
    bytes_used_ = 0;
    if (chunks_.empty()) {
      cursor_ = limit_ = 0;
    } else {
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[0].data.get());
      limit_ = cursor_ + chunks_[0].size;
    }
  }

  std::size_t bytes_used() const noexcept { return bytes_used_; }
  std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };

  ECSDNS_MAY_BLOCK void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Move to the next retained chunk that fits, or grow.
    while (active_ + 1 < chunks_.size()) {
      ++active_;
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[active_].data.get());
      limit_ = cursor_ + chunks_[active_].size;
      std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
      if (p + bytes <= limit_) {
        cursor_ = p + bytes;
        bytes_used_ += bytes;
        return reinterpret_cast<void*>(p);
      }
    }
    const std::size_t want = bytes + align > chunk_bytes_ ? bytes + align
                                                          : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
    active_ = chunks_.size() - 1;
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[active_].data.get());
    limit_ = cursor_ + want;
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_used_ = 0;
};

// std-compatible allocator over an Arena, for containers whose contents
// live exactly one epoch (e.g. a per-epoch std::vector of delta records).
// Deallocate is a no-op; the Arena's reset() reclaims everything at once.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->alloc_array<T>(n); }
  void deallocate(T*, std::size_t) noexcept {}

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace ecsdns::netsim
