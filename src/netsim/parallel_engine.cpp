#include "netsim/parallel_engine.h"

#include <barrier>
#include <stdexcept>
#include <thread>
#include <utility>

namespace ecsdns::netsim {

SimTime conservative_epoch(const LatencyModel& model) {
  const SimTime bound = model.one_way(0.0);
  return bound > 0 ? bound : 1;
}

std::size_t ShardContext::shard_count() const noexcept {
  return engine_.shard_count();
}

SimTime ShardContext::epoch_end() const noexcept { return engine_.epoch_end_; }

Arena& ShardContext::epoch_arena() noexcept {
  return arenas_[engine_.parity_];
}

void ShardContext::post(std::size_t to, Mail mail) {
  if (to >= engine_.shard_count()) {
    throw std::out_of_range("post: no such shard");
  }
  engine_.control_mail_[engine_.parity_][engine_.mailbox_index(index_, to)]
      .push_back(std::move(mail));
}

void ShardContext::post_at(std::size_t to, SimTime when, EventLoop::Callback fn) {
  if (to >= engine_.shard_count()) {
    throw std::out_of_range("post_at: no such shard");
  }
  if (when < engine_.epoch_end_) {
    // Delivering below the lookahead bound would rewind the receiver's
    // clock: it may already sit at the epoch boundary. The epoch length
    // must not exceed the minimum cross-shard latency (conservative_epoch).
    throw std::invalid_argument(
        "post_at: delivery time below the conservative epoch bound");
  }
  engine_.timed_mail_[engine_.parity_][engine_.mailbox_index(index_, to)]
      .push_back(ParallelEngine::TimedMail{when, std::move(fn)});
}

ParallelEngine::ParallelEngine(ParallelConfig config,
                               std::vector<std::unique_ptr<ShardProgram>> programs)
    : config_(config), programs_(std::move(programs)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.epoch <= 0) {
    throw std::invalid_argument("epoch length must be positive");
  }
  if (programs_.size() != config_.shards) {
    throw std::invalid_argument("need exactly one program per shard");
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.emplace_back(new ShardContext(*this, i, config_.seed));
  }
  const std::size_t pairs = config_.shards * config_.shards;
  for (auto& parity : control_mail_) parity.resize(pairs);
  for (auto& parity : timed_mail_) parity.resize(pairs);
  errors_.resize(config_.shards);
}

ParallelEngine::~ParallelEngine() = default;

std::size_t ParallelEngine::effective_threads() const {
  std::size_t threads = config_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > shards_.size()) threads = shards_.size();
  return threads == 0 ? 1 : threads;
}

void ParallelEngine::step_shard(std::size_t i) {
  ShardContext& ctx = *shards_[i];
  // Drain the inbox written last round (opposite parity), ascending source
  // index, FIFO within a source. Control mail runs immediately; timed mail
  // lands on the loop, where the (when, seq) order keeps equal-time events
  // in delivery order.
  const std::size_t read = parity_ ^ 1u;
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    auto& control = control_mail_[read][mailbox_index(src, i)];
    for (auto& mail : control) mail(ctx);
    control.clear();
    auto& timed = timed_mail_[read][mailbox_index(src, i)];
    for (auto& m : timed) ctx.loop_.schedule_at(m.when, std::move(m.fn));
    timed.clear();
  }
  programs_[i]->epoch(ctx, epoch_end_);
  ctx.loop_.run_until(epoch_end_);
}

bool ParallelEngine::coordinate() noexcept {
  ++rounds_;
  for (const auto& err : errors_) {
    if (err) return false;
  }
  bool more = false;
  for (std::size_t i = 0; i < shards_.size() && !more; ++i) {
    if (!shards_[i]->loop_.empty()) more = true;
    if (!programs_[i]->done(*shards_[i])) more = true;
  }
  if (!more) {
    // Mail written this round still needs one more epoch to deliver.
    for (const auto& box : control_mail_[parity_]) {
      if (!box.empty()) {
        more = true;
        break;
      }
    }
  }
  if (!more) {
    for (const auto& box : timed_mail_[parity_]) {
      if (!box.empty()) {
        more = true;
        break;
      }
    }
  }
  if (!more) return false;
  parity_ ^= 1u;
  // The arena writers are about to reuse was written in round k-2 and read
  // (by mail receivers) in round k-1; with all workers parked at this
  // barrier it is now safe to rewind.
  for (auto& shard : shards_) shard->arenas_[parity_].reset();
  epoch_end_ += config_.epoch;
  return true;
}

std::uint64_t ParallelEngine::run() {
  const std::size_t n = shards_.size();
  parity_ = 0;
  epoch_end_ = 0;
  rounds_ = 0;
  stop_ = false;
  for (auto& err : errors_) err = nullptr;
  for (std::size_t i = 0; i < n; ++i) programs_[i]->setup(*shards_[i]);
  epoch_end_ = config_.epoch;

  const std::size_t threads = effective_threads();
  if (threads <= 1) {
    for (;;) {
      for (std::size_t i = 0; i < n; ++i) {
        try {
          step_shard(i);
        } catch (...) {
          errors_[i] = std::current_exception();
        }
      }
      if (!coordinate()) break;
    }
  } else {
    auto on_round_complete = [this]() noexcept { stop_ = !coordinate(); };
    std::barrier sync(static_cast<std::ptrdiff_t>(threads), on_round_complete);
    auto worker = [&](std::size_t w) {
      for (;;) {
        for (std::size_t i = w; i < n; i += threads) {
          try {
            step_shard(i);
          } catch (...) {
            errors_[i] = std::current_exception();
          }
        }
        sync.arrive_and_wait();
        if (stop_) return;
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  for (const auto& err : errors_) {
    if (err) std::rethrow_exception(err);
  }
  for (std::size_t i = 0; i < n; ++i) programs_[i]->finish(*shards_[i]);
  return rounds_;
}

void ParallelEngine::merge_metrics(obs::MetricsRegistry& into) const {
  for (const auto& shard : shards_) into.merge_from(shard->metrics_);
}

}  // namespace ecsdns::netsim
