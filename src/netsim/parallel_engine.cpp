#include "netsim/parallel_engine.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "netsim/topology.h"

namespace ecsdns::netsim {

namespace {

// Monotonic microseconds for the opt-in runtime metrics. steady_clock, not
// wall clock: timing is run metadata, never simulation input.
std::uint64_t runtime_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SimTime conservative_epoch(const LatencyModel& model) {
  const SimTime bound = model.one_way(0.0);
  return bound > 0 ? bound : 1;
}

std::size_t ShardContext::shard_count() const noexcept {
  return engine_.shard_count();
}

SimTime ShardContext::epoch_end() const noexcept {
  return engine_.round_.epoch_end;
}

Arena& ShardContext::epoch_arena() noexcept {
  return arenas_[engine_.round_.parity];
}

void ShardContext::post(std::size_t to, Mail mail) {
  if (to >= engine_.shard_count()) {
    throw std::out_of_range("post: no such shard");
  }
  engine_.control_mail_[engine_.round_.parity]
                       [engine_.mailbox_index(index_, to)]
      .items.push_back(std::move(mail));
}

void ShardContext::post_at(std::size_t to, SimTime when, EventLoop::Callback fn) {
  if (to >= engine_.shard_count()) {
    throw std::out_of_range("post_at: no such shard");
  }
  if (when < engine_.round_.epoch_end) {
    // Delivering below the lookahead bound would rewind the receiver's
    // clock: it may already sit at the epoch boundary. The epoch length
    // must not exceed the minimum cross-shard latency (conservative_epoch).
    throw std::invalid_argument(
        "post_at: delivery time below the conservative epoch bound");
  }
  engine_.timed_mail_[engine_.round_.parity][engine_.mailbox_index(index_, to)]
      .items.push_back(ParallelEngine::TimedMail{when, std::move(fn)});
}

ParallelEngine::ParallelEngine(ParallelConfig config,
                               std::vector<std::unique_ptr<ShardProgram>> programs)
    : config_(std::move(config)), programs_(std::move(programs)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.epoch <= 0) {
    throw std::invalid_argument("epoch length must be positive");
  }
  if (programs_.size() != config_.shards) {
    throw std::invalid_argument("need exactly one program per shard");
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.emplace_back(new ShardContext(*this, i, config_.seed));
  }
  const std::size_t pairs = config_.shards * config_.shards;
  for (auto& parity : control_mail_) parity.resize(pairs);
  for (auto& parity : timed_mail_) parity.resize(pairs);
  scratch_.resize(config_.shards);
  errors_.resize(config_.shards);
}

ParallelEngine::~ParallelEngine() = default;

std::size_t ParallelEngine::effective_threads() const {
  std::size_t threads = config_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > shards_.size()) threads = shards_.size();
  return threads == 0 ? 1 : threads;
}

std::vector<int> ParallelEngine::pin_targets() const {
  if (!config_.pin_cpus.empty()) return config_.pin_cpus;
  return Topology::detect().pin_order();
}

void ParallelEngine::step_shard(std::size_t i) {
  ShardContext& ctx = *shards_[i];
  DrainScratch& scratch = scratch_[i];
  // Drain the inboxes written last round (opposite parity), ascending
  // source index, FIFO within a source. Each non-empty box is swapped into
  // shard-local scratch and run as one batch — a single touch of the
  // writer's vector header per pair, and the emptied capacity circulates
  // back for the writer's next round. Control mail runs immediately; timed
  // mail lands on the loop, where the (when, seq) order keeps equal-time
  // events in delivery order.
  const std::size_t read = round_.parity ^ 1u;
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    auto& control = control_mail_[read][mailbox_index(src, i)].items;
    if (!control.empty()) {
      scratch.control.swap(control);
      for (auto& mail : scratch.control) mail(ctx);
      scratch.control.clear();
    }
    auto& timed = timed_mail_[read][mailbox_index(src, i)].items;
    if (!timed.empty()) {
      scratch.timed.swap(timed);
      for (auto& m : scratch.timed) ctx.loop_.schedule_at(m.when, std::move(m.fn));
      scratch.timed.clear();
    }
  }
  programs_[i]->epoch(ctx, round_.epoch_end);
  ctx.loop_.run_until(round_.epoch_end);
}

bool ParallelEngine::coordinate() noexcept {
  ++round_.rounds;
  for (const auto& err : errors_) {
    if (err) return false;
  }
  bool more = false;
  for (std::size_t i = 0; i < shards_.size() && !more; ++i) {
    if (!shards_[i]->loop_.empty()) more = true;
    if (!programs_[i]->done(*shards_[i])) more = true;
  }
  if (!more) {
    // Mail written this round still needs one more epoch to deliver.
    for (const auto& box : control_mail_[round_.parity]) {
      if (!box.items.empty()) {
        more = true;
        break;
      }
    }
  }
  if (!more) {
    for (const auto& box : timed_mail_[round_.parity]) {
      if (!box.items.empty()) {
        more = true;
        break;
      }
    }
  }
  if (!more) return false;
  round_.parity ^= 1u;
  // The arena writers are about to reuse was written in round k-2 and read
  // (by mail receivers) in round k-1; with all workers parked at this
  // barrier it is now safe to rewind.
  for (auto& shard : shards_) shard->arenas_[round_.parity].reset();
  round_.epoch_end += config_.epoch;
  return true;
}

std::uint64_t ParallelEngine::run() {
  const std::size_t n = shards_.size();
  round_ = RoundState{};
  pinned_workers_ = 0;
  for (auto& err : errors_) err = nullptr;

  const std::size_t threads = effective_threads();
  busy_.assign(n, nullptr);
  barrier_wait_.assign(threads, nullptr);
  if (config_.runtime_metrics) {
    for (std::size_t i = 0; i < n; ++i) {
      busy_[i] = &shards_[i]->metrics_.counter("engine.shard" +
                                               std::to_string(i) + ".busy_us");
    }
    for (std::size_t w = 0; w < threads; ++w) {
      barrier_wait_[w] = &shards_[w]->metrics_.histogram("engine.barrier_wait_us");
    }
  }

  for (std::size_t i = 0; i < n; ++i) programs_[i]->setup(*shards_[i]);
  round_.epoch_end = config_.epoch;

  auto step_timed = [this](std::size_t i) {
    const std::uint64_t t0 = busy_[i] != nullptr ? runtime_now_us() : 0;
    try {
      step_shard(i);
    } catch (...) {
      errors_[i] = std::current_exception();
    }
    if (busy_[i] != nullptr) busy_[i]->inc(runtime_now_us() - t0);
  };

  // Pinning always routes through the worker pool — even at one thread —
  // so the caller's own affinity mask is never mutated.
  const bool spawn = threads > 1 || config_.pin_threads;
  if (!spawn) {
    for (;;) {
      for (std::size_t i = 0; i < n; ++i) step_timed(i);
      if (!coordinate()) break;
    }
  } else {
    const std::vector<int> targets = config_.pin_threads ? pin_targets()
                                                         : std::vector<int>{};
    std::atomic<std::size_t> pinned{0};
    auto on_round_complete = [this]() noexcept { round_.stop = !coordinate(); };
    std::barrier sync(static_cast<std::ptrdiff_t>(threads), on_round_complete);
    auto worker = [&](std::size_t w) {
      char name[16];
      std::snprintf(name, sizeof(name), "shard-%zu", w);
      set_current_thread_name(name);
      if (config_.pin_threads && !targets.empty() &&
          pin_current_thread_to_cpu(targets[w % targets.size()])) {
        pinned.fetch_add(1, std::memory_order_relaxed);
      }
      obs::Histogram* const barrier_hist = barrier_wait_[w];
      for (;;) {
        for (std::size_t i = w; i < n; i += threads) step_timed(i);
        if (barrier_hist != nullptr) {
          const std::uint64_t t0 = runtime_now_us();
          sync.arrive_and_wait();
          barrier_hist->observe(runtime_now_us() - t0);
        } else {
          sync.arrive_and_wait();
        }
        if (round_.stop) return;
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
    pinned_workers_ = pinned.load(std::memory_order_relaxed);
    if (config_.pin_threads && pinned_workers_ < threads) {
      // Graceful fallback, not an error: containers and restricted CI deny
      // the affinity syscall. Results are unaffected; only say so once.
      std::fprintf(stderr,
                   "[parallel_engine] warning: pinned %zu/%zu workers "
                   "(affinity unavailable); continuing unpinned\n",
                   pinned_workers_, threads);
    }
  }

  for (const auto& err : errors_) {
    if (err) std::rethrow_exception(err);
  }
  for (std::size_t i = 0; i < n; ++i) programs_[i]->finish(*shards_[i]);
  return round_.rounds;
}

void ParallelEngine::merge_metrics(obs::MetricsRegistry& into) const {
  for (const auto& shard : shards_) into.merge_from(shard->metrics_);
}

}  // namespace ecsdns::netsim
