// A freelist of recycled wire-payload buffers.
//
// The packet path serializes one DNS message per hop. Without pooling every
// hop grows a fresh std::vector from zero; with pooling a handful of buffers
// whose capacity has already converged on the experiment's packet sizes are
// reused for the whole run, so the steady state allocates nothing.
//
// Lifetime rules (see docs/perf.md):
//   * acquire() returns an EMPTY vector (capacity retained from its past
//     life). The caller owns it outright — it is a plain vector, safe to
//     move anywhere.
//   * release() donates a no-longer-needed buffer back. Call it only when
//     nothing aliases the buffer's storage — in particular, after every
//     MessageView or span over it is dead.
//   * The pool keeps at most kMaxPooled buffers; extra releases just let
//     the vector free itself. Never release the same buffer twice.
//
// Not thread-safe: one pool per shard/actor, like everything in netsim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dnscore/annotations.h"

namespace ecsdns::netsim {

class BufferPool {
 public:
  // Bounds worst-case retained memory; deep resolution chains in the
  // simulator keep well under this many packets alive at once.
  static constexpr std::size_t kMaxPooled = 64;

  // The freelist itself must never allocate on the packet path: reserve
  // its full bound once, up front. (Without this, release() grew the
  // freelist vector on the hot path — ecstidy's noalloc check caught it.)
  BufferPool() { free_.reserve(kMaxPooled); }

  // An empty buffer, reusing a pooled one's capacity when available.
  ECSDNS_NOALLOC std::vector<std::uint8_t> acquire() {
    ++acquires_;
    if (free_.empty()) return {};
    ++reuses_;
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();  // keeps capacity
    return buf;
  }

  // Donates a buffer back to the pool. Capacity-less vectors (e.g. ones
  // that were moved from) are not worth keeping.
  ECSDNS_NOALLOC void release(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0 || free_.size() >= kMaxPooled) return;
    // ecstidy:allow(noalloc): freelist capacity is reserved to kMaxPooled in
    // the constructor and size is bounds-checked above, so this never grows.
    free_.push_back(std::move(buf));
  }

  std::size_t pooled() const noexcept { return free_.size(); }
  std::uint64_t acquires() const noexcept { return acquires_; }
  // How many acquires were served from the freelist (allocation avoided).
  std::uint64_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace ecsdns::netsim
