#include "netsim/geodb.h"

namespace ecsdns::netsim {

void IpGeoDb::add(const Prefix& prefix, const GeoPoint& location) {
  auto& bucket = by_length_[prefix.length()];
  const auto [it, inserted] = bucket.insert_or_assign(prefix, location);
  (void)it;
  if (inserted) ++count_;
}

std::optional<GeoPoint> IpGeoDb::locate(const IpAddress& addr) const {
  for (const auto& [len, bucket] : by_length_) {
    if (len > addr.bit_length()) continue;
    const auto it = bucket.find(Prefix{addr, len});
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

std::optional<GeoPoint> IpGeoDb::locate(const Prefix& prefix) const {
  // Fast path: an entry at or above the query covering its base address.
  for (const auto& [len, bucket] : by_length_) {
    if (len > prefix.length()) continue;
    const auto it = bucket.find(prefix.truncated(len));
    if (it != bucket.end()) return it->second;
  }
  // Coarse query over finer data (e.g. locating an ECS /21 when ground
  // truth is registered per /24): any entry inside the block answers; pick
  // the smallest prefix for determinism.
  const Prefix* best = nullptr;
  const GeoPoint* where = nullptr;
  // Ascending length order: prefer the granularity closest to the query.
  for (auto it = by_length_.rbegin(); it != by_length_.rend(); ++it) {
    if (it->first <= prefix.length()) continue;
    for (const auto& [entry, location] : it->second) {
      if (!prefix.contains(entry)) continue;
      if (best == nullptr || entry < *best) {
        best = &entry;
        where = &location;
      }
    }
    if (where != nullptr) break;
  }
  if (where != nullptr) return *where;
  return std::nullopt;
}

}  // namespace ecsdns::netsim
