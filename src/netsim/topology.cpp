#include "netsim/topology.h"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

namespace ecsdns::netsim {

namespace {

// Reads a whole small sysfs file; nullopt when missing/unreadable.
std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Parses a non-negative decimal integer with optional surrounding
// whitespace (the shape of every sysfs topology file we read).
std::optional<int> parse_int(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  if (i == text.size() ||
      std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
    return std::nullopt;
  }
  long value = 0;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
    value = value * 10 + (text[i] - '0');
    if (value > 1'000'000) {
      return std::nullopt;  // no machine has a million CPUs; reject garbage
    }
    ++i;
  }
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  if (i != text.size()) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

std::optional<int> read_int(const std::string& path) {
  const auto text = read_file(path);
  if (!text) {
    return std::nullopt;
  }
  return parse_int(*text);
}

}  // namespace

std::vector<int> parse_cpu_list(std::string_view text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view item = text.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t dash = item.find('-');
    if (dash == std::string_view::npos) {
      if (const auto one = parse_int(item)) {
        cpus.push_back(*one);
      }
      continue;
    }
    const auto lo = parse_int(item.substr(0, dash));
    const auto hi = parse_int(item.substr(dash + 1));
    if (!lo || !hi || *lo > *hi) {
      continue;  // malformed range: skip, don't fail the whole parse
    }
    for (int cpu = *lo; cpu <= *hi; ++cpu) {
      cpus.push_back(cpu);
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology Topology::flat(std::size_t n) {
  Topology topo;
  topo.cpus_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    CpuInfo info;
    info.cpu = static_cast<int>(i);
    info.package = 0;
    info.core = static_cast<int>(i);
    info.smt_sibling = false;
    topo.cpus_.push_back(info);
  }
  return topo;
}

Topology Topology::from_sysfs(const std::string& root) {
  const auto online = read_file(root + "/online");
  if (!online) {
    const unsigned hw = std::thread::hardware_concurrency();
    return flat(hw == 0 ? 1 : hw);
  }
  Topology topo;
  // First cpu seen for a (package, core) pair is the primary thread of
  // that physical core; later cpus on the same pair are SMT siblings.
  std::set<std::pair<int, int>> seen_cores;
  for (const int cpu : parse_cpu_list(*online)) {
    const std::string base = root + "/cpu" + std::to_string(cpu) + "/topology";
    CpuInfo info;
    info.cpu = cpu;
    // Missing topology files (common in minimal containers) degrade to
    // "every cpu is its own core in package 0".
    info.package = read_int(base + "/physical_package_id").value_or(0);
    info.core = read_int(base + "/core_id").value_or(cpu);
    info.smt_sibling = !seen_cores.insert({info.package, info.core}).second;
    topo.cpus_.push_back(info);
  }
  if (topo.cpus_.empty()) {
    const unsigned hw = std::thread::hardware_concurrency();
    return flat(hw == 0 ? 1 : hw);
  }
  return topo;
}

Topology Topology::detect() { return from_sysfs("/sys/devices/system/cpu"); }

std::size_t Topology::physical_cores() const {
  std::set<std::pair<int, int>> cores;
  for (const CpuInfo& info : cpus_) {
    cores.insert({info.package, info.core});
  }
  return cores.size();
}

std::size_t Topology::packages() const {
  std::set<int> packages;
  for (const CpuInfo& info : cpus_) {
    packages.insert(info.package);
  }
  return packages.size();
}

std::vector<int> Topology::pin_order() const {
  // Ordered map keyed (package, core, cpu) gives the ascending traversal;
  // primaries stream out first, siblings are appended afterwards in the
  // same (package, core) order.
  std::map<std::tuple<int, int, int>, const CpuInfo*> ordered;
  for (const CpuInfo& info : cpus_) {
    ordered.emplace(std::make_tuple(info.package, info.core, info.cpu), &info);
  }
  std::vector<int> order;
  order.reserve(cpus_.size());
  std::vector<int> siblings;
  for (const auto& [key, info] : ordered) {
    (void)key;
    if (info->smt_sibling) {
      siblings.push_back(info->cpu);
    } else {
      order.push_back(info->cpu);
    }
  }
  order.insert(order.end(), siblings.begin(), siblings.end());
  return order;
}

bool pin_current_thread_to_cpu(int cpu) {
  if (cpu < 0 || cpu >= CPU_SETSIZE) {
    return false;  // CPU_SET is UB out of range; also the test hook for
                   // exercising the warn-and-run-unpinned fallback
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<std::size_t>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

void set_current_thread_name(const char* name) {
  char truncated[16];
  std::strncpy(truncated, name, sizeof(truncated) - 1);
  truncated[sizeof(truncated) - 1] = '\0';
  pthread_setname_np(pthread_self(), truncated);
}

}  // namespace ecsdns::netsim
