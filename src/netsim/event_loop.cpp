#include "netsim/event_loop.h"

#include <stdexcept>
#include <utility>

namespace ecsdns::netsim {

void EventLoop::schedule_in(SimTime delay, Callback fn) {
  if (delay < 0) throw std::invalid_argument("negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::schedule_at(SimTime when, Callback fn) {
  if (when < now_) throw std::invalid_argument("scheduling in the past");
  if (use_wheel_) {
    wheel_.push(when, next_seq_++, std::move(fn));
  } else {
    heap_.push(when, next_seq_++, std::move(fn));
  }
}

void EventLoop::advance(SimTime delta) {
  if (delta < 0) throw std::invalid_argument("negative advance");
  now_ += delta;
}

std::size_t EventLoop::run() {
  std::size_t count = 0;
  TimerEntry<Callback> ev;
  while (pop_next(ev)) {
    if (ev.when > now_) now_ = ev.when;
    ev.payload();
    ++count;
  }
  return count;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t count = 0;
  TimerEntry<Callback> ev;
  while (next_event_time() <= deadline && pop_next(ev)) {
    if (ev.when > now_) now_ = ev.when;
    ev.payload();
    ++count;
  }
  if (deadline > now_) now_ = deadline;
  return count;
}

}  // namespace ecsdns::netsim
