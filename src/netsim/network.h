// The simulated network: nodes addressed by IP, placed on the globe,
// exchanging datagrams with geo-derived latency.
//
// Transport model: synchronous RPC over virtual time. `round_trip` advances
// the virtual clock by the one-way delay, invokes the destination service
// (which may itself issue nested round_trips — that is how a client →
// forwarder → hidden resolver → egress resolver → authoritative chain
// accumulates realistic latency), advances the clock by the return delay,
// and hands back the response. The payloads are real RFC-compliant DNS
// packets produced by dnscore; nothing in the packet path knows it is
// running on a simulator.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dnscore/ip.h"
#include "netsim/buffer_pool.h"
#include "netsim/event_loop.h"
#include "netsim/geo.h"
#include "obs/metrics.h"

namespace ecsdns::netsim {

using dnscore::IpAddress;
using dnscore::IpAddressHash;

struct Datagram {
  IpAddress src;
  IpAddress dst;
  // A view of the sender's wire buffer — delivery copies nothing. Valid
  // only for the duration of the synchronous service call; a service that
  // needs the bytes afterwards must copy them.
  std::span<const std::uint8_t> payload;
  // True when the exchange runs over a (simulated) TCP connection — DNS
  // servers skip UDP truncation for these.
  bool via_tcp = false;
};

// A node's request handler: returns the response payload, or nullopt to
// drop the datagram (the sender sees a timeout).
using Service = std::function<std::optional<std::vector<std::uint8_t>>(const Datagram&)>;

class Network {
 public:
  explicit Network(LatencyModel latency = {});

  EventLoop& loop() noexcept { return loop_; }
  SimTime now() const noexcept { return loop_.now(); }
  const LatencyModel& latency_model() const noexcept { return latency_; }

  // Registers a node. Re-attaching an address replaces its service —
  // convenient for experiments that reconfigure a resolver mid-run.
  void attach(const IpAddress& addr, const GeoPoint& location, Service service);
  void detach(const IpAddress& addr);
  bool is_attached(const IpAddress& addr) const noexcept;

  std::optional<GeoPoint> location_of(const IpAddress& addr) const;

  // Great-circle distance between two attached nodes; throws if either is
  // unknown.
  double distance_between(const IpAddress& a, const IpAddress& b) const;
  // Modeled RTT between two attached nodes.
  SimTime rtt_between(const IpAddress& a, const IpAddress& b) const;

  // Sends `payload` from src to dst and waits for the response, advancing
  // virtual time across both directions. Returns nullopt on drop/timeout
  // (unknown destination, or the service declined to answer), in which case
  // the clock still advances by `timeout_`.
  // `tcp` runs the exchange over a connection: one extra RTT for the
  // handshake, and the receiving service sees via_tcp set.
  std::optional<std::vector<std::uint8_t>> round_trip(
      const IpAddress& src, const IpAddress& dst,
      std::span<const std::uint8_t> payload, bool tcp = false);
  // Convenience overload: spans cannot be brace-initialized from a list
  // until C++26, so callers with a vector in hand keep working unchanged.
  std::optional<std::vector<std::uint8_t>> round_trip(
      const IpAddress& src, const IpAddress& dst,
      const std::vector<std::uint8_t>& payload, bool tcp = false) {
    return round_trip(src, dst, std::span<const std::uint8_t>(payload), tcp);
  }

  // ICMP-echo-style RTT measurement (no payload semantics).
  std::optional<SimTime> ping(const IpAddress& src, const IpAddress& dst) const;
  // Time for a TCP three-way handshake as observed by the client: one RTT.
  std::optional<SimTime> tcp_handshake_time(const IpAddress& client,
                                            const IpAddress& server) const;

  void set_timeout(SimTime t) noexcept { timeout_ = t; }

  // Clock policy. In the default "serial" mode every round_trip advances
  // the shared clock by its propagation delay — correct when one actor's
  // end-to-end timing is the experiment (Figure 8, Table 2). When many
  // actors run concurrently off the event loop, their round trips overlap
  // in reality, so serially accumulating each RTT onto the one shared clock
  // would inflate virtual time; concurrent drivers disable advancement and
  // let event timestamps carry time instead.
  void set_advance_clock(bool advance) noexcept { advance_clock_ = advance; }
  bool advance_clock() const noexcept { return advance_clock_; }

  std::uint64_t datagrams_delivered() const noexcept { return delivered_; }
  std::uint64_t datagrams_dropped() const noexcept { return dropped_; }

  // Shared freelist of wire buffers for services and clients attached to
  // this network (single-threaded with it by construction). Typical hop:
  // acquire → serialize_into → round_trip → release.
  BufferPool& buffer_pool() noexcept { return pool_; }

 private:
  struct Node {
    GeoPoint location;
    Service service;
  };

  // Registry mirrors for the transport hot path; bound once at
  // construction, each update is one relaxed atomic op (see src/obs).
  struct Metrics {
    obs::CounterHandle round_trips;
    obs::CounterHandle tcp_round_trips;
    obs::CounterHandle timeouts;
    obs::CounterHandle bytes_sent;
    obs::CounterHandle bytes_received;
    obs::HistogramHandle rtt_us;
  };

  EventLoop loop_;
  LatencyModel latency_;
  SimTime timeout_ = 2 * kSecond;
  bool advance_clock_ = true;
  std::unordered_map<IpAddress, Node, IpAddressHash> nodes_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  BufferPool pool_;
  Metrics metrics_;
};

}  // namespace ecsdns::netsim
