// Longest-prefix-match IP geolocation — the stand-in for the commercial
// EdgeScape service the paper uses. In the simulation we register ground
// truth, so "geolocation" is exact rather than estimated.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>

#include "dnscore/ip.h"
#include "netsim/geo.h"

namespace ecsdns::netsim {

using dnscore::IpAddress;
using dnscore::Prefix;
using dnscore::PrefixHash;

class IpGeoDb {
 public:
  void add(const Prefix& prefix, const GeoPoint& location);

  // Longest-prefix match for a full address.
  std::optional<GeoPoint> locate(const IpAddress& addr) const;
  // Locates a prefix by longest match on its base address, also matching
  // entries exactly as coarse as the query (an ECS /24 matches a /24 entry).
  std::optional<GeoPoint> locate(const Prefix& prefix) const;

  std::size_t size() const noexcept { return count_; }

 private:
  // Buckets by prefix length, probed longest-first. DNS-scale simulations
  // only use a handful of lengths, so this stays fast.
  std::map<int, std::unordered_map<Prefix, GeoPoint, PrefixHash>, std::greater<>>
      by_length_;
  std::size_t count_ = 0;
};

}  // namespace ecsdns::netsim
