#include "netsim/geo.h"

#include <cmath>
#include <cstdio>

namespace ecsdns::netsim {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2);
  const double s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

SimTime LatencyModel::one_way(double km) const {
  const double ms = fixed_overhead_ms + (km * path_stretch) / km_per_ms;
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

std::string format_duration(SimTime t) {
  char buf[64];
  if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.1f ms",
                  static_cast<double>(t) / static_cast<double>(kMillisecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s",
                  static_cast<double>(t) / static_cast<double>(kSecond));
  }
  return buf;
}

}  // namespace ecsdns::netsim
