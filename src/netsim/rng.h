// Deterministic random-number generation for reproducible experiments.
//
// All experiment binaries take an explicit seed; two runs with the same seed
// produce byte-identical tables. We implement xoshiro256** (Blackman &
// Vigna) seeded through SplitMix64 rather than using std::mt19937 so the
// stream is stable across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ecsdns::netsim {

// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Derives the sub-seed for an independent stream split off a base seed —
// the convention sharded simulations use to give every shard its own
// generator. Two SplitMix64 passes separated by a golden-ratio stride keep
// stream i statistically unrelated both to stream j and to Rng(seed)
// itself (which expands the raw seed through a single pass).
inline std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream_id) {
  SplitMix64 outer(seed);
  const std::uint64_t base = outer.next();
  SplitMix64 inner(base ^ (0x9e3779b97f4a7c15ull * (stream_id + 1)));
  return inner.next();
}

// xoshiro256**: fast, high-quality, tiny-state generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  // Stream `stream_id` split from `seed` (see stream_seed above). The
  // determinism contract for sharded runs relies on shard i always drawing
  // from stream i, regardless of how shards map onto threads.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id) {
    return Rng(stream_seed(seed, stream_id));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply-shift; retry on the biased low region.
    for (;;) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= static_cast<std::uint64_t>(-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform_double() < p; }

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[uniform(v.size())];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  // Exponentially distributed value with the given mean (inter-arrival
  // times of Poisson query processes).
  double exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Zipf-distributed ranks in [0, n), exponent `s` — DNS hostname popularity
// is classically Zipfian, which is what makes caches effective at all.
// Sampling uses a precomputed CDF with binary search: O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ecsdns::netsim
