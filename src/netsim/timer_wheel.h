// Hierarchical timer wheel: the EventLoop's pending-event store, built for
// millions of concurrent timers (one per fleet member at paper scale).
//
// Layout: 8 levels x 64 slots. Level L buckets times by bits [6L, 6L+6) of
// the absolute fire time; an entry lives at the highest level where its
// time's 6-bit digit differs from the wheel cursor's ("highest differing
// digit"). Level-0 slots therefore hold exactly one timestamp each, so a
// pop is: scan the level-0 occupancy bitmap (one ctz), or cascade the next
// occupied higher-level slot down and retry. Insert is O(1); pop is O(1)
// amortized — each entry cascades at most once per level over its lifetime.
//
// Ordering contract (load-bearing for determinism): pop_next() yields
// entries in exactly (when, seq) order, the same total order as the binary
// heap it replaces, including entries pushed while draining a same-time
// batch. The serial-equivalence oracle depends on this.
//
// TimerHeap<T> keeps the old std::priority_queue behind the identical
// interface so the two can be profiled against each other (bench/
// micro_timer.cpp) and swapped per-EventLoop.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "netsim/geo.h"

namespace ecsdns::netsim {

template <typename T>
struct TimerEntry {
  SimTime when;
  std::uint64_t seq;
  T payload;
};

template <typename T>
class TimerWheel {
 public:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 8;               // covers 2^48 us (~8.9y)

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  // Inserts an entry. `when` must be >= the time of the last pop (the
  // wheel cursor); the EventLoop guarantees this by rejecting
  // scheduling in the past.
  void push(SimTime when, std::uint64_t seq, T payload) {
    place(TimerEntry<T>{when, seq, std::move(payload)});
    ++size_;
  }

  // Fire time of the earliest entry, or kNever when empty. Exact: the
  // lowest occupied level's lowest occupied slot contains the global
  // minimum (higher levels only hold strictly later times).
  SimTime peek_next_time() const noexcept {
    if (size_ == 0) return kNever;
    for (int level = 0; level < kLevels; ++level) {
      if (occupied_[level] == 0) continue;
      int slot = lowest_occupied(level);
      if (level == 0) {
        // A level-0 slot holds exactly one timestamp.
        return slots_[0][static_cast<std::size_t>(slot)].front().when;
      }
      const auto& bucket = slots_[level][static_cast<std::size_t>(slot)];
      SimTime best = bucket.front().when;
      for (const auto& e : bucket) best = std::min(best, e.when);
      return best;
    }
    SimTime best = overflow_.front().when;
    for (const auto& e : overflow_) best = std::min(best, e.when);
    return best;
  }

  // Removes and returns the globally minimal (when, seq) entry.
  // Returns false when empty.
  bool pop_next(TimerEntry<T>& out) {
    if (size_ == 0) return false;
    for (;;) {
      if (occupied_[0] != 0) {
        int slot = lowest_occupied(0);
        auto& bucket = slots_[0][static_cast<std::size_t>(slot)];
        // Entries in a level-0 slot share one `when`; take the min seq.
        std::size_t best = 0;
        for (std::size_t i = 1; i < bucket.size(); ++i) {
          if (bucket[i].seq < bucket[best].seq) best = i;
        }
        out = std::move(bucket[best]);
        bucket[best] = std::move(bucket.back());
        bucket.pop_back();
        if (bucket.empty()) occupied_[0] &= ~(1ull << slot);
        cursor_ = out.when;
        --size_;
        return true;
      }
      cascade_lowest();
    }
  }

 private:
  static int digit(SimTime t, int level) noexcept {
    return static_cast<int>(
        (static_cast<std::uint64_t>(t) >> (kLevelBits * level)) &
        (kSlots - 1));
  }

  static int lowest_occupied(std::uint64_t bits) = delete;
  int lowest_occupied(int level) const noexcept {
    return __builtin_ctzll(occupied_[static_cast<std::size_t>(level)]);
  }

  // Level for `when` relative to the cursor: index of the highest 6-bit
  // digit where they differ (0 when equal). kLevels means "beyond the
  // wheel horizon" -> overflow list.
  int level_for(SimTime when) const noexcept {
    std::uint64_t diff =
        static_cast<std::uint64_t>(when) ^ static_cast<std::uint64_t>(cursor_);
    if (diff == 0) return 0;
    int bit = 63 - __builtin_clzll(diff);
    return bit / kLevelBits;
  }

  void place(TimerEntry<T> entry) {
    int level = level_for(entry.when);
    if (level >= kLevels) {
      overflow_.push_back(std::move(entry));
      return;
    }
    int slot = digit(entry.when, level);
    slots_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)]
        .push_back(std::move(entry));
    occupied_[static_cast<std::size_t>(level)] |= 1ull << slot;
  }

  // No due level-0 slot: advance the cursor to the next occupied
  // higher-level slot's window base and re-place its entries one level
  // (or more) down. size_ > 0 guarantees progress.
  void cascade_lowest() {
    for (int level = 1; level < kLevels; ++level) {
      if (occupied_[level] == 0) continue;
      int slot = lowest_occupied(level);
      // Jump the cursor to the start of that slot's span: keep digits
      // above `level`, set digit at `level` to `slot`, zero the rest.
      std::uint64_t span = 1ull << (kLevelBits * level);
      std::uint64_t base =
          (static_cast<std::uint64_t>(cursor_) & ~(span * kSlots - 1)) |
          (static_cast<std::uint64_t>(slot) * span);
      cursor_ = static_cast<SimTime>(base);
      // Swap the bucket out through a reused scratch buffer instead of
      // moving it: a move would steal the slot vector's capacity and make
      // every future refill of this slot reallocate from scratch — at
      // paper scale that is one heap allocation per timer. Swapping
      // circulates capacity between the slots and the scratch vector, so
      // steady-state churn allocates nothing.
      scratch_.swap(slots_[level][static_cast<std::size_t>(slot)]);
      occupied_[level] &= ~(1ull << slot);
      for (auto& e : scratch_) place(std::move(e));
      scratch_.clear();
      return;
    }
    // All levels empty: everything lives in the overflow list. Re-anchor
    // the cursor at the overflow minimum and re-place. (Same swap trick:
    // place() may push entries still beyond the horizon back into
    // overflow_, which is a distinct buffer after the swap.)
    SimTime min_when = overflow_.front().when;
    for (const auto& e : overflow_) min_when = std::min(min_when, e.when);
    cursor_ = min_when;
    scratch_.swap(overflow_);
    for (auto& e : scratch_) place(std::move(e));
    scratch_.clear();
  }

  SimTime cursor_ = 0;
  std::size_t size_ = 0;
  std::uint64_t occupied_[kLevels] = {};
  std::vector<TimerEntry<T>> slots_[kLevels][kSlots];
  std::vector<TimerEntry<T>> overflow_;
  std::vector<TimerEntry<T>> scratch_;  // cascade drain buffer, capacity reused
};

// The previous implementation — a binary heap — behind the TimerWheel
// interface, kept for profiling and as a fallback.
template <typename T>
class TimerHeap {
 public:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(SimTime when, std::uint64_t seq, T payload) {
    heap_.push(TimerEntry<T>{when, seq, std::move(payload)});
  }

  SimTime peek_next_time() const noexcept {
    return heap_.empty() ? kNever : heap_.top().when;
  }

  bool pop_next(TimerEntry<T>& out) {
    if (heap_.empty()) return false;
    // priority_queue::top is const; the payload (std::function in the
    // EventLoop) must be moved out, so cast away the const the same way
    // the old EventLoop's copy did, minus the copy.
    out = std::move(const_cast<TimerEntry<T>&>(heap_.top()));
    heap_.pop();
    return true;
  }

 private:
  struct Later {
    bool operator()(const TimerEntry<T>& a, const TimerEntry<T>& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<TimerEntry<T>, std::vector<TimerEntry<T>>, Later> heap_;
};

}  // namespace ecsdns::netsim
