// CPU topology and thread-affinity layer (no hwloc dependency).
//
// `Topology` enumerates the machine's online CPUs, physical packages, and
// SMT siblings straight from sysfs (`/sys/devices/system/cpu`). Its one
// product is `pin_order()`: the CPU list a worker pool should pin against —
// one CPU per physical core first (ascending package, then core id), SMT
// siblings only after every physical core already has a worker. Pinning one
// shard per physical core is what turns the lock-step engine's per-epoch
// barrier from a scheduler lottery into a fixed-latency rendezvous; SMT
// siblings share execution ports, so they are last-resort targets.
//
// Everything here is best-effort by design: a container with a masked
// sysfs, a restricted seccomp profile, or a cgroup cpuset that denies
// `pthread_setaffinity_np` must degrade to a normal unpinned run, never an
// error. Pinning is a scheduling hint — results are byte-identical with or
// without it (tests/test_parallel_determinism.cpp pins that).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ecsdns::netsim {

// One online logical CPU as sysfs describes it.
struct CpuInfo {
  int cpu = 0;            // logical cpu number (cpuN)
  int package = 0;        // topology/physical_package_id
  int core = 0;           // topology/core_id (unique within a package)
  bool smt_sibling = false;  // true when another cpu already covers this core
};

class Topology {
 public:
  // Reads the live sysfs tree. Falls back to flat(hardware_concurrency)
  // when sysfs is missing or unreadable (containers often mask it).
  static Topology detect();

  // Same parse against an arbitrary root — tests point this at canned
  // fixture trees. Expects `<root>/online` (cpu-list format, e.g. "0-3,6")
  // and `<root>/cpu<N>/topology/{physical_package_id,core_id}`.
  static Topology from_sysfs(const std::string& root);

  // A synthetic topology of `n` single-thread cores in one package — the
  // fallback when sysfs tells us nothing.
  static Topology flat(std::size_t n);

  const std::vector<CpuInfo>& cpus() const { return cpus_; }
  std::size_t online_cpus() const { return cpus_.size(); }
  std::size_t physical_cores() const;
  std::size_t packages() const;

  // CPU ids in pinning order: one per physical core ascending
  // (package, core), then the SMT siblings in the same order. Worker w
  // pins to pin_order()[w % size]. Empty only when no CPUs were found.
  std::vector<int> pin_order() const;

 private:
  std::vector<CpuInfo> cpus_;
};

// Parses the sysfs cpu-list format ("0-3,5,8-9") into ascending cpu ids.
// Whitespace-tolerant; malformed ranges are skipped rather than fatal.
std::vector<int> parse_cpu_list(std::string_view text);

// Pins the calling thread to a single CPU. Returns false — with no side
// effects — for out-of-range ids (negative or >= CPU_SETSIZE; CPU_SET is
// undefined behaviour there) or when the affinity syscall is denied.
// Callers treat false as "run unpinned", never as an error.
bool pin_current_thread_to_cpu(int cpu);

// Names the calling thread for perf top/htop/TSan reports. Linux caps
// thread names at 15 characters + NUL; longer names are truncated.
void set_current_thread_name(const char* name);

}  // namespace ecsdns::netsim
