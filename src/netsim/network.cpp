#include "netsim/network.h"

#include <stdexcept>

namespace ecsdns::netsim {

void Network::attach(const IpAddress& addr, const GeoPoint& location, Service service) {
  nodes_[addr] = Node{location, std::move(service)};
}

void Network::detach(const IpAddress& addr) { nodes_.erase(addr); }

bool Network::is_attached(const IpAddress& addr) const noexcept {
  return nodes_.find(addr) != nodes_.end();
}

std::optional<GeoPoint> Network::location_of(const IpAddress& addr) const {
  const auto it = nodes_.find(addr);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.location;
}

double Network::distance_between(const IpAddress& a, const IpAddress& b) const {
  const auto la = location_of(a);
  const auto lb = location_of(b);
  if (!la || !lb) throw std::out_of_range("distance_between on unattached address");
  return distance_km(*la, *lb);
}

SimTime Network::rtt_between(const IpAddress& a, const IpAddress& b) const {
  return latency_.round_trip(distance_between(a, b));
}

std::optional<std::vector<std::uint8_t>> Network::round_trip(
    const IpAddress& src, const IpAddress& dst,
    const std::vector<std::uint8_t>& payload, bool tcp) {
  const auto src_it = nodes_.find(src);
  const auto dst_it = nodes_.find(dst);
  if (src_it == nodes_.end() || dst_it == nodes_.end()) {
    ++dropped_;
    if (advance_clock_) loop_.advance(timeout_);
    return std::nullopt;
  }
  const SimTime one_way =
      latency_.one_way(distance_km(src_it->second.location, dst_it->second.location));
  // TCP pays the three-way handshake (one extra RTT) before the query.
  if (advance_clock_ && tcp) loop_.advance(2 * one_way);
  if (advance_clock_) loop_.advance(one_way);
  ++delivered_;
  auto response = dst_it->second.service(Datagram{src, dst, payload, tcp});
  if (!response) {
    ++dropped_;
    // The sender burns the rest of its timeout waiting for a reply that
    // never comes.
    if (advance_clock_) loop_.advance(std::max<SimTime>(timeout_ - one_way, 0));
    return std::nullopt;
  }
  if (advance_clock_) loop_.advance(one_way);
  ++delivered_;
  return response;
}

std::optional<SimTime> Network::ping(const IpAddress& src, const IpAddress& dst) const {
  const auto ls = location_of(src);
  const auto ld = location_of(dst);
  if (!ls || !ld) return std::nullopt;
  return latency_.round_trip(distance_km(*ls, *ld));
}

std::optional<SimTime> Network::tcp_handshake_time(const IpAddress& client,
                                                   const IpAddress& server) const {
  // SYN out, SYN|ACK back: the client can send data after exactly one RTT.
  return ping(client, server);
}

}  // namespace ecsdns::netsim
