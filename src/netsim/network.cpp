#include "netsim/network.h"

#include <stdexcept>

#include "obs/trace.h"

namespace ecsdns::netsim {

Network::Network(LatencyModel latency) : latency_(latency) {
  auto& registry = obs::MetricsRegistry::global();
  metrics_.round_trips = obs::CounterHandle(registry.counter("net.round_trips"));
  metrics_.tcp_round_trips =
      obs::CounterHandle(registry.counter("net.tcp_round_trips"));
  metrics_.timeouts = obs::CounterHandle(registry.counter("net.timeouts"));
  metrics_.bytes_sent = obs::CounterHandle(registry.counter("net.bytes_sent"));
  metrics_.bytes_received =
      obs::CounterHandle(registry.counter("net.bytes_received"));
  metrics_.rtt_us = obs::HistogramHandle(registry.histogram("net.rtt_us"));
}

void Network::attach(const IpAddress& addr, const GeoPoint& location, Service service) {
  nodes_[addr] = Node{location, std::move(service)};
}

void Network::detach(const IpAddress& addr) { nodes_.erase(addr); }

bool Network::is_attached(const IpAddress& addr) const noexcept {
  return nodes_.find(addr) != nodes_.end();
}

std::optional<GeoPoint> Network::location_of(const IpAddress& addr) const {
  const auto it = nodes_.find(addr);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.location;
}

double Network::distance_between(const IpAddress& a, const IpAddress& b) const {
  const auto la = location_of(a);
  const auto lb = location_of(b);
  if (!la || !lb) throw std::out_of_range("distance_between on unattached address");
  return distance_km(*la, *lb);
}

SimTime Network::rtt_between(const IpAddress& a, const IpAddress& b) const {
  return latency_.round_trip(distance_between(a, b));
}

std::optional<std::vector<std::uint8_t>> Network::round_trip(
    const IpAddress& src, const IpAddress& dst,
    std::span<const std::uint8_t> payload, bool tcp) {
  metrics_.round_trips.inc();
  if (tcp) metrics_.tcp_round_trips.inc();
  metrics_.bytes_sent.inc(payload.size());
  auto& tracer = obs::TraceRing::global();
  const auto src_it = nodes_.find(src);
  const auto dst_it = nodes_.find(dst);
  if (src_it == nodes_.end() || dst_it == nodes_.end()) {
    ++dropped_;
    metrics_.timeouts.inc();
    metrics_.rtt_us.observe(static_cast<std::uint64_t>(timeout_));
    if (tracer.enabled()) {
      tracer.record({loop_.now(), obs::TraceKind::kTimeout, src, dst,
                     static_cast<std::uint32_t>(payload.size()), "unknown destination"});
    }
    if (advance_clock_) loop_.advance(timeout_);
    return std::nullopt;
  }
  const SimTime one_way =
      latency_.one_way(distance_km(src_it->second.location, dst_it->second.location));
  // TCP pays the three-way handshake (one extra RTT) before the query.
  if (advance_clock_ && tcp) loop_.advance(2 * one_way);
  if (advance_clock_) loop_.advance(one_way);
  ++delivered_;
  auto response = dst_it->second.service(Datagram{src, dst, payload, tcp});
  if (!response) {
    ++dropped_;
    metrics_.timeouts.inc();
    metrics_.rtt_us.observe(static_cast<std::uint64_t>(timeout_));
    if (tracer.enabled()) {
      tracer.record({loop_.now(), obs::TraceKind::kTimeout, src, dst,
                     static_cast<std::uint32_t>(payload.size()), "service dropped"});
    }
    // The sender burns the rest of its timeout waiting for a reply that
    // never comes.
    if (advance_clock_) loop_.advance(std::max<SimTime>(timeout_ - one_way, 0));
    return std::nullopt;
  }
  if (advance_clock_) loop_.advance(one_way);
  ++delivered_;
  metrics_.bytes_received.inc(response->size());
  // The modeled RTT, independent of clock mode so concurrent drivers (which
  // freeze the shared clock) still populate the latency distribution.
  metrics_.rtt_us.observe(static_cast<std::uint64_t>((tcp ? 4 : 2) * one_way));
  if (tracer.enabled()) {
    tracer.record({loop_.now(), obs::TraceKind::kDatagram, src, dst,
                   static_cast<std::uint32_t>(payload.size()), tcp ? "tcp" : ""});
  }
  return response;
}

std::optional<SimTime> Network::ping(const IpAddress& src, const IpAddress& dst) const {
  const auto ls = location_of(src);
  const auto ld = location_of(dst);
  if (!ls || !ld) return std::nullopt;
  return latency_.round_trip(distance_km(*ls, *ld));
}

std::optional<SimTime> Network::tcp_handshake_time(const IpAddress& client,
                                                   const IpAddress& server) const {
  // SYN out, SYN|ACK back: the client can send data after exactly one RTT.
  return ping(client, server);
}

}  // namespace ecsdns::netsim
