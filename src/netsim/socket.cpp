#include "netsim/socket.h"

#include <algorithm>

namespace ecsdns::netsim {

void MockUdpSocket::push_rx(std::span<const std::uint8_t> bytes,
                            const SocketAddress& peer) {
  if (rx_size_ == ring_.size()) {
    // Grow outside the steady state; reserved slots are reused afterwards.
    const std::size_t grown = std::max<std::size_t>(ring_.size() * 2, 16);
    std::vector<RxItem> next(grown);
    for (std::size_t i = 0; i < rx_size_; ++i) {
      next[i] = std::move(ring_[(rx_head_ + i) % ring_.size()]);
    }
    ring_ = std::move(next);
    rx_head_ = 0;
  }
  RxItem& item = ring_[(rx_head_ + rx_size_) % ring_.size()];
  item.bytes.assign(bytes.begin(), bytes.end());
  item.peer = peer;
  ++rx_size_;
}

IoStatus MockUdpSocket::recv_batch(std::span<RecvSlot> slots, std::size_t& received) {
  received = 0;
  if (recv_interrupts_ > 0) {
    --recv_interrupts_;
    return IoStatus::kInterrupted;
  }
  if (recv_eagain_ > 0) {
    --recv_eagain_;
    return IoStatus::kWouldBlock;
  }
  if (rx_size_ == 0) return IoStatus::kWouldBlock;
  while (received < slots.size() && rx_size_ > 0) {
    RxItem& item = ring_[rx_head_];
    RecvSlot& slot = slots[received];
    const std::size_t n = std::min(item.bytes.size(), slot.buffer.size());
    std::copy_n(item.bytes.begin(), n, slot.buffer.begin());
    slot.length = n;
    slot.peer = item.peer;
    slot.truncated = item.bytes.size() > slot.buffer.size();
    rx_head_ = (rx_head_ + 1) % ring_.size();
    --rx_size_;
    ++received;
  }
  return IoStatus::kOk;
}

IoStatus MockUdpSocket::send_batch(std::span<const SendSlot> slots, std::size_t& sent) {
  sent = 0;
  if (send_interrupts_ > 0) {
    --send_interrupts_;
    return IoStatus::kInterrupted;
  }
  for (const SendSlot& slot : slots) {
    if (send_budget_ >= 0 && sent >= static_cast<std::size_t>(send_budget_)) {
      // Partial progress then a full socket buffer: kOk if anything went
      // out this call (the caller retries the tail), else kWouldBlock.
      return sent > 0 ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    ++sent_count_;
    if (!drop_sends_) {
      if (record_sends_) {
        sent_.emplace_back(slot.payload.begin(), slot.payload.end());
      }
      if (on_send) on_send(slot);
    }
    ++sent;
  }
  return IoStatus::kOk;
}

IoStatus MockUdpSocket::wait_readable(int /*timeout_ms*/) {
  if (recv_interrupts_ > 0) {
    --recv_interrupts_;
    return IoStatus::kInterrupted;
  }
  // A scripted socket never actually blocks: report readiness state
  // immediately so tests stay instantaneous and deterministic.
  return rx_size_ > 0 ? IoStatus::kOk : IoStatus::kWouldBlock;
}

}  // namespace ecsdns::netsim
