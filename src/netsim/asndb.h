// Longest-prefix-match IP-to-AS attribution — the stand-in for the
// BGP-table/whois lookups behind the paper's "4147 addresses belong to 83
// different ASes" style statements. Like the geolocation database, the
// simulation registers ground truth.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "dnscore/ip.h"

namespace ecsdns::netsim {

struct AsInfo {
  std::uint32_t asn = 0;
  std::string organization;
  std::string country;  // ISO-ish code, e.g. "CN", "US"

  bool operator==(const AsInfo&) const = default;
};

class AsnDb {
 public:
  void add(const dnscore::Prefix& prefix, AsInfo info);

  // Longest-prefix match; nullopt for unattributed space.
  std::optional<AsInfo> lookup(const dnscore::IpAddress& addr) const;

  std::size_t size() const noexcept { return count_; }

 private:
  std::map<int, std::unordered_map<dnscore::Prefix, AsInfo, dnscore::PrefixHash>,
           std::greater<>>
      by_length_;
  std::size_t count_ = 0;
};

}  // namespace ecsdns::netsim
