// The UDP socket seam between the deterministic core and the live wire.
//
// UdpSocket is the batch-oriented datagram interface src/live's server
// shards and client drive. Two implementations exist:
//
//   - live::SysUdpSocket — a real nonblocking socket (recvmmsg/sendmmsg,
//     SO_REUSEPORT), outside the determinism boundary;
//   - netsim::MockUdpSocket (below) — a fully scripted in-memory socket for
//     deterministic fault-injection tests: EINTR/EAGAIN storms, truncated
//     (oversized) datagrams, bounded send budgets, and silent drops.
//
// The interface is deliberately allocation-free in steady state: callers
// own the receive buffers (RecvSlot spans) and the mock reuses bounded
// rings, so the noalloc contract tests can drive a recv→dispatch→send loop
// through it without the harness itself allocating.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "dnscore/ip.h"

namespace ecsdns::netsim {

using dnscore::IpAddress;

struct SocketAddress {
  IpAddress ip;
  std::uint16_t port = 0;

  bool operator==(const SocketAddress&) const = default;
};

// Result of one batch I/O attempt, mirroring the errno classes the live
// loop must handle distinctly.
enum class IoStatus {
  kOk,           // count slots transferred (count may be 0 for waits)
  kWouldBlock,   // EAGAIN/EWOULDBLOCK: nothing ready
  kInterrupted,  // EINTR: retry
  kError,        // unrecoverable socket error
};

// One receive descriptor: the caller provides `buffer`, the socket fills
// `length`, `peer`, and `truncated` (datagram exceeded the buffer; the
// kernel's MSG_TRUNC equivalent).
struct RecvSlot {
  std::span<std::uint8_t> buffer;
  std::size_t length = 0;
  SocketAddress peer;
  bool truncated = false;
};

// One send descriptor: payload bytes and destination.
struct SendSlot {
  std::span<const std::uint8_t> payload;
  SocketAddress peer;
};

class UdpSocket {
 public:
  virtual ~UdpSocket() = default;

  // Receives up to slots.size() datagrams without blocking. On kOk,
  // `received` is how many leading slots were filled (>= 1).
  virtual IoStatus recv_batch(std::span<RecvSlot> slots, std::size_t& received) = 0;
  // Sends a batch; on kOk (or kWouldBlock after partial progress) `sent` is
  // how many leading slots went out.
  virtual IoStatus send_batch(std::span<const SendSlot> slots, std::size_t& sent) = 0;
  // Blocks until readable, `timeout_ms` elapses (kWouldBlock), or a signal
  // lands (kInterrupted). timeout_ms < 0 waits indefinitely.
  virtual IoStatus wait_readable(int timeout_ms) = 0;

  virtual SocketAddress local_address() const = 0;
  // The underlying fd for readiness multiplexing; -1 for mocks.
  virtual int native_handle() const { return -1; }
};

// Deterministic scripted socket. Not thread-safe (tests drive it from one
// thread). Inbound datagrams are queued with push_rx(); outbound traffic is
// recorded and optionally forwarded through on_send (loopback pairing).
class MockUdpSocket final : public UdpSocket {
 public:
  explicit MockUdpSocket(SocketAddress local = {})
      : local_(local) {}

  // --- scripting ---
  // Queues an inbound datagram from `peer`.
  void push_rx(std::span<const std::uint8_t> bytes, const SocketAddress& peer);
  // The next `n` recv/wait calls fail with kInterrupted (an EINTR storm).
  void inject_recv_interrupts(int n) { recv_interrupts_ += n; }
  // The next `n` recv/wait calls report kWouldBlock even if data is queued
  // (a spurious-wakeup / EAGAIN storm).
  void inject_recv_eagain(int n) { recv_eagain_ += n; }
  // The next `n` send calls fail with kInterrupted before any progress.
  void inject_send_interrupts(int n) { send_interrupts_ += n; }
  // Caps how many datagrams each send_batch accepts before kWouldBlock
  // (models a full socket buffer forcing partial sends). -1 = unlimited.
  void set_send_budget(int per_batch) { send_budget_ = per_batch; }
  // Accept sends but discard them (models loss after the syscall).
  void set_drop_sends(bool drop) { drop_sends_ = drop; }
  // Delivery hook for loopback pairing: invoked for every accepted (and
  // not dropped) send.
  std::function<void(const SendSlot&)> on_send;

  // --- inspection ---
  std::uint64_t sent_count() const noexcept { return sent_count_; }
  // Copies of the accepted outbound datagrams, oldest first (cleared by the
  // caller as needed). Recording can be disabled for noalloc loops.
  const std::deque<std::vector<std::uint8_t>>& sent() const noexcept { return sent_; }
  void set_record_sends(bool record) { record_sends_ = record; }
  void clear_sent() { sent_.clear(); }
  std::size_t rx_queued() const noexcept { return rx_size_; }

  // --- UdpSocket ---
  IoStatus recv_batch(std::span<RecvSlot> slots, std::size_t& received) override;
  IoStatus send_batch(std::span<const SendSlot> slots, std::size_t& sent) override;
  IoStatus wait_readable(int timeout_ms) override;
  SocketAddress local_address() const override { return local_; }

 private:
  struct RxItem {
    std::vector<std::uint8_t> bytes;
    SocketAddress peer;
  };

  SocketAddress local_;
  // Bounded ring with assign-reuse semantics: slots keep their byte-vector
  // capacity across reuse so steady-state push/recv cycles do not allocate.
  std::vector<RxItem> ring_;
  std::size_t rx_head_ = 0;
  std::size_t rx_size_ = 0;
  int recv_interrupts_ = 0;
  int recv_eagain_ = 0;
  int send_interrupts_ = 0;
  int send_budget_ = -1;
  bool drop_sends_ = false;
  bool record_sends_ = true;
  std::uint64_t sent_count_ = 0;
  std::deque<std::vector<std::uint8_t>> sent_;
};

}  // namespace ecsdns::netsim
