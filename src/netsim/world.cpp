#include "netsim/world.h"

#include <limits>
#include <stdexcept>

namespace ecsdns::netsim {

World::World() {
  cities_ = {
      // North America
      {"Cleveland", "US", "NA", {41.4993, -81.6944}},
      {"Chicago", "US", "NA", {41.8781, -87.6298}},
      {"New York", "US", "NA", {40.7128, -74.0060}},
      {"Ashburn", "US", "NA", {39.0438, -77.4874}},
      {"Atlanta", "US", "NA", {33.7490, -84.3880}},
      {"Miami", "US", "NA", {25.7617, -80.1918}},
      {"Dallas", "US", "NA", {32.7767, -96.7970}},
      {"Denver", "US", "NA", {39.7392, -104.9903}},
      {"Seattle", "US", "NA", {47.6062, -122.3321}},
      {"Mountain View", "US", "NA", {37.3861, -122.0839}},
      {"Los Angeles", "US", "NA", {34.0522, -118.2437}},
      {"Toronto", "CA", "NA", {43.6532, -79.3832}},
      {"Montreal", "CA", "NA", {45.5017, -73.5673}},
      {"Mexico City", "MX", "NA", {19.4326, -99.1332}},
      // South America
      {"Santiago", "CL", "SA", {-33.4489, -70.6693}},
      {"Sao Paulo", "BR", "SA", {-23.5505, -46.6333}},
      {"Buenos Aires", "AR", "SA", {-34.6037, -58.3816}},
      {"Bogota", "CO", "SA", {4.7110, -74.0721}},
      {"Lima", "PE", "SA", {-12.0464, -77.0428}},
      // Europe
      {"Amsterdam", "NL", "EU", {52.3676, 4.9041}},
      {"London", "GB", "EU", {51.5074, -0.1278}},
      {"Paris", "FR", "EU", {48.8566, 2.3522}},
      {"Frankfurt", "DE", "EU", {50.1109, 8.6821}},
      {"Zurich", "CH", "EU", {47.3769, 8.5417}},
      {"Milan", "IT", "EU", {45.4642, 9.1900}},
      {"Rome", "IT", "EU", {41.9028, 12.4964}},
      {"Madrid", "ES", "EU", {40.4168, -3.7038}},
      {"Stockholm", "SE", "EU", {59.3293, 18.0686}},
      {"Warsaw", "PL", "EU", {52.2297, 21.0122}},
      {"Vienna", "AT", "EU", {48.2082, 16.3738}},
      {"Prague", "CZ", "EU", {50.0755, 14.4378}},
      {"Dublin", "IE", "EU", {53.3498, -6.2603}},
      {"Helsinki", "FI", "EU", {60.1699, 24.9384}},
      {"Lisbon", "PT", "EU", {38.7223, -9.1393}},
      {"Athens", "GR", "EU", {37.9838, 23.7275}},
      {"Bucharest", "RO", "EU", {44.4268, 26.1025}},
      {"Moscow", "RU", "EU", {55.7558, 37.6173}},
      {"Kyiv", "UA", "EU", {50.4501, 30.5234}},
      // Africa
      {"Johannesburg", "ZA", "AF", {-26.2041, 28.0473}},
      {"Cape Town", "ZA", "AF", {-33.9249, 18.4241}},
      {"Cairo", "EG", "AF", {30.0444, 31.2357}},
      {"Lagos", "NG", "AF", {6.5244, 3.3792}},
      {"Nairobi", "KE", "AF", {-1.2921, 36.8219}},
      // Asia
      {"Beijing", "CN", "AS", {39.9042, 116.4074}},
      {"Shanghai", "CN", "AS", {31.2304, 121.4737}},
      {"Guangzhou", "CN", "AS", {23.1291, 113.2644}},
      {"Shenzhen", "CN", "AS", {22.5431, 114.0579}},
      {"Chengdu", "CN", "AS", {30.5728, 104.0668}},
      {"Hong Kong", "HK", "AS", {22.3193, 114.1694}},
      {"Taipei", "TW", "AS", {25.0330, 121.5654}},
      {"Tokyo", "JP", "AS", {35.6762, 139.6503}},
      {"Osaka", "JP", "AS", {34.6937, 135.5023}},
      {"Seoul", "KR", "AS", {37.5665, 126.9780}},
      {"Singapore", "SG", "AS", {1.3521, 103.8198}},
      {"Mumbai", "IN", "AS", {19.0760, 72.8777}},
      {"Delhi", "IN", "AS", {28.7041, 77.1025}},
      {"Bangalore", "IN", "AS", {12.9716, 77.5946}},
      {"Jakarta", "ID", "AS", {-6.2088, 106.8456}},
      {"Bangkok", "TH", "AS", {13.7563, 100.5018}},
      {"Dubai", "AE", "AS", {25.2048, 55.2708}},
      {"Tel Aviv", "IL", "AS", {32.0853, 34.7818}},
      {"Istanbul", "TR", "AS", {41.0082, 28.9784}},
      // Oceania
      {"Sydney", "AU", "OC", {-33.8688, 151.2093}},
      {"Melbourne", "AU", "OC", {-37.8136, 144.9631}},
      {"Auckland", "NZ", "OC", {-36.8485, 174.7633}},
  };
}

const City& World::city(const std::string& name) const {
  for (const auto& c : cities_) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("unknown city: " + name);
}

bool World::has_city(const std::string& name) const noexcept {
  for (const auto& c : cities_) {
    if (c.name == name) return true;
  }
  return false;
}

std::vector<const City*> World::cities_in(const std::string& continent) const {
  std::vector<const City*> out;
  for (const auto& c : cities_) {
    if (c.continent == continent) out.push_back(&c);
  }
  return out;
}

const City& World::random_city(Rng& rng) const {
  return cities_[rng.uniform(cities_.size())];
}

const City& World::random_city_atlas_biased(Rng& rng) const {
  // RIPE Atlas hosts roughly half its probes in Europe; mimic that skew.
  if (rng.chance(0.5)) {
    const auto eu = cities_in("EU");
    return *eu[rng.uniform(eu.size())];
  }
  return random_city(rng);
}

const City& World::nearest(const GeoPoint& p) const {
  const City* best = &cities_.front();
  double best_km = std::numeric_limits<double>::max();
  for (const auto& c : cities_) {
    const double d = distance_km(c.location, p);
    if (d < best_km) {
      best_km = d;
      best = &c;
    }
  }
  return *best;
}

}  // namespace ecsdns::netsim
