// Geographic model: coordinates, great-circle distance, and a latency model
// translating distance into network delay.
#pragma once

#include <cstdint>
#include <string>

namespace ecsdns::netsim {

// WGS84-ish point; we only ever need great-circle distances, so a sphere is
// plenty.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  bool operator==(const GeoPoint&) const = default;
};

// Great-circle (haversine) distance in kilometers.
double distance_km(const GeoPoint& a, const GeoPoint& b);

// Virtual time is in integer microseconds from experiment start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

// Converts a distance into a one-way propagation delay.
//
// Model: light in fiber covers ~200 km/ms; real paths are not great circles
// and traverse queues, so we apply a path-stretch factor plus a fixed
// per-direction overhead. Calibrated so that, e.g., Cleveland->Chicago
// (~500 km) yields an RTT around 10-15 ms and Cleveland->Johannesburg
// (~13,400 km) an RTT in the 270-300 ms range — matching the magnitudes in
// the paper's Table 2.
struct LatencyModel {
  double km_per_ms = 200.0;     // speed of light in fiber
  double path_stretch = 1.8;    // routed path vs great circle
  double fixed_overhead_ms = 2.0;  // last-mile + stack, per direction

  SimTime one_way(double km) const;
  SimTime round_trip(double km) const { return 2 * one_way(km); }
};

std::string format_duration(SimTime t);

}  // namespace ecsdns::netsim
