#include "netsim/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecsdns::netsim {

double Rng::exponential(double mean) {
  // Inverse-CDF; guard against log(0).
  double u = uniform_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler requires n > 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace ecsdns::netsim
