// A synthetic world: a catalog of real cities with coordinates, the raw
// material for placing clients, resolvers, edge servers, and probes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/geo.h"
#include "netsim/rng.h"

namespace ecsdns::netsim {

struct City {
  std::string name;
  std::string country;
  std::string continent;  // "NA", "SA", "EU", "AF", "AS", "OC"
  GeoPoint location;
};

// Immutable city catalog. The set covers every location the paper names
// (Cleveland, Chicago, Mountain View, Zurich, Johannesburg, Santiago,
// Milan, Beijing, Shanghai, Guangzhou, Toronto, Amsterdam, ...) plus a
// global spread for probe placement.
class World {
 public:
  World();

  const std::vector<City>& cities() const noexcept { return cities_; }
  // Throws std::out_of_range if the city is not in the catalog.
  const City& city(const std::string& name) const;
  bool has_city(const std::string& name) const noexcept;

  // All cities on a continent.
  std::vector<const City*> cities_in(const std::string& continent) const;

  // A random city, optionally biased: RIPE-Atlas-style sampling
  // over-represents Europe (the paper notes this skew explains the CDF
  // similarity of Figures 6 and 7).
  const City& random_city(Rng& rng) const;
  const City& random_city_atlas_biased(Rng& rng) const;

  // Nearest catalog city to a point (for reverse "geolocation" displays).
  const City& nearest(const GeoPoint& p) const;

 private:
  std::vector<City> cities_;
};

}  // namespace ecsdns::netsim
