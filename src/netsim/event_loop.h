// A minimal discrete-event simulator: a virtual clock plus a priority queue
// of scheduled callbacks. Events at equal times fire in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "netsim/geo.h"

namespace ecsdns::netsim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  // Sentinel returned by next_event_time() on an empty queue.
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  SimTime now() const noexcept { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  void schedule_in(SimTime delay, Callback fn);
  // Schedules `fn` at an absolute virtual time (>= now).
  void schedule_at(SimTime when, Callback fn);

  // Advances the clock without running anything — used by the synchronous
  // RPC transport to account for propagation delay.
  void advance(SimTime delta);

  // Runs events until the queue is empty; returns how many events ran.
  std::size_t run();
  // Runs events with fire time <= deadline, then sets now to the deadline.
  std::size_t run_until(SimTime deadline);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  // Fire time of the earliest pending event, or kNever when the queue is
  // empty. The parallel engine uses this to decide whether a shard still
  // has work inside the current epoch.
  SimTime next_event_time() const noexcept {
    return queue_.empty() ? kNever : queue_.top().when;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ecsdns::netsim
