// A minimal discrete-event simulator: a virtual clock plus a pending-timer
// store. Events at equal times fire in scheduling order.
//
// The store is a hierarchical timer wheel by default (O(1) insert/pop at
// millions of pending timers — one Poisson stream per fleet member at paper
// scale); the old binary heap remains selectable behind the same interface
// for profiling (see bench/micro_timer.cpp and docs/perf.md). Both yield
// the identical (when, seq) firing order, so the choice never changes
// simulation results.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "netsim/geo.h"
#include "netsim/timer_wheel.h"

namespace ecsdns::netsim {

enum class TimerQueue { kWheel, kHeap };

class EventLoop {
 public:
  using Callback = std::function<void()>;

  // Sentinel returned by next_event_time() on an empty queue.
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  EventLoop() = default;
  explicit EventLoop(TimerQueue impl) : use_wheel_(impl == TimerQueue::kWheel) {}

  SimTime now() const noexcept { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  void schedule_in(SimTime delay, Callback fn);
  // Schedules `fn` at an absolute virtual time (>= now).
  void schedule_at(SimTime when, Callback fn);

  // Advances the clock without running anything — used by the synchronous
  // RPC transport to account for propagation delay.
  void advance(SimTime delta);

  // Runs events until the queue is empty; returns how many events ran.
  std::size_t run();
  // Runs events with fire time <= deadline, then sets now to the deadline.
  std::size_t run_until(SimTime deadline);

  bool empty() const noexcept {
    return use_wheel_ ? wheel_.empty() : heap_.empty();
  }
  std::size_t pending() const noexcept {
    return use_wheel_ ? wheel_.size() : heap_.size();
  }

  // Fire time of the earliest pending event, or kNever when the queue is
  // empty. The parallel engine uses this to decide whether a shard still
  // has work inside the current epoch.
  SimTime next_event_time() const noexcept {
    return use_wheel_ ? wheel_.peek_next_time() : heap_.peek_next_time();
  }

 private:
  bool pop_next(TimerEntry<Callback>& out) {
    return use_wheel_ ? wheel_.pop_next(out) : heap_.pop_next(out);
  }

  bool use_wheel_ = true;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerWheel<Callback> wheel_;
  TimerHeap<Callback> heap_;
};

}  // namespace ecsdns::netsim
