#include "netsim/asndb.h"

namespace ecsdns::netsim {

void AsnDb::add(const dnscore::Prefix& prefix, AsInfo info) {
  auto& bucket = by_length_[prefix.length()];
  const auto [it, inserted] = bucket.insert_or_assign(prefix, std::move(info));
  (void)it;
  if (inserted) ++count_;
}

std::optional<AsInfo> AsnDb::lookup(const dnscore::IpAddress& addr) const {
  for (const auto& [len, bucket] : by_length_) {
    if (len > addr.bit_length()) continue;
    const auto it = bucket.find(dnscore::Prefix{addr, len});
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

}  // namespace ecsdns::netsim
