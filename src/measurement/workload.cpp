#include "measurement/workload.h"

#include <memory>

#include "measurement/name_table.h"

namespace ecsdns::measurement {

WorkloadStats drive_fleet(Testbed& bed, Fleet& fleet, const WorkloadOptions& options) {
  if (options.hostnames.empty()) {
    throw std::invalid_argument("workload needs at least one hostname");
  }
  auto names = std::make_shared<netsim::ZipfSampler>(options.hostnames.size(),
                                                     options.zipf_exponent);
  // Intern the hostname universe once; the per-query path below then moves
  // a 32-bit id around instead of copying Name buffers into lambdas. The
  // index->id vector keeps the Zipf distribution intact even if the caller
  // listed a hostname twice (both indexes intern to one id).
  auto table = std::make_shared<NameTable>(options.hostnames.size());
  auto ids = std::make_shared<std::vector<NameId>>();
  ids->reserve(options.hostnames.size());
  for (const Name& hostname : options.hostnames) {
    ids->push_back(table->intern(hostname));
  }
  auto stats = std::make_shared<WorkloadStats>();
  auto& loop = bed.network().loop();
  const netsim::SimTime end = loop.now() + options.duration;
  // Thousands of resolvers run concurrently here; their round trips must
  // overlap rather than serialize onto the shared clock (see
  // Network::set_advance_clock). Restored when the drive finishes.
  const bool prev_advance = bed.network().advance_clock();
  bed.network().set_advance_clock(false);

  // One self-rescheduling event chain per fleet member.
  for (std::size_t m = 0; m < fleet.members.size(); ++m) {
    auto& member = fleet.members[m];
    // Member m draws from its own split stream, so its query sequence does
    // not depend on what any other member drew (see WorkloadOptions::seed).
    const auto member_rng = std::make_shared<netsim::Rng>(
        netsim::Rng::stream(options.seed, static_cast<std::uint64_t>(m)));
    // Clients of this resolver live in a /24 of the client pool (or a /64
    // apiece under 2001:db8::/32 for IPv6 populations).
    std::vector<IpAddress> clients;
    for (int c = 0; c < options.clients_per_resolver; ++c) {
      if (member.v6_clients) {
        std::array<std::uint8_t, 16> bytes{};
        bytes[0] = 0x20;
        bytes[1] = 0x01;
        bytes[2] = 0x0d;
        bytes[3] = 0xb8;
        bytes[4] = static_cast<std::uint8_t>(m >> 8);
        bytes[5] = static_cast<std::uint8_t>(m & 0xff);
        bytes[6] = static_cast<std::uint8_t>(c);
        bytes[15] = 0x42;
        clients.push_back(IpAddress::v6(bytes));
        continue;
      }
      // Host octets start at 0x20: last octets of 0x00/0x01 would collide
      // with the jammed-last-byte fingerprint the census looks for.
      clients.push_back(IpAddress::v4(
          (120u << 24) | ((static_cast<std::uint32_t>(m) >> 8) << 16) |
          ((static_cast<std::uint32_t>(m) & 0xff) << 8) |
          static_cast<std::uint32_t>(c + 0x20)));
    }

    struct Chain : std::enable_shared_from_this<Chain> {
      Testbed* bed;
      resolver::RecursiveResolver* resolver;
      std::vector<IpAddress> clients;
      std::shared_ptr<netsim::Rng> rng;
      std::shared_ptr<netsim::ZipfSampler> names;
      std::shared_ptr<const NameTable> table;
      std::shared_ptr<const std::vector<NameId>> ids;
      std::shared_ptr<WorkloadStats> stats;
      const WorkloadOptions* options;
      netsim::SimTime end;
      std::uint16_t next_id = 1;

      void fire(NameId name, const IpAddress& client) {
        ++stats->client_queries;
        const auto query = dnscore::Message::make_query(next_id++, (*table)[name],
                                                        dnscore::RRType::A);
        const auto response = resolver->handle_client_query(query, client);
        if (response && response->header.rcode == dnscore::RCode::NOERROR) {
          ++stats->answered;
        }
      }

      void schedule_next() {
        const auto gap = static_cast<netsim::SimTime>(
            rng->exponential(static_cast<double>(options->mean_query_gap)));
        const netsim::SimTime when = bed->network().loop().now() + std::max<netsim::SimTime>(gap, 1);
        if (when >= end) return;
        auto self = shared_from_this();
        bed->network().loop().schedule_at(when, [self] {
          const NameId name = (*self->ids)[self->names->sample(*self->rng)];
          const IpAddress client = self->rng->pick(self->clients);
          self->fire(name, client);
          if (self->rng->chance(self->options->burst_probability)) {
            const netsim::SimTime burst_at =
                self->bed->network().loop().now() + self->options->burst_gap;
            if (burst_at < self->end) {
              self->bed->network().loop().schedule_at(
                  burst_at, [self, name, client] { self->fire(name, client); });
            }
          }
          self->schedule_next();
        });
      }
    };

    auto chain = std::make_shared<Chain>();
    chain->bed = &bed;
    chain->resolver = member.resolver;
    chain->clients = std::move(clients);
    chain->rng = member_rng;
    chain->names = names;
    chain->table = table;
    chain->ids = ids;
    chain->stats = stats;
    chain->options = &options;
    chain->end = end;
    chain->schedule_next();
  }

  loop.run_until(end);
  bed.network().set_advance_clock(prev_advance);
  return *stats;
}

}  // namespace ecsdns::measurement
