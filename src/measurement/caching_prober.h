// The §6.3 caching-behavior study: deliver pairs of queries with client
// identities in different /24s of the same /16 to each resolver, return
// controlled scopes from our authoritative, and observe whether the
// resolver re-queries (honors the scope) or reuses its cache.
//
// Delivery uses the paper's techniques: crafted client ECS for resolvers
// that accept arbitrary prefixes, and pairs of open forwarders (optionally
// behind hidden resolvers) for everyone else.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "measurement/fleet.h"
#include "measurement/testbed.h"

namespace ecsdns::measurement {

enum class CachingClass {
  kCorrect,             // honors scope, never conveys > 24 bits
  kIgnoresScope,        // reuses cached answers for any client
  kAcceptsLongPrefixes, // conveys client prefixes longer than /24
  kClamp22,             // caps source and scope at 22 bits
  kPrivatePrefixBug,    // announces 10/8 space and mishandles scope 0
  kUnstudied,           // no delivery path (no suitable forwarders)
  kOther,               // observed but matching no known class
};

std::string to_string(CachingClass c);

struct CachingVerdict {
  IpAddress egress;
  CachingClass cls = CachingClass::kUnstudied;
  bool accepts_client_ecs = false;
  bool honors_scope24 = false;
  bool reuses_scope16 = false;
  bool reuses_scope0 = false;
  int max_source_seen = 0;  // longest source length our auth observed
  bool private_prefix_seen = false;
};

class CachingProber {
 public:
  explicit CachingProber(Testbed& bed);

  CachingVerdict probe(const FleetMember& member);
  std::vector<CachingVerdict> probe_fleet(const Fleet& fleet);

  static std::map<CachingClass, std::size_t> histogram(
      const std::vector<CachingVerdict>& verdicts);

 private:
  // Counts upstream queries our authoritative received for `qname`.
  std::size_t upstream_queries_for(const Name& qname) const;
  Name fresh_name();
  void set_scope(int scope);

  Testbed& bed_;
  authoritative::AuthServer* auth_;
  Name zone_;
  StubClient* client_;
  std::shared_ptr<int> scope_knob_;
  int serial_ = 0;
};

}  // namespace ecsdns::measurement
