#include "measurement/trace_stream.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "dnscore/ip.h"
#include "measurement/sharding.h"

namespace ecsdns::measurement {
namespace {

using netsim::Rng;
using netsim::ZipfSampler;

// Allocates client addresses spread across /24 subnets: `per_subnet`
// clients share each /24, which is what makes ECS scopes bite. (All-Names
// path; the CDN stream derives addresses instead of storing them.)
std::vector<IpAddress> make_clients(std::uint32_t count, std::uint32_t subnets,
                                    Rng& rng) {
  std::vector<IpAddress> out;
  out.reserve(count);
  std::unordered_set<std::uint32_t> used;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t subnet = static_cast<std::uint32_t>(rng.uniform(subnets));
    // Client subnets live in 100.64.0.0-ish space: 100.(s/256).(s%256).host
    for (;;) {
      const std::uint32_t host = 1 + static_cast<std::uint32_t>(rng.uniform(250));
      const std::uint32_t bits = (100u << 24) | ((subnet >> 8) << 16) |
                                 ((subnet & 0xff) << 8) | host;
      if (used.insert(bits).second) {
        out.push_back(IpAddress::v4(bits));
        break;
      }
    }
  }
  return out;
}

int pick_scope(double w24, double w16, double w8, Rng& rng) {
  const double total = w24 + w16 + w8;
  const double u = rng.uniform_double() * total;
  if (u < w24) return 24;
  if (u < w24 + w16) return 16;
  return 8;
}

// The scope table is a property of the CDN, not of any resolver: give it
// its own RNG stream, outside the resolver id space (resolver ids are
// 32-bit, so any id >= 2^32 cannot collide).
constexpr std::uint64_t kScopeStreamId = 1ull << 32;

}  // namespace

TraceStreamInfo scan_trace_info(const Trace& trace) {
  TraceStreamInfo info;
  info.hostnames = trace.hostnames;
  info.resolvers = trace.resolvers;
  info.time_ordered = true;
  info.positive_ttls = true;
  SimTime last = -1;
  for (const auto& q : trace.queries) {
    if (q.time < last) info.time_ordered = false;
    last = std::max(last, q.time);
    if (q.ttl_s == 0) info.positive_ttls = false;
  }
  info.time_bound = trace.queries.empty() ? 0 : last + 1;
  return info;
}

PublicResolverCdnStream::PublicResolverCdnStream(
    const PublicResolverCdnConfig& config)
    : duration_(config.duration),
      ttl_s_(config.ttl_s),
      names_(config.hostnames, config.zipf_exponent) {
  info_.hostnames = config.hostnames;
  info_.resolvers = config.resolvers;
  info_.time_bound = config.duration;
  info_.time_ordered = true;
  info_.positive_ttls = config.ttl_s > 0;

  // Per-hostname authoritative scope (a CDN property of the name).
  Rng scope_rng = Rng::stream(config.seed, kScopeStreamId);
  scope_of_.resize(config.hostnames);
  for (auto& s : scope_of_) {
    s = pick_scope(config.scope24_weight, config.scope16_weight,
                   config.scope8_weight, scope_rng);
  }

  rng_.reserve(config.resolvers);
  arrival_.resize(config.resolvers);
  mean_gap_us_.resize(config.resolvers);
  population_.resize(config.resolvers);
  subnets_.resize(config.resolvers);
  salt_.resize(config.resolvers);
  for (std::uint32_t r = 0; r < config.resolvers; ++r) {
    // Everything resolver r ever does is a pure function of (seed, r).
    Rng rng = Rng::stream(config.seed, r);
    // Population and load sampled log-uniformly: the heterogeneity of a
    // public service's egress fleet (spreads Figure 1 across 1x..16x).
    const double lo = config.min_clients_per_resolver;
    const double hi = config.max_clients_per_resolver;
    const auto population = static_cast<std::uint32_t>(
        lo * std::exp(rng.uniform_double() * std::log(hi / lo)));
    population_[r] = population;
    subnets_[r] = std::max(1u, population / 4);  // ~4 clients per /24 block
    salt_[r] = rng.next_u64();
    // Busier resolvers serve more clients: couple qps to population.
    const double spread =
        static_cast<double>(population - config.min_clients_per_resolver) /
        static_cast<double>(config.max_clients_per_resolver -
                            config.min_clients_per_resolver);
    const double qps =
        config.min_qps +
        spread * (config.max_qps - config.min_qps) * (0.5 + rng.uniform_double());
    mean_gap_us_[r] = 1e6 / qps;
    arrival_[r] = rng.exponential(mean_gap_us_[r]);
    rng_.push_back(rng);
    if (static_cast<SimTime>(arrival_[r]) < duration_) {
      wheel_.push(static_cast<SimTime>(arrival_[r]), r, r);
    }
  }
}

IpAddress PublicResolverCdnStream::client_of(std::uint32_t r,
                                             std::uint32_t k) const noexcept {
  const std::uint64_t key = static_cast<std::uint64_t>(k) << 1;
  const std::uint32_t subnet = static_cast<std::uint32_t>(
      mix64(salt_[r] ^ key) % subnets_[r]) & 0xffffu;
  const std::uint32_t host =
      1 + static_cast<std::uint32_t>(mix64(salt_[r] ^ (key | 1)) % 250);
  const std::uint32_t bits = (100u << 24) | ((subnet >> 8) << 16) |
                             ((subnet & 0xff) << 8) | host;
  return IpAddress::v4(bits);
}

bool PublicResolverCdnStream::restrict_to_members(std::size_t index,
                                                  std::size_t count) {
  if (started_ || count == 0 || index >= count) return false;
  if (count == 1) return true;  // shard 0 of 1 is the unrestricted stream
  netsim::TimerWheel<std::uint32_t> wheel;
  for (std::uint32_t r = 0; r < population_.size(); ++r) {
    if (shard_of_id(r, count) != index) continue;
    if (static_cast<SimTime>(arrival_[r]) < duration_) {
      wheel.push(static_cast<SimTime>(arrival_[r]), r, r);
    }
  }
  wheel_ = std::move(wheel);
  return true;
}

bool PublicResolverCdnStream::next(TraceQuery& q) {
  started_ = true;
  netsim::TimerEntry<std::uint32_t> entry;
  if (!wheel_.pop_next(entry)) return false;
  const std::uint32_t r = entry.payload;
  Rng& rng = rng_[r];
  q.time = entry.when;
  q.resolver = r;
  q.client = client_of(r, static_cast<std::uint32_t>(rng.uniform(population_[r])));
  q.name = static_cast<std::uint32_t>(names_.sample(rng));
  q.scope = scope_of_[q.name];
  q.ttl_s = ttl_s_;
  arrival_[r] += rng.exponential(mean_gap_us_[r]);
  if (static_cast<SimTime>(arrival_[r]) < duration_) {
    wheel_.push(static_cast<SimTime>(arrival_[r]), r, r);
  }
  return true;
}

void PublicResolverCdnStream::append_clients(
    std::vector<IpAddress>& out) const {
  for (std::uint32_t r = 0; r < population_.size(); ++r) {
    for (std::uint32_t k = 0; k < population_[r]; ++k) {
      out.push_back(client_of(r, k));
    }
  }
}

AllNamesStream::AllNamesStream(const AllNamesConfig& config)
    : duration_(config.duration),
      names_(config.hostnames, config.zipf_exponent),
      // Client activity is skewed: a few heavy clients dominate. The
      // population size is fixed by the config, so the sampler can be
      // built before the addresses themselves.
      client_activity_(config.clients, 0.8),
      mean_gap_us_(1e6 / config.queries_per_second),
      rng_(config.seed),
      t_(0) {
  info_.hostnames = config.hostnames;
  info_.resolvers = 1;
  info_.time_bound = config.duration;
  info_.time_ordered = true;
  info_.positive_ttls = true;  // every TTL choice below is positive

  // Identical draw sequence to the retired materialized generator — the
  // committed fig2/fig3/sec9 CSVs depend on it.
  const auto v6_clients =
      static_cast<std::uint32_t>(config.v6_fraction * config.clients);
  const auto v6_subnets = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.v6_fraction * config.client_subnets));
  clients_ = make_clients(config.clients - v6_clients,
                          std::max(1u, config.client_subnets - v6_subnets),
                          rng_);
  // IPv6 clients: each /48 subnet under 2001:db8::/32 hosts several
  // clients, mirroring the dataset's 38.8K addresses in 2.8K /48s.
  for (std::uint32_t i = 0; i < v6_clients; ++i) {
    const std::uint32_t subnet =
        static_cast<std::uint32_t>(rng_.uniform(v6_subnets));
    std::array<std::uint8_t, 16> bytes{};
    bytes[0] = 0x20;
    bytes[1] = 0x01;
    bytes[2] = 0x0d;
    bytes[3] = 0xb8;
    bytes[4] = static_cast<std::uint8_t>(subnet >> 8);
    bytes[5] = static_cast<std::uint8_t>(subnet & 0xff);
    bytes[8] = static_cast<std::uint8_t>(i >> 16);
    bytes[9] = static_cast<std::uint8_t>(i >> 8);
    bytes[10] = static_cast<std::uint8_t>(i & 0xff);
    bytes[15] = 1;
    clients_.push_back(IpAddress::v6(bytes));
  }

  // Assign each hostname to an SLD; scope and TTL are zone properties.
  slds_.resize(config.slds);
  static constexpr std::uint32_t kTtlChoices[] = {20, 30, 60, 120, 300};
  for (auto& sld : slds_) {
    if (!rng_.chance(config.ecs_zone_fraction)) {
      // A zone that has not adopted ECS answers with scope 0 — one cache
      // entry serves every client.
      sld.scope = 0;
      sld.v6_scope = 0;
      sld.ttl_s = kTtlChoices[rng_.uniform(std::size(kTtlChoices))];
      continue;
    }
    // ECS-adopting zones map mostly at /24 with a tail of coarser scopes
    // (the All-Names dataset only contains such responses).
    const double u = rng_.uniform_double();
    if (u < 0.70) {
      sld.scope = 24;
    } else if (u < 0.85) {
      sld.scope = 20;
    } else if (u < 0.95) {
      sld.scope = 16;
    } else {
      sld.scope = 8;
    }
    sld.v6_scope = rng_.chance(0.7) ? 48 : 56;
    sld.ttl_s = kTtlChoices[rng_.uniform(std::size(kTtlChoices))];
  }
  // Hostname-to-SLD assignment follows a Zipf too: big zones have many
  // names.
  sld_of_.resize(config.hostnames);
  const ZipfSampler sld_sampler(config.slds, 1.0);
  for (auto& s : sld_of_) {
    s = static_cast<std::uint32_t>(sld_sampler.sample(rng_));
  }

  t_ = rng_.exponential(mean_gap_us_);
}

bool AllNamesStream::next(TraceQuery& q) {
  if (static_cast<SimTime>(t_) >= duration_) return false;
  q.time = static_cast<SimTime>(t_);
  q.resolver = 0;
  q.client = clients_[client_activity_.sample(rng_)];
  q.name = static_cast<std::uint32_t>(names_.sample(rng_));
  const Sld& sld = slds_[sld_of_[q.name]];
  q.scope = q.client.is_v4() ? sld.scope : sld.v6_scope;
  q.ttl_s = sld.ttl_s;
  t_ += rng_.exponential(mean_gap_us_);
  return true;
}

void AllNamesStream::append_clients(std::vector<IpAddress>& out) const {
  out.insert(out.end(), clients_.begin(), clients_.end());
}

TraceStreamFactory cdn_stream_factory(const PublicResolverCdnConfig& config) {
  return [config]() -> std::unique_ptr<TraceStream> {
    return std::make_unique<PublicResolverCdnStream>(config);
  };
}

TraceStreamFactory all_names_stream_factory(const AllNamesConfig& config) {
  return [config]() -> std::unique_ptr<TraceStream> {
    return std::make_unique<AllNamesStream>(config);
  };
}

Trace drain(TraceStream& stream) {
  Trace trace;
  const TraceStreamInfo& info = stream.info();
  trace.hostnames = info.hostnames;
  trace.resolvers = info.resolvers;
  stream.append_clients(trace.clients);
  TraceQuery q;
  while (stream.next(q)) trace.queries.push_back(q);
  return trace;
}

}  // namespace ecsdns::measurement
