// Statistics and text rendering for the experiment harness: CDFs,
// percentiles, 2D binned scatter summaries (the paper's hexbin plots), and
// fixed-width tables the bench binaries print.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace ecsdns::measurement {

// Empirical distribution over double samples.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t count() const noexcept { return samples_.size(); }

  double min() const;
  double max() const;
  double mean() const;
  // Interpolation-free percentile: the smallest sample with CDF >= p,
  // p in [0, 1].
  double percentile(double p) const;
  double median() const { return percentile(0.5); }

  // Fraction of samples <= x.
  double fraction_at_most(double x) const;

  // (value, cumulative fraction) pairs at `points` evenly spaced quantiles,
  // for printing a figure's series.
  std::vector<std::pair<double, double>> series(std::size_t points) const;

 private:
  std::vector<double> samples_;  // sorted
};

// ASCII rendering of one or more CDFs on a shared x axis, so bench output
// is eyeballable without plotting tools.
std::string render_cdf_plot(const std::vector<std::pair<std::string, Cdf>>& curves,
                            const std::string& x_label, std::size_t width = 72,
                            std::size_t height = 16, bool log_x = false);

// 2D binned scatter summary standing in for the paper's hexbin plots
// (Figures 4-5): counts per (x, y) cell plus above/on/below-diagonal
// fractions.
class BinnedScatter {
 public:
  BinnedScatter(double x_max, double y_max, std::size_t bins);

  void add(double x, double y);

  std::size_t total() const noexcept { return total_; }
  double fraction_below_diagonal() const;  // y < x
  double fraction_on_diagonal() const;     // y == x (within one bin)
  double fraction_above_diagonal() const;  // y > x

  std::string render(const std::string& x_label, const std::string& y_label) const;

 private:
  double x_max_, y_max_;
  std::size_t bins_;
  std::vector<std::size_t> cells_;  // bins_ x bins_, row-major by y
  std::size_t total_ = 0;
  std::size_t below_ = 0, on_ = 0, above_ = 0;
};

// Writes experiment series to results/<name>.csv so figures can be
// re-plotted outside the terminal. Creation failures are reported, not
// fatal — the printed tables remain the primary artifact.
class CsvWriter {
 public:
  // Opens results/<name>.csv (creating the directory) and writes the
  // header row.
  CsvWriter(const std::string& name, const std::vector<std::string>& columns);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells);
  bool ok() const noexcept { return file_ != nullptr; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t columns_ = 0;
};

// Fixed-width text table used by every bench binary.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecsdns::measurement
