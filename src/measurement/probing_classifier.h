// The §6.1 analysis: classify each resolver's ECS probing strategy from an
// authoritative-side query log.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "authoritative/server.h"

namespace ecsdns::measurement {

using authoritative::QueryLogEntry;
using dnscore::IpAddress;
using netsim::SimTime;

enum class ProbingClass {
  kAlwaysEcs,           // 100% of address queries carry ECS
  kHostnameNoCache,     // ECS for specific names, repeats within TTL
  kPeriodicLoopback,    // loopback probes at ~30-minute multiples
  kHostnameOnMiss,      // ECS for specific names, never within TTL
  kIrregular,           // ECS on a subset with no discernible pattern
  kNoEcs,               // never sends ECS
  kTooFewQueries,       // not enough data to classify
};

std::string to_string(ProbingClass c);

struct ProbingVerdict {
  IpAddress resolver;
  ProbingClass cls = ProbingClass::kTooFewQueries;
  std::uint64_t address_queries = 0;
  std::uint64_t ecs_queries = 0;
};

struct ProbingClassifierOptions {
  // Answer TTL of the observed zone (the paper's CDN returns 20 s).
  SimTime ttl = 20 * netsim::kSecond;
  // Probe cadence detection: gaps must be near a multiple of this.
  SimTime probe_quantum = 30 * netsim::kMinute;
  SimTime probe_tolerance = 2 * netsim::kMinute;
  std::uint64_t min_queries = 10;
};

// Classifies every distinct sender in the log.
std::vector<ProbingVerdict> classify_probing(const std::vector<QueryLogEntry>& log,
                                             const ProbingClassifierOptions& options);

// Counts per class, for the §6.1 summary table.
std::map<ProbingClass, std::size_t> probing_histogram(
    const std::vector<ProbingVerdict>& verdicts);

}  // namespace ecsdns::measurement
