// The §6.1 analysis: classify each resolver's ECS probing strategy from an
// authoritative-side query log.
//
// The classifier is an incremental fold: observe() compresses each address
// query into a 16-byte record (time, interned name id, ECS flags) bucketed
// per sender, so a streamed log never needs to stay materialized —
// classification replays the compact per-sender sequences at finish().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "authoritative/server.h"
#include "measurement/name_table.h"

namespace ecsdns::measurement {

using authoritative::QueryLogEntry;
using dnscore::IpAddress;
using netsim::SimTime;

enum class ProbingClass {
  kAlwaysEcs,           // 100% of address queries carry ECS
  kHostnameNoCache,     // ECS for specific names, repeats within TTL
  kPeriodicLoopback,    // loopback probes at ~30-minute multiples
  kHostnameOnMiss,      // ECS for specific names, never within TTL
  kIrregular,           // ECS on a subset with no discernible pattern
  kNoEcs,               // never sends ECS
  kTooFewQueries,       // not enough data to classify
};

std::string to_string(ProbingClass c);

struct ProbingVerdict {
  IpAddress resolver;
  ProbingClass cls = ProbingClass::kTooFewQueries;
  std::uint64_t address_queries = 0;
  std::uint64_t ecs_queries = 0;
};

struct ProbingClassifierOptions {
  // Answer TTL of the observed zone (the paper's CDN returns 20 s).
  SimTime ttl = 20 * netsim::kSecond;
  // Probe cadence detection: gaps must be near a multiple of this.
  SimTime probe_quantum = 30 * netsim::kMinute;
  SimTime probe_tolerance = 2 * netsim::kMinute;
  std::uint64_t min_queries = 10;
};

class ProbingClassifier {
 public:
  explicit ProbingClassifier(const ProbingClassifierOptions& options)
      : options_(options) {}

  // Folds one log entry (non-address queries are ignored). Only the
  // compact record survives the call; the entry itself may be discarded.
  void observe(const QueryLogEntry& entry);

  // Classifies every sender seen so far, sorted by resolver address.
  std::vector<ProbingVerdict> finish() const;

 private:
  // One address query, compressed: 8-byte time, 4-byte interned name,
  // ECS presence and loopback-prefix flags.
  struct Record {
    SimTime time;
    NameId name;
    std::uint8_t flags;  // bit 0: has ECS, bit 1: loopback ECS prefix
  };

  ProbingClassifierOptions options_;
  NameTable names_;
  std::unordered_map<IpAddress, std::vector<Record>, dnscore::IpAddressHash>
      per_sender_;
};

// Batch wrapper: classifies every distinct sender in a materialized log.
std::vector<ProbingVerdict> classify_probing(const std::vector<QueryLogEntry>& log,
                                             const ProbingClassifierOptions& options);

// Counts per class, for the §6.1 summary table.
std::map<ProbingClass, std::size_t> probing_histogram(
    const std::vector<ProbingVerdict>& verdicts);

}  // namespace ecsdns::measurement
