#include "measurement/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <system_error>
#include <stdexcept>

namespace ecsdns::measurement {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Cdf::min() const {
  if (samples_.empty()) throw std::logic_error("empty CDF");
  return samples_.front();
}

double Cdf::max() const {
  if (samples_.empty()) throw std::logic_error("empty CDF");
  return samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) throw std::logic_error("empty CDF");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Cdf::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("empty CDF");
  p = std::clamp(p, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  return samples_[idx == 0 ? 0 : idx - 1];
}

double Cdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::series(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(percentile(p), p);
  }
  return out;
}

std::string render_cdf_plot(const std::vector<std::pair<std::string, Cdf>>& curves,
                            const std::string& x_label, std::size_t width,
                            std::size_t height, bool log_x) {
  if (curves.empty()) return "(no data)\n";
  double x_min = 1e300, x_max = -1e300;
  for (const auto& [name, cdf] : curves) {
    if (cdf.empty()) continue;
    x_min = std::min(x_min, cdf.min());
    x_max = std::max(x_max, cdf.max());
  }
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (log_x && x_min <= 0) log_x = false;

  const auto to_col = [&](double x) -> std::size_t {
    double f;
    if (log_x) {
      f = (std::log10(x) - std::log10(x_min)) /
          (std::log10(x_max) - std::log10(x_min));
    } else {
      f = (x - x_min) / (x_max - x_min);
    }
    f = std::clamp(f, 0.0, 1.0);
    return static_cast<std::size_t>(f * static_cast<double>(width - 1));
  };

  static constexpr char kMarks[] = "*o+x#@%&";
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const Cdf& cdf = curves[c].second;
    if (cdf.empty()) continue;
    const char mark = kMarks[c % (sizeof(kMarks) - 1)];
    for (std::size_t row = 0; row < height; ++row) {
      // Row 0 is the top of the plot (CDF = 1.0).
      const double p =
          static_cast<double>(height - row) / static_cast<double>(height);
      const double x = cdf.percentile(p);
      grid[row][to_col(x)] = mark;
    }
  }

  std::string out;
  out += "CDF (y: 0..1)\n";
  for (std::size_t row = 0; row < height; ++row) {
    const double p = static_cast<double>(height - row) / static_cast<double>(height);
    char label[16];
    std::snprintf(label, sizeof(label), "%4.2f |", p);
    out += label + grid[row] + "\n";
  }
  out += "      " + std::string(width, '-') + "\n";
  char bounds[160];
  std::snprintf(bounds, sizeof(bounds), "      %.3g%*s%.3g  (%s%s)\n", x_min,
                static_cast<int>(width) - 10, "", x_max, x_label.c_str(),
                log_x ? ", log x" : "");
  out += bounds;
  for (std::size_t c = 0; c < curves.size(); ++c) {
    out += "      ";
    out += kMarks[c % (sizeof(kMarks) - 1)];
    out += " = " + curves[c].first + "\n";
  }
  return out;
}

BinnedScatter::BinnedScatter(double x_max, double y_max, std::size_t bins)
    : x_max_(x_max), y_max_(y_max), bins_(bins), cells_(bins * bins, 0) {
  if (bins == 0 || x_max <= 0 || y_max <= 0) {
    throw std::invalid_argument("BinnedScatter requires positive extents and bins");
  }
}

void BinnedScatter::add(double x, double y) {
  const auto xi = static_cast<std::size_t>(
      std::clamp(x / x_max_, 0.0, 1.0) * static_cast<double>(bins_ - 1));
  const auto yi = static_cast<std::size_t>(
      std::clamp(y / y_max_, 0.0, 1.0) * static_cast<double>(bins_ - 1));
  ++cells_[yi * bins_ + xi];
  ++total_;
  // Diagonal comparison in data space, with one-bin tolerance mirroring the
  // paper's "equidistant" class.
  const double tolerance = std::max(x_max_, y_max_) / static_cast<double>(bins_);
  if (std::abs(y - x) <= tolerance) {
    ++on_;
  } else if (y < x) {
    ++below_;
  } else {
    ++above_;
  }
}

double BinnedScatter::fraction_below_diagonal() const {
  return total_ == 0 ? 0.0 : static_cast<double>(below_) / static_cast<double>(total_);
}

double BinnedScatter::fraction_on_diagonal() const {
  return total_ == 0 ? 0.0 : static_cast<double>(on_) / static_cast<double>(total_);
}

double BinnedScatter::fraction_above_diagonal() const {
  return total_ == 0 ? 0.0 : static_cast<double>(above_) / static_cast<double>(total_);
}

std::string BinnedScatter::render(const std::string& x_label,
                                  const std::string& y_label) const {
  // Density shading, top row = largest y.
  static constexpr char kShades[] = " .:-=+*#%@";
  std::size_t max_cell = 1;
  for (const auto c : cells_) max_cell = std::max(max_cell, c);
  std::string out;
  out += y_label + " (top=" + TextTable::num(y_max_, 0) + ")\n";
  for (std::size_t yi = bins_; yi-- > 0;) {
    out += "  |";
    for (std::size_t xi = 0; xi < bins_; ++xi) {
      const std::size_t c = cells_[yi * bins_ + xi];
      if (c == 0) {
        // Mark the diagonal faintly where empty.
        out += (xi == yi) ? '`' : ' ';
        continue;
      }
      const double f = std::log1p(static_cast<double>(c)) /
                       std::log1p(static_cast<double>(max_cell));
      auto shade = static_cast<std::size_t>(
          1.0 + f * static_cast<double>(sizeof(kShades) - 3));
      shade = std::min(shade, sizeof(kShades) - 2);
      out += kShades[shade];
    }
    out += "\n";
  }
  out += "  +" + std::string(bins_, '-') + "> " + x_label + " (right=" +
         TextTable::num(x_max_, 0) + ")\n";
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "  n=%zu  below diag (y<x): %.1f%%  on diag: %.1f%%  above: %.1f%%\n",
                total_, 100 * fraction_below_diagonal(), 100 * fraction_on_diagonal(),
                100 * fraction_above_diagonal());
  out += summary;
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& name, const std::vector<std::string>& columns)
    : path_("results/" + name + ".csv"), columns_(columns.size()) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  if (!ec) file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "note: could not open %s; skipping CSV output\n",
                 path_.c_str());
    return;
  }
  row(columns);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return;
  std::string line;
  for (std::size_t i = 0; i < std::max(cells.size(), columns_); ++i) {
    if (i != 0) line += ",";
    if (i < cells.size()) line += csv_escape(cells[i]);
  }
  line += "\n";
  std::fputs(line.c_str(), file_);
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (const auto w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";
  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

}  // namespace ecsdns::measurement
