#include "measurement/flattening_exp.h"

#include <stdexcept>

namespace ecsdns::measurement {

FlatteningTimeline run_cname_flattening_experiment(Testbed& bed,
                                                   const FlatteningOptions& options) {
  using dnscore::Name;
  using dnscore::Prefix;

  // --- topology ---
  auto& fleet = bed.add_global_fleet();
  // A CDN that maps by ECS when present and by the query sender otherwise —
  // so the provider's ECS-less backend query gets mapped to the *provider*.
  cdn::ProximityMappingConfig cdn_config;
  cdn_config.label = "major-cdn";
  cdn_config.min_ecs_bits = 16;
  cdn_config.effective_bits = 24;
  cdn_config.fallback = cdn::Fallback::kResolverProxy;
  auto& mapping = bed.add_mapping(cdn_config, fleet);

  const Name cdn_zone = Name::from_string("cdn.net");
  const Name cdn_host = Name::from_string("customer.cdn.net");
  auto& cdn_auth = bed.add_auth(
      "cdn-auth", cdn_zone, "Ashburn",
      std::make_unique<authoritative::CdnMappingPolicy>(mapping),
      authoritative::AuthConfig{.label = "cdn", .tailored_ttl = options.cdn_ttl});
  cdn_auth.find_zone(cdn_zone)->add(dnscore::ResourceRecord::make_a(
      cdn_host, options.cdn_ttl, fleet.servers().front().address));
  const auto cdn_auth_addr = bed.auth_address(cdn_auth);

  // The DNS provider hosting customer.com, flattening the apex.
  const Name customer_zone = Name::from_string("customer.com");
  const Name www_host = Name::from_string("www.customer.com");
  authoritative::FlatteningConfig fconfig;
  fconfig.forward_ecs = options.provider_forwards_ecs;
  auto& provider = bed.add_flattening_auth(fconfig, customer_zone,
                                           options.provider_city);
  provider.flatten(customer_zone, cdn_host, cdn_auth_addr);
  provider.base().find_zone(customer_zone)
      ->add(dnscore::ResourceRecord::make_cname(www_host, 300, cdn_host));

  // The public resolver: ECS-capable, whitelisted by nobody needed —
  // the CDN policy here uses ECS from any resolver.
  auto& resolver = bed.add_resolver(resolver::ResolverConfig::google_like(),
                                    options.resolver_city);
  auto& client = bed.add_client(options.client_city);

  auto& net = bed.network();
  FlatteningTimeline timeline;

  // --- apex access (Figure 8 steps 1-8) ---
  const netsim::SimTime t0 = net.now();
  const auto apex_response =
      client.query(resolver.address(), customer_zone, dnscore::RRType::A);
  timeline.apex_dns = net.now() - t0;
  if (!apex_response || !apex_response->first_address()) {
    throw std::runtime_error("apex resolution failed in flattening experiment");
  }
  timeline.apex_edge = *apex_response->first_address();
  // Step 7: TCP handshake with E1, then the HTTP request that bounces with
  // a 302 to www.customer.com (one more round trip).
  const auto apex_rtt = net.ping(client.address(), timeline.apex_edge);
  if (!apex_rtt) throw std::runtime_error("apex edge unreachable");
  timeline.apex_handshake = *apex_rtt;
  timeline.redirect = *apex_rtt;
  if (const auto loc = net.location_of(timeline.apex_edge)) {
    timeline.apex_edge_city = bed.world().nearest(*loc).name;
  }

  // --- www access (steps 9-14) ---
  const netsim::SimTime t1 = net.now();
  const auto www_response =
      client.query(resolver.address(), www_host, dnscore::RRType::A);
  timeline.www_dns = net.now() - t1;
  if (!www_response || !www_response->first_address()) {
    throw std::runtime_error("www resolution failed in flattening experiment");
  }
  timeline.www_edge = *www_response->first_address();
  const auto www_rtt = net.ping(client.address(), timeline.www_edge);
  if (!www_rtt) throw std::runtime_error("www edge unreachable");
  timeline.www_handshake = *www_rtt;
  if (const auto loc = net.location_of(timeline.www_edge)) {
    timeline.www_edge_city = bed.world().nearest(*loc).name;
  }
  return timeline;
}

}  // namespace ecsdns::measurement
