// Mapping-quality experiments (§8.1 Table 2, §8.3 Figures 6-7).
//
// Figures 6-7: Atlas-style probes scattered over the world; for each ECS
// source prefix length, the lab queries the CDN's authoritative with the
// probe's truncated prefix and measures the TCP handshake time from the
// probe to the first answer address. The CDFs expose the prefix length at
// which the CDN stops using ECS for proximity mapping.
//
// Table 2: queries with unroutable ECS prefixes against a Google-like
// authoritative, reporting the first answer, its RTT from the lab, and its
// location.
#pragma once

#include <string>
#include <vector>

#include "measurement/stats.h"
#include "measurement/testbed.h"

namespace ecsdns::measurement {

struct ProbeSite {
  IpAddress address;
  std::string city;
};

// Creates `count` probes in Atlas-biased random cities (Europe-heavy, as
// the paper notes about the platform).
std::vector<ProbeSite> make_probe_sites(Testbed& bed, std::size_t count,
                                        std::uint64_t seed);

struct PrefixLengthResult {
  int prefix_length = 0;
  Cdf connect_ms;                       // per-probe TCP handshake latency
  std::size_t unique_first_answers = 0; // distinct first-answer addresses
};

// Runs the Figure 6/7 sweep: for each length, query `auth` for `hostname`
// with each probe's prefix truncated to that length.
std::vector<PrefixLengthResult> run_prefix_length_sweep(
    Testbed& bed, const IpAddress& auth_address, const Name& hostname,
    const std::vector<ProbeSite>& probes, const std::vector<int>& lengths,
    const std::string& lab_city = "Cleveland");

struct UnroutableRow {
  std::string ecs_label;
  IpAddress first_answer;
  double rtt_ms = 0.0;
  std::string location;  // nearest catalog city of the answer
};

// Table 2: the five query variants from a lab machine in `lab_city`.
std::vector<UnroutableRow> run_unroutable_experiment(Testbed& bed,
                                                     const IpAddress& auth_address,
                                                     const Name& hostname,
                                                     const std::string& lab_city =
                                                         "Cleveland");

}  // namespace ecsdns::measurement
