// Synthetic DNS trace generators calibrated to the shape of the paper's two
// resolver-side datasets (§4). The real traces are proprietary; these
// generators expose the knobs the cache analysis of §7 actually depends on:
// client-subnet diversity, hostname popularity, authoritative scope, TTL,
// and arrival rate.
#pragma once

#include <cstdint>
#include <vector>

#include "dnscore/ip.h"
#include "measurement/name_table.h"
#include "netsim/geo.h"
#include "netsim/rng.h"

namespace ecsdns::measurement {

using dnscore::IpAddress;
using netsim::SimTime;

// One logged query/response pair, as a resolver-side log line: who asked,
// for what, and what ECS scope and TTL the authoritative answered with.
struct TraceQuery {
  SimTime time = 0;
  std::uint32_t resolver = 0;  // egress resolver instance
  IpAddress client;            // the client the ECS prefix derives from
  NameId name = 0;             // interned hostname id (dense index)
  int scope = 24;              // authoritative scope prefix length
  std::uint32_t ttl_s = 20;    // answer TTL in seconds
};

struct Trace {
  std::vector<TraceQuery> queries;
  std::vector<IpAddress> clients;  // unique client addresses (for sampling)
  std::uint32_t hostnames = 0;
  std::uint32_t resolvers = 1;
};

// The Public Resolver/CDN dataset (§4): many egress resolvers of one public
// DNS service querying one CDN. All responses share the CDN's fixed TTL and
// carry non-zero scopes.
struct PublicResolverCdnConfig {
  std::uint32_t resolvers = 237;      // paper: 2370 (we default to 1:10)
  // Egress resolvers of a public service are wildly heterogeneous: some
  // serve a handful of client subnets at a trickle, others thousands at
  // hundreds of qps. Per-resolver load and client diversity are sampled
  // log-uniformly from these ranges — that heterogeneity is what spreads
  // Figure 1's blow-up CDF across 1x..16x.
  std::uint32_t min_clients_per_resolver = 200;
  std::uint32_t max_clients_per_resolver = 4000;
  double min_qps = 24.0;
  double max_qps = 400.0;
  std::uint32_t hostnames = 1000;     // distinct CDN-accelerated names
  double zipf_exponent = 1.0;         // hostname popularity skew
  std::uint32_t ttl_s = 20;           // the paper's CDN answers 20 s
  SimTime duration = 4 * netsim::kMinute;  // paper observes 3 h
  // Authoritative scope mix: mostly /24 mapping granularity with some
  // coarser zones (weights normalized internally).
  double scope24_weight = 0.80;
  double scope16_weight = 0.15;
  double scope8_weight = 0.05;
  std::uint64_t seed = 1;
};

Trace generate_public_resolver_cdn_trace(const PublicResolverCdnConfig& config);

// The All-Names Resolver dataset (§4): a single busy egress resolver, all
// ECS-bearing interactions with every authoritative, real-world TTL and
// scope diversity. Scope and TTL are properties of the zone, so they are
// assigned per second-level domain.
struct AllNamesConfig {
  std::uint32_t clients = 7620;        // paper: 76.2K (1:10)
  std::uint32_t client_subnets = 1510; // paper: 15.1K /24+/48 subnets (1:10)
  // Fraction of clients on IPv6 (paper: 38.8K of 76.2K), each in its own
  // /48; authoritative scopes for v6 zones sit at /48 or /56.
  double v6_fraction = 0.5;
  std::uint32_t hostnames = 13492;     // paper: 134,925 (1:10)
  std::uint32_t slds = 1901;           // paper: 19,014 (1:10)
  double zipf_exponent = 1.0;
  double queries_per_second = 128.0;   // paper: 11.1M over 24 h
  SimTime duration = 1 * netsim::kHour;
  // Fraction of zones (SLDs) whose authoritatives support ECS. 1.0 models
  // the All-Names dataset (which only contains ECS interactions); lower
  // values answer §9's "what will the overall blow-up be as deployment
  // grows" question — non-adopting zones return scope 0.
  double ecs_zone_fraction = 1.0;
  std::uint64_t seed = 2;
};

Trace generate_all_names_trace(const AllNamesConfig& config);

// Restricts a trace to queries whose client falls in a random sample of
// `fraction` of the client population (how Figures 2-3 vary population).
Trace sample_clients(const Trace& trace, double fraction, std::uint64_t seed);

}  // namespace ecsdns::measurement
