// Name interning for the measurement hot paths.
//
// The workload driver, the CDN fleet, and the trace replay all iterate over
// a fixed universe of hostnames millions of times. Carrying full Name
// values through those loops copies label buffers and re-hashes octets;
// interning each distinct name ONCE and threading a dense 32-bit NameId
// through the loop reduces every per-query touch to an integer copy.
//
// Ids are issued densely in first-intern order, so they double as vector
// indexes (TraceQuery.name has always been such an index — NameId makes the
// contract explicit). Interning is case-insensitive like Name equality:
// "CDN.Example" and "cdn.example" intern to the same id, and the table
// keeps whichever spelling arrived first.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dnscore/flat_hash.h"
#include "dnscore/name.h"

namespace ecsdns::measurement {

// Dense index of an interned name. 32 bits cover any plausible hostname
// universe (the paper's census tops out at ~8.5M names).
using NameId = std::uint32_t;

class NameTable {
 public:
  NameTable() = default;
  explicit NameTable(std::size_t expected) { reserve(expected); }

  void reserve(std::size_t expected) {
    ids_.reserve(expected);
    names_.reserve(expected);
  }

  // Returns the id for `name`, interning it if new. Ids are dense and
  // stable: the n-th distinct name interned gets id n-1.
  NameId intern(const dnscore::Name& name) {
    if (const NameId* existing = ids_.find(name)) return *existing;
    const auto id = static_cast<NameId>(names_.size());
    names_.push_back(name);
    ids_.insert_or_assign(name, id);
    return id;
  }

  // The id of an already interned name, or nullopt.
  std::optional<NameId> find(const dnscore::Name& name) const {
    const NameId* existing = ids_.find(name);
    if (existing == nullptr) return std::nullopt;
    return *existing;
  }

  // The name behind an id issued by this table. The reference is stable
  // until the next intern() (vector growth may relocate).
  const dnscore::Name& operator[](NameId id) const {
    ECSDNS_DCHECK(id < names_.size());
    return names_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const noexcept { return names_.size(); }
  bool empty() const noexcept { return names_.empty(); }

 private:
  dnscore::FlatHashMap<dnscore::Name, NameId, dnscore::NameHash> ids_;
  std::vector<dnscore::Name> names_;
};

}  // namespace ecsdns::measurement
