// Resolver fleet builders: populations of recursive resolvers (plus their
// ingress forwarders and hidden-resolver chains) whose behavior mixes are
// calibrated to the counts the paper reports for its two datasets.
#pragma once

#include <string>
#include <vector>

#include "measurement/name_table.h"
#include "measurement/testbed.h"
#include "netsim/rng.h"

namespace ecsdns::measurement {

// One egress resolver of a fleet plus the metadata census tables group by.
struct FleetMember {
  RecursiveResolver* resolver = nullptr;
  IpAddress address;
  // Behavior class tag ("AS-MP", "AS-OK", "AS-IGN", ...), used by the
  // experiments to slice the fleet by ground truth.
  std::string behavior;
  // AS assignment as the whois-equivalent database sees it. The major
  // public service is one AS; other members are spread across many, like
  // the paper's 45 non-Google ASes.
  std::string as_label;
  std::string country;
  std::string city;
  // This member's client population is IPv6 (its ECS options carry
  // family 2); the workload driver honors this.
  bool v6_clients = false;
  // Resolution-path entry points (open ingress forwarders) reaching this
  // egress; empty members are unreachable to active scans.
  std::vector<Forwarder*> forwarders;
  // Hidden resolvers (chain intermediaries), parallel to `forwarders` where
  // a chain has one; nullptr where the forwarder talks to the egress
  // directly.
  std::vector<Forwarder*> hidden;
};

struct Fleet {
  std::vector<FleetMember> members;
  // Interned hostname universe the fleet was built around (probe names and
  // whatever the experiments add). Builders pre-intern their probe names;
  // replay and census code key on the dense NameIds instead of Name copies.
  NameTable names;

  std::size_t total_forwarders() const;
  std::vector<const FleetMember*> in_as(const std::string& as_label) const;
};

// Groups member indexes by owning shard — a stable content hash of the
// egress address (see measurement/sharding.h), so a member lands on the
// same shard across runs and platforms no matter how the fleet was built.
// Indexes stay ascending within each shard. `shards == 0` is treated as 1.
std::vector<std::vector<std::size_t>> partition_fleet(const Fleet& fleet,
                                                      std::size_t shards);

// §4/§6.1 "CDN dataset" fleet: the 4147 ECS-enabled non-whitelisted
// resolvers a major CDN observes, with the paper's probing-strategy and
// source-prefix-length mixes:
//   3382 send ECS on 100% of address queries (3067 of them the dominant
//        Chinese AS with jammed /32 prefixes),
//    258 probe specific hostnames with caching disabled,
//     32 probe every 30 minutes with a loopback prefix,
//     88 probe specific hostnames on cache miss,
//    387 show no discernible pattern.
// `scale` divides every count (1 = full size) for quick runs.
struct CdnFleetOptions {
  int scale = 1;
  std::uint64_t seed = 7;
  // Names under the CDN zone that hostname-probers treat as probe names.
  std::vector<Name> probe_names;
  // Include the Table 1 IPv6 rows: ~137 additional resolvers whose client
  // populations are IPv6, announcing /32, /48, /56, /64, and the
  // 64/96/128-alternating combination.
  bool include_v6 = true;
};
Fleet build_cdn_dataset_fleet(Testbed& bed, const CdnFleetOptions& options);

// §4 "Scan dataset" fleet: 1534 ECS-enabled egress resolvers (1256 of a
// major public DNS service + 278 others), each reachable through open
// ingress forwarders, some through hidden-resolver chains. The 278 carry
// the §6.3.2 caching-behavior mix (76 correct, 103 scope-ignoring, 15
// long-prefix, 8 clamp-22, 1 private-block, 75 unreachable for the caching
// study).
struct ScanFleetOptions {
  int scale = 1;
  // Open forwarders per reachable egress resolver (the real ratio is
  // ~1800:1; the association logic only needs a handful).
  int forwarders_per_egress = 4;
  // Fraction of chains routed through a hidden resolver.
  double hidden_chain_fraction = 0.5;
  // Fraction of hidden resolvers placed in a random city — often farther
  // from the forwarder than the egress is (the paper's 8% pathology).
  double hidden_farther_fraction = 0.13;
  // Fraction of hidden resolvers co-located with the egress, which lands
  // the combination exactly on the Figure 4/5 diagonal.
  double hidden_at_egress_fraction = 0.02;
  std::uint64_t seed = 11;
};
Fleet build_scan_dataset_fleet(Testbed& bed, const ScanFleetOptions& options);

}  // namespace ecsdns::measurement
