#include "measurement/mapping_quality.h"

#include <unordered_set>

namespace ecsdns::measurement {
namespace {

using dnscore::EcsOption;
using dnscore::Prefix;

double to_ms(netsim::SimTime t) {
  return static_cast<double>(t) / static_cast<double>(netsim::kMillisecond);
}

}  // namespace

std::vector<ProbeSite> make_probe_sites(Testbed& bed, std::size_t count,
                                        std::uint64_t seed) {
  netsim::Rng rng(seed);
  std::vector<ProbeSite> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& city = bed.world().random_city_atlas_biased(rng);
    auto& client = bed.add_client(city.name);
    out.push_back(ProbeSite{client.address(), city.name});
  }
  return out;
}

std::vector<PrefixLengthResult> run_prefix_length_sweep(
    Testbed& bed, const IpAddress& auth_address, const Name& hostname,
    const std::vector<ProbeSite>& probes, const std::vector<int>& lengths,
    const std::string& lab_city) {
  auto& lab = bed.add_client(lab_city);
  std::vector<PrefixLengthResult> results;
  results.reserve(lengths.size());
  for (const int len : lengths) {
    std::vector<double> connects;
    std::unordered_set<IpAddress, dnscore::IpAddressHash> answers;
    connects.reserve(probes.size());
    for (const auto& probe : probes) {
      const auto response =
          lab.query(auth_address, hostname, dnscore::RRType::A,
                    EcsOption::for_query(Prefix{probe.address, len}));
      if (!response) continue;
      const auto addr = response->first_address();
      if (!addr) continue;
      answers.insert(*addr);
      // The paper downloads a certificate three times from the probe and
      // takes the median handshake; our simulator is deterministic, so one
      // handshake is the median.
      const auto handshake = bed.network().tcp_handshake_time(probe.address, *addr);
      if (handshake) connects.push_back(to_ms(*handshake));
    }
    results.push_back(
        PrefixLengthResult{len, Cdf(std::move(connects)), answers.size()});
  }
  return results;
}

std::vector<UnroutableRow> run_unroutable_experiment(Testbed& bed,
                                                     const IpAddress& auth_address,
                                                     const Name& hostname,
                                                     const std::string& lab_city) {
  auto& lab = bed.add_client(lab_city);

  struct Variant {
    std::string label;
    std::optional<EcsOption> ecs;
  };
  std::vector<Variant> variants;
  variants.push_back({"None", std::nullopt});
  variants.push_back({"/24 of src addr",
                      EcsOption::for_query(Prefix{lab.address(), 24})});
  variants.push_back({"127.0.0.1/32",
                      EcsOption::for_query(Prefix{IpAddress::v4(127, 0, 0, 1), 32})});
  variants.push_back({"127.0.0.0/24",
                      EcsOption::for_query(Prefix{IpAddress::v4(127, 0, 0, 0), 24})});
  variants.push_back(
      {"169.254.252.0/24",
       EcsOption::for_query(Prefix{IpAddress::v4(169, 254, 252, 0), 24})});

  std::vector<UnroutableRow> rows;
  for (const auto& v : variants) {
    const auto response = lab.query(auth_address, hostname, dnscore::RRType::A, v.ecs);
    UnroutableRow row;
    row.ecs_label = v.label;
    if (response) {
      if (const auto addr = response->first_address()) {
        row.first_answer = *addr;
        if (const auto rtt = bed.network().ping(lab.address(), *addr)) {
          // The paper averages 8 pings; deterministic RTT makes one enough.
          row.rtt_ms = to_ms(*rtt);
        }
        if (const auto loc = bed.network().location_of(*addr)) {
          row.location = bed.world().nearest(*loc).name;
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace ecsdns::measurement
