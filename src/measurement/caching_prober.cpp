#include "measurement/caching_prober.h"

#include <algorithm>

namespace ecsdns::measurement {
namespace {

using dnscore::EcsOption;
using dnscore::Prefix;

// An EcsPolicy whose scope is a dial the prober turns between trials.
class MutableScopePolicy : public authoritative::EcsPolicy {
 public:
  explicit MutableScopePolicy(std::shared_ptr<int> scope) : scope_(std::move(scope)) {}

  authoritative::EcsDecision decide(const dnscore::Question&,
                                    const std::optional<EcsOption>& ecs,
                                    const IpAddress&) const override {
    authoritative::EcsDecision d;
    if (!ecs) return d;
    d.include_option = true;
    d.scope = *scope_;
    return d;
  }

 private:
  std::shared_ptr<int> scope_;
};

EcsOption marker_ecs(std::uint8_t third_octet, int bits) {
  return EcsOption::for_query(
      Prefix{dnscore::IpAddress::v4(9, 9, third_octet, 16), bits});
}

}  // namespace

std::string to_string(CachingClass c) {
  switch (c) {
    case CachingClass::kCorrect: return "correct";
    case CachingClass::kIgnoresScope: return "ignores-scope";
    case CachingClass::kAcceptsLongPrefixes: return "accepts->24-prefixes";
    case CachingClass::kClamp22: return "clamps-at-22";
    case CachingClass::kPrivatePrefixBug: return "private-prefix-bug";
    case CachingClass::kUnstudied: return "unstudied";
    case CachingClass::kOther: return "other";
  }
  return "?";
}

CachingProber::CachingProber(Testbed& bed) : bed_(bed) {
  zone_ = Name::from_string("cachingprobe.net");
  scope_knob_ = std::make_shared<int>(24);
  auth_ = &bed_.add_auth("caching-probe-auth", zone_, "Cleveland",
                         std::make_unique<MutableScopePolicy>(scope_knob_));
  client_ = &bed_.add_client("Cleveland");
}

void CachingProber::set_scope(int scope) { *scope_knob_ = scope; }

Name CachingProber::fresh_name() {
  const Name qname = zone_.prepend("t" + std::to_string(serial_++));
  auth_->find_zone(zone_)->add(
      dnscore::ResourceRecord::make_a(qname, 300, IpAddress::v4(192, 0, 2, 7)));
  return qname;
}

std::size_t CachingProber::upstream_queries_for(const Name& qname) const {
  std::size_t n = 0;
  for (const auto& e : auth_->log()) {
    if (e.qname == qname) ++n;
  }
  return n;
}

CachingVerdict CachingProber::probe(const FleetMember& member) {
  CachingVerdict v;
  v.egress = member.address;

  // --- Step 1: does the resolver accept arbitrary client ECS? ---
  {
    const Name probe = fresh_name();
    client_->probe(member.address, probe, dnscore::RRType::A, marker_ecs(4, 24));
    for (const auto& e : auth_->log()) {
      if (e.qname != probe || !e.query_ecs) continue;
      const auto src = e.query_ecs->source_prefix();
      if (src && src->address().bytes()[0] == 9 && src->address().bytes()[1] == 9) {
        v.accepts_client_ecs = true;
      }
    }
  }

  // Delivery abstraction: run one two-identity trial for a fresh name and
  // return how many upstream queries our authoritative saw.
  // `same16` identities differ in /24 but share a /16.
  const auto trial = [&](int scope) -> std::size_t {
    set_scope(scope);
    const Name qname = fresh_name();
    if (v.accepts_client_ecs) {
      client_->probe(member.address, qname, dnscore::RRType::A, marker_ecs(4, 24));
      client_->probe(member.address, qname, dnscore::RRType::A, marker_ecs(5, 24));
      return upstream_queries_for(qname);
    }
    // Two-forwarder technique: pick two chains of the same shape (both
    // direct or both via hidden resolvers) so the egress-visible
    // identities land in different /24s of one /16.
    const Forwarder* f1 = nullptr;
    const Forwarder* f2 = nullptr;
    for (std::size_t i = 0; i < member.forwarders.size() && f2 == nullptr; ++i) {
      for (std::size_t j = i + 1; j < member.forwarders.size(); ++j) {
        const bool hi = member.hidden.size() > i && member.hidden[i] != nullptr;
        const bool hj = member.hidden.size() > j && member.hidden[j] != nullptr;
        if (hi == hj) {
          f1 = member.forwarders[i];
          f2 = member.forwarders[j];
          break;
        }
      }
    }
    if (f1 == nullptr || f2 == nullptr) return 0;  // unstudiable
    client_->probe(f1->address(), qname, dnscore::RRType::A);
    client_->probe(f2->address(), qname, dnscore::RRType::A);
    return upstream_queries_for(qname);
  };

  const std::size_t at24 = trial(24);
  const std::size_t at16 = trial(16);
  const std::size_t at0 = trial(0);
  if (at24 == 0) {
    v.cls = CachingClass::kUnstudied;
    return v;
  }
  v.honors_scope24 = at24 == 2;
  v.reuses_scope16 = at16 == 1;
  v.reuses_scope0 = at0 == 1;

  // --- Step 2: prefix-length handling for arbitrary-ECS resolvers ---
  if (v.accepts_client_ecs) {
    set_scope(24);
    const Name qname = fresh_name();
    client_->probe(member.address, qname, dnscore::RRType::A, marker_ecs(4, 28));
  }
  for (const auto& e : auth_->log()) {
    if (!e.query_ecs || e.sender != member.address) continue;
    v.max_source_seen = std::max(v.max_source_seen,
                                 static_cast<int>(e.query_ecs->source_prefix_length()));
    const auto src = e.query_ecs->source_prefix();
    if (src && src->address().is_private()) v.private_prefix_seen = true;
  }

  // Jammed /32 senders advertise 32 bits while revealing 24; do not count
  // the advertised length as "long prefix acceptance" unless the resolver
  // actually relayed client bits past 24.
  bool relayed_long_client_bits = false;
  bool clamped_to_22 = false;
  if (v.accepts_client_ecs) {
    for (const auto& e : auth_->log()) {
      if (!e.query_ecs || e.sender != member.address) continue;
      const auto src = e.query_ecs->source_prefix();
      if (!src || src->address().bytes()[0] != 9) continue;
      if (src->length() > 24) relayed_long_client_bits = true;
      if (src->length() == 22) clamped_to_22 = true;
    }
  }

  // --- classification ---
  if (v.private_prefix_seen && !v.reuses_scope0) {
    v.cls = CachingClass::kPrivatePrefixBug;
  } else if (clamped_to_22) {
    v.cls = CachingClass::kClamp22;
  } else if (relayed_long_client_bits) {
    v.cls = CachingClass::kAcceptsLongPrefixes;
  } else if (!v.honors_scope24) {
    v.cls = CachingClass::kIgnoresScope;
  } else if (v.honors_scope24 && v.reuses_scope16 && v.reuses_scope0) {
    v.cls = CachingClass::kCorrect;
  } else {
    v.cls = CachingClass::kOther;
  }
  return v;
}

std::vector<CachingVerdict> CachingProber::probe_fleet(const Fleet& fleet) {
  std::vector<CachingVerdict> out;
  out.reserve(fleet.members.size());
  for (const auto& member : fleet.members) {
    // Skip members with no delivery path at all.
    if (member.forwarders.empty()) {
      CachingVerdict v;
      v.egress = member.address;
      v.cls = CachingClass::kUnstudied;
      // Direct probing may still work if the resolver accepts client ECS;
      // probe() handles that, so only shortcut when it cannot.
      out.push_back(probe(member));
      out.back().cls = out.back().accepts_client_ecs ? out.back().cls
                                                     : CachingClass::kUnstudied;
      continue;
    }
    out.push_back(probe(member));
  }
  return out;
}

std::map<CachingClass, std::size_t> CachingProber::histogram(
    const std::vector<CachingVerdict>& verdicts) {
  std::map<CachingClass, std::size_t> out;
  for (const auto& v : verdicts) ++out[v.cls];
  return out;
}

}  // namespace ecsdns::measurement
