#include "measurement/prefix_census.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

namespace ecsdns::measurement {

std::vector<CensusRow> source_prefix_census(const std::vector<QueryLogEntry>& log) {
  // (is_v6, length, jammed) triples sort combination keys numerically with
  // IPv4 variants first, matching the paper's table layout.
  using Variant = std::tuple<bool, int, bool>;
  std::unordered_map<dnscore::IpAddress, std::set<Variant>, dnscore::IpAddressHash>
      per_resolver;
  for (const auto& e : log) {
    if (!e.query_ecs) continue;
    const auto& ecs = *e.query_ecs;
    const int len = ecs.source_prefix_length();
    bool jammed = false;
    if (len == 32 && ecs.address_bytes().size() == 4) {
      const auto last = ecs.address_bytes()[3];
      jammed = last == 0x00 || last == 0x01;
    }
    const bool v6 =
        ecs.family() == static_cast<std::uint16_t>(dnscore::EcsFamily::IPv6);
    per_resolver[e.sender].insert(Variant{v6, len, jammed});
  }

  std::map<std::string, std::size_t> counts;
  for (const auto& [resolver, combos] : per_resolver) {
    std::string key;
    for (const auto& [v6, len, jammed] : combos) {
      if (!key.empty()) key += ",";
      key += std::to_string(len);
      if (v6) key += " (IPv6)";
      if (jammed) key += "/jammed last byte";
    }
    ++counts[key];
  }

  std::vector<CensusRow> rows;
  rows.reserve(counts.size());
  for (const auto& [key, count] : counts) rows.push_back(CensusRow{key, count});
  return rows;
}

}  // namespace ecsdns::measurement
