#include "measurement/prefix_census.h"

#include <algorithm>
#include <map>

#include "dnscore/hashing.h"
#include "dnscore/ip.h"

namespace ecsdns::measurement {

void SourcePrefixCensus::observe(const QueryLogEntry& e) {
  if (!e.query_ecs) return;
  const auto& ecs = *e.query_ecs;
  const int len = ecs.source_prefix_length();
  bool jammed = false;
  if (len == 32 && ecs.address_bytes().size() == 4) {
    const auto last = ecs.address_bytes()[3];
    jammed = last == 0x00 || last == 0x01;
  }
  const bool v6 =
      ecs.family() == static_cast<std::uint16_t>(dnscore::EcsFamily::IPv6);
  per_resolver_[e.sender].insert(Variant{v6, len, jammed});
}

std::vector<CensusRow> SourcePrefixCensus::rows() const {
  std::map<std::string, std::size_t> counts;
  for (const auto& [resolver, combos] : per_resolver_) {
    std::string key;
    for (const auto& [v6, len, jammed] : combos) {
      if (!key.empty()) key += ",";
      key += std::to_string(len);
      if (v6) key += " (IPv6)";
      if (jammed) key += "/jammed last byte";
    }
    ++counts[key];
  }

  std::vector<CensusRow> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) out.push_back(CensusRow{key, count});
  return out;
}

std::vector<CensusRow> source_prefix_census(const std::vector<QueryLogEntry>& log) {
  SourcePrefixCensus census;
  for (const auto& e : log) census.observe(e);
  return census.rows();
}

// ---------------------------------------------------------------------------

std::size_t ClientPrefixCensus::BlockKeyHash::operator()(
    const BlockKey& k) const noexcept {
  return static_cast<std::size_t>(
      dnscore::hash_combine(dnscore::mix64(k.hi), k.lo));
}

ClientPrefixCensus::ClientPrefixCensus(std::uint32_t resolvers)
    : blocks_of_(resolvers, 0) {}

void ClientPrefixCensus::observe(const TraceQuery& q) {
  if (q.resolver >= blocks_of_.size()) return;
  const int bits = q.scope > 0 ? std::min(q.scope, q.client.bit_length()) : 0;
  const dnscore::Prefix block{q.client, bits};
  // Pack the block into 128 bits: the masked address's leading 8 bytes are
  // exact for every prefix length <= 64.
  const auto& bytes = block.address().bytes();
  std::uint64_t lo = 0;
  const std::size_t take = std::min<std::size_t>(bytes.size(), 8);
  for (std::size_t i = 0; i < take; ++i) {
    lo = (lo << 8) | bytes[i];
  }
  const BlockKey key{
      (static_cast<std::uint64_t>(q.resolver) << 16) |
          (static_cast<std::uint64_t>(q.client.is_v4() ? 4 : 6) << 8) |
          static_cast<std::uint64_t>(bits),
      lo};
  const auto [slot, inserted] = seen_.insert_or_assign(key, 0);
  (void)slot;
  if (inserted) ++blocks_of_[q.resolver];
}

std::vector<ClientPrefixRow> ClientPrefixCensus::rows() const {
  std::map<std::uint32_t, std::size_t> distribution;
  for (const auto count : blocks_of_) {
    if (count != 0) ++distribution[count];
  }
  std::vector<ClientPrefixRow> out;
  out.reserve(distribution.size());
  for (const auto& [blocks, resolvers] : distribution) {
    out.push_back(ClientPrefixRow{blocks, resolvers});
  }
  return out;
}

std::uint64_t ClientPrefixCensus::digest() const {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& row : rows()) {
    h = (h ^ row.distinct_blocks) * kPrime;
    h = (h ^ row.resolver_count) * kPrime;
  }
  return h;
}

std::vector<ClientPrefixRow> client_prefix_census(const Trace& trace) {
  ClientPrefixCensus census(trace.resolvers);
  for (const auto& q : trace.queries) census.observe(q);
  return census.rows();
}

}  // namespace ecsdns::measurement
