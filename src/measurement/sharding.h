// Stable shard partitioning shared by the cache replay, the workload
// driver, and the fleet utilities. Every hash here is content-based (never
// a pointer or an iteration order), so a partition reproduces exactly
// across runs, platforms, and thread counts — the foundation of the
// determinism contract in docs/parallel_engine.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dnscore/hashing.h"
#include "dnscore/ip.h"

namespace ecsdns::measurement {

// The shared SplitMix64 finalizer; re-exported under the historical name so
// existing call sites keep reading naturally.
using dnscore::mix64;

// Maps a content hash onto a shard index.
inline std::size_t shard_of_hash(std::uint64_t hash, std::size_t shards) noexcept {
  return shards <= 1 ? 0 : static_cast<std::size_t>(hash % shards);
}

// Shard owning a dense integer id (resolver ids, fleet member indexes).
inline std::size_t shard_of_id(std::uint64_t id, std::size_t shards) noexcept {
  return shard_of_hash(mix64(id), shards);
}

// Shard owning an address-keyed entity (fleet members, client populations).
inline std::size_t shard_of_address(const dnscore::IpAddress& address,
                                    std::size_t shards) noexcept {
  return shard_of_hash(static_cast<std::uint64_t>(address.hash()), shards);
}

}  // namespace ecsdns::measurement
