// Table 1: census of ECS source prefix lengths per resolver, computed from
// an authoritative-side query log (CDN dataset column) or from scan
// observations (Scan dataset column) — plus the trace-level client-prefix
// census the streaming pipeline folds at paper scale.
//
// Both censuses are incremental folds: feed observations one at a time and
// read the rows at the end, so a streamed log or TraceStream never has to
// be materialized (the batch helpers below are thin wrappers).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "authoritative/server.h"
#include "dnscore/flat_hash.h"
#include "measurement/tracegen.h"

namespace ecsdns::measurement {

using authoritative::QueryLogEntry;

struct CensusRow {
  // e.g. "24", "32/jammed last byte", or "25,32/jammed last byte" for
  // resolvers that alternate lengths (one row per distinct combination).
  std::string lengths;
  std::size_t resolver_count = 0;
};

// Incremental Table 1 fold over authoritative-side log entries.
class SourcePrefixCensus {
 public:
  void observe(const QueryLogEntry& entry);
  // Rows sorted by the combination key. A resolver's combination is the
  // set of (source length, jammed?) variants observed across all its ECS
  // queries. Jamming is detected as a /32 source whose final octet is 0x00
  // or 0x01 — the fingerprint the paper reports.
  std::vector<CensusRow> rows() const;

 private:
  // (is_v6, length, jammed) triples sort combination keys numerically with
  // IPv4 variants first, matching the paper's table layout.
  using Variant = std::tuple<bool, int, bool>;
  std::unordered_map<dnscore::IpAddress, std::set<Variant>,
                     dnscore::IpAddressHash>
      per_resolver_;
};

std::vector<CensusRow> source_prefix_census(const std::vector<QueryLogEntry>& log);

// ---------------------------------------------------------------------------
// Trace-level client-prefix census: how many distinct scope-truncated
// client blocks each resolver exposes — the per-resolver cache-key
// diversity that drives §7's blow-up. Folds over a TraceStream with memory
// O(distinct (resolver, block) pairs), independent of query count, so it
// runs at million-resolver scale.
//
// Blocks are keyed exactly for prefix lengths <= 64 bits (every scope the
// generators emit); a query with scope 0 contributes the zero block.

struct ClientPrefixRow {
  std::size_t distinct_blocks = 0;  // per-resolver distinct block count
  std::size_t resolver_count = 0;   // resolvers with exactly that count
};

class ClientPrefixCensus {
 public:
  explicit ClientPrefixCensus(std::uint32_t resolvers);

  void observe(const TraceQuery& q);

  // Distribution rows, ascending by distinct_blocks; resolvers that never
  // appeared in the stream are omitted.
  std::vector<ClientPrefixRow> rows() const;

  // Order-independent FNV digest of rows() — the cheap cross-shard-count
  // equivalence check at scales where materializing rows per run is the
  // dominant cost.
  std::uint64_t digest() const;

  std::uint64_t distinct_pairs() const noexcept { return seen_.size(); }

 private:
  struct BlockKey {
    std::uint64_t hi;  // resolver | family | prefix length
    std::uint64_t lo;  // first 8 bytes of the masked address
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const noexcept;
  };

  dnscore::FlatHashMap<BlockKey, char, BlockKeyHash> seen_;
  std::vector<std::uint32_t> blocks_of_;  // SoA per-resolver distinct count
};

// Batch wrapper: census of a materialized trace.
std::vector<ClientPrefixRow> client_prefix_census(const Trace& trace);

}  // namespace ecsdns::measurement
