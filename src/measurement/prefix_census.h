// Table 1: census of ECS source prefix lengths per resolver, computed from
// an authoritative-side query log (CDN dataset column) or from scan
// observations (Scan dataset column).
#pragma once

#include <string>
#include <vector>

#include "authoritative/server.h"

namespace ecsdns::measurement {

using authoritative::QueryLogEntry;

struct CensusRow {
  // e.g. "24", "32/jammed last byte", or "25,32/jammed last byte" for
  // resolvers that alternate lengths (one row per distinct combination).
  std::string lengths;
  std::size_t resolver_count = 0;
};

// Rows sorted by the combination key. A resolver's combination is the set
// of (source length, jammed?) variants observed across all its ECS queries.
// Jamming is detected as a /32 source whose final octet is 0x00 or 0x01 —
// the fingerprint the paper reports.
std::vector<CensusRow> source_prefix_census(const std::vector<QueryLogEntry>& log);

}  // namespace ecsdns::measurement
