// Trace-driven cache simulation (§7).
//
// Replays a resolver-side trace twice — once obeying the logged ECS scopes,
// once disregarding them — and reports per-resolver peak cache size and hit
// rate. Mirrors the paper's simulation assumptions: resolvers retain
// records for exactly the authoritative TTL and never evict early.
//
// Every replay consumes a TraceStream (measurement/trace_stream.h); the
// classic simulate_cache(Trace, ...) entry point wraps the trace in a
// MaterializedTraceStream and runs the identical fold, so the streaming and
// materialized paths cannot diverge. At paper scale a generator stream
// feeds the fold directly and the run's RSS stays bounded by *live cache
// entries*, not by trace length.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "dnscore/flat_hash.h"
#include "dnscore/hashing.h"
#include "dnscore/ip.h"
#include "measurement/trace_stream.h"
#include "measurement/tracegen.h"
#include "resolver/eviction.h"

namespace ecsdns::measurement {

namespace detail {

// Cache key: resolver x question x (scope-truncated client block). Without
// ECS the block is the zero prefix. Shared by the streaming fold and the
// sharded replay programs.
struct CacheKey {
  std::uint32_t resolver;
  std::uint32_t name;
  dnscore::Prefix block;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return dnscore::hash_combine(
        dnscore::hash_combine(k.block.hash(), k.resolver), k.name);
  }
};

inline CacheKey cache_key_of(const TraceQuery& q, bool with_ecs) {
  CacheKey key{q.resolver, q.name, dnscore::Prefix{}};
  if (with_ecs && q.scope > 0) {
    const int bits = std::min(q.scope, q.client.bit_length());
    key.block = dnscore::Prefix{q.client, bits};
  }
  return key;
}

}  // namespace detail

struct CacheSimOptions {
  bool with_ecs = true;
  // Overrides every response TTL (Figure 1 re-runs the CDN trace at 20, 40,
  // and 60 seconds).
  std::optional<std::uint32_t> ttl_override;
  // Bounds each resolver's cache; overflow evicts an entry chosen by
  // `policy` before its TTL ("premature eviction", the operational cost §7
  // says operators must size against). Unset = unbounded, the paper's
  // baseline assumption.
  std::optional<std::size_t> max_entries_per_resolver;
  // Victim selection for bounded replays (resolver::EvictionPolicy); LRU
  // preserves the historical behavior.
  resolver::EvictionPolicy policy = resolver::EvictionPolicy::kLru;
  // Shards the replay over N event-loop shards (netsim::ParallelEngine).
  // Unbounded: cache keys partition by stable hash, per-resolver occupancy
  // merges via cross-shard delta streams. Bounded: eviction couples every
  // key of a resolver, but never keys of different resolvers, so whole
  // resolvers partition across shards and replay independently. Either
  // way, results are bit-identical to the serial replay for every shard
  // and thread count (the serial-equivalence oracle in
  // tests/test_parallel_determinism.cpp enforces this).
  std::size_t shards = 1;
  // Worker threads for the sharded replay; 0 = one per shard, capped at
  // the hardware. Never affects results.
  std::size_t threads = 0;
  // Pin replay workers to cores (netsim::Topology::pin_order — one shard
  // per physical core, SMT siblings last), with the engine's
  // warn-and-run-unpinned fallback when affinity is denied. Never affects
  // results; forwarded to ParallelConfig::pin_threads.
  bool pin_threads = false;
  // Forwarded to ParallelConfig::runtime_metrics: per-shard busy counters
  // and barrier-wait histograms in the merged export. Run metadata, exempt
  // from the byte-identity contract — leave off anywhere exports are
  // compared across shard/thread counts.
  bool runtime_metrics = false;
};

struct ResolverCacheResult {
  std::uint32_t resolver = 0;
  std::size_t max_cache_size = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t premature_evictions = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct CacheSimResult {
  std::vector<ResolverCacheResult> per_resolver;

  const ResolverCacheResult& resolver(std::uint32_t id) const;
  std::uint64_t total_hits() const;
  std::uint64_t total_misses() const;
  double overall_hit_rate() const;
};

// Incremental unbounded replay: feed queries one at a time, read the result
// when the stream ends. This *is* the serial replay — simulate_cache's
// serial path folds through it — exposed so streaming pipelines (the
// scale_streaming bench, custom aggregations) can interleave generation and
// simulation without a trace in memory. Memory is O(live cache entries +
// resolvers), independent of how many queries flow through.
class StreamingCacheSim {
 public:
  StreamingCacheSim(std::uint32_t resolvers, const CacheSimOptions& options);

  void observe(const TraceQuery& q);
  // Finalizes and returns the per-resolver results (moves them out; the
  // instance is spent afterwards).
  CacheSimResult finish();

  std::uint64_t queries() const noexcept { return queries_; }
  std::size_t live_entries() const noexcept { return cache_.size(); }

 private:
  struct Slot {
    SimTime expiry = 0;
  };
  struct Expiry {
    SimTime when;
    detail::CacheKey key;
  };
  struct LaterExpiry {
    bool operator()(const Expiry& a, const Expiry& b) const {
      return a.when > b.when;
    }
  };

  bool with_ecs_;
  std::optional<std::uint32_t> ttl_override_;
  dnscore::FlatHashMap<detail::CacheKey, Slot, detail::CacheKeyHash> cache_;
  std::priority_queue<Expiry, std::vector<Expiry>, LaterExpiry> expirations_;
  std::vector<ResolverCacheResult> results_;
  std::vector<std::size_t> live_;
  std::uint64_t queries_ = 0;
};

// Replays one logical stream, constructing one instance per shard from the
// factory (stream construction is a pure deterministic function, so every
// instance replays the same sequence). Dispatches exactly like
// simulate_cache: bounded -> resolver-partitioned shards; unbounded sharded
// when the stream is time-ordered with positive effective TTLs; serial
// StreamingCacheSim fold otherwise.
CacheSimResult simulate_cache_stream(const TraceStreamFactory& factory,
                                     const CacheSimOptions& options);

CacheSimResult simulate_cache(const Trace& trace, const CacheSimOptions& options);

// Order-independent digest of a deterministic sample of per-resolver rows
// plus the global tallies — the serial-equivalence oracle at scales where
// comparing millions of rows byte-for-byte is too expensive to run per
// shard count. Full byte-identity remains the required check at small
// scales (tests/test_parallel_determinism.cpp).
std::uint64_t sampled_result_digest(const CacheSimResult& result,
                                    std::size_t sample_rows,
                                    std::uint64_t seed);

// Per-resolver blow-up factors: peak cache size with ECS divided by peak
// size without (Figure 1's metric). Resolvers with an empty no-ECS cache
// are skipped. `shards`/`threads`/`pin_threads` forward to CacheSimOptions.
std::vector<double> blowup_factors(const Trace& trace,
                                   std::optional<std::uint32_t> ttl_override,
                                   std::size_t shards = 1,
                                   std::size_t threads = 0,
                                   bool pin_threads = false);

}  // namespace ecsdns::measurement
