// Trace-driven cache simulation (§7).
//
// Replays a resolver-side trace twice — once obeying the logged ECS scopes,
// once disregarding them — and reports per-resolver peak cache size and hit
// rate. Mirrors the paper's simulation assumptions: resolvers retain
// records for exactly the authoritative TTL and never evict early.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "measurement/tracegen.h"
#include "resolver/eviction.h"

namespace ecsdns::measurement {

struct CacheSimOptions {
  bool with_ecs = true;
  // Overrides every response TTL (Figure 1 re-runs the CDN trace at 20, 40,
  // and 60 seconds).
  std::optional<std::uint32_t> ttl_override;
  // Bounds each resolver's cache; overflow evicts an entry chosen by
  // `policy` before its TTL ("premature eviction", the operational cost §7
  // says operators must size against). Unset = unbounded, the paper's
  // baseline assumption.
  std::optional<std::size_t> max_entries_per_resolver;
  // Victim selection for bounded replays (resolver::EvictionPolicy); LRU
  // preserves the historical behavior.
  resolver::EvictionPolicy policy = resolver::EvictionPolicy::kLru;
  // Shards the replay over N event-loop shards (netsim::ParallelEngine).
  // Unbounded: cache keys partition by stable hash, per-resolver occupancy
  // merges via cross-shard delta streams. Bounded: eviction couples every
  // key of a resolver, but never keys of different resolvers, so whole
  // resolvers partition across shards and replay independently. Either
  // way, results are bit-identical to the serial replay for every shard
  // and thread count (the serial-equivalence oracle in
  // tests/test_parallel_determinism.cpp enforces this).
  std::size_t shards = 1;
  // Worker threads for the sharded replay; 0 = one per shard, capped at
  // the hardware. Never affects results.
  std::size_t threads = 0;
};

struct ResolverCacheResult {
  std::uint32_t resolver = 0;
  std::size_t max_cache_size = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t premature_evictions = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct CacheSimResult {
  std::vector<ResolverCacheResult> per_resolver;

  const ResolverCacheResult& resolver(std::uint32_t id) const;
  std::uint64_t total_hits() const;
  std::uint64_t total_misses() const;
  double overall_hit_rate() const;
};

CacheSimResult simulate_cache(const Trace& trace, const CacheSimOptions& options);

// Per-resolver blow-up factors: peak cache size with ECS divided by peak
// size without (Figure 1's metric). Resolvers with an empty no-ECS cache
// are skipped. `shards`/`threads` forward to CacheSimOptions.
std::vector<double> blowup_factors(const Trace& trace,
                                   std::optional<std::uint32_t> ttl_override,
                                   std::size_t shards = 1,
                                   std::size_t threads = 0);

}  // namespace ecsdns::measurement
