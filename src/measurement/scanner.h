// The active-scan methodology of §4 (Scan dataset).
//
// The scanner probes candidate addresses with queries for hostnames that
// encode the probed address (the technique of Dagon et al. the paper
// follows), so the experimental authoritative nameserver can associate each
// discovered open ingress resolver with the egress resolver that actually
// contacted it. Queries are sent without ECS; the authoritative responds to
// ECS queries with scope = source - 4.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "authoritative/server.h"
#include "measurement/testbed.h"
#include "resolver/transport.h"

namespace ecsdns::measurement {

using dnscore::EcsOption;

// Encodes 60.1.2.3 as "ip-60-1-2-3.<zone>".
Name encode_probe_name(const IpAddress& probed, const Name& zone);
// Reverses encode_probe_name; nullopt if the name is not an encoding.
std::optional<IpAddress> decode_probe_name(const Name& qname, const Name& zone);

// One (ingress, egress) association observed at the authoritative.
struct ScanObservation {
  IpAddress ingress;  // from the encoded qname
  IpAddress egress;   // the query's sender
  std::optional<EcsOption> ecs;
};

struct ScanResults {
  std::uint64_t probes_sent = 0;
  std::uint64_t responses_received = 0;  // open resolvers answer the scanner
  std::vector<ScanObservation> observations;

  // --- aggregates (§4/§5 numbers) ---
  std::size_t open_ingress_count() const;
  std::size_t ecs_ingress_count() const;  // ingresses whose queries arrived with ECS
  std::vector<IpAddress> ecs_egress_addresses() const;
  // Source prefix lengths seen per egress (Table 1 raw material). The key
  // is formatted as e.g. "24", "32/jammed last byte", or a comma-joined
  // combination. Deterministically ordered — key-sorted map, members
  // sorted by address — because callers render it straight into tables
  // (ecstidy det-iter found the example binary printing it in hash order).
  std::map<std::string, std::vector<IpAddress>> source_length_census() const;
  // ECS prefixes covering neither the ingress nor the egress /24 — the
  // hidden-resolver discovery of §8.2.
  std::vector<dnscore::Prefix> hidden_prefixes() const;
};

struct ScannerOptions {
  Name zone = Name::from_string("scan-experiment.net");
  std::string scanner_city = "Cleveland";
  // When set, probes run over this transport (e.g. live::LiveTransport on a
  // loopback socket serving auth()) instead of the testbed's simulated
  // network. The caller keeps the transport alive for the scanner's
  // lifetime and pre-populates the zone with the probe names (scan() must
  // not mutate the zone while live shards serve it concurrently); see
  // docs/live_wire.md.
  resolver::QueryTransport* transport = nullptr;
};

class Scanner {
 public:
  // Creates the experimental authoritative server (ScopeDeltaPolicy(4), per
  // the paper) inside `bed` and a scanning client.
  Scanner(Testbed& bed, ScannerOptions options = {});

  // Probes every address in `targets` once (clears the log, sends the
  // probes, harvests).
  ScanResults scan(const std::vector<IpAddress>& targets);

  // The two phases of scan(), separately callable for live runs: probe the
  // targets, then — after stopping the live server, since the query log is
  // single-writer — harvest the log into observations.
  void send_probes(const std::vector<IpAddress>& targets, ScanResults& results);
  void harvest(ScanResults& results) const;

  const Name& zone() const noexcept { return options_.zone; }
  authoritative::AuthServer& auth() noexcept { return *auth_; }

 private:
  Testbed& bed_;
  ScannerOptions options_;
  authoritative::AuthServer* auth_;
  std::optional<StubClient> live_client_;  // engaged when options_.transport
  StubClient* client_;
};

}  // namespace ecsdns::measurement
