// Client workload driver: replays a synthetic client query stream through a
// fleet of recursive resolvers against the simulated DNS hierarchy, so the
// authoritative side accumulates the passive logs the paper's census
// analyses (§5, §6.1, Table 1) are computed from.
#pragma once

#include <vector>

#include "measurement/fleet.h"
#include "measurement/testbed.h"
#include "netsim/rng.h"

namespace ecsdns::measurement {

struct WorkloadOptions {
  // Hostnames clients ask for (must be resolvable in the testbed).
  std::vector<Name> hostnames;
  double zipf_exponent = 0.8;
  // Mean gap between queries per resolver (Poisson arrivals).
  netsim::SimTime mean_query_gap = 2 * netsim::kMinute;
  netsim::SimTime duration = 4 * netsim::kHour;
  // Probability that a query is repeated by the same client ~5 s later —
  // the within-TTL repeats that expose caching-disabled probing (§6.1
  // pattern 2).
  double burst_probability = 0.3;
  netsim::SimTime burst_gap = 5 * netsim::kSecond;
  // Synthetic clients per resolver.
  int clients_per_resolver = 4;
  // Every fleet member draws its query stream from its own split RNG
  // stream, netsim::Rng::stream(seed, member_index). Traffic is a pure
  // function of (seed, member) — independent of execution order and of
  // how members are grouped into shards (partition_fleet) — so serial and
  // parallel drivers reproduce the same streams exactly. (The former
  // shards == 1 path that drew every member from one shared RNG is
  // retired; see CHANGES.md.)
  std::uint64_t seed = 21;
};

struct WorkloadStats {
  std::uint64_t client_queries = 0;
  std::uint64_t answered = 0;
};

// Drives every fleet member with an independent Poisson stream using the
// testbed's event loop; returns once the full duration has been simulated.
WorkloadStats drive_fleet(Testbed& bed, Fleet& fleet, const WorkloadOptions& options);

}  // namespace ecsdns::measurement
