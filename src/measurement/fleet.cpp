#include "measurement/fleet.h"

#include <algorithm>

#include "measurement/sharding.h"

namespace ecsdns::measurement {
namespace {

using netsim::Rng;
using resolver::ProbingStrategy;
using resolver::ScopeHandling;
using resolver::SelfIdentification;

const char* kChineseCities[] = {"Beijing", "Shanghai", "Guangzhou", "Shenzhen",
                                "Chengdu"};
const char* kGlobalCities[] = {"New York", "London",  "Frankfurt", "Tokyo",
                               "Sydney",   "Toronto", "Sao Paulo", "Mumbai",
                               "Warsaw",   "Madrid",  "Seoul",     "Amsterdam"};
// The public service's egress sites (anycast-style footprint).
const char* kMpSites[] = {"Mountain View", "Ashburn", "Frankfurt", "Singapore",
                          "Sao Paulo",     "Taipei",  "Sydney",    "Dublin"};

int scaled(int count, int scale) { return std::max(1, count / scale); }

// Stable pseudo-ASN per AS label so the AsnDb mirrors fleet metadata.
std::uint32_t asn_for(const std::string& as_label) {
  std::uint32_t h = 2166136261u;
  for (const char c : as_label) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
  }
  return 64512u + h % 1000u;  // private-use ASN range
}

FleetMember make_member(Testbed& bed, resolver::ResolverConfig config,
                        const std::string& city, const std::string& behavior,
                        const std::string& country,
                        const std::string& as_label = "") {
  auto& r = bed.add_resolver(std::move(config), city);
  FleetMember m;
  m.resolver = &r;
  m.address = r.address();
  m.behavior = behavior;
  m.as_label = as_label.empty() ? behavior : as_label;
  m.country = country;
  m.city = city;
  bed.attribute(m.address,
                netsim::AsInfo{asn_for(m.as_label), m.as_label, country});
  return m;
}

}  // namespace

std::size_t Fleet::total_forwarders() const {
  std::size_t n = 0;
  for (const auto& m : members) n += m.forwarders.size();
  return n;
}

std::vector<const FleetMember*> Fleet::in_as(const std::string& as_label) const {
  std::vector<const FleetMember*> out;
  for (const auto& m : members) {
    if (m.as_label == as_label) out.push_back(&m);
  }
  return out;
}

std::vector<std::vector<std::size_t>> partition_fleet(const Fleet& fleet,
                                                      std::size_t shards) {
  if (shards == 0) shards = 1;
  std::vector<std::vector<std::size_t>> out(shards);
  for (std::size_t i = 0; i < fleet.members.size(); ++i) {
    out[shard_of_address(fleet.members[i].address, shards)].push_back(i);
  }
  return out;
}

Fleet build_cdn_dataset_fleet(Testbed& bed, const CdnFleetOptions& options) {
  Rng rng(options.seed);
  Fleet fleet;
  for (const auto& name : options.probe_names) fleet.names.intern(name);
  const int s = options.scale;

  const auto china_city = [&rng]() {
    return kChineseCities[rng.uniform(std::size(kChineseCities))];
  };
  const auto global_city = [&rng]() {
    return kGlobalCities[rng.uniform(std::size(kGlobalCities))];
  };

  // --- the dominant Chinese AS: 3067 resolvers, always-send ---
  // 2912 jam the last byte of a claimed /32; the rest send true /32.
  const int dominant_jam = scaled(2912, s);
  const int dominant_full = scaled(155, s);
  for (int i = 0; i < dominant_jam + dominant_full; ++i) {
    resolver::ResolverConfig c = resolver::ResolverConfig::jammed_32();
    if (i >= dominant_jam) {
      c = resolver::ResolverConfig::correct();
      c.v4_source_bits = 32;
      c.max_cache_prefix_v4 = 32;
      c.accept_client_ecs = false;
    }
    c.label = "dominant-" + std::to_string(i);
    fleet.members.push_back(
        make_member(bed, std::move(c), china_city(), "AS-CN-dominant", "CN"));
  }

  // --- remaining 1080 resolvers across 82 ASes ---
  // Probing mix: 315 always + 258 hostname/nocache + 32 periodic-loopback +
  // 88 hostname/on-miss + 387 irregular.
  struct ProbeClass {
    int count;
    ProbingStrategy strategy;
  };
  const ProbeClass probe_classes[] = {
      {scaled(315, s), ProbingStrategy::kAlways},
      {scaled(258, s), ProbingStrategy::kProbeHostnamesNoCache},
      {scaled(32, s), ProbingStrategy::kPeriodicLoopbackProbe},
      {scaled(88, s), ProbingStrategy::kProbeHostnamesOnMiss},
      {scaled(387, s), ProbingStrategy::kIrregular},
  };

  // Source-length mix for the non-dominant resolvers (our Table 1 CDN
  // column calibration; see EXPERIMENTS.md for the mapping to the paper).
  struct LengthClass {
    int count;
    std::vector<resolver::ResolverConfig::SourceLengthVariant> variants;
  };
  std::vector<LengthClass> lengths;
  lengths.push_back({scaled(762, s), {{24, false}}});
  lengths.push_back({scaled(60, s), {{18, false}}});
  lengths.push_back({scaled(19, s), {{22, false}}});
  lengths.push_back({scaled(66, s), {{32, false}}});
  lengths.push_back({scaled(90, s), {{32, true}}});
  lengths.push_back({scaled(1, s), {{25, false}}});
  lengths.push_back({scaled(78, s), {{25, false}, {32, true}}});
  lengths.push_back({scaled(3, s), {{24, false}, {32, true}}});
  lengths.push_back({scaled(1, s), {{24, false}, {25, false}, {32, true}}});
  std::size_t length_cursor = 0;
  int length_used = 0;
  const auto next_lengths =
      [&]() -> std::vector<resolver::ResolverConfig::SourceLengthVariant> {
    while (length_cursor < lengths.size() &&
           length_used >= lengths[length_cursor].count) {
      ++length_cursor;
      length_used = 0;
    }
    if (length_cursor >= lengths.size()) return {{24, false}};
    ++length_used;
    return lengths[length_cursor].variants;
  };

  int serial = 0;
  for (const auto& pc : probe_classes) {
    for (int i = 0; i < pc.count; ++i, ++serial) {
      resolver::ResolverConfig c;
      c.probing = pc.strategy;
      c.label = resolver::to_string(pc.strategy) + "-" + std::to_string(serial);
      c.v4_variants = next_lengths();
      switch (pc.strategy) {
        case ProbingStrategy::kProbeHostnamesNoCache:
        case ProbingStrategy::kProbeHostnamesOnMiss:
          c.probe_hostnames = options.probe_names;
          break;
        case ProbingStrategy::kPeriodicLoopbackProbe:
          // "A multiple of 30 minutes": spread 30/60/90 across resolvers.
          c.probe_interval = (30 + 30 * static_cast<int>(rng.uniform(3))) *
                             netsim::kMinute;
          c.self_identification = SelfIdentification::kLoopback;
          break;
        case ProbingStrategy::kIrregular:
          c.irregular_probability = 0.2 + 0.6 * rng.uniform_double();
          c.irregular_seed = rng.next_u64();
          c.probe_hostnames = options.probe_names;
          break;
        default:
          break;
      }
      const bool chinese = rng.chance(0.25);
      fleet.members.push_back(make_member(
          bed, std::move(c), chinese ? china_city() : global_city(),
          "AS-" + std::to_string(100 + serial % 82), chinese ? "CN" : "XX"));
    }
  }

  // --- IPv6-serving resolvers (Table 1's "(IPv6)" rows) ---
  // These resolvers serve IPv6 client populations, so their ECS options
  // carry family 2. Source-length calibration per EXPERIMENTS.md.
  if (options.include_v6) {
    struct V6Class {
      int count;
      std::vector<int> bits;
    };
    const V6Class v6_classes[] = {
        {scaled(44, s), {32}}, {scaled(56, s), {48}}, {scaled(33, s), {56}},
        {scaled(1, s), {64}},  {scaled(3, s), {64, 96, 128}},
    };
    int v6_serial = 0;
    for (const auto& vc : v6_classes) {
      for (int i = 0; i < vc.count; ++i, ++v6_serial) {
        resolver::ResolverConfig c;
        c.probing = ProbingStrategy::kAlways;
        c.label = "v6-" + std::to_string(v6_serial);
        c.v6_source_bits = vc.bits.front();
        if (vc.bits.size() > 1) c.v6_variants = vc.bits;
        // Privacy caps must not clip the announced length for this census.
        c.max_cache_prefix_v6 = 128;
        FleetMember m = make_member(bed, std::move(c), global_city(),
                                    "AS-V6-" + std::to_string(v6_serial % 9), "XX");
        m.v6_clients = true;
        fleet.members.push_back(std::move(m));
      }
    }
  }
  return fleet;
}

Fleet build_scan_dataset_fleet(Testbed& bed, const ScanFleetOptions& options) {
  Rng rng(options.seed);
  Fleet fleet;
  const int s = options.scale;

  struct Spec {
    int count;
    resolver::ResolverConfig config;
    std::string as_label;
    std::string country;
    bool reachable;
    bool mp;  // member of the major public service
    // Members reachable through a single forwarder are discovered by the
    // scan but cannot be studied with the two-forwarder caching technique
    // (the paper's 75 "no appropriate forwarders" resolvers).
    bool single_forwarder = false;
  };
  std::vector<Spec> specs;

  // The major public service: 1256 egress IPs, /24, compliant caching,
  // overrides any client-supplied ECS with the sender's prefix.
  {
    Spec g;
    g.count = scaled(1256, s);
    g.config = resolver::ResolverConfig::google_like();
    g.as_label = "AS-MP";
    g.country = "US";
    g.reachable = true;
    g.mp = true;
    specs.push_back(std::move(g));
  }
  // 278 other egress resolvers with the §6.3.2 caching-behavior mix.
  {
    // 9 of the correct resolvers accept arbitrary client ECS (open to the
    // paper's direct probing technique); the other 67 do not.
    Spec c1;
    c1.count = scaled(9, s);
    c1.config = resolver::ResolverConfig::correct();
    c1.as_label = "AS-OK-open";
    c1.country = "XX";
    c1.reachable = true;
    c1.mp = false;
    specs.push_back(std::move(c1));
    Spec c2;
    c2.count = scaled(67, s);
    c2.config = resolver::ResolverConfig::correct();
    c2.config.accept_client_ecs = false;
    c2.as_label = "AS-OK";
    c2.country = "XX";
    c2.reachable = true;
    c2.mp = false;
    specs.push_back(std::move(c2));
    Spec ign;
    ign.count = scaled(103, s);
    ign.config = resolver::ResolverConfig::scope_ignorer();
    ign.as_label = "AS-IGN";
    ign.country = "CN";
    ign.reachable = true;
    ign.mp = false;
    specs.push_back(std::move(ign));
    Spec lp;
    lp.count = scaled(15, s);
    lp.config = resolver::ResolverConfig::long_prefix_acceptor();
    lp.as_label = "AS-LONG";
    lp.country = "XX";
    lp.reachable = true;
    lp.mp = false;
    specs.push_back(std::move(lp));
    Spec cl;
    cl.count = scaled(8, s);
    cl.config = resolver::ResolverConfig::clamp22();
    cl.as_label = "AS-CLAMP";
    cl.country = "XX";
    cl.reachable = true;
    cl.mp = false;
    specs.push_back(std::move(cl));
    Spec pb;
    pb.count = scaled(1, s);
    pb.config = resolver::ResolverConfig::private_block_bug();
    pb.as_label = "AS-PRIV";
    pb.country = "XX";
    pb.reachable = true;
    pb.mp = false;
    specs.push_back(std::move(pb));
    Spec un;
    un.count = scaled(75, s);
    un.config = resolver::ResolverConfig::correct();
    // Unreachable means unreachable: closed to external queries and client
    // ECS, with no open forwarders pointing at them.
    un.config.accept_client_ecs = false;
    un.as_label = "AS-UNSTUDIED";
    un.country = "XX";
    un.reachable = true;
    un.single_forwarder = true;  // discoverable, but no forwarder *pair*
    un.mp = false;
    specs.push_back(std::move(un));
  }

  // Source-length calibration for the non-MP resolvers (scan column of
  // Table 1): 128 @24, 130 jammed /32 (mostly Chinese), 8 @22, 3 @18,
  // 1 @25, 8 @32. Applied round-robin across the non-MP members.
  struct LenMix {
    int count;
    int bits;
    bool jam;
  };
  // The 8 clamp-22 resolvers are the table's @22 row; they keep their own
  // prefix behavior, so the mix below covers the remaining 270.
  std::vector<LenMix> len_mix = {{scaled(128, s), 24, false}, {scaled(130, s), 32, true},
                                 {scaled(3, s), 18, false},   {scaled(1, s), 25, false},
                                 {scaled(8, s), 32, false}};
  std::size_t mix_cursor = 0;
  int mix_used = 0;
  const auto apply_length = [&](resolver::ResolverConfig& c) {
    if (c.label.rfind("clamp-22", 0) == 0) return;
    while (mix_cursor < len_mix.size() && mix_used >= len_mix[mix_cursor].count) {
      ++mix_cursor;
      mix_used = 0;
    }
    if (mix_cursor >= len_mix.size()) return;
    ++mix_used;
    const auto& m = len_mix[mix_cursor];
    c.v4_source_bits = m.bits;
    c.jam_last_octet = m.jam;
  };

  // Forwarder/hidden address plan: egress e's forwarders share the /16
  // "6x.(e % 250).0.0" while landing in distinct /24s — the layout the §6.3
  // two-forwarder probing technique requires.
  int egress_serial = 0;
  int member_serial = 0;
  for (auto& spec : specs) {
    for (int i = 0; i < spec.count; ++i, ++member_serial) {
      resolver::ResolverConfig config = spec.config;
      config.label += "-" + std::to_string(member_serial);
      if (!spec.mp) apply_length(config);

      // §6.2: 118 of the 130 jammed-/32 senders sit in Chinese ASes.
      std::string country = spec.country;
      if (config.jam_last_octet && rng.chance(118.0 / 130.0)) country = "CN";

      std::string city;
      if (spec.mp) {
        city = kMpSites[rng.uniform(std::size(kMpSites))];
      } else if (country == "CN") {
        city = kChineseCities[rng.uniform(std::size(kChineseCities))];
      } else {
        city = kGlobalCities[rng.uniform(std::size(kGlobalCities))];
      }
      // Spread non-MP members across many ASes (the paper: 45 non-Google
      // ASes, 19 of them Chinese); the public service stays one AS.
      std::string as_label = spec.as_label;
      if (!spec.mp) {
        as_label = country == "CN"
                       ? "AS-CN-" + std::to_string(member_serial % 19)
                       : "AS-GL-" + std::to_string(member_serial % 26);
      }
      FleetMember member = make_member(bed, std::move(config), city,
                                       spec.as_label, country, as_label);

      if (spec.reachable) {
        const int e = egress_serial++;
        const int forwarder_count =
            spec.single_forwarder ? 1 : options.forwarders_per_egress;
        for (int f = 0; f < forwarder_count; ++f) {
          const std::uint32_t fwd_bits =
              ((60u + static_cast<std::uint32_t>(e) / 250) << 24) |
              ((static_cast<std::uint32_t>(e) % 250) << 16) |
              (static_cast<std::uint32_t>(f) << 8) | 0x25u;
          const IpAddress fwd_addr = IpAddress::v4(fwd_bits);
          // Forwarders sit where clients sit: mostly far from the egress.
          const std::string fwd_city = bed.world().random_city(rng).name;

          resolver::Forwarder* hidden = nullptr;
          IpAddress chain_upstream = member.address;
          if (rng.chance(options.hidden_chain_fraction)) {
            const std::uint32_t hid_bits =
                ((70u + static_cast<std::uint32_t>(e) / 250) << 24) |
                ((static_cast<std::uint32_t>(e) % 250) << 16) |
                (static_cast<std::uint32_t>(f) << 8) | 0x25u;
            const IpAddress hid_addr = IpAddress::v4(hid_bits);
            std::string hid_city;
            if (rng.chance(options.hidden_farther_fraction)) {
              // The pathological case: a hidden resolver on another
              // continent (the paper's Santiago-via-Italy combination).
              hid_city = bed.world().random_city(rng).name;
            } else if (rng.chance(options.hidden_at_egress_fraction)) {
              hid_city = member.city;  // co-located with the egress
            } else {
              hid_city = fwd_city;  // co-located with the forwarder
            }
            hidden = &bed.add_forwarder_at(hid_addr, hid_city, member.address);
            chain_upstream = hid_addr;
          }
          member.forwarders.push_back(
              &bed.add_forwarder_at(fwd_addr, fwd_city, chain_upstream));
          member.hidden.push_back(hidden);
        }
      }
      fleet.members.push_back(std::move(member));
    }
  }
  return fleet;
}

}  // namespace ecsdns::measurement
