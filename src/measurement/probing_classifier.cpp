#include "measurement/probing_classifier.h"

#include <algorithm>
#include <unordered_map>

#include "dnscore/flat_hash.h"
#include "dnscore/hashing.h"
#include "dnscore/name.h"
#include "measurement/name_table.h"

namespace ecsdns::measurement {
namespace {

using dnscore::Name;

struct NameIdHash {
  std::size_t operator()(NameId id) const noexcept {
    return static_cast<std::size_t>(dnscore::mix64(id));
  }
};

bool is_address_query(const QueryLogEntry& e) {
  return e.qtype == dnscore::RRType::A || e.qtype == dnscore::RRType::AAAA;
}

bool is_loopback_ecs(const QueryLogEntry& e) {
  if (!e.query_ecs) return false;
  const auto prefix = e.query_ecs->source_prefix();
  return prefix && prefix->address().is_loopback();
}

}  // namespace

std::string to_string(ProbingClass c) {
  switch (c) {
    case ProbingClass::kAlwaysEcs: return "always-ecs";
    case ProbingClass::kHostnameNoCache: return "hostname-probe/no-cache";
    case ProbingClass::kPeriodicLoopback: return "periodic-loopback";
    case ProbingClass::kHostnameOnMiss: return "hostname-probe/on-miss";
    case ProbingClass::kIrregular: return "irregular";
    case ProbingClass::kNoEcs: return "no-ecs";
    case ProbingClass::kTooFewQueries: return "too-few-queries";
  }
  return "?";
}

std::vector<ProbingVerdict> classify_probing(const std::vector<QueryLogEntry>& log,
                                             const ProbingClassifierOptions& options) {
  // Bucket log lines per sender, preserving time order (the log is
  // chronological already; we keep whatever order it has and sort times
  // where gaps matter).
  std::unordered_map<IpAddress, std::vector<const QueryLogEntry*>,
                     dnscore::IpAddressHash>
      per_sender;
  for (const auto& e : log) {
    if (!is_address_query(e)) continue;
    per_sender[e.sender].push_back(&e);
  }

  std::vector<ProbingVerdict> verdicts;
  verdicts.reserve(per_sender.size());
  // Probe names repeat across senders, so one interning table serves every
  // per-sender pass; the inner maps then key on 32-bit ids instead of
  // hashing full names per log line.
  NameTable names;
  for (auto& [sender, entries] : per_sender) {
    ProbingVerdict v;
    v.resolver = sender;
    v.address_queries = entries.size();
    for (const auto* e : entries) {
      if (e->query_ecs) ++v.ecs_queries;
    }

    if (v.address_queries < options.min_queries) {
      v.cls = ProbingClass::kTooFewQueries;
      verdicts.push_back(v);
      continue;
    }
    if (v.ecs_queries == 0) {
      v.cls = ProbingClass::kNoEcs;
      verdicts.push_back(v);
      continue;
    }
    if (v.ecs_queries == v.address_queries) {
      v.cls = ProbingClass::kAlwaysEcs;
      verdicts.push_back(v);
      continue;
    }

    // Loopback probing: every ECS query carries a loopback prefix, and the
    // probes fire at most once per quantum. (The probe is triggered by the
    // first client query after the timer elapses, so gaps carry arrival
    // jitter on top of the interval; requiring exact multiples would be
    // brittle.)
    std::vector<SimTime> ecs_times;
    bool all_loopback = true;
    for (const auto* e : entries) {
      if (!e->query_ecs) continue;
      ecs_times.push_back(e->time);
      if (!is_loopback_ecs(*e)) all_loopback = false;
    }
    std::sort(ecs_times.begin(), ecs_times.end());
    if (all_loopback && !ecs_times.empty()) {
      bool periodic = true;
      for (std::size_t i = 1; i < ecs_times.size(); ++i) {
        const SimTime gap = ecs_times[i] - ecs_times[i - 1];
        if (gap < options.probe_quantum - options.probe_tolerance) {
          periodic = false;
          break;
        }
      }
      if (periodic) {
        v.cls = ProbingClass::kPeriodicLoopback;
        verdicts.push_back(v);
        continue;
      }
    }

    // Hostname-specific probing: the name set splits into always-ECS names
    // and never-ECS names.
    dnscore::FlatHashMap<NameId, std::pair<std::uint64_t, std::uint64_t>,
                         NameIdHash>
        per_name;  // interned name -> (ecs, total)
    for (const auto* e : entries) {
      auto& counts = per_name[names.intern(e->qname)];
      if (e->query_ecs) ++counts.first;
      ++counts.second;
    }
    bool consistent_split = true;
    per_name.for_each([&](const auto& slot) {
      if (slot.value.first != 0 && slot.value.first != slot.value.second) {
        consistent_split = false;
      }
    });
    if (consistent_split) {
      // Within-TTL repeats of ECS queries distinguish caching-disabled
      // probing (pattern 2) from on-miss probing (pattern 4): an on-miss
      // prober's cache absorbs every repeat until the TTL expires, so its
      // upstream queries for a name are always at least a TTL apart.
      dnscore::FlatHashMap<NameId, SimTime, NameIdHash> last_ecs;
      bool within_ttl = false;
      for (const auto* e : entries) {
        if (!e->query_ecs) continue;
        const NameId name = names.intern(e->qname);
        if (const SimTime* last = last_ecs.find(name);
            last != nullptr && e->time - *last < options.ttl) {
          within_ttl = true;
        }
        last_ecs.insert_or_assign(name, e->time);
      }
      v.cls = within_ttl ? ProbingClass::kHostnameNoCache
                         : ProbingClass::kHostnameOnMiss;
      verdicts.push_back(v);
      continue;
    }

    v.cls = ProbingClass::kIrregular;
    verdicts.push_back(v);
  }

  std::sort(verdicts.begin(), verdicts.end(),
            [](const ProbingVerdict& a, const ProbingVerdict& b) {
              return a.resolver < b.resolver;
            });
  return verdicts;
}

std::map<ProbingClass, std::size_t> probing_histogram(
    const std::vector<ProbingVerdict>& verdicts) {
  std::map<ProbingClass, std::size_t> out;
  for (const auto& v : verdicts) ++out[v.cls];
  return out;
}

}  // namespace ecsdns::measurement
