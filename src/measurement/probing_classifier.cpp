#include "measurement/probing_classifier.h"

#include <algorithm>

#include "dnscore/flat_hash.h"
#include "dnscore/hashing.h"
#include "dnscore/name.h"

namespace ecsdns::measurement {
namespace {

constexpr std::uint8_t kHasEcs = 1u << 0;
constexpr std::uint8_t kLoopback = 1u << 1;

struct NameIdHash {
  std::size_t operator()(NameId id) const noexcept {
    return static_cast<std::size_t>(dnscore::mix64(id));
  }
};

bool is_address_query(const QueryLogEntry& e) {
  return e.qtype == dnscore::RRType::A || e.qtype == dnscore::RRType::AAAA;
}

bool is_loopback_ecs(const QueryLogEntry& e) {
  if (!e.query_ecs) return false;
  const auto prefix = e.query_ecs->source_prefix();
  return prefix && prefix->address().is_loopback();
}

}  // namespace

std::string to_string(ProbingClass c) {
  switch (c) {
    case ProbingClass::kAlwaysEcs: return "always-ecs";
    case ProbingClass::kHostnameNoCache: return "hostname-probe/no-cache";
    case ProbingClass::kPeriodicLoopback: return "periodic-loopback";
    case ProbingClass::kHostnameOnMiss: return "hostname-probe/on-miss";
    case ProbingClass::kIrregular: return "irregular";
    case ProbingClass::kNoEcs: return "no-ecs";
    case ProbingClass::kTooFewQueries: return "too-few-queries";
  }
  return "?";
}

void ProbingClassifier::observe(const QueryLogEntry& e) {
  if (!is_address_query(e)) return;
  std::uint8_t flags = 0;
  if (e.query_ecs) {
    flags |= kHasEcs;
    if (is_loopback_ecs(e)) flags |= kLoopback;
  }
  // Probe names repeat across senders, so one interning table serves every
  // sender's records; the per-sender passes in finish() then key on 32-bit
  // ids instead of hashing full names per log line.
  per_sender_[e.sender].push_back(Record{e.time, names_.intern(e.qname), flags});
}

std::vector<ProbingVerdict> ProbingClassifier::finish() const {
  std::vector<ProbingVerdict> verdicts;
  verdicts.reserve(per_sender_.size());
  for (const auto& [sender, records] : per_sender_) {
    ProbingVerdict v;
    v.resolver = sender;
    v.address_queries = records.size();
    for (const auto& r : records) {
      if (r.flags & kHasEcs) ++v.ecs_queries;
    }

    if (v.address_queries < options_.min_queries) {
      v.cls = ProbingClass::kTooFewQueries;
      verdicts.push_back(v);
      continue;
    }
    if (v.ecs_queries == 0) {
      v.cls = ProbingClass::kNoEcs;
      verdicts.push_back(v);
      continue;
    }
    if (v.ecs_queries == v.address_queries) {
      v.cls = ProbingClass::kAlwaysEcs;
      verdicts.push_back(v);
      continue;
    }

    // Loopback probing: every ECS query carries a loopback prefix, and the
    // probes fire at most once per quantum. (The probe is triggered by the
    // first client query after the timer elapses, so gaps carry arrival
    // jitter on top of the interval; requiring exact multiples would be
    // brittle.)
    std::vector<SimTime> ecs_times;
    bool all_loopback = true;
    for (const auto& r : records) {
      if (!(r.flags & kHasEcs)) continue;
      ecs_times.push_back(r.time);
      if (!(r.flags & kLoopback)) all_loopback = false;
    }
    std::sort(ecs_times.begin(), ecs_times.end());
    if (all_loopback && !ecs_times.empty()) {
      bool periodic = true;
      for (std::size_t i = 1; i < ecs_times.size(); ++i) {
        const SimTime gap = ecs_times[i] - ecs_times[i - 1];
        if (gap < options_.probe_quantum - options_.probe_tolerance) {
          periodic = false;
          break;
        }
      }
      if (periodic) {
        v.cls = ProbingClass::kPeriodicLoopback;
        verdicts.push_back(v);
        continue;
      }
    }

    // Hostname-specific probing: the name set splits into always-ECS names
    // and never-ECS names.
    dnscore::FlatHashMap<NameId, std::pair<std::uint64_t, std::uint64_t>,
                         NameIdHash>
        per_name;  // interned name -> (ecs, total)
    for (const auto& r : records) {
      auto& counts = per_name[r.name];
      if (r.flags & kHasEcs) ++counts.first;
      ++counts.second;
    }
    bool consistent_split = true;
    per_name.for_each([&](const auto& slot) {
      if (slot.value.first != 0 && slot.value.first != slot.value.second) {
        consistent_split = false;
      }
    });
    if (consistent_split) {
      // Within-TTL repeats of ECS queries distinguish caching-disabled
      // probing (pattern 2) from on-miss probing (pattern 4): an on-miss
      // prober's cache absorbs every repeat until the TTL expires, so its
      // upstream queries for a name are always at least a TTL apart.
      dnscore::FlatHashMap<NameId, SimTime, NameIdHash> last_ecs;
      bool within_ttl = false;
      for (const auto& r : records) {
        if (!(r.flags & kHasEcs)) continue;
        if (const SimTime* last = last_ecs.find(r.name);
            last != nullptr && r.time - *last < options_.ttl) {
          within_ttl = true;
        }
        last_ecs.insert_or_assign(r.name, r.time);
      }
      v.cls = within_ttl ? ProbingClass::kHostnameNoCache
                         : ProbingClass::kHostnameOnMiss;
      verdicts.push_back(v);
      continue;
    }

    v.cls = ProbingClass::kIrregular;
    verdicts.push_back(v);
  }

  std::sort(verdicts.begin(), verdicts.end(),
            [](const ProbingVerdict& a, const ProbingVerdict& b) {
              return a.resolver < b.resolver;
            });
  return verdicts;
}

std::vector<ProbingVerdict> classify_probing(const std::vector<QueryLogEntry>& log,
                                             const ProbingClassifierOptions& options) {
  ProbingClassifier classifier(options);
  for (const auto& e : log) classifier.observe(e);
  return classifier.finish();
}

std::map<ProbingClass, std::size_t> probing_histogram(
    const std::vector<ProbingVerdict>& verdicts) {
  std::map<ProbingClass, std::size_t> out;
  for (const auto& v : verdicts) ++out[v.cls];
  return out;
}

}  // namespace ecsdns::measurement
