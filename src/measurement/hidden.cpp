#include "measurement/hidden.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace ecsdns::measurement {

std::vector<HiddenCombination> find_hidden_combinations(
    const ScanResults& results, const netsim::IpGeoDb& geo) {
  // Hidden prefixes as the scanner's detector defines them.
  const auto hidden = results.hidden_prefixes();
  std::set<dnscore::Prefix> hidden_set(hidden.begin(), hidden.end());

  struct ComboKey {
    IpAddress forwarder;
    dnscore::Prefix hidden;
    IpAddress egress;
    bool operator<(const ComboKey& o) const {
      if (forwarder != o.forwarder) return forwarder < o.forwarder;
      if (hidden != o.hidden) return hidden < o.hidden;
      return egress < o.egress;
    }
  };
  std::set<ComboKey> seen;
  std::vector<HiddenCombination> out;

  for (const auto& o : results.observations) {
    if (!o.ecs) continue;
    const auto src = o.ecs->source_prefix();
    if (!src) continue;
    const auto block = src->length() >= 24 ? src->truncated(24) : *src;
    if (hidden_set.find(block) == hidden_set.end()) continue;
    if (!seen.insert(ComboKey{o.ingress, block, o.egress}).second) continue;

    const auto f_loc = geo.locate(o.ingress);
    const auto h_loc = geo.locate(block);
    const auto r_loc = geo.locate(o.egress);
    if (!f_loc || !h_loc || !r_loc) continue;

    HiddenCombination combo;
    combo.forwarder = o.ingress;
    combo.hidden = block;
    combo.egress = o.egress;
    combo.forwarder_hidden_km = netsim::distance_km(*f_loc, *h_loc);
    combo.forwarder_egress_km = netsim::distance_km(*f_loc, *r_loc);
    out.push_back(combo);
  }
  return out;
}

HiddenAnalysis analyze_hidden(const std::vector<HiddenCombination>& combos,
                              double equidistant_km) {
  HiddenAnalysis analysis;
  std::size_t below = 0, on = 0, above = 0;
  for (const auto& c : combos) {
    // Axes follow the paper's Figures 4-5: x = F-H, y = F-R; points below
    // the diagonal (y < x) have the hidden resolver *farther* than the
    // egress.
    analysis.scatter.add(c.forwarder_hidden_km, c.forwarder_egress_km);
    const double delta = c.forwarder_hidden_km - c.forwarder_egress_km;
    if (std::abs(delta) <= equidistant_km) {
      ++on;
    } else if (delta > 0) {
      ++below;
      analysis.max_penalty_km = std::max(analysis.max_penalty_km, delta);
    } else {
      ++above;
    }
  }
  analysis.combinations = combos.size();
  if (!combos.empty()) {
    const double n = static_cast<double>(combos.size());
    analysis.below_diagonal_fraction = static_cast<double>(below) / n;
    analysis.on_diagonal_fraction = static_cast<double>(on) / n;
    analysis.above_diagonal_fraction = static_cast<double>(above) / n;
  }
  return analysis;
}

double cross_validate_hidden(const std::vector<dnscore::Prefix>& hidden_prefixes,
                             const std::vector<authoritative::QueryLogEntry>& cdn_log) {
  if (hidden_prefixes.empty()) return 0.0;
  std::unordered_set<dnscore::Prefix, dnscore::PrefixHash> in_cdn;
  for (const auto& e : cdn_log) {
    if (!e.query_ecs) continue;
    const auto src = e.query_ecs->source_prefix();
    if (!src) continue;
    in_cdn.insert(src->length() >= 24 ? src->truncated(24) : *src);
  }
  std::size_t found = 0;
  for (const auto& p : hidden_prefixes) {
    if (in_cdn.count(p) != 0) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(hidden_prefixes.size());
}

}  // namespace ecsdns::measurement
