// Pull-based trace streams: the streaming half of the generate -> resolve ->
// aggregate pipeline.
//
// A TraceStream yields TraceQuery records one at a time; consumers
// (cache_sim, the prefix censuses, the probing classifier) fold over it
// incrementally, so a paper-scale run (millions of resolvers, billions of
// queries) never materializes a Trace::queries vector. The materialized
// Trace path survives as MaterializedTraceStream — simulate_cache() wraps a
// Trace in one and runs the identical fold, which is what keeps the two
// paths byte-identical (tests/test_trace_stream.cpp).
//
// Sharded consumption needs no queue between generator and shards: stream
// construction is a pure function of its config (per-resolver Rng streams),
// so every shard builds its *own* instance from the shared factory and
// filters to the keys it owns — the streaming analog of every shard
// scanning the shared trace vector.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "measurement/tracegen.h"
#include "netsim/rng.h"
#include "netsim/timer_wheel.h"

namespace ecsdns::measurement {

struct TraceStreamInfo {
  std::uint32_t hostnames = 0;
  std::uint32_t resolvers = 1;
  // Exclusive upper bound on query times, when known up front (generators
  // know their configured duration; a materialized trace its last
  // timestamp). 0 means "empty or unknown".
  SimTime time_bound = 0;
  // Queries arrive sorted by time — precondition for the sharded replay.
  bool time_ordered = false;
  // No query carries ttl_s == 0 — the other sharded-replay precondition.
  bool positive_ttls = false;
};

class TraceStream {
 public:
  virtual ~TraceStream() = default;

  virtual const TraceStreamInfo& info() const noexcept = 0;

  // Yields the next query; false at end of stream.
  virtual bool next(TraceQuery& out) = 0;

  // Appends this stream's client universe (drain() parity with
  // Trace::clients). Generators derive it; default is empty.
  virtual void append_clients(std::vector<IpAddress>&) const {}

  // Restricts generation to the resolvers owned by shard `index` of
  // `count` under measurement::shard_of_id. Returns true when the stream
  // applied the restriction: it will then yield exactly the owned
  // resolvers' queries — same values, same relative order — as the
  // unrestricted stream filtered, but without spending any generation
  // work on foreign resolvers. That is what lets a sharded replay split
  // *generation* cost across cores instead of re-generating the full
  // stream per shard. Must be called before the first next(); false
  // (the default) means unsupported, and the stream is left untouched so
  // callers can fall back to filtering. append_clients() keeps reporting
  // the full universe either way.
  virtual bool restrict_to_members(std::size_t index, std::size_t count) {
    (void)index;
    (void)count;
    return false;
  }
};

// Builds fresh, independent instances of one logical stream. Invoked once
// per shard (plus once for the dispatch probe); each instance replays the
// same deterministic sequence.
using TraceStreamFactory = std::function<std::unique_ptr<TraceStream>()>;

// Precomputes the info block for a materialized trace (one O(n) scan; do it
// once and share across per-shard stream instances).
TraceStreamInfo scan_trace_info(const Trace& trace);

// Adapter: an existing in-memory Trace viewed as a stream. Holds a
// reference — the trace must outlive the stream.
class MaterializedTraceStream final : public TraceStream {
 public:
  explicit MaterializedTraceStream(const Trace& trace)
      : MaterializedTraceStream(trace, scan_trace_info(trace)) {}
  MaterializedTraceStream(const Trace& trace, const TraceStreamInfo& info)
      : trace_(&trace), info_(info) {}

  const TraceStreamInfo& info() const noexcept override { return info_; }

  bool next(TraceQuery& out) override {
    if (cursor_ >= trace_->queries.size()) return false;
    out = trace_->queries[cursor_++];
    return true;
  }

  void append_clients(std::vector<IpAddress>& out) const override {
    out.insert(out.end(), trace_->clients.begin(), trace_->clients.end());
  }

 private:
  const Trace* trace_;
  std::size_t cursor_ = 0;
  TraceStreamInfo info_;
};

// Streaming Public Resolver/CDN generator. Unlike the retired materialized
// generator (one shared RNG, generate-all-then-sort), every resolver draws
// from its own Rng::stream(seed, r), so resolver r's traffic is a pure
// function of (seed, r) and the merged stream is produced in time order by
// a timer wheel holding one pending arrival per resolver. Per-resolver
// state is SoA (~64 bytes/resolver), and client addresses are derived on
// the fly from a per-resolver salt instead of being stored — that is what
// lets a million-member fleet stream in a bounded-RSS process.
//
// Note: addresses are hash-derived (100.x.y.z from mix64), so unlike the
// old generator's global dedup set, distinct (resolver, k) pairs may rarely
// alias the same address. Cache keys include the resolver id, so aliasing
// only (negligibly) reduces distinct-client counts.
class PublicResolverCdnStream final : public TraceStream {
 public:
  explicit PublicResolverCdnStream(const PublicResolverCdnConfig& config);

  const TraceStreamInfo& info() const noexcept override { return info_; }
  bool next(TraceQuery& out) override;
  void append_clients(std::vector<IpAddress>& out) const override;

  // Rebuilds the timer wheel with only the owned resolvers' pending
  // arrivals. Safe because the wheel pops in (when, seq = resolver id)
  // order — dropping foreign resolvers cannot reorder the survivors — and
  // resolver r's draws come from its own Rng::stream(seed, r), untouched
  // by the restriction. The SoA vectors stay full-width (dense id
  // indexing); only the wheel shrinks.
  bool restrict_to_members(std::size_t index, std::size_t count) override;

  // The client address of slot k in resolver r's population (pure).
  IpAddress client_of(std::uint32_t r, std::uint32_t k) const noexcept;

 private:
  TraceStreamInfo info_;
  SimTime duration_;
  bool started_ = false;
  std::uint32_t ttl_s_;
  std::vector<int> scope_of_;       // per hostname
  netsim::ZipfSampler names_;
  // SoA per-resolver state, indexed by the dense resolver id.
  std::vector<netsim::Rng> rng_;
  std::vector<double> arrival_;     // exact (double) next arrival time
  std::vector<double> mean_gap_us_;
  std::vector<std::uint32_t> population_;
  std::vector<std::uint32_t> subnets_;
  std::vector<std::uint64_t> salt_;
  // One pending arrival per live resolver; (time, resolver) pop order.
  netsim::TimerWheel<std::uint32_t> wheel_;
};

// Streaming All-Names generator: the original single-RNG generator was
// already a sequential time-ordered walk, so this emits the byte-identical
// query sequence (same draws in the same order) one record at a time.
class AllNamesStream final : public TraceStream {
 public:
  explicit AllNamesStream(const AllNamesConfig& config);

  const TraceStreamInfo& info() const noexcept override { return info_; }
  bool next(TraceQuery& out) override;
  void append_clients(std::vector<IpAddress>& out) const override;

 private:
  struct Sld {
    int scope;
    int v6_scope;
    std::uint32_t ttl_s;
  };

  TraceStreamInfo info_;
  SimTime duration_;
  std::vector<IpAddress> clients_;
  std::vector<Sld> slds_;
  std::vector<std::uint32_t> sld_of_;  // hostname -> sld
  netsim::ZipfSampler names_;
  netsim::ZipfSampler client_activity_;
  double mean_gap_us_;
  netsim::Rng rng_;
  double t_;
};

// Factory helpers (each call builds an independent replay of the stream).
TraceStreamFactory cdn_stream_factory(const PublicResolverCdnConfig& config);
TraceStreamFactory all_names_stream_factory(const AllNamesConfig& config);

// Pulls a stream to exhaustion into a materialized Trace (the compat shim
// the old generator entry points are built on).
Trace drain(TraceStream& stream);

}  // namespace ecsdns::measurement
