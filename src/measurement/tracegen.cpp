#include "measurement/tracegen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "dnscore/ip.h"

namespace ecsdns::measurement {
namespace {

using netsim::Rng;
using netsim::ZipfSampler;

// Allocates client addresses spread across /24 subnets: `per_subnet`
// clients share each /24, which is what makes ECS scopes bite.
std::vector<IpAddress> make_clients(std::uint32_t count, std::uint32_t subnets,
                                    Rng& rng) {
  std::vector<IpAddress> out;
  out.reserve(count);
  std::unordered_set<std::uint32_t> used;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t subnet = static_cast<std::uint32_t>(rng.uniform(subnets));
    // Client subnets live in 100.64.0.0-ish space: 100.(s/256).(s%256).host
    for (;;) {
      const std::uint32_t host = 1 + static_cast<std::uint32_t>(rng.uniform(250));
      const std::uint32_t bits = (100u << 24) | ((subnet >> 8) << 16) |
                                 ((subnet & 0xff) << 8) | host;
      if (used.insert(bits).second) {
        out.push_back(IpAddress::v4(bits));
        break;
      }
    }
  }
  return out;
}

int pick_scope(double w24, double w16, double w8, Rng& rng) {
  const double total = w24 + w16 + w8;
  const double u = rng.uniform_double() * total;
  if (u < w24) return 24;
  if (u < w24 + w16) return 16;
  return 8;
}

}  // namespace

Trace generate_public_resolver_cdn_trace(const PublicResolverCdnConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.hostnames = config.hostnames;
  trace.resolvers = config.resolvers;

  // Per-hostname authoritative scope (a CDN property of the name).
  std::vector<int> scope_of(config.hostnames);
  for (auto& s : scope_of) {
    s = pick_scope(config.scope24_weight, config.scope16_weight,
                   config.scope8_weight, rng);
  }

  const ZipfSampler names(config.hostnames, config.zipf_exponent);

  // Each resolver serves its own client population; size and load are
  // sampled log-uniformly to model the heterogeneity of a public service's
  // egress fleet.
  const auto log_uniform = [&rng](double lo, double hi) {
    return lo * std::exp(rng.uniform_double() * std::log(hi / lo));
  };
  std::vector<std::vector<IpAddress>> clients_of(config.resolvers);
  std::vector<double> qps_of(config.resolvers);
  for (std::uint32_t r = 0; r < config.resolvers; ++r) {
    const auto population = static_cast<std::uint32_t>(
        log_uniform(config.min_clients_per_resolver, config.max_clients_per_resolver));
    // Roughly 4 clients per /24 block.
    clients_of[r] = make_clients(population, std::max(1u, population / 4), rng);
    trace.clients.insert(trace.clients.end(), clients_of[r].begin(),
                         clients_of[r].end());
    // Busier resolvers serve more clients: couple qps to population.
    const double spread = static_cast<double>(population - config.min_clients_per_resolver) /
                          static_cast<double>(config.max_clients_per_resolver -
                                              config.min_clients_per_resolver);
    qps_of[r] = config.min_qps +
                spread * (config.max_qps - config.min_qps) * (0.5 + rng.uniform_double());
  }

  // Poisson arrivals per resolver, merged by generating independently and
  // sorting (resolver streams are independent in the real dataset too).
  for (std::uint32_t r = 0; r < config.resolvers; ++r) {
    const double mean_gap_us = 1e6 / qps_of[r];
    double t = rng.exponential(mean_gap_us);
    while (static_cast<SimTime>(t) < config.duration) {
      TraceQuery q;
      q.time = static_cast<SimTime>(t);
      q.resolver = r;
      q.client = rng.pick(clients_of[r]);
      q.name = static_cast<std::uint32_t>(names.sample(rng));
      q.scope = scope_of[q.name];
      q.ttl_s = config.ttl_s;
      trace.queries.push_back(q);
      t += rng.exponential(mean_gap_us);
    }
  }
  std::sort(trace.queries.begin(), trace.queries.end(),
            [](const TraceQuery& a, const TraceQuery& b) { return a.time < b.time; });
  return trace;
}

Trace generate_all_names_trace(const AllNamesConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.hostnames = config.hostnames;
  trace.resolvers = 1;

  const auto v6_clients =
      static_cast<std::uint32_t>(config.v6_fraction * config.clients);
  const auto v6_subnets = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.v6_fraction * config.client_subnets));
  trace.clients =
      make_clients(config.clients - v6_clients,
                   std::max(1u, config.client_subnets - v6_subnets), rng);
  // IPv6 clients: each /48 subnet under 2001:db8::/32 hosts several
  // clients, mirroring the dataset's 38.8K addresses in 2.8K /48s.
  for (std::uint32_t i = 0; i < v6_clients; ++i) {
    const std::uint32_t subnet = static_cast<std::uint32_t>(rng.uniform(v6_subnets));
    std::array<std::uint8_t, 16> bytes{};
    bytes[0] = 0x20;
    bytes[1] = 0x01;
    bytes[2] = 0x0d;
    bytes[3] = 0xb8;
    bytes[4] = static_cast<std::uint8_t>(subnet >> 8);
    bytes[5] = static_cast<std::uint8_t>(subnet & 0xff);
    bytes[8] = static_cast<std::uint8_t>(i >> 16);
    bytes[9] = static_cast<std::uint8_t>(i >> 8);
    bytes[10] = static_cast<std::uint8_t>(i & 0xff);
    bytes[15] = 1;
    trace.clients.push_back(IpAddress::v6(bytes));
  }

  // Assign each hostname to an SLD; scope and TTL are zone properties.
  struct Sld {
    int scope;     // authoritative scope for IPv4 clients
    int v6_scope;  // and for IPv6 clients (/48 or /56 granularity)
    std::uint32_t ttl_s;
  };
  std::vector<Sld> slds(config.slds);
  static constexpr std::uint32_t kTtlChoices[] = {20, 30, 60, 120, 300};
  for (auto& sld : slds) {
    if (!rng.chance(config.ecs_zone_fraction)) {
      // A zone that has not adopted ECS answers with scope 0 — one cache
      // entry serves every client.
      sld.scope = 0;
      sld.v6_scope = 0;
      sld.ttl_s = kTtlChoices[rng.uniform(std::size(kTtlChoices))];
      continue;
    }
    // ECS-adopting zones map mostly at /24 with a tail of coarser scopes
    // (the All-Names dataset only contains such responses).
    const double u = rng.uniform_double();
    if (u < 0.70) {
      sld.scope = 24;
    } else if (u < 0.85) {
      sld.scope = 20;
    } else if (u < 0.95) {
      sld.scope = 16;
    } else {
      sld.scope = 8;
    }
    sld.v6_scope = rng.chance(0.7) ? 48 : 56;
    sld.ttl_s = kTtlChoices[rng.uniform(std::size(kTtlChoices))];
  }
  std::vector<std::uint32_t> sld_of(config.hostnames);
  // Hostname-to-SLD assignment follows a Zipf too: big zones have many
  // names.
  const ZipfSampler sld_sampler(config.slds, 1.0);
  for (auto& s : sld_of) s = static_cast<std::uint32_t>(sld_sampler.sample(rng));

  const ZipfSampler names(config.hostnames, config.zipf_exponent);
  // Client activity is skewed as well: a few heavy clients dominate.
  const ZipfSampler client_activity(trace.clients.size(), 0.8);

  const double mean_gap_us = 1e6 / config.queries_per_second;
  double t = rng.exponential(mean_gap_us);
  while (static_cast<SimTime>(t) < config.duration) {
    TraceQuery q;
    q.time = static_cast<SimTime>(t);
    q.resolver = 0;
    q.client = trace.clients[client_activity.sample(rng)];
    q.name = static_cast<std::uint32_t>(names.sample(rng));
    const Sld& sld = slds[sld_of[q.name]];
    q.scope = q.client.is_v4() ? sld.scope : sld.v6_scope;
    q.ttl_s = sld.ttl_s;
    trace.queries.push_back(q);
    t += rng.exponential(mean_gap_us);
  }
  return trace;
}

Trace sample_clients(const Trace& trace, double fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IpAddress> shuffled = trace.clients;
  rng.shuffle(shuffled);
  const auto keep_count = static_cast<std::size_t>(
      fraction * static_cast<double>(shuffled.size()) + 0.5);
  shuffled.resize(std::max<std::size_t>(keep_count, 1));
  std::unordered_set<IpAddress, dnscore::IpAddressHash> keep(shuffled.begin(),
                                                             shuffled.end());
  Trace out;
  out.hostnames = trace.hostnames;
  out.resolvers = trace.resolvers;
  out.clients = std::move(shuffled);
  out.queries.reserve(trace.queries.size());
  for (const auto& q : trace.queries) {
    if (keep.count(q.client) != 0) out.queries.push_back(q);
  }
  return out;
}

}  // namespace ecsdns::measurement
