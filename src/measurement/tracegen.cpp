#include "measurement/tracegen.h"

#include <algorithm>
#include <unordered_set>

#include "dnscore/ip.h"
#include "measurement/trace_stream.h"

namespace ecsdns::measurement {

// Both generators are streams first (measurement/trace_stream.h); the
// materialized entry points survive as drains for callers that genuinely
// need the whole trace in memory (small-scale tests and figures). Anything
// that only folds over queries should consume the stream instead.

Trace generate_public_resolver_cdn_trace(const PublicResolverCdnConfig& config) {
  PublicResolverCdnStream stream(config);
  return drain(stream);
}

Trace generate_all_names_trace(const AllNamesConfig& config) {
  AllNamesStream stream(config);
  return drain(stream);
}

Trace sample_clients(const Trace& trace, double fraction, std::uint64_t seed) {
  netsim::Rng rng(seed);
  std::vector<IpAddress> shuffled = trace.clients;
  rng.shuffle(shuffled);
  const auto keep_count = static_cast<std::size_t>(
      fraction * static_cast<double>(shuffled.size()) + 0.5);
  shuffled.resize(std::max<std::size_t>(keep_count, 1));
  std::unordered_set<IpAddress, dnscore::IpAddressHash> keep(shuffled.begin(),
                                                             shuffled.end());
  Trace out;
  out.hostnames = trace.hostnames;
  out.resolvers = trace.resolvers;
  out.clients = std::move(shuffled);
  out.queries.reserve(trace.queries.size());
  for (const auto& q : trace.queries) {
    if (keep.count(q.client) != 0) out.queries.push_back(q);
  }
  return out;
}

}  // namespace ecsdns::measurement
