#include "measurement/testbed.h"

#include <stdexcept>

namespace ecsdns::measurement {
namespace {

constexpr std::uint32_t kPoolBase[] = {
    (100u << 24) | (64u << 16),  // clients
    60u << 24,                   // forwarders
    70u << 24,                   // hidden
    80u << 24,                   // resolvers
    90u << 24,                   // auth
    95u << 24,                   // edges
    110u << 24,                  // probes
};

// Root and TLD servers sit in Ashburn — co-locating them keeps hierarchy
// walks cheap and out of the way of the latency effects under study.
constexpr const char* kInfraCity = "Ashburn";

}  // namespace

Testbed::Testbed() = default;

IpAddress Testbed::alloc(AddressPool pool) {
  const auto idx = static_cast<std::size_t>(pool);
  const std::uint32_t offset = next_in_pool_[idx]++;
  if (pool == AddressPool::kClients || pool == AddressPool::kProbes) {
    // One client per /16: clients carry their own geolocated blocks, and
    // CDN scopes as coarse as /21 must not accidentally cover two clients
    // placed in different cities.
    return IpAddress::v4(kPoolBase[idx] + (offset << 16) + 0x101u);
  }
  // Dense packing for infrastructure pools (skip .0 to look like hosts).
  const std::uint32_t host = offset % 250 + 1;
  const std::uint32_t subnet = offset / 250;
  return IpAddress::v4(kPoolBase[idx] + (subnet << 8) + host);
}

void Testbed::geolocate(const IpAddress& addr, const netsim::GeoPoint& where) {
  geodb_.add(dnscore::Prefix{addr, addr.bit_length()}, where);
  geodb_.add(dnscore::Prefix{addr, addr.is_v4() ? 24 : 48}, where);
}

void Testbed::attribute(const IpAddress& addr, const netsim::AsInfo& info) {
  // Exact-address entries: resolver pools pack many organizations into one
  // /24, so block-level attribution would cross-contaminate.
  asndb_.add(dnscore::Prefix{addr, addr.bit_length()}, info);
}

std::vector<IpAddress> Testbed::root_hints() {
  if (!root_) {
    root_addr_ = alloc(AddressPool::kAuth);
    AuthConfig config;
    config.label = "root";
    config.log_queries = true;
    root_ = std::make_unique<AuthServer>(config, nullptr);
    root_->add_zone(Name{});  // the root zone
    const auto& city = world_.city(kInfraCity);
    root_->attach(network_, root_addr_, city.location);
    geolocate(root_addr_, city.location);
  }
  return {root_addr_};
}

AuthServer& Testbed::root_server() {
  root_hints();
  return *root_;
}

AuthServer& Testbed::tld_server(const std::string& tld_label) {
  for (auto& t : tlds_) {
    if (t.label == tld_label) return *t.server;
  }
  root_hints();  // ensure the root exists
  const IpAddress addr = alloc(AddressPool::kAuth);
  AuthConfig config;
  config.label = "tld-" + tld_label;
  auths_.push_back(std::make_unique<AuthServer>(config, nullptr));
  auth_addrs_.push_back(addr);
  AuthServer& server = *auths_.back();
  const Name apex = Name::from_string(tld_label);
  server.add_zone(apex);
  const auto& city = world_.city(kInfraCity);
  server.attach(network_, addr, city.location);
  geolocate(addr, city.location);

  // Delegate the TLD from the root.
  const Name ns_name = Name::from_string("ns1." + tld_label);
  root_->find_zone(Name{})->delegate(
      apex, {dnscore::ResourceRecord::make_ns(apex, 172800, ns_name)},
      {dnscore::ResourceRecord::make_a(ns_name, 172800, addr)});

  tlds_.push_back(TldEntry{tld_label, &server, addr});
  return server;
}

AuthServer& Testbed::add_auth(const std::string& label, const Name& apex,
                              const std::string& city,
                              std::unique_ptr<EcsPolicy> policy, AuthConfig config) {
  if (apex.label_count() < 2) {
    throw std::invalid_argument("add_auth needs an apex below a TLD: " +
                                apex.to_string());
  }
  config.label = label;
  const IpAddress addr = alloc(AddressPool::kAuth);
  auths_.push_back(std::make_unique<AuthServer>(config, std::move(policy)));
  auth_addrs_.push_back(addr);
  AuthServer& server = *auths_.back();
  server.add_zone(apex);
  const auto& c = world_.city(city);
  server.attach(network_, addr, c.location);
  geolocate(addr, c.location);

  // Register the delegation in the TLD (creating root/TLD as needed).
  const std::string tld(apex.label(apex.label_count() - 1));
  AuthServer& parent = tld_server(tld);
  const Name ns_name = apex.prepend("ns1");
  parent.find_zone(Name::from_string(tld))
      ->delegate(apex, {dnscore::ResourceRecord::make_ns(apex, 86400, ns_name)},
                 {dnscore::ResourceRecord::make_a(ns_name, 86400, addr)});
  // The leaf zone also answers for its own nameserver name.
  server.find_zone(apex)->add(dnscore::ResourceRecord::make_a(ns_name, 86400, addr));
  return server;
}

IpAddress Testbed::auth_address(const AuthServer& server) const {
  for (std::size_t i = 0; i < auths_.size(); ++i) {
    if (auths_[i].get() == &server) return auth_addrs_[i];
  }
  throw std::out_of_range("server not created by this testbed");
}

RecursiveResolver& Testbed::add_resolver(ResolverConfig config,
                                         const std::string& city) {
  const IpAddress addr = alloc(AddressPool::kResolvers);
  resolvers_.push_back(std::make_unique<RecursiveResolver>(
      std::move(config), network_, addr, root_hints()));
  const auto& c = world_.city(city);
  resolvers_.back()->attach(c.location);
  geolocate(addr, c.location);
  return *resolvers_.back();
}

Forwarder& Testbed::add_forwarder(const std::string& city, const IpAddress& upstream,
                                  ForwarderConfig config) {
  return add_forwarder_at(alloc(AddressPool::kForwarders), city, upstream, config);
}

Forwarder& Testbed::add_forwarder_at(const IpAddress& addr, const std::string& city,
                                     const IpAddress& upstream,
                                     ForwarderConfig config) {
  forwarders_.push_back(
      std::make_unique<Forwarder>(config, network_, addr, upstream));
  const auto& c = world_.city(city);
  forwarders_.back()->attach(c.location);
  geolocate(addr, c.location);
  return *forwarders_.back();
}

StubClient& Testbed::add_client(const std::string& city) {
  const IpAddress addr = alloc(AddressPool::kClients);
  clients_.push_back(std::make_unique<StubClient>(network_, addr));
  const auto& c = world_.city(city);
  clients_.back()->attach(c.location);
  geolocate(addr, c.location);
  return *clients_.back();
}

cdn::EdgeFleet& Testbed::add_global_fleet() {
  std::vector<std::string> names;
  names.reserve(world_.cities().size());
  for (const auto& c : world_.cities()) names.push_back(c.name);
  return add_fleet_in_cities(names);
}

cdn::EdgeFleet& Testbed::add_fleet_in_cities(const std::vector<std::string>& cities) {
  // Each fleet gets its own /16 inside the edge pool.
  const IpAddress base = IpAddress::v4(
      (95u << 24) | (static_cast<std::uint32_t>(fleets_.size()) << 16) | 1u);
  fleets_.push_back(std::make_unique<cdn::EdgeFleet>(
      cdn::EdgeFleet::in_cities(world_, base, cities)));
  cdn::EdgeFleet& fleet = *fleets_.back();
  for (const auto& edge : fleet.servers()) {
    // Edges answer pings/TCP only; they never speak DNS.
    network_.attach(edge.address, edge.location,
                    [](const netsim::Datagram&)
                        -> std::optional<std::vector<std::uint8_t>> {
                      return std::vector<std::uint8_t>{};
                    });
    geolocate(edge.address, edge.location);
  }
  return fleet;
}

cdn::ProximityMapping& Testbed::add_mapping(cdn::ProximityMappingConfig config,
                                            const cdn::EdgeFleet& fleet) {
  mappings_.push_back(
      std::make_unique<cdn::ProximityMapping>(std::move(config), fleet, geodb_));
  return *mappings_.back();
}

authoritative::FlatteningAuthServer& Testbed::add_flattening_auth(
    authoritative::FlatteningConfig config, const Name& apex,
    const std::string& city, AuthConfig base_config) {
  const IpAddress addr = alloc(AddressPool::kAuth);
  flatteners_.push_back(std::make_unique<authoritative::FlatteningAuthServer>(
      config, std::move(base_config), network_, addr));
  auto& flattener = *flatteners_.back();
  flattener.base().add_zone(apex);
  const auto& c = world_.city(city);
  flattener.attach(c.location);
  geolocate(addr, c.location);

  const std::string tld(apex.label(apex.label_count() - 1));
  AuthServer& parent = tld_server(tld);
  const Name ns_name = apex.prepend("ns1");
  parent.find_zone(Name::from_string(tld))
      ->delegate(apex, {dnscore::ResourceRecord::make_ns(apex, 86400, ns_name)},
                 {dnscore::ResourceRecord::make_a(ns_name, 86400, addr)});
  flattener.base().find_zone(apex)->add(
      dnscore::ResourceRecord::make_a(ns_name, 86400, addr));
  return flattener;
}

}  // namespace ecsdns::measurement
