// The §8.4 CNAME-flattening case study (Figure 8).
//
// Reenacts the paper's packet trace: a client using a whitelisted public
// resolver accesses customer.com (apex, CNAME-flattened by the DNS
// provider) and www.customer.com (regular CNAME onto the CDN). The apex
// path loses ECS at the provider's backend query, gets mapped to the DNS
// provider's location instead of the client's, and pays an HTTP redirect to
// recover — the www path does not.
#pragma once

#include <string>

#include "measurement/testbed.h"

namespace ecsdns::measurement {

struct FlatteningOptions {
  std::string client_city = "Santiago";
  // The public resolver's egress site serving this client.
  std::string resolver_city = "Miami";
  // Where the DNS provider hosts the zone (drives the bad apex mapping).
  std::string provider_city = "Frankfurt";
  // Whether the provider forwards ECS on its backend query — the fix the
  // paper discusses (and why it is insufficient without whitelisting).
  bool provider_forwards_ecs = false;
  std::uint32_t cdn_ttl = 20;
};

struct FlatteningTimeline {
  // Apex (CNAME-flattened) access:
  netsim::SimTime apex_dns = 0;        // steps 1-6: resolving customer.com
  netsim::SimTime apex_handshake = 0;  // step 7: TCP to the mis-mapped edge
  netsim::SimTime redirect = 0;        // steps 7-8: request + 302 round trip
  netsim::SimTime www_dns = 0;         // steps 9-14: resolving www.customer.com
  netsim::SimTime www_handshake = 0;   // TCP to the correctly mapped edge
  dnscore::IpAddress apex_edge;        // E1
  dnscore::IpAddress www_edge;         // E2
  std::string apex_edge_city;
  std::string www_edge_city;

  // Total elapsed for the apex access (what the user actually waits).
  netsim::SimTime apex_total() const {
    return apex_dns + apex_handshake + redirect + www_dns + www_handshake;
  }
  // What a direct www access costs.
  netsim::SimTime www_total() const { return www_dns + www_handshake; }
  netsim::SimTime penalty() const { return apex_total() - www_total(); }
};

FlatteningTimeline run_cname_flattening_experiment(Testbed& bed,
                                                   const FlatteningOptions& options);

}  // namespace ecsdns::measurement
