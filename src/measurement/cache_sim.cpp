#include "measurement/cache_sim.h"

#include <map>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "dnscore/ip.h"

namespace ecsdns::measurement {
namespace {

using dnscore::IpAddress;
using dnscore::Prefix;

// Cache key: resolver x question x (scope-truncated client block). Without
// ECS the block is the zero prefix.
struct Key {
  std::uint32_t resolver;
  std::uint32_t name;
  Prefix block;

  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    std::size_t h = k.block.hash();
    h = h * 1099511628211ull ^ k.resolver;
    h = h * 1099511628211ull ^ k.name;
    return h;
  }
};

}  // namespace

const ResolverCacheResult& CacheSimResult::resolver(std::uint32_t id) const {
  for (const auto& r : per_resolver) {
    if (r.resolver == id) return r;
  }
  throw std::out_of_range("no such resolver in result");
}

std::uint64_t CacheSimResult::total_hits() const {
  std::uint64_t n = 0;
  for (const auto& r : per_resolver) n += r.hits;
  return n;
}

std::uint64_t CacheSimResult::total_misses() const {
  std::uint64_t n = 0;
  for (const auto& r : per_resolver) n += r.misses;
  return n;
}

double CacheSimResult::overall_hit_rate() const {
  const auto total = total_hits() + total_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(total_hits()) / static_cast<double>(total);
}

CacheSimResult simulate_cache(const Trace& trace, const CacheSimOptions& options) {
  struct Slot {
    SimTime expiry = 0;
    std::uint64_t lru_stamp = 0;
  };
  std::unordered_map<Key, Slot, KeyHash> cache;
  // Expiration queue so current size is exact at every query time.
  struct Expiry {
    SimTime when;
    Key key;
  };
  const auto later = [](const Expiry& a, const Expiry& b) { return a.when > b.when; };
  std::priority_queue<Expiry, std::vector<Expiry>, decltype(later)> expirations(later);
  // LRU index per resolver, only maintained when a bound is set.
  std::vector<std::map<std::uint64_t, Key>> lru(
      options.max_entries_per_resolver ? trace.resolvers : 0);
  std::uint64_t next_stamp = 1;

  std::vector<ResolverCacheResult> results(trace.resolvers);
  for (std::uint32_t r = 0; r < trace.resolvers; ++r) results[r].resolver = r;
  std::vector<std::size_t> live(trace.resolvers, 0);

  const auto erase_entry = [&](const Key& key, const Slot& slot) {
    // `slot` aliases the node `cache.erase` destroys, so every read of it
    // (and of `key`, when the caller passes a reference into the node) must
    // happen before the erase.
    --live[key.resolver];
    if (options.max_entries_per_resolver) {
      lru[key.resolver].erase(slot.lru_stamp);
    }
    cache.erase(key);
  };

  for (const auto& q : trace.queries) {
    // Retire everything that expired before this query.
    while (!expirations.empty() && expirations.top().when <= q.time) {
      const Expiry e = expirations.top();
      expirations.pop();
      const auto it = cache.find(e.key);
      // Only erase if this expiration is current (the entry may have been
      // refreshed after a miss).
      if (it != cache.end() && it->second.expiry <= e.when) {
        erase_entry(e.key, it->second);
      }
    }

    Key key{q.resolver, q.name, Prefix{}};
    if (options.with_ecs && q.scope > 0) {
      const int bits = std::min(q.scope, q.client.bit_length());
      key.block = Prefix{q.client, bits};
    }

    auto& result = results.at(q.resolver);
    const auto it = cache.find(key);
    if (it != cache.end() && it->second.expiry > q.time) {
      ++result.hits;
      if (options.max_entries_per_resolver) {
        // Refresh recency.
        lru[q.resolver].erase(it->second.lru_stamp);
        it->second.lru_stamp = next_stamp++;
        lru[q.resolver].emplace(it->second.lru_stamp, key);
      }
      continue;
    }
    ++result.misses;
    const std::uint32_t ttl_s = options.ttl_override.value_or(q.ttl_s);
    const SimTime expiry = q.time + static_cast<SimTime>(ttl_s) * netsim::kSecond;
    if (options.max_entries_per_resolver &&
        live[q.resolver] >= *options.max_entries_per_resolver) {
      // Premature eviction: drop the least recently used live entry.
      auto& order = lru[q.resolver];
      if (!order.empty()) {
        const Key victim = order.begin()->second;
        const auto vit = cache.find(victim);
        if (vit != cache.end()) erase_entry(victim, vit->second);
        ++result.premature_evictions;
      }
    }
    Slot slot{expiry, next_stamp++};
    if (options.max_entries_per_resolver && it != cache.end()) {
      lru[q.resolver].erase(it->second.lru_stamp);  // drop the stale stamp
    }
    const auto [slot_it, inserted] = cache.insert_or_assign(key, slot);
    (void)slot_it;
    if (inserted) ++live[q.resolver];
    result.max_cache_size = std::max(result.max_cache_size, live[q.resolver]);
    if (options.max_entries_per_resolver) {
      lru[q.resolver].emplace(slot.lru_stamp, key);
    }
    expirations.push(Expiry{expiry, key});
  }

  CacheSimResult out;
  out.per_resolver = std::move(results);
  return out;
}

std::vector<double> blowup_factors(const Trace& trace,
                                   std::optional<std::uint32_t> ttl_override) {
  CacheSimOptions with;
  with.with_ecs = true;
  with.ttl_override = ttl_override;
  CacheSimOptions without;
  without.with_ecs = false;
  without.ttl_override = ttl_override;

  const CacheSimResult ecs = simulate_cache(trace, with);
  const CacheSimResult plain = simulate_cache(trace, without);

  std::vector<double> out;
  out.reserve(ecs.per_resolver.size());
  for (std::size_t i = 0; i < ecs.per_resolver.size(); ++i) {
    const auto base = plain.per_resolver[i].max_cache_size;
    if (base == 0) continue;
    out.push_back(static_cast<double>(ecs.per_resolver[i].max_cache_size) /
                  static_cast<double>(base));
  }
  return out;
}

}  // namespace ecsdns::measurement
