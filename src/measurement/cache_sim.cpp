#include "measurement/cache_sim.h"

#include <algorithm>
#include <map>
#include <memory>
#include <queue>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "dnscore/contracts.h"
#include "dnscore/flat_hash.h"
#include "dnscore/hashing.h"
#include "dnscore/ip.h"
#include "measurement/sharding.h"
#include "netsim/parallel_engine.h"
#include "obs/metrics.h"

namespace ecsdns::measurement {
namespace {

using dnscore::IpAddress;
using dnscore::Prefix;
using detail::CacheKey;
using detail::CacheKeyHash;
using detail::cache_key_of;

// Content hash of a query's cache key, cheap enough for every shard to run
// over the full stream as its partition filter (no Prefix construction for
// foreign queries). Equal keys always hash equal; collisions only co-locate
// two keys on one shard, which is harmless.
std::uint64_t key_shard_hash(const TraceQuery& q, bool with_ecs) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 14695981039346656037ull;
  h = (h ^ q.resolver) * kPrime;
  h = (h ^ q.name) * kPrime;
  if (with_ecs && q.scope > 0) {
    const int bits = std::min(q.scope, q.client.bit_length());
    const auto& bytes = q.client.bytes();
    const int full = bits / 8;
    const int partial = bits % 8;
    for (int i = 0; i < full; ++i) {
      h = (h ^ bytes[static_cast<std::size_t>(i)]) * kPrime;
    }
    if (partial != 0) {
      const auto mask = static_cast<std::uint8_t>(0xff00u >> partial);
      h = (h ^ static_cast<std::uint8_t>(
               bytes[static_cast<std::size_t>(full)] & mask)) *
          kPrime;
    }
    h = (h ^ static_cast<std::uint64_t>(bits)) * kPrime;
    h = (h ^ static_cast<std::uint64_t>(q.client.is_v4() ? 4 : 6)) * kPrime;
  }
  return h;
}

}  // namespace

const ResolverCacheResult& CacheSimResult::resolver(std::uint32_t id) const {
  for (const auto& r : per_resolver) {
    if (r.resolver == id) return r;
  }
  throw std::out_of_range("no such resolver in result");
}

std::uint64_t CacheSimResult::total_hits() const {
  std::uint64_t n = 0;
  for (const auto& r : per_resolver) n += r.hits;
  return n;
}

std::uint64_t CacheSimResult::total_misses() const {
  std::uint64_t n = 0;
  for (const auto& r : per_resolver) n += r.misses;
  return n;
}

double CacheSimResult::overall_hit_rate() const {
  const auto total = total_hits() + total_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(total_hits()) / static_cast<double>(total);
}

// ---------------------------------------------------------------------------
// Unbounded streaming replay: entries leave only by TTL (the paper's §7
// assumption). This is the serial path; bounded replays go through
// BoundedShard below instead.

StreamingCacheSim::StreamingCacheSim(std::uint32_t resolvers,
                                     const CacheSimOptions& options)
    : with_ecs_(options.with_ecs),
      ttl_override_(options.ttl_override),
      results_(resolvers),
      live_(resolvers, 0) {
  for (std::uint32_t r = 0; r < resolvers; ++r) results_[r].resolver = r;
}

void StreamingCacheSim::observe(const TraceQuery& q) {
  ++queries_;
  // Retire everything that expired before this query.
  while (!expirations_.empty() && expirations_.top().when <= q.time) {
    const Expiry e = expirations_.top();
    expirations_.pop();
    const Slot* slot = cache_.find(e.key);
    // Only erase if this expiration is current (the entry may have been
    // refreshed after a miss).
    if (slot != nullptr && slot->expiry <= e.when) {
      --live_[e.key.resolver];
      cache_.erase(e.key);
    }
  }

  const CacheKey key = cache_key_of(q, with_ecs_);

  auto& result = results_.at(q.resolver);
  Slot* found = cache_.find(key);
  if (found != nullptr && found->expiry > q.time) {
    ++result.hits;
    return;
  }
  ++result.misses;
  const std::uint32_t ttl_s = ttl_override_.value_or(q.ttl_s);
  const SimTime expiry = q.time + static_cast<SimTime>(ttl_s) * netsim::kSecond;
  const auto [new_slot, inserted] = cache_.insert_or_assign(key, Slot{expiry});
  (void)new_slot;
  if (inserted) ++live_[q.resolver];
  result.max_cache_size = std::max(result.max_cache_size, live_[q.resolver]);
  expirations_.push(Expiry{expiry, key});
}

CacheSimResult StreamingCacheSim::finish() {
  CacheSimResult out;
  out.per_resolver = std::move(results_);
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Sharded replay (see docs/parallel_engine.md).
//
// With an unbounded cache, each key's hit/miss sequence depends only on the
// queries that map to it, so keys partition across shards by stable hash
// and replay independently — each shard pulling its *own* instance of the
// stream and keeping only the keys it owns (the streaming analog of every
// shard scanning the shared trace vector). The one cross-key quantity — a
// resolver's peak live-entry count, sampled by the serial replay after
// every insert — is reconstructed exactly from per-shard occupancy deltas:
// every insert emits (+1, time, query index) and every real expiration
// (-1, expiry time). Deltas batch into the shard's epoch arena and stream
// each epoch to the shard that owns the resolver's accounting, which
// applies them in (time, expire-before-insert, query index) order —
// precisely the order the serial replay's lazy expiration sweep induces,
// because an expiration with `when <= q.time` always fires before query q.
// Batches are confined to one epoch window, so the owner merges N
// already-sorted runs per window.

// One occupancy change of a resolver's cache.
struct Delta {
  SimTime time;
  std::uint32_t resolver;
  // 0 = entry expired (-1), 1 = entry inserted (+1). Expires sort first at
  // equal times, matching the serial sweep-then-query order; this is exact
  // whenever effective TTLs are positive (an entry then never expires at
  // its own insertion time), which the dispatch in simulate_cache_stream
  // guarantees.
  std::uint8_t kind;
  // Stream index of the (creating) insert: the deterministic tie-break.
  std::uint64_t seq;
};

bool delta_less(const Delta& a, const Delta& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.seq < b.seq;
}

class ReplayShard final : public netsim::ShardProgram {
 public:
  ReplayShard(std::unique_ptr<TraceStream> stream, const CacheSimOptions& options,
              std::size_t index, std::size_t shards,
              std::vector<ReplayShard*>& directory,
              std::vector<ResolverCacheResult>& results)
      : stream_(std::move(stream)),
        options_(options),
        index_(index),
        shards_(shards),
        directory_(directory),
        results_(results),
        resolvers_(stream_->info().resolvers),
        hits_(resolvers_, 0),
        misses_(resolvers_, 0),
        live_(resolvers_, 0),
        peak_(resolvers_, 0),
        out_(shards) {
    has_next_ = stream_->next(next_q_);
  }

  void epoch(netsim::ShardContext& ctx, SimTime epoch_end) override {
    apply_pending();
    replay_until(epoch_end);
    flush_expirations(epoch_end);
    ship(ctx);
  }

  bool done(const netsim::ShardContext&) const override {
    return !has_next_ && expirations_.empty() && pending_.empty();
  }

  void finish(netsim::ShardContext& ctx) override {
    // Serial, in shard-index order: fold this shard's tallies and its owned
    // resolvers' exact peaks into the shared result.
    std::uint64_t hit_total = 0;
    std::uint64_t miss_total = 0;
    for (std::uint32_t r = 0; r < resolvers_; ++r) {
      results_[r].hits += hits_[r];
      results_[r].misses += misses_[r];
      hit_total += hits_[r];
      miss_total += misses_[r];
      if (shard_of_id(r, shards_) == index_) {
        ECSDNS_DCHECK(live_[r] == 0);
        results_[r].max_cache_size = peak_[r];
      }
    }
    auto& metrics = ctx.metrics();
    metrics.counter("cache_sim.queries").inc(hit_total + miss_total);
    metrics.counter("cache_sim.hits").inc(hit_total);
    metrics.counter("cache_sim.misses").inc(miss_total);
  }

  // Delta batches live in the sender's epoch arena; the span stays valid
  // until that arena's parity comes around again (round k+2), strictly
  // after this shard merges it in round k+1.
  void absorb(std::span<const Delta> batch) { pending_.push_back(batch); }

 private:
  struct Slot {
    SimTime expiry;
    std::uint64_t seq;
  };
  struct PendingExpiry {
    SimTime when;
    std::uint64_t seq;
    CacheKey key;
  };
  struct LaterExpiry {
    bool operator()(const PendingExpiry& a, const PendingExpiry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Owner role: merge the batches for the window that just closed. Every
  // source batch is sorted and covers the same window, so this is an N-way
  // merge on a strict total order (stream indexes never repeat).
  void apply_pending() {
    if (pending_.empty()) return;
    std::vector<std::size_t> cursor(pending_.size(), 0);
    for (;;) {
      std::size_t best = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (cursor[i] >= pending_[i].size()) continue;
        if (best == pending_.size() ||
            delta_less(pending_[i][cursor[i]], pending_[best][cursor[best]])) {
          best = i;
        }
      }
      if (best == pending_.size()) break;
      const Delta& d = pending_[best][cursor[best]++];
      if (d.kind == 0) {
        ECSDNS_DCHECK(live_[d.resolver] > 0);
        --live_[d.resolver];
      } else {
        const std::int64_t now_live = ++live_[d.resolver];
        if (static_cast<std::uint64_t>(now_live) > peak_[d.resolver]) {
          peak_[d.resolver] = static_cast<std::uint64_t>(now_live);
        }
      }
    }
    pending_.clear();
  }

  // Replayer role: consume this window's slice of the stream, keeping only
  // the keys this shard owns.
  void replay_until(SimTime epoch_end) {
    while (has_next_ && next_q_.time < epoch_end) {
      const TraceQuery q = next_q_;
      const std::uint64_t seq = seq_++;
      has_next_ = stream_->next(next_q_);
      if (shard_of_hash(key_shard_hash(q, options_.with_ecs), shards_) !=
          index_) {
        continue;
      }
      sweep(q.time);
      const CacheKey key = cache_key_of(q, options_.with_ecs);
      const Slot* slot = cache_.find(key);
      if (slot != nullptr && slot->expiry > q.time) {
        ++hits_[q.resolver];
        continue;
      }
      // With positive TTLs the sweep has already erased an expired entry,
      // so a miss always inserts a fresh one.
      ECSDNS_DCHECK(slot == nullptr);
      ++misses_[q.resolver];
      const std::uint32_t ttl_s = options_.ttl_override.value_or(q.ttl_s);
      const SimTime expiry =
          q.time + static_cast<SimTime>(ttl_s) * netsim::kSecond;
      cache_.insert_or_assign(key, Slot{expiry, seq});
      emit(Delta{q.time, q.resolver, 1, seq});
      expirations_.push(PendingExpiry{expiry, seq, key});
    }
  }

  void sweep(SimTime now) {
    while (!expirations_.empty() && expirations_.top().when <= now) {
      pop_expiry();
    }
  }

  // Emits every expiration inside the closing window even when no local
  // query observed it — the owner's merge needs each window complete.
  void flush_expirations(SimTime epoch_end) {
    while (!expirations_.empty() && expirations_.top().when < epoch_end) {
      pop_expiry();
    }
  }

  void pop_expiry() {
    const PendingExpiry e = expirations_.top();
    expirations_.pop();
    const Slot* slot = cache_.find(e.key);
    // Skip stale records: the entry was refreshed after this expiry was
    // scheduled (mirrors the serial replay's currentness check). The delta
    // reads the slot before the erase relocates it.
    if (slot != nullptr && slot->expiry <= e.when) {
      emit(Delta{e.when, e.key.resolver, 0, slot->seq});
      cache_.erase(e.key);
    }
  }

  void emit(const Delta& d) { out_[shard_of_id(d.resolver, shards_)].push_back(d); }

  void ship(netsim::ShardContext& ctx) {
    for (std::size_t owner = 0; owner < shards_; ++owner) {
      auto& bucket = out_[owner];
      if (bucket.empty()) continue;
      ECSDNS_DCHECK(std::is_sorted(bucket.begin(), bucket.end(), delta_less));
      // Copy the batch into the epoch arena and ship a span: the reusable
      // bucket keeps its capacity, so the steady-state epoch allocates
      // nothing on this path.
      Delta* batch = ctx.epoch_arena().alloc_array<Delta>(bucket.size());
      std::copy(bucket.begin(), bucket.end(), batch);
      const std::size_t count = bucket.size();
      ctx.post(owner, [target = directory_[owner], batch, count](
                          netsim::ShardContext&) {
        target->absorb(std::span<const Delta>(batch, count));
      });
      bucket.clear();
    }
  }

  std::unique_ptr<TraceStream> stream_;
  const CacheSimOptions& options_;
  std::size_t index_;
  std::size_t shards_;
  std::vector<ReplayShard*>& directory_;
  std::vector<ResolverCacheResult>& results_;
  std::uint32_t resolvers_;

  bool has_next_ = false;
  TraceQuery next_q_;
  std::uint64_t seq_ = 0;
  dnscore::FlatHashMap<CacheKey, Slot, CacheKeyHash> cache_;
  std::priority_queue<PendingExpiry, std::vector<PendingExpiry>, LaterExpiry>
      expirations_;
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  std::vector<std::int64_t> live_;
  std::vector<std::uint64_t> peak_;
  std::vector<std::vector<Delta>> out_;
  std::vector<std::span<const Delta>> pending_;
};

// ---------------------------------------------------------------------------
// Bounded replay.
//
// A capacity bound couples every key of one resolver through the eviction
// policy's victim order — but never keys of different resolvers: each
// resolver owns its cache, its live count, and its policy state. So the
// unit of partitioning is the resolver (shard_of_id), and each shard
// replays its own stream instance restricted to the resolvers it owns with
// policy instances whose decisions are pure functions of that resolver's
// query sequence. Every shard count — including 1, the serial case — runs
// this exact code, so serial equivalence holds by construction; no
// cross-shard mail, no sortedness requirement.
class BoundedShard final : public netsim::ShardProgram {
 public:
  BoundedShard(std::unique_ptr<TraceStream> stream, const CacheSimOptions& options,
               std::size_t index, std::size_t shards,
               std::vector<ResolverCacheResult>& results)
      : stream_(std::move(stream)),
        options_(options),
        index_(index),
        shards_(shards),
        results_(results),
        resolvers_(stream_->info().resolvers),
        exp_(resolvers_),
        live_(resolvers_, 0),
        local_(resolvers_) {
    for (std::uint32_t r = 0; r < resolvers_; ++r) {
      if (shard_of_id(r, shards_) == index_) {
        strategy_[r] = resolver::make_eviction_strategy(options_.policy);
      }
    }
  }

  // The whole replay runs in the first epoch: shards never exchange mail,
  // so there is nothing to synchronize at epoch boundaries.
  void epoch(netsim::ShardContext& ctx, SimTime) override {
    if (done_) return;
    done_ = true;
    auto& evictions = ctx.metrics().counter("cache_sim.capacity_evictions");
    auto& ages = ctx.metrics().histogram("cache_sim.eviction_age_s");
    TraceQuery q;
    for (std::uint64_t seq = 0; stream_->next(q); ++seq) {
      if (strategy_.find(q.resolver) == strategy_.end()) continue;
      replay_one(q, seq, evictions, ages);
    }
    std::uint64_t hit_total = 0;
    std::uint64_t miss_total = 0;
    for (const auto& local : local_) {
      hit_total += local.hits;
      miss_total += local.misses;
    }
    ctx.metrics().counter("cache_sim.queries").inc(hit_total + miss_total);
    ctx.metrics().counter("cache_sim.hits").inc(hit_total);
    ctx.metrics().counter("cache_sim.misses").inc(miss_total);
  }

  bool done(const netsim::ShardContext&) const override { return done_; }

  void finish(netsim::ShardContext&) override {
    // Serial, in shard-index order: publish owned resolvers' rows.
    for (std::uint32_t r = 0; r < resolvers_; ++r) {
      if (shard_of_id(r, shards_) != index_) continue;
      results_[r].hits = local_[r].hits;
      results_[r].misses = local_[r].misses;
      results_[r].max_cache_size = local_[r].peak;
      results_[r].premature_evictions = local_[r].premature;
    }
  }

 private:
  struct Slot {
    SimTime expiry = 0;
    SimTime inserted_at = 0;
    resolver::EntryId id = 0;
  };
  struct PendingExpiry {
    SimTime when;
    std::uint64_t seq;
    CacheKey key;
  };
  struct LaterExpiry {
    bool operator()(const PendingExpiry& a, const PendingExpiry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct LocalTally {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t premature = 0;
    std::size_t peak = 0;
  };

  void replay_one(const TraceQuery& q, std::uint64_t seq, obs::Counter& evictions,
                  obs::Histogram& ages) {
    const std::uint32_t r = q.resolver;
    resolver::EvictionStrategy& strategy = *strategy_[r];
    // Retire this resolver's entries that expired by now. Sweeping per
    // resolver (not globally) keeps retirement timing a pure function of
    // the resolver's own query sequence, independent of shard layout.
    auto& pending = exp_[r];
    while (!pending.empty() && pending.top().when <= q.time) {
      const PendingExpiry e = pending.top();
      pending.pop();
      const Slot* slot = cache_.find(e.key);
      // Skip stale records (entry refreshed or already evicted); the reads
      // happen before the erase relocates the slot.
      if (slot != nullptr && slot->expiry <= e.when) {
        strategy.on_erase(slot->id);
        key_of_id_.erase(slot->id);
        cache_.erase(e.key);
        --live_[r];
      }
    }

    const CacheKey key = cache_key_of(q, options_.with_ecs);
    auto& local = local_[r];
    const Slot* slot = cache_.find(key);
    if (slot != nullptr && slot->expiry > q.time) {
      ++local.hits;
      strategy.on_hit(slot->id);
      return;
    }
    // The sweep retires anything with expiry <= q.time before the probe,
    // so a miss never finds a stale slot to refresh.
    ECSDNS_DCHECK(slot == nullptr);
    ++local.misses;
    const std::uint32_t ttl_s = options_.ttl_override.value_or(q.ttl_s);
    // TTL-0 answers are used once and never cached (RFC 1035), mirroring
    // EcsCache::insert.
    if (ttl_s == 0) return;
    // Make room BEFORE inserting, so the bound is never exceeded — not
    // even transiently — and the incoming entry is not a victim candidate.
    while (live_[r] >= *options_.max_entries_per_resolver &&
           strategy.tracked() > 0) {
      const resolver::EntryId victim = strategy.pick_victim();
      const auto vkey_it = key_of_id_.find(victim);
      ECSDNS_DCHECK(vkey_it != key_of_id_.end());
      const CacheKey vkey = vkey_it->second;
      const Slot* vslot = cache_.find(vkey);
      ECSDNS_DCHECK(vslot != nullptr && vslot->id == victim);
      const SimTime age = q.time > vslot->inserted_at ? q.time - vslot->inserted_at : 0;
      ages.observe(static_cast<std::uint64_t>(age / netsim::kSecond));
      strategy.on_erase(victim);
      key_of_id_.erase(vkey_it);
      cache_.erase(vkey);
      --live_[r];
      ++local.premature;
      evictions.inc();
    }
    const SimTime expiry = q.time + static_cast<SimTime>(ttl_s) * netsim::kSecond;
    const resolver::EntryId id = next_id_++;
    cache_.insert_or_assign(key, Slot{expiry, q.time, id});
    strategy.on_insert(id, resolver::EntryTraits{key.block.length()});
    key_of_id_[id] = key;
    ++live_[r];
    local.peak = std::max(local.peak, live_[r]);
    pending.push(PendingExpiry{expiry, seq, key});
  }

  std::unique_ptr<TraceStream> stream_;
  const CacheSimOptions& options_;
  std::size_t index_;
  std::size_t shards_;
  std::vector<ResolverCacheResult>& results_;
  std::uint32_t resolvers_;

  bool done_ = false;
  dnscore::FlatHashMap<CacheKey, Slot, CacheKeyHash> cache_;
  std::unordered_map<std::uint32_t, std::unique_ptr<resolver::EvictionStrategy>>
      strategy_;
  std::unordered_map<resolver::EntryId, CacheKey> key_of_id_;
  resolver::EntryId next_id_ = 1;
  std::vector<std::priority_queue<PendingExpiry, std::vector<PendingExpiry>,
                                  LaterExpiry>>
      exp_;
  std::vector<std::size_t> live_;
  std::vector<LocalTally> local_;
};

// ---------------------------------------------------------------------------
// Resolver-partitioned unbounded replay.
//
// Used when the stream restricts generation to owned members
// (TraceStream::restrict_to_members): each shard then *generates* only its
// own resolvers' queries, so generation cost — the dominant term of a
// synthetic replay — splits across cores too. (The key-partitioned path
// regenerates the full stream per shard and filters, which caps its speedup
// at the replay fraction of the work.) Replay is the StreamingCacheSim fold
// verbatim, one sweep queue per shard: on a time-ordered stream, any
// schedule that retires every expiration with `when <= q.time` before
// processing q yields identical hit/miss decisions and identical live
// counts at every insert, and queries of different resolvers never share a
// cache key — so each owned resolver's row equals the serial fold's row
// exactly, for every shard count. Works for TTL-0 queries too (the fold
// handles them inline), and needs no cross-shard mail.
class ResolverShard final : public netsim::ShardProgram {
 public:
  ResolverShard(std::unique_ptr<TraceStream> stream,
                const CacheSimOptions& options, std::size_t index,
                std::size_t shards, std::vector<ResolverCacheResult>& results)
      : stream_(std::move(stream)),
        options_(options),
        index_(index),
        shards_(shards),
        results_(results),
        resolvers_(stream_->info().resolvers),
        hits_(resolvers_, 0),
        misses_(resolvers_, 0),
        live_(resolvers_, 0),
        peak_(resolvers_, 0) {}

  // The whole replay runs in the first epoch — no mail, nothing to
  // synchronize at epoch boundaries (same shape as BoundedShard).
  void epoch(netsim::ShardContext& ctx, SimTime) override {
    if (done_) return;
    done_ = true;
    TraceQuery q;
    while (stream_->next(q)) observe(q);
    std::uint64_t hit_total = 0;
    std::uint64_t miss_total = 0;
    for (std::uint32_t r = 0; r < resolvers_; ++r) {
      hit_total += hits_[r];
      miss_total += misses_[r];
    }
    ctx.metrics().counter("cache_sim.queries").inc(hit_total + miss_total);
    ctx.metrics().counter("cache_sim.hits").inc(hit_total);
    ctx.metrics().counter("cache_sim.misses").inc(miss_total);
  }

  bool done(const netsim::ShardContext&) const override { return done_; }

  void finish(netsim::ShardContext&) override {
    // Serial, in shard-index order: publish owned resolvers' rows.
    for (std::uint32_t r = 0; r < resolvers_; ++r) {
      if (shard_of_id(r, shards_) != index_) continue;
      results_[r].hits = hits_[r];
      results_[r].misses = misses_[r];
      results_[r].max_cache_size = peak_[r];
    }
  }

 private:
  struct Slot {
    SimTime expiry = 0;
  };
  struct Expiry {
    SimTime when;
    CacheKey key;
  };
  struct LaterExpiry {
    bool operator()(const Expiry& a, const Expiry& b) const {
      return a.when > b.when;
    }
  };

  // StreamingCacheSim::observe, on this shard's slice of the stream.
  void observe(const TraceQuery& q) {
    ECSDNS_DCHECK(shard_of_id(q.resolver, shards_) == index_);
    while (!expirations_.empty() && expirations_.top().when <= q.time) {
      const Expiry e = expirations_.top();
      expirations_.pop();
      const Slot* slot = cache_.find(e.key);
      if (slot != nullptr && slot->expiry <= e.when) {
        --live_[e.key.resolver];
        cache_.erase(e.key);
      }
    }
    const CacheKey key = cache_key_of(q, options_.with_ecs);
    const Slot* found = cache_.find(key);
    if (found != nullptr && found->expiry > q.time) {
      ++hits_[q.resolver];
      return;
    }
    ++misses_[q.resolver];
    const std::uint32_t ttl_s = options_.ttl_override.value_or(q.ttl_s);
    const SimTime expiry =
        q.time + static_cast<SimTime>(ttl_s) * netsim::kSecond;
    const auto [new_slot, inserted] = cache_.insert_or_assign(key, Slot{expiry});
    (void)new_slot;
    if (inserted) ++live_[q.resolver];
    peak_[q.resolver] = std::max(peak_[q.resolver], live_[q.resolver]);
    expirations_.push(Expiry{expiry, key});
  }

  std::unique_ptr<TraceStream> stream_;
  const CacheSimOptions& options_;
  std::size_t index_;
  std::size_t shards_;
  std::vector<ResolverCacheResult>& results_;
  std::uint32_t resolvers_;

  bool done_ = false;
  dnscore::FlatHashMap<CacheKey, Slot, CacheKeyHash> cache_;
  std::priority_queue<Expiry, std::vector<Expiry>, LaterExpiry> expirations_;
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  std::vector<std::size_t> live_;
  std::vector<std::size_t> peak_;
};

// Builds the per-shard stream instances: the dispatch probe (an untouched
// stream) becomes shard 0; the rest replay fresh from the factory.
std::vector<std::unique_ptr<TraceStream>> shard_streams(
    const TraceStreamFactory& factory, std::unique_ptr<TraceStream> probe,
    std::size_t shards) {
  std::vector<std::unique_ptr<TraceStream>> streams;
  streams.reserve(shards);
  streams.push_back(std::move(probe));
  for (std::size_t s = 1; s < shards; ++s) streams.push_back(factory());
  return streams;
}

netsim::ParallelConfig engine_config(const CacheSimOptions& options,
                                     std::size_t shards) {
  netsim::ParallelConfig config;
  config.shards = shards;
  config.threads = options.threads;
  config.pin_threads = options.pin_threads;
  config.runtime_metrics = options.runtime_metrics;
  return config;
}

CacheSimResult simulate_bounded(const TraceStreamFactory& factory,
                                std::unique_ptr<TraceStream> probe,
                                const CacheSimOptions& options) {
  const std::size_t shards = std::max<std::size_t>(1, options.shards);
  const std::uint32_t resolvers = probe->info().resolvers;
  std::vector<ResolverCacheResult> results(resolvers);
  for (std::uint32_t r = 0; r < resolvers; ++r) results[r].resolver = r;

  auto streams = shard_streams(factory, std::move(probe), shards);
  // Best-effort: a stream that can restrict skips generating foreign
  // resolvers' queries entirely; the ownership filter below still guards
  // streams that cannot. Restriction renumbers the per-stream seq, but seq
  // only tie-breaks expirations within one resolver's queue, and an owned
  // resolver's queries keep their relative order — results are unchanged
  // (the bounded cross-validation suite and the committed capacity-sweep
  // CSV both pin this).
  if (shards > 1) {
    for (std::size_t s = 0; s < shards; ++s) {
      streams[s]->restrict_to_members(s, shards);
    }
  }
  std::vector<std::unique_ptr<netsim::ShardProgram>> programs;
  programs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    programs.push_back(std::make_unique<BoundedShard>(std::move(streams[s]),
                                                      options, s, shards,
                                                      results));
  }

  // Epoch length is irrelevant — the shards exchange no messages and each
  // replays fully inside its first epoch.
  netsim::ParallelEngine engine(engine_config(options, shards),
                                std::move(programs));
  engine.run();
  engine.merge_metrics(obs::MetricsRegistry::global());

  CacheSimResult out;
  out.per_resolver = std::move(results);
  return out;
}

CacheSimResult simulate_by_resolver(const TraceStreamFactory& factory,
                                    std::unique_ptr<TraceStream> probe,
                                    const CacheSimOptions& options) {
  const std::size_t shards = options.shards;
  const std::uint32_t resolvers = probe->info().resolvers;
  std::vector<ResolverCacheResult> results(resolvers);
  for (std::uint32_t r = 0; r < resolvers; ++r) results[r].resolver = r;

  // The dispatch already restricted the probe to shard 0's members; every
  // other instance replays the same logical stream, so it must restrict
  // the same way.
  auto streams = shard_streams(factory, std::move(probe), shards);
  for (std::size_t s = 1; s < shards; ++s) {
    const bool restricted = streams[s]->restrict_to_members(s, shards);
    ECSDNS_CHECK(restricted);
  }
  std::vector<std::unique_ptr<netsim::ShardProgram>> programs;
  programs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    programs.push_back(std::make_unique<ResolverShard>(std::move(streams[s]),
                                                       options, s, shards,
                                                       results));
  }

  netsim::ParallelEngine engine(engine_config(options, shards),
                                std::move(programs));
  engine.run();
  engine.merge_metrics(obs::MetricsRegistry::global());

  CacheSimResult out;
  out.per_resolver = std::move(results);
  return out;
}

CacheSimResult simulate_sharded(const TraceStreamFactory& factory,
                                std::unique_ptr<TraceStream> probe,
                                const CacheSimOptions& options) {
  const std::size_t shards = options.shards;
  const TraceStreamInfo info = probe->info();
  std::vector<ResolverCacheResult> results(info.resolvers);
  for (std::uint32_t r = 0; r < info.resolvers; ++r) results[r].resolver = r;

  auto streams = shard_streams(factory, std::move(probe), shards);
  std::vector<ReplayShard*> directory(shards, nullptr);
  std::vector<std::unique_ptr<netsim::ShardProgram>> programs;
  programs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto program = std::make_unique<ReplayShard>(std::move(streams[s]), options,
                                                 s, shards, directory, results);
    directory[s] = program.get();
    programs.push_back(std::move(program));
  }

  netsim::ParallelConfig config = engine_config(options, shards);
  // Delta mail is accounting, not simulation traffic, so the window length
  // is free — it only has to be a pure function of the stream's config so
  // every shard count sees the same windows.
  config.epoch = std::max<SimTime>(netsim::kSecond, info.time_bound / 128);
  netsim::ParallelEngine engine(config, std::move(programs));
  engine.run();
  engine.merge_metrics(obs::MetricsRegistry::global());

  CacheSimResult out;
  out.per_resolver = std::move(results);
  return out;
}

}  // namespace

CacheSimResult simulate_cache_stream(const TraceStreamFactory& factory,
                                     const CacheSimOptions& options) {
  auto probe = factory();
  const TraceStreamInfo info = probe->info();
  // Sharded-path preconditions; anything else replays serially. Bounded
  // caches always partition by resolver. Unbounded sharded replays prefer
  // the resolver-partitioned path when the stream can restrict generation
  // to owned members (the only mode that also splits generation cost
  // across cores); it needs a time-ordered stream so the per-shard sweep
  // retires exactly what the serial sweep would have before each query.
  // The key-partitioned fallback additionally needs positive effective
  // TTLs — a zero TTL makes an entry expire at its own insert time, which
  // its expire-before-insert merge order cannot represent.
  const bool positive_ttls =
      options.ttl_override ? *options.ttl_override > 0 : info.positive_ttls;
  CacheSimResult out;
  if (options.max_entries_per_resolver) {
    out = simulate_bounded(factory, std::move(probe), options);
  } else if (options.shards > 1 && info.time_ordered &&
             info.resolvers >= options.shards &&
             probe->restrict_to_members(0, options.shards)) {
    out = simulate_by_resolver(factory, std::move(probe), options);
  } else if (options.shards > 1 && info.time_ordered && positive_ttls) {
    out = simulate_sharded(factory, std::move(probe), options);
  } else {
    StreamingCacheSim sim(info.resolvers, options);
    TraceQuery q;
    while (probe->next(q)) sim.observe(q);
    out = sim.finish();
    // Mirror the merged metrics of the sharded path so exports are
    // byte-identical across shard counts.
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("cache_sim.queries").inc(out.total_hits() + out.total_misses());
    registry.counter("cache_sim.hits").inc(out.total_hits());
    registry.counter("cache_sim.misses").inc(out.total_misses());
  }
  std::uint64_t peak = 0;
  for (const auto& r : out.per_resolver) {
    peak = std::max<std::uint64_t>(peak, r.max_cache_size);
  }
  obs::MetricsRegistry::global().gauge("cache_sim.peak_entries").set(
      static_cast<std::int64_t>(peak));
  return out;
}

CacheSimResult simulate_cache(const Trace& trace, const CacheSimOptions& options) {
  // One info scan up front, shared by every per-shard stream instance.
  const TraceStreamInfo info = scan_trace_info(trace);
  return simulate_cache_stream(
      [&trace, &info]() -> std::unique_ptr<TraceStream> {
        return std::make_unique<MaterializedTraceStream>(trace, info);
      },
      options);
}

std::uint64_t sampled_result_digest(const CacheSimResult& result,
                                    std::size_t sample_rows,
                                    std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 14695981039346656037ull;
  const auto fold = [&h](std::uint64_t v) { h = (h ^ v) * kPrime; };
  const std::size_t n = result.per_resolver.size();
  fold(n);
  fold(result.total_hits());
  fold(result.total_misses());
  if (n == 0) return h;
  for (std::size_t k = 0; k < sample_rows; ++k) {
    const auto& row = result.per_resolver[mix64(seed + k) % n];
    fold(row.resolver);
    fold(row.hits);
    fold(row.misses);
    fold(row.max_cache_size);
    fold(row.premature_evictions);
  }
  return h;
}

std::vector<double> blowup_factors(const Trace& trace,
                                   std::optional<std::uint32_t> ttl_override,
                                   std::size_t shards, std::size_t threads,
                                   bool pin_threads) {
  CacheSimOptions with;
  with.with_ecs = true;
  with.ttl_override = ttl_override;
  with.shards = shards;
  with.threads = threads;
  with.pin_threads = pin_threads;
  CacheSimOptions without;
  without.with_ecs = false;
  without.ttl_override = ttl_override;
  without.shards = shards;
  without.threads = threads;
  without.pin_threads = pin_threads;

  const CacheSimResult ecs = simulate_cache(trace, with);
  const CacheSimResult plain = simulate_cache(trace, without);

  std::vector<double> out;
  out.reserve(ecs.per_resolver.size());
  for (std::size_t i = 0; i < ecs.per_resolver.size(); ++i) {
    const auto base = plain.per_resolver[i].max_cache_size;
    if (base == 0) continue;
    out.push_back(static_cast<double>(ecs.per_resolver[i].max_cache_size) /
                  static_cast<double>(base));
  }
  return out;
}

}  // namespace ecsdns::measurement
