// Hidden-resolver analysis (§8.2, Figures 4 and 5).
//
// Hidden resolvers are discovered exactly as in the paper: ECS prefixes in
// scan observations that cover neither the probed ingress nor the egress
// that contacted the authoritative. Each unique (forwarder, hidden, egress)
// combination is then geolocated and the forwarder->hidden distance is
// compared against the forwarder->egress distance: combinations below the
// diagonal are cases where ECS *worsens* the CDN's understanding of client
// location.
#pragma once

#include <vector>

#include "measurement/scanner.h"
#include "measurement/stats.h"
#include "netsim/geodb.h"

namespace ecsdns::measurement {

struct HiddenCombination {
  IpAddress forwarder;
  dnscore::Prefix hidden;
  IpAddress egress;
  double forwarder_hidden_km = 0.0;   // F-H
  double forwarder_egress_km = 0.0;   // F-R
};

// Extracts unique combinations from scan observations, geolocating all
// three parties through `geo` (combinations with unlocatable members are
// skipped).
std::vector<HiddenCombination> find_hidden_combinations(
    const ScanResults& results, const netsim::IpGeoDb& geo);

struct HiddenAnalysis {
  std::size_t combinations = 0;
  double below_diagonal_fraction = 0.0;  // hidden farther than egress
  double on_diagonal_fraction = 0.0;
  double above_diagonal_fraction = 0.0;
  double max_penalty_km = 0.0;  // largest (F-H minus F-R) seen
  BinnedScatter scatter;

  explicit HiddenAnalysis(double extent_km = 16000.0, std::size_t bins = 36)
      : scatter(extent_km, extent_km, bins) {}
};

// `equidistant_km` is the tolerance for the "on diagonal" class.
HiddenAnalysis analyze_hidden(const std::vector<HiddenCombination>& combos,
                              double equidistant_km = 100.0);

// The paper's §8.2 validation: a hidden prefix is "real" when it also
// appears as an ECS source prefix in a second, independent dataset (the
// Public Resolver/CDN log). Returns the validated fraction.
double cross_validate_hidden(const std::vector<dnscore::Prefix>& hidden_prefixes,
                             const std::vector<authoritative::QueryLogEntry>& cdn_log);

}  // namespace ecsdns::measurement
