#include "measurement/scanner.h"

#include <algorithm>
#include <set>

namespace ecsdns::measurement {
namespace {

// The scan associates resolvers at /24 granularity, as the paper does.
dnscore::Prefix slash24(const IpAddress& addr) { return dnscore::Prefix{addr, 24}; }

}  // namespace

Name encode_probe_name(const IpAddress& probed, const Name& zone) {
  const auto& b = probed.bytes();
  const std::string label = "ip-" + std::to_string(b[0]) + "-" + std::to_string(b[1]) +
                            "-" + std::to_string(b[2]) + "-" + std::to_string(b[3]);
  return zone.prepend(label);
}

std::optional<IpAddress> decode_probe_name(const Name& qname, const Name& zone) {
  if (!qname.is_subdomain_of(zone) ||
      qname.label_count() != zone.label_count() + 1) {
    return std::nullopt;
  }
  const std::string_view label = qname.label(0);
  if (label.rfind("ip-", 0) != 0) return std::nullopt;
  std::array<int, 4> octets{};
  std::size_t pos = 3;
  for (int i = 0; i < 4; ++i) {
    if (pos >= label.size()) return std::nullopt;
    int value = 0;
    std::size_t digits = 0;
    while (pos < label.size() && label[pos] >= '0' && label[pos] <= '9') {
      value = value * 10 + (label[pos] - '0');
      ++pos;
      if (++digits > 3 || value > 255) return std::nullopt;
    }
    if (digits == 0) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = value;
    if (i < 3) {
      if (pos >= label.size() || label[pos] != '-') return std::nullopt;
      ++pos;
    }
  }
  if (pos != label.size()) return std::nullopt;
  return IpAddress::v4(static_cast<std::uint8_t>(octets[0]),
                       static_cast<std::uint8_t>(octets[1]),
                       static_cast<std::uint8_t>(octets[2]),
                       static_cast<std::uint8_t>(octets[3]));
}

Scanner::Scanner(Testbed& bed, ScannerOptions options)
    : bed_(bed), options_(std::move(options)) {
  // The experimental authoritative answers ECS queries with
  // scope = source - 4 and stays silent about ECS otherwise (§4).
  auth_ = &bed_.add_auth("scan-auth", options_.zone, options_.scanner_city,
                         std::make_unique<authoritative::ScopeDeltaPolicy>(4));
  // Every probe name must resolve; a wildcard-ish static answer suffices.
  // The zone synthesizes per-name records lazily instead: we add an A
  // record per probed name in scan().
  if (options_.transport != nullptr) {
    live_client_.emplace(*options_.transport);
    client_ = &*live_client_;
  } else {
    client_ = &bed_.add_client(options_.scanner_city);
  }
}

ScanResults Scanner::scan(const std::vector<IpAddress>& targets) {
  ScanResults results;
  auth_->clear_log();
  send_probes(targets, results);
  harvest(results);
  return results;
}

void Scanner::send_probes(const std::vector<IpAddress>& targets,
                          ScanResults& results) {
  auto* zone = auth_->find_zone(options_.zone);
  for (const auto& target : targets) {
    const Name qname = encode_probe_name(target, options_.zone);
    if (!zone->contains(qname)) {
      zone->add(dnscore::ResourceRecord::make_a(qname, 60,
                                                IpAddress::v4(192, 0, 2, 1)));
    }
    ++results.probes_sent;
    // Only the response RCODE matters here (the real data is the auth log),
    // so the zero-copy probe avoids materializing every response.
    const auto rcode = client_->probe(target, qname, dnscore::RRType::A);
    if (rcode && *rcode == dnscore::RCode::NOERROR) {
      ++results.responses_received;
    }
  }
}

void Scanner::harvest(ScanResults& results) const {
  // The authoritative log is the scan's ground truth.
  for (const auto& entry : auth_->log()) {
    const auto ingress = decode_probe_name(entry.qname, options_.zone);
    if (!ingress) continue;
    results.observations.push_back(ScanObservation{*ingress, entry.sender,
                                                   entry.query_ecs});
  }
}

std::size_t ScanResults::open_ingress_count() const {
  std::unordered_set<IpAddress, dnscore::IpAddressHash> set;
  for (const auto& o : observations) set.insert(o.ingress);
  return set.size();
}

std::size_t ScanResults::ecs_ingress_count() const {
  std::unordered_set<IpAddress, dnscore::IpAddressHash> set;
  for (const auto& o : observations) {
    if (o.ecs) set.insert(o.ingress);
  }
  return set.size();
}

std::vector<IpAddress> ScanResults::ecs_egress_addresses() const {
  std::unordered_set<IpAddress, dnscore::IpAddressHash> set;
  for (const auto& o : observations) {
    if (o.ecs) set.insert(o.egress);
  }
  return {set.begin(), set.end()};
}

std::map<std::string, std::vector<IpAddress>>
ScanResults::source_length_census() const {
  // Group observed (length, jammed?) combinations per egress.
  std::unordered_map<IpAddress, std::set<std::string>, dnscore::IpAddressHash>
      per_egress;
  for (const auto& o : observations) {
    if (!o.ecs) continue;
    const int len = o.ecs->source_prefix_length();
    bool jammed = false;
    if (len == 32 && o.ecs->address_bytes().size() == 4) {
      const auto last = o.ecs->address_bytes()[3];
      jammed = last == 0x00 || last == 0x01;
    }
    per_egress[o.egress].insert(std::to_string(len) +
                                (jammed ? "/jammed last byte" : ""));
  }
  // Key-sorted map + address-sorted members: callers render the census
  // straight into tables, so the iteration order is part of the contract.
  std::map<std::string, std::vector<IpAddress>> census;
  for (const auto& [egress, combos] : per_egress) {
    std::string key;
    for (const auto& c : combos) {
      if (!key.empty()) key += ",";
      key += c;
    }
    census[key].push_back(egress);
  }
  for (auto& [key, members] : census) std::sort(members.begin(), members.end());
  return census;
}

std::vector<dnscore::Prefix> ScanResults::hidden_prefixes() const {
  std::set<dnscore::Prefix> out;
  for (const auto& o : observations) {
    if (!o.ecs) continue;
    const auto src = o.ecs->source_prefix();
    if (!src) continue;
    if (src->is_unroutable()) continue;
    // A hidden resolver announces a prefix covering neither the ingress we
    // probed nor the egress that contacted us (compared at /24).
    const auto block = src->length() >= 24 ? src->truncated(24) : *src;
    if (block.contains(slash24(o.ingress).address()) ||
        block.contains(slash24(o.egress).address())) {
      continue;
    }
    if (slash24(o.ingress) == block || slash24(o.egress) == block) continue;
    out.insert(block);
  }
  return {out.begin(), out.end()};
}

}  // namespace ecsdns::measurement
