// The experiment testbed: one object wiring together a world map, a
// simulated network, a complete DNS hierarchy (root -> TLD -> leaf zones),
// geolocation, and factories for every kind of node the paper's
// measurements involve. Bench binaries, examples, and integration tests all
// assemble their topologies through this fixture.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "authoritative/flattening.h"
#include "authoritative/server.h"
#include "cdn/edge.h"
#include "cdn/mapping.h"
#include "measurement/tracegen.h"
#include "netsim/asndb.h"
#include "netsim/geodb.h"
#include "netsim/network.h"
#include "netsim/world.h"
#include "resolver/client.h"
#include "resolver/forwarder.h"
#include "resolver/recursive.h"

namespace ecsdns::measurement {

using authoritative::AuthConfig;
using authoritative::AuthServer;
using authoritative::EcsPolicy;
using dnscore::IpAddress;
using dnscore::Name;
using resolver::Forwarder;
using resolver::ForwarderConfig;
using resolver::RecursiveResolver;
using resolver::ResolverConfig;
using resolver::StubClient;

// Address pools keep node classes visually distinct in logs and make
// "which /24 is this" questions trivial in tests.
enum class AddressPool {
  kClients,     // 100.64.0.0/10-ish
  kForwarders,  // 60.0.0.0/8
  kHidden,      // 70.0.0.0/8
  kResolvers,   // 80.0.0.0/8
  kAuth,        // 90.0.0.0/8
  kEdges,       // 95.0.0.0/8
  kProbes,      // 110.0.0.0/8
};

class Testbed {
 public:
  Testbed();

  netsim::Network& network() noexcept { return network_; }
  const netsim::World& world() const noexcept { return world_; }
  netsim::IpGeoDb& geodb() noexcept { return geodb_; }
  netsim::AsnDb& asndb() noexcept { return asndb_; }

  // Registers AS attribution ground truth for the exact address.
  void attribute(const IpAddress& addr, const netsim::AsInfo& info);

  // Sequential allocation from a pool; every address is unique.
  IpAddress alloc(AddressPool pool);

  // Registers location ground truth for the address's /24 (and the exact
  // address) in the geolocation database.
  void geolocate(const IpAddress& addr, const netsim::GeoPoint& where);

  // --- DNS hierarchy ---
  // The root and TLD servers are created lazily; roots() feeds resolvers.
  std::vector<IpAddress> root_hints();
  // The root server itself (created on first use) — its query log is the
  // stand-in for the paper's DITL A-root data.
  AuthServer& root_server();
  // Creates an authoritative server for `apex` in `city`, registers the
  // delegation chain (root -> TLD -> apex) with glue, and attaches it.
  AuthServer& add_auth(const std::string& label, const Name& apex,
                       const std::string& city, std::unique_ptr<EcsPolicy> policy,
                       AuthConfig config = {});
  IpAddress auth_address(const AuthServer& server) const;

  // --- resolver-side nodes ---
  RecursiveResolver& add_resolver(ResolverConfig config, const std::string& city);
  Forwarder& add_forwarder(const std::string& city, const IpAddress& upstream,
                           ForwarderConfig config = {});
  // Forwarder at an explicit address — fleet builders control /16 and /24
  // placement (the §6.3 probing technique depends on it).
  Forwarder& add_forwarder_at(const IpAddress& addr, const std::string& city,
                              const IpAddress& upstream, ForwarderConfig config = {});
  StubClient& add_client(const std::string& city);

  // --- CDN assembly ---
  // Builds a fleet with one edge per world city, attached to the network so
  // pings and TCP handshakes against edges work.
  cdn::EdgeFleet& add_global_fleet();
  // A fleet restricted to the given cities (e.g. a CDN with no edge in the
  // lab's own city, as in the paper's Table 2 setting).
  cdn::EdgeFleet& add_fleet_in_cities(const std::vector<std::string>& cities);
  // Registers a mapping policy the testbed keeps alive.
  cdn::ProximityMapping& add_mapping(cdn::ProximityMappingConfig config,
                                     const cdn::EdgeFleet& fleet);

  authoritative::FlatteningAuthServer& add_flattening_auth(
      authoritative::FlatteningConfig config, const Name& apex,
      const std::string& city, AuthConfig base_config = {});

  const std::vector<std::unique_ptr<RecursiveResolver>>& resolvers() const {
    return resolvers_;
  }
  const std::vector<std::unique_ptr<AuthServer>>& auth_servers() const {
    return auths_;
  }

 private:
  AuthServer& tld_server(const std::string& tld_label);

  netsim::World world_;
  netsim::Network network_;
  netsim::IpGeoDb geodb_;
  netsim::AsnDb asndb_;

  std::uint32_t next_in_pool_[7] = {};

  std::unique_ptr<AuthServer> root_;
  IpAddress root_addr_;
  struct TldEntry {
    std::string label;
    AuthServer* server;
    IpAddress addr;
  };
  std::vector<TldEntry> tlds_;

  std::vector<std::unique_ptr<AuthServer>> auths_;
  std::vector<IpAddress> auth_addrs_;
  std::vector<std::unique_ptr<RecursiveResolver>> resolvers_;
  std::vector<std::unique_ptr<Forwarder>> forwarders_;
  std::vector<std::unique_ptr<StubClient>> clients_;
  std::vector<std::unique_ptr<cdn::EdgeFleet>> fleets_;
  std::vector<std::unique_ptr<cdn::ProximityMapping>> mappings_;
  std::vector<std::unique_ptr<authoritative::FlatteningAuthServer>> flatteners_;
};

}  // namespace ecsdns::measurement
