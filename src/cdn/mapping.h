// CDN user-to-edge-server mapping policies.
//
// A mapping policy answers: given what the authoritative DNS can see (the
// query's ECS option if any, and the resolver's source address), which edge
// addresses go into the answer, and what ECS scope comes back?
//
// The three concrete policies model the CDNs the paper measures:
//   * ProximityMapping with min_ecs_bits=24 and a default-set fallback is
//     "CDN-1" (Figure 6: a cliff when the source prefix drops below /24);
//   * ProximityMapping with min_ecs_bits=21 and resolver-proxy fallback is
//     "CDN-2" (Figure 7: the cliff sits at /21 instead);
//   * unroutable-prefix hashing reproduces the Google behavior of Table 2
//     (loopback ECS prefixes mapped across the globe).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cdn/edge.h"
#include "dnscore/ip.h"
#include "netsim/geodb.h"

namespace ecsdns::cdn {

using dnscore::Prefix;

struct MappingRequest {
  // Validated client subnet from the query's ECS option, if present.
  std::optional<Prefix> ecs;
  // The immediate sender of the query (the recursive resolver).
  IpAddress resolver;
};

struct MappingResult {
  std::vector<IpAddress> addresses;  // answer A records, best first
  int scope = 0;                     // ECS scope to return (0 = any client)
  bool used_ecs = false;             // whether ECS influenced the choice
};

class MappingPolicy {
 public:
  virtual ~MappingPolicy() = default;
  virtual MappingResult map(const MappingRequest& request) const = 0;
};

// What to do with an ECS prefix no geolocation exists for — loopback,
// private, link-local, or simply unknown space.
enum class UnroutableHandling {
  // RFC 7871's SHOULD: fall back to the resolver address.
  kTreatAsResolver,
  // The confusion observed in Table 2: deterministically map the prefix
  // bytes onto *some* edge, proximity be damned.
  kHashedConfusion,
};

// What to do when ECS is absent or carries too few bits to be used.
enum class Fallback {
  // Map by the resolver's own location (classic pre-ECS behavior).
  kResolverProxy,
  // Return a small fixed set of "default" edges irrespective of location —
  // the CDN-1 behavior the paper infers from the 5-14 distinct answers.
  kDefaultSet,
};

struct ProximityMappingConfig {
  std::string label = "cdn";
  // ECS is honored only when the source prefix carries at least this many
  // bits; otherwise the fallback engages. (CDN-1: 24, CDN-2: 21.)
  int min_ecs_bits = 24;
  // Mapping granularity: the ECS prefix is truncated to this many bits
  // before geolocation, and this is the scope returned for ECS answers.
  int effective_bits = 24;
  // Number of edge addresses in a tailored answer.
  std::size_t answer_count = 4;
  std::size_t default_set_size = 8;
  UnroutableHandling unroutable = UnroutableHandling::kTreatAsResolver;
  Fallback fallback = Fallback::kResolverProxy;
};

class ProximityMapping : public MappingPolicy {
 public:
  // `geo` resolves prefixes and resolver addresses to coordinates; the
  // policy keeps references — the caller owns both and keeps them alive.
  ProximityMapping(ProximityMappingConfig config, const EdgeFleet& fleet,
                   const netsim::IpGeoDb& geo);

  MappingResult map(const MappingRequest& request) const override;

  const ProximityMappingConfig& config() const noexcept { return config_; }

  // Canned configurations for the paper's two measured CDNs plus the
  // Table 2 subject.
  static ProximityMappingConfig cdn1_config();
  static ProximityMappingConfig cdn2_config();
  static ProximityMappingConfig google_like_config();

 private:
  MappingResult map_by_location(const netsim::GeoPoint& where, int scope,
                                bool used_ecs) const;
  MappingResult fallback_result(const MappingRequest& request) const;

  ProximityMappingConfig config_;
  const EdgeFleet& fleet_;
  const netsim::IpGeoDb& geo_;
};

}  // namespace ecsdns::cdn
