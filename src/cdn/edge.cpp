#include "cdn/edge.h"

#include <algorithm>
#include <stdexcept>

namespace ecsdns::cdn {

void EdgeFleet::add(EdgeServer server) { servers_.push_back(std::move(server)); }

const EdgeServer& EdgeFleet::nearest(const GeoPoint& p) const {
  if (servers_.empty()) throw std::logic_error("nearest() on empty fleet");
  const EdgeServer* best = &servers_.front();
  double best_km = netsim::distance_km(best->location, p);
  for (const auto& s : servers_) {
    const double d = netsim::distance_km(s.location, p);
    if (d < best_km) {
      best_km = d;
      best = &s;
    }
  }
  return *best;
}

std::vector<const EdgeServer*> EdgeFleet::nearest_n(const GeoPoint& p,
                                                    std::size_t n) const {
  std::vector<const EdgeServer*> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(&s);
  std::sort(out.begin(), out.end(), [&p](const EdgeServer* a, const EdgeServer* b) {
    return netsim::distance_km(a->location, p) < netsim::distance_km(b->location, p);
  });
  if (out.size() > n) out.resize(n);
  return out;
}

const EdgeServer& EdgeFleet::hashed_pick(std::size_t key) const {
  if (servers_.empty()) throw std::logic_error("hashed_pick() on empty fleet");
  // Mix the key so adjacent prefixes land far apart.
  std::size_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return servers_[h % servers_.size()];
}

EdgeFleet EdgeFleet::global(const netsim::World& world, const IpAddress& base) {
  std::vector<std::string> names;
  names.reserve(world.cities().size());
  for (const auto& c : world.cities()) names.push_back(c.name);
  return in_cities(world, base, names);
}

EdgeFleet EdgeFleet::in_cities(const netsim::World& world, const IpAddress& base,
                               const std::vector<std::string>& cities) {
  if (!base.is_v4()) throw std::invalid_argument("edge fleet base must be IPv4");
  EdgeFleet fleet;
  std::uint32_t next = base.v4_bits();
  for (const auto& name : cities) {
    const auto& city = world.city(name);
    fleet.add(EdgeServer{IpAddress::v4(next++), city.location, city.name});
  }
  return fleet;
}

}  // namespace ecsdns::cdn
