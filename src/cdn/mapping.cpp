#include "cdn/mapping.h"

namespace ecsdns::cdn {

ProximityMapping::ProximityMapping(ProximityMappingConfig config,
                                   const EdgeFleet& fleet,
                                   const netsim::IpGeoDb& geo)
    : config_(std::move(config)), fleet_(fleet), geo_(geo) {}

MappingResult ProximityMapping::map(const MappingRequest& request) const {
  if (!request.ecs || request.ecs->length() < config_.min_ecs_bits) {
    return fallback_result(request);
  }
  const Prefix effective = request.ecs->length() > config_.effective_bits
                               ? request.ecs->truncated(config_.effective_bits)
                               : *request.ecs;
  if (effective.is_unroutable()) {
    switch (config_.unroutable) {
      case UnroutableHandling::kTreatAsResolver:
        return fallback_result(request);
      case UnroutableHandling::kHashedConfusion: {
        // Proximity plays no part: each distinct unroutable prefix lands on
        // its own arbitrary corner of the fleet (and a disjoint answer set),
        // which is exactly what Table 2 observes. Hash the prefix as sent
        // (not the truncated form) so 127.0.0.1/32 and 127.0.0.0/24 divert
        // to different answer sets, as the paper measured.
        MappingResult out;
        const std::size_t key = request.ecs->hash();
        for (std::size_t i = 0; i < config_.answer_count; ++i) {
          out.addresses.push_back(fleet_.hashed_pick(key + i * 0x9e3779b9).address);
        }
        out.scope = config_.effective_bits;
        out.used_ecs = true;
        return out;
      }
    }
  }
  const auto where = geo_.locate(effective);
  if (!where) {
    // Routable space we have no data for: same dilemma as unroutable.
    if (config_.unroutable == UnroutableHandling::kHashedConfusion) {
      MappingResult out;
      const std::size_t key = effective.hash();
      for (std::size_t i = 0; i < config_.answer_count; ++i) {
        out.addresses.push_back(fleet_.hashed_pick(key + i * 0x9e3779b9).address);
      }
      out.scope = config_.effective_bits;
      out.used_ecs = true;
      return out;
    }
    return fallback_result(request);
  }
  return map_by_location(*where, config_.effective_bits, /*used_ecs=*/true);
}

MappingResult ProximityMapping::map_by_location(const netsim::GeoPoint& where,
                                                int scope, bool used_ecs) const {
  MappingResult out;
  for (const EdgeServer* edge : fleet_.nearest_n(where, config_.answer_count)) {
    out.addresses.push_back(edge->address);
  }
  out.scope = scope;
  out.used_ecs = used_ecs;
  return out;
}

MappingResult ProximityMapping::fallback_result(const MappingRequest& request) const {
  switch (config_.fallback) {
    case Fallback::kResolverProxy: {
      const auto where = geo_.locate(request.resolver);
      if (where) {
        // Scope 0: the answer was chosen without client data, so any client
        // may reuse it.
        return map_by_location(*where, 0, /*used_ecs=*/false);
      }
      break;
    }
    case Fallback::kDefaultSet:
      break;
  }
  // Default set: a fixed pool of default_set_size edges handed out
  // regardless of location. The answer rotates through the pool (as load
  // balancers do), so observers see default_set_size distinct "first"
  // addresses — the 5-14 the paper counts for CDN-1's short prefixes.
  MappingResult out;
  const std::size_t n = std::min(config_.default_set_size, fleet_.size());
  if (n == 0) return out;
  const std::size_t rotate =
      request.ecs ? request.ecs->hash() : request.resolver.hash();
  for (std::size_t i = 0; i < n; ++i) {
    out.addresses.push_back(fleet_.servers()[(rotate + i) % n].address);
  }
  if (out.addresses.size() > config_.answer_count) {
    out.addresses.resize(config_.answer_count);
  }
  out.scope = 0;
  out.used_ecs = false;
  return out;
}

ProximityMappingConfig ProximityMapping::cdn1_config() {
  ProximityMappingConfig c;
  c.label = "CDN-1";
  c.min_ecs_bits = 24;
  c.effective_bits = 24;
  c.fallback = Fallback::kDefaultSet;
  c.unroutable = UnroutableHandling::kTreatAsResolver;
  return c;
}

ProximityMappingConfig ProximityMapping::cdn2_config() {
  ProximityMappingConfig c;
  c.label = "CDN-2";
  c.min_ecs_bits = 21;
  c.effective_bits = 21;
  c.fallback = Fallback::kResolverProxy;
  c.unroutable = UnroutableHandling::kTreatAsResolver;
  return c;
}

ProximityMappingConfig ProximityMapping::google_like_config() {
  ProximityMappingConfig c;
  c.label = "google-like";
  c.min_ecs_bits = 8;
  c.effective_bits = 24;
  c.unroutable = UnroutableHandling::kHashedConfusion;
  c.fallback = Fallback::kResolverProxy;
  c.answer_count = 16;  // Table 2 reports a 16-address answer set
  return c;
}

}  // namespace ecsdns::cdn
