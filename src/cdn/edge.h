// CDN edge fleets: the servers a mapping policy chooses among.
#pragma once

#include <string>
#include <vector>

#include "dnscore/ip.h"
#include "netsim/geo.h"
#include "netsim/world.h"

namespace ecsdns::cdn {

using dnscore::IpAddress;
using netsim::GeoPoint;

struct EdgeServer {
  IpAddress address;
  GeoPoint location;
  std::string city;
};

class EdgeFleet {
 public:
  void add(EdgeServer server);

  const std::vector<EdgeServer>& servers() const noexcept { return servers_; }
  bool empty() const noexcept { return servers_.empty(); }
  std::size_t size() const noexcept { return servers_.size(); }

  // Nearest edge to a point; throws std::logic_error on an empty fleet.
  const EdgeServer& nearest(const GeoPoint& p) const;
  // Up to n nearest edges, closest first (a realistic multi-address
  // answer).
  std::vector<const EdgeServer*> nearest_n(const GeoPoint& p, std::size_t n) const;
  // Deterministic pseudo-random pick keyed by a hash — models a CDN that
  // maps unrecognized input "somewhere" with no regard for proximity.
  const EdgeServer& hashed_pick(std::size_t key) const;

  // One edge per catalog city, with addresses allocated sequentially from
  // `base` (a /16 gives room for 256 x 256 edges).
  static EdgeFleet global(const netsim::World& world, const IpAddress& base);
  // Edges only in the given cities.
  static EdgeFleet in_cities(const netsim::World& world, const IpAddress& base,
                             const std::vector<std::string>& cities);

 private:
  std::vector<EdgeServer> servers_;
};

}  // namespace ecsdns::cdn
