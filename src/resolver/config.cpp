#include "resolver/config.h"

namespace ecsdns::resolver {

std::string to_string(ProbingStrategy s) {
  switch (s) {
    case ProbingStrategy::kAlways: return "always";
    case ProbingStrategy::kProbeHostnamesNoCache: return "probe-hostnames-nocache";
    case ProbingStrategy::kPeriodicLoopbackProbe: return "periodic-loopback";
    case ProbingStrategy::kProbeHostnamesOnMiss: return "probe-hostnames-onmiss";
    case ProbingStrategy::kZoneWhitelist: return "zone-whitelist";
    case ProbingStrategy::kNever: return "never";
    case ProbingStrategy::kIrregular: return "irregular";
  }
  return "?";
}

std::string to_string(ScopeHandling s) {
  switch (s) {
    case ScopeHandling::kHonor: return "honor-scope";
    case ScopeHandling::kIgnoreScope: return "ignore-scope";
  }
  return "?";
}

ResolverConfig ResolverConfig::correct() {
  ResolverConfig c;
  c.label = "correct";
  c.probing = ProbingStrategy::kAlways;
  c.scope_handling = ScopeHandling::kHonor;
  c.v4_source_bits = 24;
  c.max_cache_prefix_v4 = 24;
  c.accept_client_ecs = true;  // accepts, but truncates to 24 bits
  return c;
}

ResolverConfig ResolverConfig::google_like() {
  ResolverConfig c = correct();
  c.label = "google-like";
  c.accept_client_ecs = false;  // derives from immediate sender
  return c;
}

ResolverConfig ResolverConfig::scope_ignorer() {
  ResolverConfig c;
  c.label = "scope-ignorer";
  c.probing = ProbingStrategy::kAlways;
  c.scope_handling = ScopeHandling::kIgnoreScope;
  return c;
}

ResolverConfig ResolverConfig::long_prefix_acceptor() {
  ResolverConfig c;
  c.label = "long-prefix-acceptor";
  c.probing = ProbingStrategy::kAlways;
  c.accept_client_ecs = true;
  c.v4_source_bits = 32;
  c.max_cache_prefix_v4 = 32;  // caches at scopes longer than /24
  c.max_cache_prefix_v6 = 128;
  return c;
}

ResolverConfig ResolverConfig::clamp22() {
  ResolverConfig c;
  c.label = "clamp-22";
  c.probing = ProbingStrategy::kAlways;
  c.accept_client_ecs = true;
  c.v4_source_bits = 22;
  c.max_cache_prefix_v4 = 22;  // imposes scope 22 even when told otherwise
  return c;
}

ResolverConfig ResolverConfig::private_block_bug() {
  ResolverConfig c;
  c.label = "private-block-bug";
  c.probing = ProbingStrategy::kAlways;
  c.self_identification = SelfIdentification::kPrivateBlock;
  // Not whitelisting anyone forces self-identification on every query.
  c.client_ecs_whitelist = {Prefix::parse("203.0.113.0/32")};  // matches nobody
  c.cache_scope_zero = false;
  return c;
}

ResolverConfig ResolverConfig::jammed_32() {
  ResolverConfig c;
  c.label = "jammed-32";
  c.probing = ProbingStrategy::kAlways;
  c.v4_source_bits = 32;
  c.jam_last_octet = true;
  c.jam_octet_value = 0x01;
  return c;
}

ResolverConfig ResolverConfig::periodic_loopback_prober() {
  ResolverConfig c;
  c.label = "periodic-loopback";
  c.probing = ProbingStrategy::kPeriodicLoopbackProbe;
  c.probe_interval = 30 * netsim::kMinute;
  c.self_identification = SelfIdentification::kLoopback;
  return c;
}

ResolverConfig ResolverConfig::hostname_prober_nocache() {
  ResolverConfig c;
  c.label = "hostname-prober-nocache";
  c.probing = ProbingStrategy::kProbeHostnamesNoCache;
  return c;
}

ResolverConfig ResolverConfig::hostname_prober_onmiss() {
  ResolverConfig c;
  c.label = "hostname-prober-onmiss";
  c.probing = ProbingStrategy::kProbeHostnamesOnMiss;
  return c;
}

}  // namespace ecsdns::resolver
