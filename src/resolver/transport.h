// The transport seam under StubClient: one wire-in/wire-out exchange.
//
// StubClient used to be hard-wired to netsim::Network; injecting this
// interface instead lets the same client logic run over the simulated
// network (SimTransport, every existing test) or a real loopback socket
// (live::LiveTransport) without the measurement stack knowing which.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dnscore/ip.h"
#include "netsim/network.h"

namespace ecsdns::resolver {

class QueryTransport {
 public:
  virtual ~QueryTransport() = default;

  // Sends `query` to `server` and waits for the matching response. The
  // returned buffer comes from pool() and the caller releases it back;
  // nullopt on timeout/drop.
  virtual std::optional<std::vector<std::uint8_t>> exchange(
      const dnscore::IpAddress& server, std::span<const std::uint8_t> query) = 0;

  // The buffer pool exchange() results (and callers' scratch buffers) are
  // recycled through.
  virtual netsim::BufferPool& pool() = 0;
};

// The simulated transport: a synchronous round trip on the virtual network
// from a fixed client address.
class SimTransport final : public QueryTransport {
 public:
  SimTransport(netsim::Network& network, dnscore::IpAddress own_address)
      : network_(network), own_address_(std::move(own_address)) {}

  const dnscore::IpAddress& address() const noexcept { return own_address_; }

  // Places the client on the map (it must be attached to send).
  void attach(const netsim::GeoPoint& location) {
    // Clients never answer queries; they only need to exist for latency
    // computation.
    network_.attach(own_address_, location,
                    [](const netsim::Datagram&)
                        -> std::optional<std::vector<std::uint8_t>> {
                      return std::nullopt;
                    });
  }

  std::optional<std::vector<std::uint8_t>> exchange(
      const dnscore::IpAddress& server,
      std::span<const std::uint8_t> query) override {
    return network_.round_trip(own_address_, server, query);
  }

  netsim::BufferPool& pool() override { return network_.buffer_pool(); }

 private:
  netsim::Network& network_;
  dnscore::IpAddress own_address_;
};

}  // namespace ecsdns::resolver
