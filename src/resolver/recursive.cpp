#include "resolver/recursive.h"

#include <algorithm>

#include "netsim/rng.h"
#include "obs/trace.h"

namespace ecsdns::resolver {
namespace {

using dnscore::EcsOption;
using dnscore::Name;
using dnscore::Prefix;
using dnscore::RCode;
using dnscore::ResourceRecord;

constexpr int kMaxReferrals = 16;
constexpr int kMaxCnameRestarts = 8;

}  // namespace

RecursiveResolver::RecursiveResolver(ResolverConfig config, netsim::Network& network,
                                     IpAddress own_address,
                                     std::vector<IpAddress> root_hints)
    : config_(std::move(config)),
      network_(network),
      own_address_(std::move(own_address)),
      root_hints_(std::move(root_hints)),
      cache_(config_.cache) {
  auto& registry = obs::MetricsRegistry::global();
  metrics_.client_queries =
      obs::CounterHandle(registry.counter("resolver.client_queries"));
  metrics_.upstream_queries =
      obs::CounterHandle(registry.counter("resolver.upstream_queries"));
  metrics_.upstream_ecs_queries =
      obs::CounterHandle(registry.counter("resolver.upstream_ecs_queries"));
  metrics_.cache_hits = obs::CounterHandle(registry.counter("resolver.cache_hits"));
  metrics_.negative_cache_hits =
      obs::CounterHandle(registry.counter("resolver.negative_cache_hits"));
  metrics_.edns_fallbacks =
      obs::CounterHandle(registry.counter("resolver.edns_fallbacks"));
  metrics_.servfails = obs::CounterHandle(registry.counter("resolver.servfails"));
  metrics_.referrals_followed =
      obs::CounterHandle(registry.counter("resolver.referrals_followed"));
  metrics_.cname_restarts =
      obs::CounterHandle(registry.counter("resolver.cname_restarts"));
}

void RecursiveResolver::attach(const netsim::GeoPoint& location) {
  network_.attach(own_address_, location,
                  [this](const netsim::Datagram& dgram)
                      -> std::optional<std::vector<std::uint8_t>> {
                    Message query;
                    try {
                      query = Message::parse(
                          {dgram.payload.data(), dgram.payload.size()});
                    } catch (const dnscore::WireFormatError&) {
                      return std::nullopt;
                    }
                    auto response = handle_client_query(query, dgram.src);
                    if (!response) return std::nullopt;
                    auto wire = network_.buffer_pool().acquire();
                    dnscore::WireWriter writer(wire);
                    response->serialize_into(writer);
                    return wire;
                  });
}

ClientIdentity RecursiveResolver::identify_client(const Message& query,
                                                  const IpAddress& sender) {
  if (config_.accept_client_ecs) {
    if (auto ecs = query.ecs()) {
      if (ecs->source_prefix_length() == 0) {
        // RFC 7871 §7.1.2: the client opted out; the resolver must either
        // omit ECS or identify itself.
        if (auto self = self_identity()) return *self;
        return ClientIdentity{sender, sender.bit_length(), false,
                              /*opted_out=*/true};
      }
      if (auto prefix = ecs->source_prefix()) {
        return ClientIdentity{prefix->address(), prefix->length(), true};
      }
    }
  }
  // The common path, and the root of the hidden-resolver pathology (§8.2):
  // identity is the *immediate sender*, whoever that is.
  if (!config_.client_ecs_whitelist.empty()) {
    const bool listed = std::any_of(
        config_.client_ecs_whitelist.begin(), config_.client_ecs_whitelist.end(),
        [&sender](const Prefix& p) { return p.contains(sender); });
    if (!listed) {
      if (auto self = self_identity()) return *self;
    }
  }
  return ClientIdentity{sender, sender.bit_length(), false};
}

std::optional<ClientIdentity> RecursiveResolver::self_identity() const {
  switch (config_.self_identification) {
    case SelfIdentification::kOwnPublicAddress:
      return ClientIdentity{own_address_, own_address_.bit_length(), false};
    case SelfIdentification::kLoopback:
      return ClientIdentity{IpAddress::v4(127, 0, 0, 1), 32, false};
    case SelfIdentification::kPrivateBlock:
      return ClientIdentity{IpAddress::v4(10, 0, 0, 1), 32, false};
    case SelfIdentification::kOmitOption:
      return std::nullopt;
  }
  return std::nullopt;
}

EcsOption RecursiveResolver::build_option(const Question& question,
                                          const ClientIdentity& identity) const {
  const bool v4 = identity.address.is_v4();
  int policy_bits = v4 ? config_.v4_source_bits : config_.v6_source_bits;
  if (config_.adapt_source_to_scope) {
    const auto it = learned_scope_.find(question.qname.second_level_domain());
    if (it != learned_scope_.end() && it->second > 0 && it->second < policy_bits) {
      policy_bits = it->second;
    }
  }
  bool jam = v4 && config_.jam_last_octet;
  if (v4 && !config_.v4_variants.empty()) {
    const auto& variant =
        config_.v4_variants[counters_.upstream_ecs_queries % config_.v4_variants.size()];
    policy_bits = variant.bits;
    jam = variant.jam;
  }
  if (!v4 && !config_.v6_variants.empty()) {
    policy_bits =
        config_.v6_variants[counters_.upstream_ecs_queries % config_.v6_variants.size()];
  }
  if (jam) {
    // "Jammed last byte": claim one more octet than the resolver actually
    // saw, fixing that octet to a constant. A full-address identity reveals
    // 24 bits but advertises 32 (Table 1's "32/jammed last byte" rows). A
    // shorter identity — e.g. a /16 learned from a forwarded ECS option —
    // must be truncated to min(identity.bits, 24) *before* jamming, or the
    // option would fabricate address bits the resolver never saw.
    const int keep = std::min(identity.bits, 24) / 8 * 8;
    auto bytes = dnscore::truncate_address(identity.address, keep).bytes();
    bytes[static_cast<std::size_t>(keep / 8)] = config_.jam_octet_value;
    const IpAddress jammed = IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3]);
    return EcsOption::for_query(Prefix{jammed, keep + 8});
  }
  const int bits = std::min(identity.bits, policy_bits);
  return EcsOption::for_query(Prefix{identity.address, bits});
}

bool RecursiveResolver::name_matches_probe_list(const Name& qname) const {
  return std::any_of(config_.probe_hostnames.begin(), config_.probe_hostnames.end(),
                     [&qname](const Name& n) { return qname.is_subdomain_of(n); });
}

bool RecursiveResolver::zone_whitelisted(const Name& qname) const {
  return std::any_of(config_.zone_whitelist.begin(), config_.zone_whitelist.end(),
                     [&qname](const Name& n) { return qname.is_subdomain_of(n); });
}

bool RecursiveResolver::caching_disabled_for(const Name& qname) const {
  return config_.probing == ProbingStrategy::kProbeHostnamesNoCache &&
         name_matches_probe_list(qname);
}

std::optional<EcsOption> RecursiveResolver::upstream_ecs(const Question& question,
                                                         const ClientIdentity& identity,
                                                         bool infrastructure_hop,
                                                         bool cache_missed) {
  if (infrastructure_hop && !config_.ecs_to_root_servers) return std::nullopt;
  const bool address_query =
      question.qtype == RRType::A || question.qtype == RRType::AAAA;
  if (!address_query && question.qtype == RRType::NS && !config_.ecs_on_ns_queries) {
    return std::nullopt;
  }
  if (!address_query && question.qtype != RRType::NS) return std::nullopt;

  switch (config_.probing) {
    case ProbingStrategy::kNever:
      return std::nullopt;
    case ProbingStrategy::kAlways:
      break;
    case ProbingStrategy::kProbeHostnamesNoCache:
      if (!name_matches_probe_list(question.qname)) return std::nullopt;
      break;
    case ProbingStrategy::kProbeHostnamesOnMiss:
      if (!name_matches_probe_list(question.qname) || !cache_missed) {
        return std::nullopt;
      }
      break;
    case ProbingStrategy::kPeriodicLoopbackProbe: {
      const SimTime now = network_.now();
      if (last_probe_ >= 0 && now - last_probe_ < config_.probe_interval) {
        return std::nullopt;
      }
      last_probe_ = now;
      // The probe deliberately reveals nothing: loopback, full length.
      return EcsOption::for_query(Prefix{IpAddress::v4(127, 0, 0, 1), 32});
    }
    case ProbingStrategy::kZoneWhitelist:
      if (!zone_whitelisted(question.qname)) return std::nullopt;
      break;
    case ProbingStrategy::kIrregular: {
      // Deterministic per-(resolver, query-ordinal) coin flip.
      netsim::SplitMix64 coin(config_.irregular_seed ^
                              (0x9e3779b97f4a7c15ull * counters_.upstream_queries));
      const double u = static_cast<double>(coin.next() >> 11) * 0x1.0p-53;
      if (u >= config_.irregular_probability) return std::nullopt;
      break;
    }
  }

  // Client opted out (source 0) with a resolver configured to omit rather
  // than self-identify: honor the opt-out.
  if (identity.opted_out) return std::nullopt;
  return build_option(question, identity);
}

std::optional<Message> RecursiveResolver::handle_client_query(const Message& query,
                                                              const IpAddress& sender) {
  ++counters_.client_queries;
  metrics_.client_queries.inc();
  if (query.questions.empty()) return std::nullopt;
  const Question& q = query.question();

  auto& tracer = obs::TraceRing::global();
  if (tracer.enabled()) {
    tracer.record({network_.now(), obs::TraceKind::kClientQuery, sender,
                   own_address_, 0, q.qname.to_string()});
  }

  // RFC 7871 §7.1.1: a malformed client ECS option earns a FORMERR.
  std::optional<EcsOption> client_ecs;
  if (query.opt) {
    if (const auto* raw =
            query.opt->find_option(dnscore::EdnsOptionCode::ECS)) {
      try {
        const EcsOption ecs = EcsOption::from_edns(*raw);
        const auto issues = ecs.validate(/*in_query=*/true);
        const bool malformed = std::any_of(
            issues.begin(), issues.end(), [](dnscore::EcsIssue issue) {
              return issue == dnscore::EcsIssue::kUnknownFamily ||
                     issue == dnscore::EcsIssue::kSourceLengthTooLong ||
                     issue == dnscore::EcsIssue::kAddressLengthMismatch;
            });
        if (malformed) {
          Message formerr = Message::make_response(query);
          formerr.header.rcode = RCode::FORMERR;
          return formerr;
        }
        client_ecs = ecs;
      } catch (const dnscore::WireFormatError&) {
        Message formerr = Message::make_response(query);
        formerr.header.rcode = RCode::FORMERR;
        return formerr;
      }
    }
  }

  const ClientIdentity identity = identify_client(query, sender);

  Resolution resolution = resolve(q, identity);

  Message response = Message::make_response(query);
  response.header.rcode = resolution.rcode;
  response.answers = std::move(resolution.answers);
  if (client_ecs && resolution.echo_scope && response.opt) {
    // RFC 7871 §7.2.2: the response option echoes the client's FAMILY,
    // SOURCE PREFIX-LENGTH, and address exactly as received — not the
    // resolver's own truncation policy. A source-0 opt-out is echoed as
    // /0 with scope 0; the old behavior of announcing a non-/0 prefix to
    // an opted-out client leaked the resolver's identity policy.
    if (const auto src = client_ecs->source_prefix()) {
      const int scope = src->length() == 0 ? 0 : *resolution.echo_scope;
      response.set_ecs(EcsOption::for_response(*src, scope));
    }
  }
  if (tracer.enabled()) {
    tracer.record({network_.now(), obs::TraceKind::kClientResponse, own_address_,
                   sender, 0, dnscore::to_string(response.header.rcode)});
  }
  return response;
}

RecursiveResolver::Resolution RecursiveResolver::resolve(
    const Question& question, const ClientIdentity& identity) {
  Resolution out;
  Question current = question;
  const SimTime now = network_.now();

  for (int restart = 0; restart <= kMaxCnameRestarts; ++restart) {
    // 0. Negative cache (RFC 2308).
    {
      const auto it = negative_cache_.find(NegativeKey{current.qname, current.qtype});
      if (it != negative_cache_.end()) {
        if (it->second.expiry > now) {
          ++counters_.negative_cache_hits;
          metrics_.negative_cache_hits.inc();
          out.rcode = it->second.rcode;
          return out;
        }
        negative_cache_.erase(it);
      }
    }
    // 1. Cache.
    if (!caching_disabled_for(current.qname)) {
      std::optional<IpAddress> lookup_client;
      if (config_.scope_handling == ScopeHandling::kIgnoreScope) {
        // Pretend every entry is global by looking entries up with the
        // address they were inserted under. Implemented by storing
        // everything globally in cache_answer(); a plain global lookup
        // suffices here.
        lookup_client = std::nullopt;
      } else {
        lookup_client = identity.address;
      }
      const CacheEntry* hit =
          cache_.lookup(current.qname, current.qtype, lookup_client, now);
      if (hit == nullptr && config_.scope_handling == ScopeHandling::kHonor) {
        // A global entry may still match when no scoped one covers us;
        // lookup() already prefers the most specific, so nothing more to
        // do — hit stays null only if neither matched.
      }
      if (hit != nullptr) {
        // Copy the fields we need out of the entry immediately: the pointer
        // lives in flat-table storage that relocates on the next cache
        // mutation (cache.h), and the CNAME-restart path below re-enters
        // the cache while this answer is still being assembled.
        std::vector<ResourceRecord> records = hit->records;
        const SimTime expiry = hit->expiry;
        const std::uint8_t echo_scope = hit->scope;
        hit = nullptr;
        ++counters_.cache_hits;
        metrics_.cache_hits.inc();
        auto& tracer = obs::TraceRing::global();
        if (tracer.enabled()) {
          tracer.record({now, obs::TraceKind::kCacheHit, identity.address,
                         own_address_, 0, current.qname.to_string()});
        }
        out.rcode = RCode::NOERROR;
        out.echo_scope = echo_scope;
        // CNAME chain may continue from the cached records.
        bool restarted = false;
        if (current.qtype != RRType::CNAME) {
          for (const auto& rr : records) {
            if (rr.type == RRType::CNAME && rr.name == current.qname) {
              bool have_final = false;
              for (const auto& other : records) {
                if (other.type == current.qtype) have_final = true;
              }
              if (!have_final) {
                current.qname = std::get<dnscore::CnameRdata>(rr.rdata).target;
                restarted = true;
              }
              break;
            }
          }
        }
        for (auto& rr : records) {
          // Serve the remaining TTL, per standard resolver behavior.
          rr.ttl = static_cast<std::uint32_t>(
              std::max<SimTime>(expiry - now, 0) / netsim::kSecond);
          out.answers.push_back(std::move(rr));
        }
        if (!restarted) return out;
        ++counters_.cname_restarts;
        metrics_.cname_restarts.inc();
        continue;
      }
    }

    // 2. Iterative resolution.
    auto response = query_authoritatives(current, identity);
    if (!response) {
      ++counters_.servfails;
      metrics_.servfails.inc();
      out.rcode = RCode::SERVFAIL;
      return out;
    }
    cache_answer(current, identity, *response, out);
    out.rcode = response->header.rcode;
    for (const auto& rr : response->answers) out.answers.push_back(rr);

    // CNAME restart if the answer ends in a dangling CNAME.
    if (current.qtype != RRType::CNAME && !response->answers.empty()) {
      const auto& last = response->answers.back();
      if (last.type == RRType::CNAME) {
        current.qname = std::get<dnscore::CnameRdata>(last.rdata).target;
        ++counters_.cname_restarts;
        metrics_.cname_restarts.inc();
        continue;
      }
    }
    return out;
  }
  out.rcode = RCode::SERVFAIL;  // CNAME chain too long
  return out;
}

void RecursiveResolver::note_rtt(const IpAddress& server, double sample_us) {
  auto [it, inserted] = srtt_us_.try_emplace(server, sample_us);
  if (!inserted) it->second = 0.7 * it->second + 0.3 * sample_us;
}

std::vector<IpAddress> RecursiveResolver::order_by_srtt(
    std::vector<IpAddress> servers) const {
  // Unknown servers sort ahead of anything slower than 10 ms so they get
  // probed; a stable sort keeps referral order among ties.
  const auto score = [this](const IpAddress& s) {
    const auto it = srtt_us_.find(s);
    return it == srtt_us_.end() ? 10'000.0 : it->second;
  };
  std::stable_sort(servers.begin(), servers.end(),
                   [&score](const IpAddress& a, const IpAddress& b) {
                     return score(a) < score(b);
                   });
  return servers;
}

RecursiveResolver::NsSet RecursiveResolver::nameservers_for(const Name& qname) {
  // Deepest cached delegation wins.
  Name walk = qname;
  const SimTime now = network_.now();
  for (;;) {
    const auto it = ns_cache_.find(walk);
    if (it != ns_cache_.end() && it->second.expiry > now &&
        !it->second.addresses.empty()) {
      return NsSet{walk, it->second.addresses};
    }
    if (walk.is_root()) break;
    walk = walk.parent();
  }
  return NsSet{Name{}, root_hints_};
}

void RecursiveResolver::cache_referral(const Message& response) {
  const SimTime now = network_.now();
  for (const auto& ns : response.authorities) {
    if (ns.type != RRType::NS) continue;
    NsEntry& entry = ns_cache_[ns.name];
    entry.expiry = now + static_cast<SimTime>(ns.ttl) * netsim::kSecond;
    const auto& target = std::get<dnscore::NsRdata>(ns.rdata).nameserver;
    for (const auto& glue : response.additional) {
      if (glue.name != target) continue;
      if (const auto* a = std::get_if<dnscore::ARdata>(&glue.rdata)) {
        if (std::find(entry.addresses.begin(), entry.addresses.end(), a->address) ==
            entry.addresses.end()) {
          entry.addresses.push_back(a->address);
        }
      }
    }
  }
}

std::optional<Message> RecursiveResolver::query_authoritatives(
    const Question& question, const ClientIdentity& identity) {
  for (int hop = 0; hop < kMaxReferrals; ++hop) {
    const NsSet ns_set = nameservers_for(question.qname);
    const std::vector<IpAddress> servers = order_by_srtt(ns_set.addresses);
    if (servers.empty()) return std::nullopt;

    // ECS belongs on queries to the servers of the content zone, not on
    // infrastructure hops: roots (zone depth 0) and TLDs (depth 1) are
    // skipped unless the resolver exhibits the §6.1 root-ECS violation.
    const bool infrastructure_hop = ns_set.zone.label_count() < 2;

    // QNAME minimization (RFC 7816): infrastructure hops only learn the
    // next delegation label, asked for as an NS query.
    Name send_qname = question.qname;
    RRType send_qtype = question.qtype;
    if (config_.qname_minimization && infrastructure_hop &&
        question.qname.label_count() > ns_set.zone.label_count() + 1) {
      // The minimal name is the delegation zone plus one more label.
      send_qname = ns_set.zone.prepend(question.qname.label(
          question.qname.label_count() - ns_set.zone.label_count() - 1));
      send_qtype = RRType::NS;
    }

    Message query = Message::make_query(next_id_++, send_qname, send_qtype);
    query.header.rd = false;
    query.opt = dnscore::OptRecord{};
    const auto ecs = upstream_ecs(question, identity, infrastructure_hop,
                                  /*cache_missed=*/true);
    if (ecs) query.set_ecs(*ecs);

    // One serialization per hop, reused across every server candidate and
    // the TCP retry (the bytes are identical); the buffer itself is
    // recycled through the network's pool.
    auto query_wire = network_.buffer_pool().acquire();
    {
      dnscore::WireWriter writer(query_wire);
      query.serialize_into(writer);
    }

    std::optional<Message> response;
    for (const auto& server : servers) {
      ++counters_.upstream_queries;
      metrics_.upstream_queries.inc();
      if (ecs) {
        ++counters_.upstream_ecs_queries;
        metrics_.upstream_ecs_queries.inc();
      }
      auto& tracer = obs::TraceRing::global();
      if (tracer.enabled()) {
        tracer.record({network_.now(), obs::TraceKind::kUpstreamQuery,
                       own_address_, server, 0,
                       send_qname.to_string() +
                           (ecs ? " " + ecs->to_string() : std::string{})});
      }
      const SimTime sent_at = network_.now();
      auto wire = network_.round_trip(own_address_, server, query_wire);
      note_rtt(server, static_cast<double>(network_.now() - sent_at));
      if (!wire) continue;  // timeout: try the next address
      bool parsed = true;
      try {
        response = Message::parse({wire->data(), wire->size()});
      } catch (const dnscore::WireFormatError&) {
        parsed = false;
      }
      network_.buffer_pool().release(std::move(*wire));
      if (!parsed) continue;
      if (response->header.tc) {
        // Truncated over UDP: retry the same server over TCP.
        ++counters_.upstream_queries;
        metrics_.upstream_queries.inc();
        auto tcp_wire = network_.round_trip(own_address_, server, query_wire,
                                            /*tcp=*/true);
        if (tcp_wire) {
          try {
            response = Message::parse({tcp_wire->data(), tcp_wire->size()});
          } catch (const dnscore::WireFormatError&) {
            response.reset();
            parsed = false;
          }
          network_.buffer_pool().release(std::move(*tcp_wire));
          if (!parsed) continue;
        }
      }
      if (response->header.rcode == RCode::FORMERR && query.opt) {
        // RFC 6891 §6.2.2 fallback: a pre-EDNS server choked on the OPT
        // record (§6.1 cites these); retry the same server plain.
        ++counters_.edns_fallbacks;
        metrics_.edns_fallbacks.inc();
        Message plain = query;
        plain.opt.reset();
        ++counters_.upstream_queries;
        metrics_.upstream_queries.inc();
        auto plain_wire = network_.buffer_pool().acquire();
        {
          dnscore::WireWriter writer(plain_wire);
          plain.serialize_into(writer);
        }
        auto retry_wire = network_.round_trip(own_address_, server, plain_wire);
        network_.buffer_pool().release(std::move(plain_wire));
        if (retry_wire) {
          try {
            response = Message::parse({retry_wire->data(), retry_wire->size()});
          } catch (const dnscore::WireFormatError&) {
            response.reset();
            parsed = false;
          }
          network_.buffer_pool().release(std::move(*retry_wire));
          if (!parsed) continue;
        }
      }
      break;
    }
    network_.buffer_pool().release(std::move(query_wire));
    if (!response) return std::nullopt;

    if (!response->answers.empty() || response->header.rcode != RCode::NOERROR) {
      return response;
    }
    // A referral has NS records in the authority section; a NoData answer
    // carries at most an SOA there.
    const bool is_referral = std::any_of(
        response->authorities.begin(), response->authorities.end(),
        [](const dnscore::ResourceRecord& rr) { return rr.type == RRType::NS; });
    if (is_referral) {
      ++counters_.referrals_followed;
      metrics_.referrals_followed.inc();
      cache_referral(*response);
      continue;  // descend to the delegated servers
    }
    return response;  // authoritative NoData
  }
  return std::nullopt;
}

void RecursiveResolver::cache_answer(const Question& question,
                                     const ClientIdentity& identity,
                                     const Message& response, Resolution& out) {
  // Negative results go into the RFC 2308 cache; the TTL comes from the
  // authority SOA minimum when present.
  if (response.header.rcode == RCode::NXDOMAIN ||
      (response.header.rcode == RCode::NOERROR && response.answers.empty())) {
    SimTime neg_ttl = 60 * netsim::kSecond;
    for (const auto& rr : response.authorities) {
      if (const auto* soa = std::get_if<dnscore::SoaRdata>(&rr.rdata)) {
        neg_ttl = static_cast<SimTime>(
                      std::min<std::uint32_t>(rr.ttl, soa->minimum)) *
                  netsim::kSecond;
      }
    }
    if (!caching_disabled_for(question.qname) && neg_ttl > 0) {
      negative_cache_[NegativeKey{question.qname, question.qtype}] =
          NegativeEntry{response.header.rcode, network_.now() + neg_ttl};
    }
    return;
  }
  if (response.header.rcode != RCode::NOERROR || response.answers.empty()) return;
  if (caching_disabled_for(question.qname)) {
    if (auto ecs = response.ecs()) out.echo_scope = ecs->scope_prefix_length();
    return;
  }
  const SimTime now = network_.now();
  const auto ttl_s = response.min_answer_ttl().value_or(0);
  const SimTime ttl = static_cast<SimTime>(ttl_s) * netsim::kSecond;
  if (ttl <= 0) return;

  const auto ecs = response.ecs();
  const int family_cap =
      identity.address.is_v4() ? config_.max_cache_prefix_v4 : config_.max_cache_prefix_v6;

  if (!ecs || config_.scope_handling == ScopeHandling::kIgnoreScope) {
    // No ECS in the response, or a resolver that disregards scope: one
    // global entry serves every client.
    cache_.insert(question.qname, question.qtype, Prefix{}, 0, response.answers, now,
                  ttl);
    if (ecs) out.echo_scope = ecs->scope_prefix_length();
    return;
  }

  const int scope = ecs->scope_prefix_length();
  const int source = ecs->source_prefix_length();
  if (config_.adapt_source_to_scope && scope > 0 && scope < source) {
    // Learn the zone's demonstrated granularity. Note the deliberate
    // ratchet: once we send fewer bits, the returned scope can never
    // exceed them again, so adaptation only ever tightens — the §9
    // experiment quantifies this trade-off.
    auto& learned = learned_scope_[question.qname.second_level_domain()];
    learned = learned == 0 ? scope : std::min(learned, scope);
  }
  if (scope == 0) {
    if (!config_.cache_scope_zero) {
      // The §6.3.2 misconfigured resolver: scope-0 answers are not cached
      // (or reused), forcing an upstream query per client query.
      out.echo_scope = 0;
      return;
    }
    cache_.insert(question.qname, question.qtype, Prefix{}, 0, response.answers, now,
                  ttl);
    out.echo_scope = 0;
    return;
  }

  // Correct resolvers cache at min(scope, source) — a scope longer than the
  // source cannot be trusted beyond the bits actually announced — and apply
  // the privacy cap.
  const int effective = std::min({scope, source, family_cap,
                                  identity.address.bit_length()});
  const Prefix network{identity.address, effective};
  cache_.insert(question.qname, question.qtype, network,
                static_cast<std::uint8_t>(effective), response.answers, now, ttl);
  out.echo_scope = effective;
}

}  // namespace ecsdns::resolver
