#include "resolver/cache.h"

#include <algorithm>

#include "dnscore/contracts.h"

namespace ecsdns::resolver {

EcsCache::EcsCache() {
  auto& registry = obs::MetricsRegistry::global();
  metrics_.hits = obs::CounterHandle(registry.counter("cache.hits"));
  metrics_.misses = obs::CounterHandle(registry.counter("cache.misses"));
  metrics_.insertions = obs::CounterHandle(registry.counter("cache.insertions"));
  metrics_.expired_evictions =
      obs::CounterHandle(registry.counter("cache.expired_evictions"));
  metrics_.live_entries = obs::GaugeHandle(registry.gauge("cache.live_entries"));
}

const CacheEntry* EcsCache::lookup(const Name& qname, RRType qtype,
                                   const std::optional<IpAddress>& client,
                                   SimTime now) {
  const auto it = map_.find(Key{qname, qtype});
  if (it == map_.end()) {
    ++stats_.misses;
    metrics_.misses.inc();
    return nullptr;
  }
  auto& buckets = it->second.by_length;

  // Longest-prefix-first probe: one hash lookup per distinct scope length.
  // Cleanup is uniform across every exit path — each probed bucket sheds
  // its expired entries and is erased when emptied *before* the loop can
  // break on a hit, so no all-expired bucket lingers until purge_expired()
  // and live-entry accounting stays exact.
  const CacheEntry* best = nullptr;
  for (auto bucket_it = buckets.begin(); bucket_it != buckets.end();) {
    auto& [length, bucket] = *bucket_it;
    const bool global_bucket = length == 0;
    if (global_bucket || (client && length <= client->bit_length())) {
      // Global entries occupy a single slot keyed by the zero prefix; a
      // scoped candidate inherits the client's family, so cross-family
      // entries can never collide in the bucket.
      const Prefix candidate = global_bucket ? Prefix{} : Prefix{*client, length};
      const auto entry_it = bucket.find(candidate);
      if (entry_it != bucket.end()) {
        if (entry_it->second.expiry <= now) {
          // The candidate expired under us. Sweep the whole bucket while it
          // is hot: expiry is bulk-correlated (entries inserted together
          // age together), and sweeping here keeps size() truthful instead
          // of deferring to the next purge_expired().
          const std::size_t before = bucket.size();
          std::erase_if(bucket,
                        [now](const auto& kv) { return kv.second.expiry <= now; });
          note_expirations(before - bucket.size());
        } else if (best == nullptr) {
          best = &entry_it->second;  // longest first: first live hit wins
        }
      }
    }
    if (bucket.empty()) {
      bucket_it = buckets.erase(bucket_it);
    } else {
      ++bucket_it;
    }
    // The hit's own bucket is non-empty by construction, so `best` survives
    // the cleanup above.
    if (best != nullptr) break;
  }
  if (buckets.empty()) map_.erase(it);

  if (best != nullptr) {
    // The sweep above guarantees a returned entry is live and its global
    // flag agrees with its prefix length.
    ECSDNS_DCHECK(best->expiry > now);
    ECSDNS_DCHECK(best->global == (best->network.length() == 0));
    ++stats_.hits;
    metrics_.hits.inc();
  } else {
    ++stats_.misses;
    metrics_.misses.inc();
  }
  return best;
}

void EcsCache::insert(const Name& qname, RRType qtype, const Prefix& network,
                      std::uint8_t echo_scope, std::vector<ResourceRecord> records,
                      SimTime now, SimTime ttl) {
  // RFC 7871 §7.3.1: entries are cached at the *effective* scope, so the
  // stored network can never be more specific than the scope echoed to
  // clients, and neither exceeds the family's bit length.
  ECSDNS_DCHECK(network.length() <= network.address().bit_length());
  ECSDNS_DCHECK(network.length() <= static_cast<int>(echo_scope) ||
                network.length() == 0);
  ECSDNS_DCHECK(static_cast<int>(echo_scope) <= network.address().bit_length());
  auto& buckets = map_[Key{qname, qtype}].by_length;
  CacheEntry entry;
  entry.network = network;
  entry.global = network.length() == 0;
  entry.records = std::move(records);
  entry.scope = echo_scope;
  entry.inserted_at = now;
  entry.expiry = now + ttl;
  auto& bucket = buckets[network.length()];
  const auto key = entry.global ? Prefix{} : network;
  const auto [slot, inserted] = bucket.insert_or_assign(key, std::move(entry));
  (void)slot;
  if (inserted) {
    ++live_entries_;
    metrics_.live_entries.add(1);
  }
  ++stats_.insertions;
  metrics_.insertions.inc();
  note_size();
}

void EcsCache::purge_expired(SimTime now) {
  for (auto it = map_.begin(); it != map_.end();) {
    auto& buckets = it->second.by_length;
    for (auto bucket_it = buckets.begin(); bucket_it != buckets.end();) {
      auto& bucket = bucket_it->second;
      const std::size_t before = bucket.size();
      std::erase_if(bucket, [now](const auto& kv) { return kv.second.expiry <= now; });
      note_expirations(before - bucket.size());
      if (bucket.empty()) {
        bucket_it = buckets.erase(bucket_it);
      } else {
        ++bucket_it;
      }
    }
    if (buckets.empty()) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t EcsCache::entries_for(const Name& qname, RRType qtype, SimTime now) {
  const auto it = map_.find(Key{qname, qtype});
  if (it == map_.end()) return 0;
  std::size_t count = 0;
  for (const auto& [length, bucket] : it->second.by_length) {
    count += static_cast<std::size_t>(
        std::count_if(bucket.begin(), bucket.end(),
                      [now](const auto& kv) { return kv.second.expiry > now; }));
  }
  return count;
}

void EcsCache::clear() {
  map_.clear();
  metrics_.live_entries.add(-static_cast<std::int64_t>(live_entries_));
  live_entries_ = 0;
}

void EcsCache::note_size() {
  stats_.max_entries = std::max(stats_.max_entries, live_entries_);
}

void EcsCache::note_expirations(std::size_t n) {
  if (n == 0) return;
  stats_.expired_evictions += n;
  live_entries_ -= n;
  metrics_.expired_evictions.inc(n);
  metrics_.live_entries.add(-static_cast<std::int64_t>(n));
}

}  // namespace ecsdns::resolver
