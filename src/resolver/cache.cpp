#include "resolver/cache.h"

#include <algorithm>

namespace ecsdns::resolver {

const CacheEntry* EcsCache::lookup(const Name& qname, RRType qtype,
                                   const std::optional<IpAddress>& client,
                                   SimTime now) {
  const auto it = map_.find(Key{qname, qtype});
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  auto& buckets = it->second.by_length;

  // Longest-prefix-first probe: one hash lookup per distinct scope length.
  const CacheEntry* best = nullptr;
  for (auto bucket_it = buckets.begin(); bucket_it != buckets.end();) {
    auto& [length, bucket] = *bucket_it;
    if (length == 0) {
      // Global entries: a single slot keyed by the zero prefix.
      const auto entry_it = bucket.find(Prefix{});
      if (entry_it != bucket.end()) {
        if (entry_it->second.expiry <= now) {
          bucket.erase(entry_it);
          ++stats_.expired_evictions;
          --live_entries_;
        } else if (best == nullptr) {
          best = &entry_it->second;
        }
      }
    } else if (client && length <= client->bit_length()) {
      // The candidate inherits the client's family, so cross-family
      // entries can never collide in the bucket.
      const Prefix candidate{*client, length};
      const auto entry_it = bucket.find(candidate);
      if (entry_it != bucket.end()) {
        if (entry_it->second.expiry <= now) {
          bucket.erase(entry_it);
          ++stats_.expired_evictions;
          --live_entries_;
        } else {
          best = &entry_it->second;  // longest first: first hit wins
          break;
        }
      }
    }
    if (bucket.empty()) {
      bucket_it = buckets.erase(bucket_it);
    } else {
      ++bucket_it;
    }
    if (best != nullptr && best->network.length() != 0) break;
  }

  if (best != nullptr) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  if (buckets.empty()) map_.erase(it);
  return best;
}

void EcsCache::insert(const Name& qname, RRType qtype, const Prefix& network,
                      std::uint8_t echo_scope, std::vector<ResourceRecord> records,
                      SimTime now, SimTime ttl) {
  auto& buckets = map_[Key{qname, qtype}].by_length;
  CacheEntry entry;
  entry.network = network;
  entry.global = network.length() == 0;
  entry.records = std::move(records);
  entry.scope = echo_scope;
  entry.inserted_at = now;
  entry.expiry = now + ttl;
  auto& bucket = buckets[network.length()];
  const auto key = entry.global ? Prefix{} : network;
  const auto [slot, inserted] = bucket.insert_or_assign(key, std::move(entry));
  (void)slot;
  if (inserted) ++live_entries_;
  ++stats_.insertions;
  note_size();
}

void EcsCache::purge_expired(SimTime now) {
  for (auto it = map_.begin(); it != map_.end();) {
    auto& buckets = it->second.by_length;
    for (auto bucket_it = buckets.begin(); bucket_it != buckets.end();) {
      auto& bucket = bucket_it->second;
      const std::size_t before = bucket.size();
      std::erase_if(bucket, [now](const auto& kv) { return kv.second.expiry <= now; });
      stats_.expired_evictions += before - bucket.size();
      live_entries_ -= before - bucket.size();
      if (bucket.empty()) {
        bucket_it = buckets.erase(bucket_it);
      } else {
        ++bucket_it;
      }
    }
    if (buckets.empty()) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t EcsCache::entries_for(const Name& qname, RRType qtype, SimTime now) {
  const auto it = map_.find(Key{qname, qtype});
  if (it == map_.end()) return 0;
  std::size_t count = 0;
  for (const auto& [length, bucket] : it->second.by_length) {
    count += static_cast<std::size_t>(
        std::count_if(bucket.begin(), bucket.end(),
                      [now](const auto& kv) { return kv.second.expiry > now; }));
  }
  return count;
}

void EcsCache::clear() {
  map_.clear();
  live_entries_ = 0;
}

void EcsCache::note_size() {
  stats_.max_entries = std::max(stats_.max_entries, live_entries_);
}

}  // namespace ecsdns::resolver
