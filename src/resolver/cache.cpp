#include "resolver/cache.h"

#include <algorithm>

#include "dnscore/contracts.h"

namespace ecsdns::resolver {

namespace {

// Deterministic size estimate: struct footprint plus owned-heap footprint of
// the record set and name. Good enough for sizing curves; never reads the
// allocator.
std::size_t approx_entry_bytes(const Name& qname, const CacheEntry& entry) {
  std::size_t bytes = sizeof(CacheEntry) + qname.wire_length();
  bytes += entry.records.capacity() * sizeof(ResourceRecord);
  return bytes;
}

}  // namespace

EcsCache::EcsCache() { register_metrics(); }

EcsCache::EcsCache(CacheConfig config) : config_(config) {
  if (config_.bounded()) {
    strategy_ = make_eviction_strategy(config_.policy);
  }
  register_metrics();
}

void EcsCache::register_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  metrics_.hits = obs::CounterHandle(registry.counter("cache.hits"));
  metrics_.misses = obs::CounterHandle(registry.counter("cache.misses"));
  metrics_.insertions = obs::CounterHandle(registry.counter("cache.insertions"));
  metrics_.expired_evictions =
      obs::CounterHandle(registry.counter("cache.expired_evictions"));
  metrics_.capacity_evictions =
      obs::CounterHandle(registry.counter("cache.capacity_evictions"));
  metrics_.capacity_evictions_policy = obs::CounterHandle(
      registry.counter("cache.capacity_evictions." + to_string(config_.policy)));
  metrics_.cleared_entries =
      obs::CounterHandle(registry.counter("cache.cleared_entries"));
  metrics_.replacements = obs::CounterHandle(registry.counter("cache.replacements"));
  metrics_.ttl_zero_skips =
      obs::CounterHandle(registry.counter("cache.ttl_zero_skips"));
  metrics_.eviction_age_s =
      obs::HistogramHandle(registry.histogram("cache.eviction_age_s"));
  metrics_.live_entries = obs::GaugeHandle(registry.gauge("cache.live_entries"));
}

EcsCache::LengthBucket& EcsCache::QuestionEntries::bucket_for(int length) {
  // Descending order, so the lookup loop walks longest-prefix-first.
  auto it = std::lower_bound(
      by_length.begin(), by_length.end(), length,
      [](const LengthBucket& b, int l) { return b.length > l; });
  if (it == by_length.end() || it->length != length) {
    it = by_length.insert(it, LengthBucket{length, {}});
  }
  return *it;
}

const CacheEntry* EcsCache::lookup(const Name& qname, RRType qtype,
                                   const std::optional<IpAddress>& client,
                                   SimTime now) {
  // Heterogeneous probe: hash (qname, qtype) directly instead of copying the
  // Name into a Key — the copy was measurable on the §7 replay's hit path.
  const auto key_eq = [&](const Key& k) {
    return k.qtype == qtype && k.qname == qname;
  };
  QuestionEntries* question =
      map_.find_with(Key::hash_of(qname, qtype), key_eq);
  if (question == nullptr) {
    ++stats_.misses;
    metrics_.misses.inc();
    return nullptr;
  }
  auto& buckets = question->by_length;

  // Longest-prefix-first probe: one hash lookup per distinct scope length.
  // Cleanup is uniform across every exit path — each probed bucket sheds
  // its expired entries and is erased when emptied *before* the loop can
  // break on a hit, so no all-expired bucket lingers until purge_expired()
  // and live-entry accounting stays exact.
  const CacheEntry* best = nullptr;
  for (auto bucket_it = buckets.begin(); bucket_it != buckets.end();) {
    const int length = bucket_it->length;
    auto& bucket = bucket_it->entries;
    const bool global_bucket = length == 0;
    if (global_bucket || (client && length <= client->bit_length())) {
      // Global entries occupy a single slot keyed by the zero prefix; a
      // scoped candidate inherits the client's family, so cross-family
      // entries can never collide in the bucket.
      const Prefix candidate = global_bucket ? Prefix{} : Prefix{*client, length};
      if (const CacheEntry* entry = bucket.find(candidate)) {
        if (entry->expiry <= now) {
          // The candidate expired under us. Sweep the whole bucket while it
          // is hot: expiry is bulk-correlated (entries inserted together
          // age together), and sweeping here keeps size() truthful instead
          // of deferring to the next purge_expired().
          note_expirations(bucket.erase_if([&](const auto& slot) {
            if (slot.value.expiry > now) return false;
            if (strategy_ != nullptr) forget_entry(slot.value);
            return true;
          }));
        } else if (best == nullptr) {
          best = entry;  // longest first: first live hit wins
        }
      }
    }
    if (bucket.empty()) {
      bucket_it = buckets.erase(bucket_it);
    } else {
      ++bucket_it;
    }
    // The hit's own bucket is untouched after the hit (the sweep runs only
    // on the expired branch and the vector erase only on empty buckets), so
    // `best` survives the cleanup above.
    if (best != nullptr) break;
  }
  if (buckets.empty()) map_.erase(Key{qname, qtype});

  if (best != nullptr) {
    // The sweep above guarantees a returned entry is live and its global
    // flag agrees with its prefix length.
    ECSDNS_DCHECK(best->expiry > now);
    ECSDNS_DCHECK(best->global == (best->network.length() == 0));
    if (strategy_ != nullptr) strategy_->on_hit(best->id);
    ++stats_.hits;
    metrics_.hits.inc();
  } else {
    ++stats_.misses;
    metrics_.misses.inc();
  }
  return best;
}

void EcsCache::insert(const Name& qname, RRType qtype, const Prefix& network,
                      std::uint8_t echo_scope, std::vector<ResourceRecord> records,
                      SimTime now, SimTime ttl) {
  // RFC 7871 §7.3.1: entries are cached at the *effective* scope, so the
  // stored network can never be more specific than the scope echoed to
  // clients, and neither exceeds the family's bit length.
  ECSDNS_DCHECK(network.length() <= network.address().bit_length());
  ECSDNS_DCHECK(network.length() <= static_cast<int>(echo_scope) ||
                network.length() == 0);
  ECSDNS_DCHECK(static_cast<int>(echo_scope) <= network.address().bit_length());
  // RFC 1035 §3.2.1 / RFC 7871: a TTL of zero means "use once, do not
  // cache". Storing it created an entry with expiry == now that the very
  // next lookup swept, inflating insertions/expired_evictions with pure
  // churn — skip it entirely.
  if (ttl <= 0) {
    ++stats_.ttl_zero_skips;
    metrics_.ttl_zero_skips.inc();
    return;
  }
  CacheEntry entry;
  entry.network = network;
  entry.global = network.length() == 0;
  entry.records = std::move(records);
  entry.scope = echo_scope;
  entry.inserted_at = now;
  entry.expiry = now + ttl;
  const auto key = entry.global ? Prefix{} : network;
  entry.approx_bytes = approx_entry_bytes(qname, entry);
  if (strategy_ != nullptr) {
    // A same-network insert replaces the old entry; retire its eviction
    // state before insert_or_assign overwrites (and forgets) its id. The
    // bucket reference is scoped: make_room below relocates the table.
    bool replacing = false;
    {
      auto& bucket = map_[Key{qname, qtype}].bucket_for(network.length());
      if (const CacheEntry* old = bucket.entries.find(key)) {
        forget_entry(*old);
        replacing = true;
      }
    }
    entry.id = next_id_++;
    make_room(replacing ? 0 : 1, entry.approx_bytes, now);
    live_bytes_ += entry.approx_bytes;
    strategy_->on_insert(entry.id, EntryTraits{network.length()});
    index_[entry.id] = EntryLoc{qname, qtype, key, network.length()};
  }
  auto& bucket = map_[Key{qname, qtype}].bucket_for(network.length());
  const auto [slot, inserted] = bucket.entries.insert_or_assign(key, std::move(entry));
  (void)slot;
  if (!inserted) {
    ++stats_.replacements;
    metrics_.replacements.inc();
  } else {
    ++live_entries_;
    metrics_.live_entries.add(1);
  }
  ++stats_.insertions;
  metrics_.insertions.inc();
  note_size();
}

void EcsCache::purge_expired(SimTime now) {
  // Pass 1 sweeps expired entries in place; pass 2 drops questions whose
  // buckets all emptied (erase_if collects keys first, so the question
  // table is never mutated mid-scan).
  map_.for_each([&](auto& slot) {
    auto& buckets = slot.value.by_length;
    for (auto bucket_it = buckets.begin(); bucket_it != buckets.end();) {
      note_expirations(bucket_it->entries.erase_if([&](const auto& e) {
        if (e.value.expiry > now) return false;
        if (strategy_ != nullptr) forget_entry(e.value);
        return true;
      }));
      if (bucket_it->entries.empty()) {
        bucket_it = buckets.erase(bucket_it);
      } else {
        ++bucket_it;
      }
    }
  });
  map_.erase_if([](const auto& slot) { return slot.value.by_length.empty(); });
}

std::size_t EcsCache::entries_for(const Name& qname, RRType qtype, SimTime now) {
  const QuestionEntries* question = map_.find_with(
      Key::hash_of(qname, qtype),
      [&](const Key& k) { return k.qtype == qtype && k.qname == qname; });
  if (question == nullptr) return 0;
  std::size_t count = 0;
  for (const auto& bucket : question->by_length) {
    bucket.entries.for_each([&](const auto& slot) {
      if (slot.value.expiry > now) ++count;
    });
  }
  return count;
}

void EcsCache::clear() {
  map_.clear();
  // The dropped entries must land in a counter or the accounting identity
  // (insertions == live + expired + capacity + cleared + replacements)
  // silently breaks across a clear.
  stats_.cleared_entries += live_entries_;
  metrics_.cleared_entries.inc(live_entries_);
  metrics_.live_entries.add(-static_cast<std::int64_t>(live_entries_));
  live_entries_ = 0;
  live_bytes_ = 0;
  if (strategy_ != nullptr) {
    strategy_->clear();
    index_.clear();
  }
}

void EcsCache::note_size() {
  stats_.max_entries = std::max(stats_.max_entries, live_entries_);
}

void EcsCache::note_expirations(std::size_t n) {
  if (n == 0) return;
  stats_.expired_evictions += n;
  live_entries_ -= n;
  metrics_.expired_evictions.inc(n);
  metrics_.live_entries.add(-static_cast<std::int64_t>(n));
}

void EcsCache::forget_entry(const CacheEntry& entry) {
  ECSDNS_DCHECK(strategy_ != nullptr);
  strategy_->on_erase(entry.id);
  index_.erase(entry.id);
  ECSDNS_DCHECK(live_bytes_ >= entry.approx_bytes);
  live_bytes_ -= entry.approx_bytes;
}

void EcsCache::make_room(std::size_t incoming_entries, std::size_t incoming_bytes,
                         SimTime now) {
  const auto exceeds = [&] {
    if (config_.capacity_entries &&
        live_entries_ + incoming_entries > *config_.capacity_entries) {
      return true;
    }
    if (config_.capacity_bytes &&
        live_bytes_ + incoming_bytes > *config_.capacity_bytes) {
      return true;
    }
    return false;
  };
  // tracked() can hit zero while the bound is still exceeded (a single
  // entry larger than the byte budget); the entry is stored anyway — the
  // bound is a target, not a hard allocator limit.
  while (strategy_->tracked() > 0 && exceeds()) evict_victim(now);
}

void EcsCache::evict_victim(SimTime now) {
  const EntryId victim = strategy_->pick_victim();
  const auto loc_it = index_.find(victim);
  ECSDNS_DCHECK(loc_it != index_.end());
  const EntryLoc loc = loc_it->second;
  QuestionEntries* question =
      map_.find_with(Key::hash_of(loc.qname, loc.qtype), [&](const Key& k) {
        return k.qtype == loc.qtype && k.qname == loc.qname;
      });
  ECSDNS_DCHECK(question != nullptr);
  auto& buckets = question->by_length;
  for (auto bucket_it = buckets.begin(); bucket_it != buckets.end();
       ++bucket_it) {
    if (bucket_it->length != loc.length) continue;
    const CacheEntry* doomed = bucket_it->entries.find(loc.key);
    ECSDNS_DCHECK(doomed != nullptr && doomed->id == victim);
    const SimTime age = now > doomed->inserted_at ? now - doomed->inserted_at : 0;
    metrics_.eviction_age_s.observe(
        static_cast<std::uint64_t>(age / netsim::kSecond));
    forget_entry(*doomed);
    bucket_it->entries.erase(loc.key);
    if (bucket_it->entries.empty()) buckets.erase(bucket_it);
    break;
  }
  if (buckets.empty()) map_.erase(Key{loc.qname, loc.qtype});
  --live_entries_;
  ++stats_.capacity_evictions;
  metrics_.capacity_evictions.inc();
  metrics_.capacity_evictions_policy.inc();
  metrics_.live_entries.add(-1);
}

}  // namespace ecsdns::resolver
