// The ECS-aware resolver cache (RFC 7871 §7.3).
//
// A classic resolver cache maps (qname, qtype) to one record set. Under ECS
// the same question can hold many simultaneous entries, each valid only for
// clients inside the network announced by the authoritative scope. This is
// exactly the mechanism whose cost the paper quantifies in §7 (cache
// blow-up, hit-rate collapse), so the cache exposes detailed accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/annotations.h"
#include "dnscore/flat_hash.h"
#include "dnscore/hashing.h"
#include "dnscore/ip.h"
#include "dnscore/name.h"
#include "dnscore/record.h"
#include "dnscore/types.h"
#include "netsim/geo.h"
#include "obs/metrics.h"
#include "resolver/eviction.h"

namespace ecsdns::resolver {

using dnscore::IpAddress;
using dnscore::Name;
using dnscore::Prefix;
using dnscore::ResourceRecord;
using dnscore::RRType;
using netsim::SimTime;

// One cached answer, valid for clients covered by `network` until `expiry`.
struct CacheEntry {
  Prefix network;   // scope-truncated prefix; length 0 = any client (of family)
  bool global = false;  // scope 0 entries match clients of either family
  std::vector<ResourceRecord> records;
  std::uint8_t scope = 0;  // scope to echo to clients (RFC 7871 §7.2.1)
  SimTime inserted_at = 0;
  SimTime expiry = 0;
  EntryId id = 0;  // eviction handle; 0 in unbounded caches
  std::size_t approx_bytes = 0;  // deterministic sizeof-based estimate
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t expired_evictions = 0;
  std::uint64_t capacity_evictions = 0;  // evicted live by the bound
  std::uint64_t cleared_entries = 0;     // dropped live by clear()
  std::uint64_t replacements = 0;        // overwritten by a same-network insert
  std::uint64_t ttl_zero_skips = 0;      // TTL-0 answers never cached (RFC 1035)
  std::size_t max_entries = 0;  // high-water mark of live entries

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  // Every insertion is either still live or left through exactly one exit;
  // tests assert this identity after arbitrary operation sequences.
  std::uint64_t accounted_insertions(std::size_t live) const {
    return static_cast<std::uint64_t>(live) + expired_evictions +
           capacity_evictions + cleared_entries + replacements;
  }
};

class EcsCache {
 public:
  // Unbounded (the paper's §7 baseline): entries leave only by TTL.
  EcsCache();
  // Bounded: once `config.capacity_entries` / `capacity_bytes` is exceeded,
  // `config.policy` names victims until the cache fits again.
  explicit EcsCache(CacheConfig config);

  // Looks up an answer valid for `client` at virtual time `now`. A nullopt
  // `client` matches only global (scope 0) entries — that is what a cache
  // lookup without any client identity can safely reuse. The returned
  // pointer is valid only until the next insert/purge on this cache
  // (flat-table storage relocates on mutation); read, don't hold.
  const CacheEntry* lookup(const Name& qname, RRType qtype,
                           const std::optional<IpAddress>& client, SimTime now);

  // Inserts an answer valid for `network` (already truncated to the
  // effective scope by the caller's policy). scope 0 is stored as a global
  // entry. Replaces any existing entry with the same network.
  void insert(const Name& qname, RRType qtype, const Prefix& network,
              std::uint8_t echo_scope, std::vector<ResourceRecord> records,
              SimTime now, SimTime ttl);

  // Drops expired entries; called opportunistically and by tests.
  void purge_expired(SimTime now);

  // Live entries for one question (diagnostics; the §6.3 prober counts
  // upstream queries instead, but tests peek here).
  std::size_t entries_for(const Name& qname, RRType qtype, SimTime now);

  std::size_t size() const noexcept { return live_entries_; }
  // Approximate bytes held by live entries; tracked only when bounded.
  std::size_t approx_bytes() const noexcept { return live_bytes_; }
  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }
  void clear();

 private:
  struct Key {
    Name qname;
    RRType qtype;
    bool operator==(const Key&) const = default;
    // Shared with the heterogeneous lookup path so a probe by (qname, qtype)
    // hashes identically to the stored Key without materializing one.
    static std::size_t hash_of(const Name& qname, RRType qtype) noexcept {
      return dnscore::hash_combine(qname.hash(),
                                   static_cast<std::size_t>(qtype));
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return Key::hash_of(k.qname, k.qtype);
    }
  };
  // Entries per question are bucketed by scope length and hashed by block,
  // so a lookup probes one bucket per distinct length instead of scanning
  // every cached subnet — the same longest-prefix-first structure real
  // resolvers (and our IpGeoDb) use. The buckets live in a small vector
  // kept sorted by descending length (a question rarely sees more than a
  // handful of distinct scope lengths), and each bucket is a flat
  // open-addressing table: one allocation per bucket instead of one per
  // entry, which is where the §7 replay used to spend its time.
  struct LengthBucket {
    int length = 0;
    dnscore::FlatHashMap<dnscore::Prefix, CacheEntry, dnscore::PrefixHash>
        entries;
  };
  struct QuestionEntries {
    std::vector<LengthBucket> by_length;  // sorted by length, descending
    LengthBucket& bucket_for(int length);
  };

  // Mirrors into the process-wide obs registry: per-instance accounting
  // stays in `stats_` (the pre-existing API surface), while the registry
  // aggregates across every cache in the process for --metrics-out export.
  struct Metrics {
    obs::CounterHandle hits;
    obs::CounterHandle misses;
    obs::CounterHandle insertions;
    obs::CounterHandle expired_evictions;
    obs::CounterHandle capacity_evictions;
    obs::CounterHandle capacity_evictions_policy;  // per-policy breakdown
    obs::CounterHandle cleared_entries;
    obs::CounterHandle replacements;
    obs::CounterHandle ttl_zero_skips;
    obs::HistogramHandle eviction_age_s;  // log2 age at capacity eviction
    obs::GaugeHandle live_entries;
  };

  // Where a live entry sits, so a victim named by id can be erased without
  // scanning. Maintained only when bounded — the unbounded hot path (the
  // perf-gated §7 replay) never touches it.
  struct EntryLoc {
    Name qname;
    RRType qtype = RRType::A;
    Prefix key;  // bucket key: zero prefix for global entries
    int length = 0;
  };

  dnscore::FlatHashMap<Key, QuestionEntries, KeyHash> map_;
  CacheConfig config_;
  std::unique_ptr<EvictionStrategy> strategy_;  // null when unbounded
  std::unordered_map<EntryId, EntryLoc> index_;
  EntryId next_id_ = 1;
  CacheStats stats_;
  std::size_t live_entries_ = 0;
  std::size_t live_bytes_ = 0;
  Metrics metrics_;

  void register_metrics();
  void note_size();
  void note_expirations(std::size_t n);
  // Drops a live entry from the eviction bookkeeping (strategy + id index +
  // byte accounting). No-op stats-wise; callers count the exit themselves.
  // The eviction path runs inside insert(), i.e. on the resolution hot
  // path, and only ever shrinks structures — it must not allocate.
  ECSDNS_NOALLOC void forget_entry(const CacheEntry& entry);
  // Evicts strategy-named victims until an insert adding `incoming_entries`
  // entries and `incoming_bytes` bytes fits the configured bound — room is
  // made BEFORE the insert, so the bound is never observably exceeded.
  ECSDNS_NOALLOC void make_room(std::size_t incoming_entries,
                                std::size_t incoming_bytes, SimTime now);
  // Evicts exactly one strategy-named victim.
  ECSDNS_NOALLOC void evict_victim(SimTime now);
};

}  // namespace ecsdns::resolver
