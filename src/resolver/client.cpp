#include "resolver/client.h"

#include "dnscore/message_view.h"

namespace ecsdns::resolver {

std::optional<std::vector<std::uint8_t>> StubClient::exchange(
    const IpAddress& server, const Name& qname, RRType qtype,
    const std::optional<dnscore::EcsOption>& ecs) {
  Message q = Message::make_query(next_id_++, qname, qtype);
  q.opt = dnscore::OptRecord{};
  if (ecs) q.set_ecs(*ecs);
  auto query_wire = transport_->pool().acquire();
  {
    dnscore::WireWriter writer(query_wire);
    q.serialize_into(writer);
  }
  auto wire = transport_->exchange(server, query_wire);
  transport_->pool().release(std::move(query_wire));
  return wire;
}

std::optional<Message> StubClient::query(const IpAddress& server, const Name& qname,
                                         RRType qtype,
                                         const std::optional<dnscore::EcsOption>& ecs) {
  auto wire = exchange(server, qname, qtype, ecs);
  if (!wire) return std::nullopt;
  std::optional<Message> parsed;
  try {
    parsed = Message::parse({wire->data(), wire->size()});
  } catch (const dnscore::WireFormatError&) {
  }
  transport_->pool().release(std::move(*wire));
  return parsed;
}

std::optional<dnscore::RCode> StubClient::probe(
    const IpAddress& server, const Name& qname, RRType qtype,
    const std::optional<dnscore::EcsOption>& ecs) {
  auto wire = exchange(server, qname, qtype, ecs);
  if (!wire) return std::nullopt;
  std::optional<dnscore::RCode> rcode;
  try {
    rcode = dnscore::MessageView({wire->data(), wire->size()}).rcode();
  } catch (const dnscore::WireFormatError&) {
  }
  transport_->pool().release(std::move(*wire));
  return rcode;
}

}  // namespace ecsdns::resolver
