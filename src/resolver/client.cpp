#include "resolver/client.h"

#include "dnscore/message_view.h"

namespace ecsdns::resolver {

void StubClient::attach(const netsim::GeoPoint& location) {
  // Clients never answer queries; they only need to exist for latency
  // computation.
  network_.attach(own_address_, location,
                  [](const netsim::Datagram&)
                      -> std::optional<std::vector<std::uint8_t>> {
                    return std::nullopt;
                  });
}

std::optional<Message> StubClient::query(const IpAddress& server, const Name& qname,
                                         RRType qtype,
                                         const std::optional<dnscore::EcsOption>& ecs) {
  Message q = Message::make_query(next_id_++, qname, qtype);
  q.opt = dnscore::OptRecord{};
  if (ecs) q.set_ecs(*ecs);
  auto query_wire = network_.buffer_pool().acquire();
  {
    dnscore::WireWriter writer(query_wire);
    q.serialize_into(writer);
  }
  auto wire = network_.round_trip(own_address_, server, query_wire);
  network_.buffer_pool().release(std::move(query_wire));
  if (!wire) return std::nullopt;
  std::optional<Message> parsed;
  try {
    parsed = Message::parse({wire->data(), wire->size()});
  } catch (const dnscore::WireFormatError&) {
  }
  network_.buffer_pool().release(std::move(*wire));
  return parsed;
}

std::optional<dnscore::RCode> StubClient::probe(
    const IpAddress& server, const Name& qname, RRType qtype,
    const std::optional<dnscore::EcsOption>& ecs) {
  Message q = Message::make_query(next_id_++, qname, qtype);
  q.opt = dnscore::OptRecord{};
  if (ecs) q.set_ecs(*ecs);
  auto query_wire = network_.buffer_pool().acquire();
  {
    dnscore::WireWriter writer(query_wire);
    q.serialize_into(writer);
  }
  auto wire = network_.round_trip(own_address_, server, query_wire);
  network_.buffer_pool().release(std::move(query_wire));
  if (!wire) return std::nullopt;
  std::optional<dnscore::RCode> rcode;
  try {
    rcode = dnscore::MessageView({wire->data(), wire->size()}).rcode();
  } catch (const dnscore::WireFormatError&) {
  }
  network_.buffer_pool().release(std::move(*wire));
  return rcode;
}

}  // namespace ecsdns::resolver
