#include "resolver/client.h"

namespace ecsdns::resolver {

void StubClient::attach(const netsim::GeoPoint& location) {
  // Clients never answer queries; they only need to exist for latency
  // computation.
  network_.attach(own_address_, location,
                  [](const netsim::Datagram&)
                      -> std::optional<std::vector<std::uint8_t>> {
                    return std::nullopt;
                  });
}

std::optional<Message> StubClient::query(const IpAddress& server, const Name& qname,
                                         RRType qtype,
                                         const std::optional<dnscore::EcsOption>& ecs) {
  Message q = Message::make_query(next_id_++, qname, qtype);
  q.opt = dnscore::OptRecord{};
  if (ecs) q.set_ecs(*ecs);
  const auto wire = network_.round_trip(own_address_, server, q.serialize());
  if (!wire) return std::nullopt;
  try {
    return Message::parse({wire->data(), wire->size()});
  } catch (const dnscore::WireFormatError&) {
    return std::nullopt;
  }
}

}  // namespace ecsdns::resolver
