#include "resolver/eviction.h"

#include <list>

#include "dnscore/contracts.h"

namespace ecsdns::resolver {

std::string to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kLfu: return "lfu";
    case EvictionPolicy::kSieve: return "sieve";
    case EvictionPolicy::kScopeAware: return "scope";
  }
  return "unknown";
}

std::optional<EvictionPolicy> eviction_policy_from_string(const std::string& text) {
  if (text == "lru") return EvictionPolicy::kLru;
  if (text == "lfu") return EvictionPolicy::kLfu;
  if (text == "sieve") return EvictionPolicy::kSieve;
  if (text == "scope" || text == "scope-aware") return EvictionPolicy::kScopeAware;
  return std::nullopt;
}

namespace {

// LRU: victim is the entry with the oldest access stamp. The stamp is an
// internal logical clock (one tick per insert/hit), so victim order depends
// only on the event sequence, never on EntryId values.
class LruStrategy final : public EvictionStrategy {
 public:
  void on_insert(EntryId id, const EntryTraits&) override { touch(id); }

  void on_hit(EntryId id) override {
    ECSDNS_DCHECK(stamp_of_.count(id) != 0);
    order_.erase(stamp_of_[id]);
    touch(id);
  }

  void on_erase(EntryId id) override {
    auto it = stamp_of_.find(id);
    ECSDNS_DCHECK(it != stamp_of_.end());
    order_.erase(it->second);
    stamp_of_.erase(it);
  }

  EntryId pick_victim() override {
    ECSDNS_DCHECK(!order_.empty());
    return order_.begin()->second;
  }

  void clear() override {
    order_.clear();
    stamp_of_.clear();
  }

  std::size_t tracked() const override { return stamp_of_.size(); }

 private:
  void touch(EntryId id) {
    const std::uint64_t stamp = clock_++;
    order_[stamp] = id;
    stamp_of_[id] = stamp;
  }

  std::uint64_t clock_ = 0;
  std::map<std::uint64_t, EntryId> order_;  // stamp -> id, oldest first
  std::unordered_map<EntryId, std::uint64_t> stamp_of_;
};

// LFU: victim is the least-frequently-hit entry; ties break toward the
// least recently used (oldest stamp) so the order is total and stable.
class LfuStrategy final : public EvictionStrategy {
 public:
  void on_insert(EntryId id, const EntryTraits&) override { place(id, 1); }

  void on_hit(EntryId id) override {
    auto it = rank_of_.find(id);
    ECSDNS_DCHECK(it != rank_of_.end());
    const std::uint64_t freq = it->second.first;
    order_.erase(it->second);
    place(id, freq + 1);
  }

  void on_erase(EntryId id) override {
    auto it = rank_of_.find(id);
    ECSDNS_DCHECK(it != rank_of_.end());
    order_.erase(it->second);
    rank_of_.erase(it);
  }

  EntryId pick_victim() override {
    ECSDNS_DCHECK(!order_.empty());
    return order_.begin()->second;
  }

  void clear() override {
    order_.clear();
    rank_of_.clear();
  }

  std::size_t tracked() const override { return rank_of_.size(); }

 private:
  using Rank = std::pair<std::uint64_t, std::uint64_t>;  // (freq, stamp)

  void place(EntryId id, std::uint64_t freq) {
    const Rank rank{freq, clock_++};
    order_[rank] = id;
    rank_of_[id] = rank;
  }

  std::uint64_t clock_ = 0;
  std::map<Rank, EntryId> order_;  // lowest (freq, stamp) first
  std::unordered_map<EntryId, Rank> rank_of_;
};

// SIEVE (Zhang et al., NSDI'24), the core of S3-FIFO's small queue: a FIFO
// with one visited bit per entry and a hand that sweeps from the oldest
// entry toward the newest. Visited entries get a second chance (bit
// cleared, hand moves on); the first unvisited entry is the victim. Hits
// only set a bit — no list surgery — which is what makes SIEVE cheap; the
// hand's position persists across evictions.
class SieveStrategy final : public EvictionStrategy {
 public:
  void on_insert(EntryId id, const EntryTraits&) override {
    queue_.push_back(Node{id, false});
    where_[id] = std::prev(queue_.end());
  }

  void on_hit(EntryId id) override {
    auto it = where_.find(id);
    ECSDNS_DCHECK(it != where_.end());
    it->second->visited = true;
  }

  void on_erase(EntryId id) override {
    auto it = where_.find(id);
    ECSDNS_DCHECK(it != where_.end());
    // If the hand rests on the erased node, advance it to the next survivor
    // toward the newest end; the sweep continues from there regardless of
    // why the node left, so the outcome is independent of erase order.
    if (hand_ == it->second) ++hand_;
    queue_.erase(it->second);
    where_.erase(it);
  }

  EntryId pick_victim() override {
    ECSDNS_DCHECK(!queue_.empty());
    if (hand_ == queue_.end()) hand_ = queue_.begin();
    while (hand_->visited) {
      hand_->visited = false;
      if (++hand_ == queue_.end()) hand_ = queue_.begin();
    }
    return hand_->id;
  }

  void clear() override {
    queue_.clear();
    where_.clear();
    hand_ = queue_.end();
  }

  std::size_t tracked() const override { return where_.size(); }

 private:
  struct Node {
    EntryId id;
    bool visited;
  };

  std::list<Node> queue_;  // front = oldest, back = newest
  std::list<Node>::iterator hand_ = queue_.end();
  std::unordered_map<EntryId, std::list<Node>::iterator> where_;
};

// Scope-aware: under ECS blow-up a question accumulates many overlapping
// scoped entries plus (often) one broad or global answer that covers most
// clients. Evicting the most-specific prefixes first collapses the overlap
// while the shortest covering entry — the one that can still answer the
// widest client population — survives longest; /0 (global) entries go
// last. Within one prefix length the tie breaks LRU.
class ScopeAwareStrategy final : public EvictionStrategy {
 public:
  void on_insert(EntryId id, const EntryTraits& traits) override {
    place(id, traits.scope_bits);
  }

  void on_hit(EntryId id) override {
    auto it = rank_of_.find(id);
    ECSDNS_DCHECK(it != rank_of_.end());
    const int neg_scope = it->second.first;
    order_.erase(it->second);
    place(id, -neg_scope);
  }

  void on_erase(EntryId id) override {
    auto it = rank_of_.find(id);
    ECSDNS_DCHECK(it != rank_of_.end());
    order_.erase(it->second);
    rank_of_.erase(it);
  }

  EntryId pick_victim() override {
    ECSDNS_DCHECK(!order_.empty());
    return order_.begin()->second;
  }

  void clear() override {
    order_.clear();
    rank_of_.clear();
  }

  std::size_t tracked() const override { return rank_of_.size(); }

 private:
  // (-scope_bits, stamp): longest prefixes sort first, global (/0) last,
  // oldest stamp first within a length.
  using Rank = std::pair<int, std::uint64_t>;

  void place(EntryId id, int scope_bits) {
    const Rank rank{-scope_bits, clock_++};
    order_[rank] = id;
    rank_of_[id] = rank;
  }

  std::uint64_t clock_ = 0;
  std::map<Rank, EntryId> order_;
  std::unordered_map<EntryId, Rank> rank_of_;
};

}  // namespace

std::unique_ptr<EvictionStrategy> make_eviction_strategy(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return std::make_unique<LruStrategy>();
    case EvictionPolicy::kLfu: return std::make_unique<LfuStrategy>();
    case EvictionPolicy::kSieve: return std::make_unique<SieveStrategy>();
    case EvictionPolicy::kScopeAware: return std::make_unique<ScopeAwareStrategy>();
  }
  ECSDNS_CHECK(false);
  return nullptr;
}

}  // namespace ecsdns::resolver
