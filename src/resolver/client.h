// A stub client: the measurement machine's "dig". Builds real queries,
// sends them through an injected transport (simulated network by default,
// a live UDP socket via live::LiveTransport), and parses the responses.
#pragma once

#include <optional>

#include "dnscore/message.h"
#include "netsim/network.h"
#include "resolver/transport.h"

namespace ecsdns::resolver {

using dnscore::IpAddress;
using dnscore::Message;
using dnscore::Name;
using dnscore::RRType;

class StubClient {
 public:
  // Simulated-network client (the historical constructor): owns a
  // SimTransport at `own_address`.
  StubClient(netsim::Network& network, IpAddress own_address)
      : sim_(std::in_place, network, std::move(own_address)),
        transport_(&*sim_) {}

  // Seam-injection constructor: queries flow through `transport`, whose
  // lifetime the caller manages (it must outlive the client).
  explicit StubClient(QueryTransport& transport) : transport_(&transport) {}

  // The client's source address; meaningful for the simulated transport
  // only (a live socket's address belongs to the kernel).
  const IpAddress& address() const noexcept {
    static const IpAddress kNone{};
    return sim_ ? sim_->address() : kNone;
  }

  // Places the client on the map (it must be attached to send). No-op for
  // injected transports, which manage their own endpoint.
  void attach(const netsim::GeoPoint& location) {
    if (sim_) sim_->attach(location);
  }

  // Queries `server` for (qname, qtype). `ecs` attaches a client-chosen ECS
  // option — how the paper submits arbitrary prefixes to open resolvers.
  // nullopt on timeout/drop.
  std::optional<Message> query(const IpAddress& server, const Name& qname,
                               RRType qtype,
                               const std::optional<dnscore::EcsOption>& ecs =
                                   std::nullopt);

  // Fire-and-check variant for callers that only need the response RCODE
  // (cache warmers, census probers): the response is validated and its
  // header read through MessageView, never materialized, and both wire
  // buffers are recycled through the transport pool. nullopt on
  // timeout/drop or an unparseable response — exactly when query() would
  // return nullopt.
  std::optional<dnscore::RCode> probe(const IpAddress& server, const Name& qname,
                                      RRType qtype,
                                      const std::optional<dnscore::EcsOption>& ecs =
                                          std::nullopt);

 private:
  // Serializes the next query into a pooled buffer and runs one exchange.
  std::optional<std::vector<std::uint8_t>> exchange(
      const IpAddress& server, const Name& qname, RRType qtype,
      const std::optional<dnscore::EcsOption>& ecs);

  std::optional<SimTransport> sim_;  // engaged by the network constructor
  QueryTransport* transport_;
  std::uint16_t next_id_ = 1;
};

}  // namespace ecsdns::resolver
