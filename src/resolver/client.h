// A stub client: the measurement machine's "dig". Builds real queries,
// sends them through the simulated network, and parses the responses.
#pragma once

#include <optional>

#include "dnscore/message.h"
#include "netsim/network.h"

namespace ecsdns::resolver {

using dnscore::IpAddress;
using dnscore::Message;
using dnscore::Name;
using dnscore::RRType;

class StubClient {
 public:
  StubClient(netsim::Network& network, IpAddress own_address)
      : network_(network), own_address_(std::move(own_address)) {}

  const IpAddress& address() const noexcept { return own_address_; }

  // Places the client on the map (it must be attached to send).
  void attach(const netsim::GeoPoint& location);

  // Queries `server` for (qname, qtype). `ecs` attaches a client-chosen ECS
  // option — how the paper submits arbitrary prefixes to open resolvers.
  // nullopt on timeout/drop.
  std::optional<Message> query(const IpAddress& server, const Name& qname,
                               RRType qtype,
                               const std::optional<dnscore::EcsOption>& ecs =
                                   std::nullopt);

  // Fire-and-check variant for callers that only need the response RCODE
  // (cache warmers, census probers): the response is validated and its
  // header read through MessageView, never materialized, and both wire
  // buffers are recycled through the network pool. nullopt on timeout/drop
  // or an unparseable response — exactly when query() would return nullopt.
  std::optional<dnscore::RCode> probe(const IpAddress& server, const Name& qname,
                                      RRType qtype,
                                      const std::optional<dnscore::EcsOption>& ecs =
                                          std::nullopt);

 private:
  netsim::Network& network_;
  IpAddress own_address_;
  std::uint16_t next_id_ = 1;
};

}  // namespace ecsdns::resolver
