// Ingress forwarders and hidden resolvers (§3 terminology).
//
// A Forwarder is the "open ingress resolver" of the paper: typically a home
// router that relays client queries verbatim to an upstream resolver. A
// chain of forwarders models the hidden-resolver topologies of §8.2 — the
// intermediate hop's *own source address* is what the egress resolver will
// put into ECS, which is exactly how hidden resolvers derail CDN mapping.
#pragma once

#include <optional>

#include "dnscore/message.h"
#include "netsim/network.h"

namespace ecsdns::resolver {

using dnscore::IpAddress;
using dnscore::Message;

struct ForwarderConfig {
  // Relay the payload untouched (most home devices "blindly forward",
  // including any ECS option the client attached).
  bool pass_client_ecs = true;
  // If set, the forwarder overwrites/installs an ECS option carrying the
  // /24 of the immediate sender before relaying — the behavior of an
  // ECS-aware intermediary that does not trust its downstream.
  bool stamp_sender_subnet = false;
  int stamp_bits = 24;
};

class Forwarder {
 public:
  Forwarder(ForwarderConfig config, netsim::Network& network, IpAddress own_address,
            IpAddress upstream);

  const IpAddress& address() const noexcept { return own_address_; }
  const IpAddress& upstream() const noexcept { return upstream_; }

  std::optional<std::vector<std::uint8_t>> relay(const netsim::Datagram& dgram);
  void attach(const netsim::GeoPoint& location);

  std::uint64_t relayed() const noexcept { return relayed_; }

 private:
  ForwarderConfig config_;
  netsim::Network& network_;
  IpAddress own_address_;
  IpAddress upstream_;
  std::uint64_t relayed_ = 0;
};

}  // namespace ecsdns::resolver
