// Pluggable eviction policies for memory-bounded ECS caches.
//
// The paper's §7 cache experiments assume an infinite cache: every entry
// lives for exactly its TTL. Production resolvers evict, and under ECS
// blow-up the *choice* of victim decides how much of the blow-up cost
// lands on the hit rate. This header is the seam both cache
// implementations (resolver::EcsCache and measurement::cache_sim) share:
// a capacity bound plus a strategy that observes inserts/hits/erases and
// names a victim under pressure.
//
// Every strategy is strictly deterministic — victim choice is a pure
// function of the observed event sequence (internal logical clocks, no
// wall time, no randomness) — so bounded replays stay bit-identical
// across shard and thread counts, extending the serial-equivalence
// oracle to bounded caches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace ecsdns::resolver {

// Which victim-selection strategy a bounded cache runs.
enum class EvictionPolicy : std::uint8_t {
  kLru,        // least recently used
  kLfu,        // least frequently used, LRU tie-break
  kSieve,      // SIEVE / S3-FIFO-style second-chance FIFO (lazy promotion)
  kScopeAware, // collapse overlapping ECS scopes: most-specific prefix first
};

std::string to_string(EvictionPolicy policy);
// Parses "lru" / "lfu" / "sieve" / "scope"; nullopt on anything else.
std::optional<EvictionPolicy> eviction_policy_from_string(const std::string& text);
// All four policies, in a stable order benches and tests sweep over.
inline constexpr EvictionPolicy kAllEvictionPolicies[] = {
    EvictionPolicy::kLru, EvictionPolicy::kLfu, EvictionPolicy::kSieve,
    EvictionPolicy::kScopeAware};

// Capacity configuration threaded from ResolverConfig / CacheSimOptions
// down to the cache. Unset bounds mean "infinite", the paper's baseline
// assumption; byte accounting is approximate (sizeof-based, deterministic)
// and meant for sizing studies, not allocator-exact budgets.
struct CacheConfig {
  std::optional<std::size_t> capacity_entries;
  std::optional<std::size_t> capacity_bytes;
  EvictionPolicy policy = EvictionPolicy::kLru;

  bool bounded() const noexcept {
    return capacity_entries.has_value() || capacity_bytes.has_value();
  }
};

// Opaque handle a cache assigns per live entry; strategies never interpret
// it beyond identity.
using EntryId = std::uint64_t;

// What a strategy may know about an entry beyond its id. scope_bits is the
// ECS prefix length of the entry's block (0 = global answer); only the
// scope-aware policy reads it.
struct EntryTraits {
  int scope_bits = 0;
};

// Victim-selection engine. The owning cache reports every lifecycle event:
//   on_insert  — a new entry became live (id is fresh, never reused while
//                live);
//   on_hit     — a lookup served the entry;
//   on_erase   — the entry left the cache for any reason (TTL expiry,
//                replacement, capacity eviction after pick_victim, clear).
// pick_victim() names the entry to evict next; the cache then erases it
// and reports that erase back through on_erase(). It must only be called
// while at least one entry is tracked.
class EvictionStrategy {
 public:
  virtual ~EvictionStrategy() = default;

  virtual void on_insert(EntryId id, const EntryTraits& traits) = 0;
  virtual void on_hit(EntryId id) = 0;
  virtual void on_erase(EntryId id) = 0;
  virtual EntryId pick_victim() = 0;
  virtual void clear() = 0;
  virtual std::size_t tracked() const = 0;
};

std::unique_ptr<EvictionStrategy> make_eviction_strategy(EvictionPolicy policy);

}  // namespace ecsdns::resolver
