#include "resolver/forwarder.h"

#include "dnscore/message_view.h"

namespace ecsdns::resolver {

Forwarder::Forwarder(ForwarderConfig config, netsim::Network& network,
                     IpAddress own_address, IpAddress upstream)
    : config_(config),
      network_(network),
      own_address_(std::move(own_address)),
      upstream_(std::move(upstream)) {}

std::optional<std::vector<std::uint8_t>> Forwarder::relay(
    const netsim::Datagram& dgram) {
  ++relayed_;
  if (!config_.pass_client_ecs || config_.stamp_sender_subnet) {
    try {
      if (!config_.stamp_sender_subnet) {
        // Strip-only fast path: when the query carries no ECS option there
        // is nothing to rewrite — validate it in place and relay the
        // original bytes, skipping the parse → serialize round-trip.
        const dnscore::MessageView view(dgram.payload);
        if (!view.has_ecs()) {
          return network_.round_trip(own_address_, upstream_, dgram.payload);
        }
      }
      Message m = Message::parse({dgram.payload.data(), dgram.payload.size()});
      if (!config_.pass_client_ecs) m.clear_ecs();
      if (config_.stamp_sender_subnet) {
        m.set_ecs(dnscore::EcsOption::for_query(
            dnscore::Prefix{dgram.src, config_.stamp_bits}));
      }
      auto wire = network_.buffer_pool().acquire();
      {
        dnscore::WireWriter writer(wire);
        m.serialize_into(writer);
      }
      auto out = network_.round_trip(own_address_, upstream_, wire);
      network_.buffer_pool().release(std::move(wire));
      return out;
    } catch (const dnscore::WireFormatError&) {
      return std::nullopt;
    }
  }
  // Blind relay: bytes in, bytes out.
  return network_.round_trip(own_address_, upstream_, dgram.payload);
}

void Forwarder::attach(const netsim::GeoPoint& location) {
  network_.attach(own_address_, location,
                  [this](const netsim::Datagram& dgram) { return relay(dgram); });
}

}  // namespace ecsdns::resolver
