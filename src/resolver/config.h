// Resolver ECS behavior configuration.
//
// Every behavior the paper catalogs — compliant or deviant — is a knob
// here, so a single RecursiveResolver engine can impersonate any resolver
// the study observed. Factory presets named after the paper's categories
// build the common configurations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnscore/ip.h"
#include "dnscore/name.h"
#include "netsim/geo.h"
#include "resolver/eviction.h"

namespace ecsdns::resolver {

using dnscore::IpAddress;
using dnscore::Name;
using dnscore::Prefix;
using netsim::SimTime;

// §6.1 — when does the resolver attach an ECS option to upstream queries?
enum class ProbingStrategy {
  // Pattern 1: ECS on 100% of A/AAAA queries (whitelist-everything or
  // indiscriminate; the paper cannot distinguish and neither do we).
  kAlways,
  // Pattern 2: ECS consistently for specific "probe hostnames", with
  // caching disabled for those names (repeated queries within TTL).
  kProbeHostnamesNoCache,
  // Pattern 3: an ECS probe at most once per interval (multiple of 30 min),
  // carrying the loopback address; plain queries otherwise.
  kPeriodicLoopbackProbe,
  // Pattern 4: ECS for specific hostnames, but only on a cache miss.
  kProbeHostnamesOnMiss,
  // OpenDNS-style: ECS only toward whitelisted zones.
  kZoneWhitelist,
  // Does not speak ECS at all.
  kNever,
  // No discernible pattern: attaches ECS with a fixed per-query
  // probability (the 387 resolvers the paper could not classify).
  kIrregular,
};

std::string to_string(ProbingStrategy s);

// §6.3 — how does the resolver apply the authoritative scope to caching?
enum class ScopeHandling {
  // Correct: cache at min(scope, source), capped by the privacy limit.
  kHonor,
  // Over half the studied resolvers: reuse cached answers for any client.
  kIgnoreScope,
};

std::string to_string(ScopeHandling s);

// What the resolver puts in the ECS address field when the incoming query
// carried source prefix length 0 (or when probing without client data).
enum class SelfIdentification {
  kOwnPublicAddress,  // the RFC's intent, and the paper's recommendation
  kLoopback,          // the confusing-but-observed 127.0.0.1 behavior
  kPrivateBlock,      // the PowerDNS misconfiguration (10.0.0.0/8)
  kOmitOption,        // send no ECS at all
};

struct ResolverConfig {
  std::string label = "resolver";

  ProbingStrategy probing = ProbingStrategy::kAlways;
  // Probe cadence for kPeriodicLoopbackProbe (the paper saw multiples of
  // 30 minutes).
  SimTime probe_interval = 30 * netsim::kMinute;
  // Names treated as probe hostnames by the kProbeHostnames* strategies; a
  // name matches if it equals an entry or falls under it.
  std::vector<Name> probe_hostnames;
  // Zones toward which kZoneWhitelist sends ECS.
  std::vector<Name> zone_whitelist;
  // ECS probability for kIrregular (deterministically seeded per resolver).
  double irregular_probability = 0.5;
  std::uint64_t irregular_seed = 0;

  // --- source prefix construction (§6.2, Table 1) ---
  int v4_source_bits = 24;  // RFC recommends <= 24
  int v6_source_bits = 56;  // RFC recommends <= 56
  // "Jammed last byte": claim source length 32 while fixing the final
  // octet, effectively revealing 24 bits but advertising 32 (the dominant
  // Chinese-AS behavior in both datasets).
  bool jam_last_octet = false;
  std::uint8_t jam_octet_value = 0x01;
  // Some resolvers alternate between several source lengths (Table 1's
  // combination rows). When non-empty this cycles per upstream ECS query,
  // overriding v4_source_bits/jam_last_octet.
  struct SourceLengthVariant {
    int bits = 24;
    bool jam = false;
  };
  std::vector<SourceLengthVariant> v4_variants;
  // Same alternation for IPv6 prefixes (Table 1's "64,96,128 (IPv6)" row).
  std::vector<int> v6_variants;

  // --- client-supplied ECS handling ---
  // Accept an ECS option arriving with the client query (the 32 resolvers
  // of §6.3.1 that let the authors submit arbitrary prefixes). When false
  // the resolver derives ECS from the immediate sender address — the
  // behavior that makes hidden resolvers poison user mapping (§8.2).
  bool accept_client_ecs = false;
  // Cap applied to client-supplied prefixes and to authoritative scopes.
  // 24 for compliant resolvers, 22 for the clamp-22 deviants, 32 for the
  // long-prefix acceptors that violate the privacy recommendation.
  int max_cache_prefix_v4 = 24;
  int max_cache_prefix_v6 = 56;

  ScopeHandling scope_handling = ScopeHandling::kHonor;
  // Extension (the paper's §9 asks whether any resolver does this): learn
  // the authoritative scope per zone and truncate future source prefixes
  // to it — revealing no more client bits than the zone demonstrably uses.
  bool adapt_source_to_scope = false;
  // The §6.3.2 misconfigured resolver: does not cache (or reuse) responses
  // whose scope is 0.
  bool cache_scope_zero = true;

  SelfIdentification self_identification = SelfIdentification::kOwnPublicAddress;
  // Clients that may have their real subnet forwarded; when non-empty and a
  // client is not covered, the resolver substitutes self-identification
  // (the PowerDNS whitelist behavior of §8.1).
  std::vector<Prefix> client_ecs_whitelist;

  // Violates RFC outright: sends ECS even on queries to root servers
  // (§6.1 found 15 such resolvers in DITL data).
  bool ecs_to_root_servers = false;
  // QNAME minimization (RFC 7816): sends only the label under the current
  // delegation point to root/TLD servers (as an NS query), so
  // infrastructure servers never learn the full hostname — a privacy
  // measure complementary to the ECS hygiene the paper advocates.
  bool qname_minimization = false;
  // Sends ECS on NS queries (answered with zero scope per the RFC).
  bool ecs_on_ns_queries = false;

  // --- cache memory bound ---
  // Default-constructed (unbounded) reproduces the paper's infinite-cache
  // assumption; set capacity_entries/capacity_bytes + policy to study
  // eviction under ECS blow-up.
  CacheConfig cache;

  // --- presets matching the paper's behavior classes ---
  static ResolverConfig correct();              // §6.3.2 category 1 (76 resolvers)
  static ResolverConfig google_like();          // /24, always-send, correct caching
  static ResolverConfig scope_ignorer();        // §6.3.2 category 2 (103 resolvers)
  static ResolverConfig long_prefix_acceptor(); // §6.3.2 category 3 (15 resolvers)
  static ResolverConfig clamp22();              // §6.3.2 category 4 (8 resolvers)
  static ResolverConfig private_block_bug();    // §6.3.2 category 5 (1 resolver)
  static ResolverConfig jammed_32();            // dominant-AS /32 jammed last byte
  static ResolverConfig periodic_loopback_prober();  // §6.1 pattern 3 (32)
  static ResolverConfig hostname_prober_nocache();   // §6.1 pattern 2 (258)
  static ResolverConfig hostname_prober_onmiss();    // §6.1 pattern 4 (88)
};

}  // namespace ecsdns::resolver
