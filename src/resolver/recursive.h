// The recursive (egress) resolver engine.
//
// Speaks real DNS wire format on the simulated network: accepts client
// queries, performs iterative resolution from root hints (referral walking
// with an NS cache), maintains the RFC 7871 ECS answer cache, and applies
// the configured ECS behavior — compliant or any of the deviant behaviors
// the paper catalogs — when talking to authoritative servers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/hashing.h"
#include "dnscore/message.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "resolver/cache.h"
#include "resolver/config.h"

namespace ecsdns::resolver {

using dnscore::Message;
using dnscore::Question;
using dnscore::RRType;

// What the resolver believes about the client it is acting for — either the
// immediate sender's full address, or a subnet announced via client ECS.
struct ClientIdentity {
  IpAddress address;
  int bits = 32;  // how many leading bits of `address` are meaningful
  bool from_client_ecs = false;
  // The client opted out of ECS (source prefix length 0) and the resolver
  // is configured to honor that by omitting the option upstream.
  bool opted_out = false;
};

// Counters the experiments and tests read.
struct ResolverCounters {
  std::uint64_t client_queries = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t upstream_ecs_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t negative_cache_hits = 0;
  // Retries without EDNS after a FORMERR (pre-RFC 6891 servers).
  std::uint64_t edns_fallbacks = 0;
  std::uint64_t servfails = 0;
  std::uint64_t referrals_followed = 0;
  std::uint64_t cname_restarts = 0;
};

class RecursiveResolver {
 public:
  RecursiveResolver(ResolverConfig config, netsim::Network& network,
                    IpAddress own_address, std::vector<IpAddress> root_hints);

  const ResolverConfig& config() const noexcept { return config_; }
  ResolverConfig& mutable_config() noexcept { return config_; }
  const IpAddress& address() const noexcept { return own_address_; }

  // Serves one client query end to end; nullopt drops the query.
  std::optional<Message> handle_client_query(const Message& query,
                                             const IpAddress& sender);

  // Registers the resolver on the network.
  void attach(const netsim::GeoPoint& location);

  const ResolverCounters& counters() const noexcept { return counters_; }
  void reset_counters() { counters_ = ResolverCounters{}; }
  EcsCache& cache() noexcept { return cache_; }

 private:
  struct Resolution {
    dnscore::RCode rcode = dnscore::RCode::SERVFAIL;
    std::vector<dnscore::ResourceRecord> answers;
    // Scope to echo to the client (nullopt: no ECS in the response).
    std::optional<int> echo_scope;
  };

  ClientIdentity identify_client(const Message& query, const IpAddress& sender);
  // The ECS option to attach upstream, if any, per the probing strategy and
  // prefix policy. `infrastructure_hop` marks queries to root/TLD servers,
  // which compliant resolvers never send ECS to.
  std::optional<dnscore::EcsOption> upstream_ecs(const Question& question,
                                                 const ClientIdentity& identity,
                                                 bool infrastructure_hop,
                                                 bool cache_missed);
  // Builds the announced prefix from a client identity (applies truncation,
  // the jam-last-octet deviation, and — when enabled — the per-zone scope
  // adaptation learned from earlier responses).
  dnscore::EcsOption build_option(const Question& question,
                                  const ClientIdentity& identity) const;
  std::optional<ClientIdentity> self_identity() const;

  Resolution resolve(const Question& question, const ClientIdentity& identity);
  // One iterative descent for a single owner name (no CNAME restarts).
  std::optional<Message> query_authoritatives(const Question& question,
                                              const ClientIdentity& identity);
  struct NsSet {
    dnscore::Name zone;  // the delegation point these servers cover
    std::vector<IpAddress> addresses;
  };
  NsSet nameservers_for(const dnscore::Name& qname);
  void cache_referral(const Message& response);
  void cache_answer(const Question& question, const ClientIdentity& identity,
                    const Message& response, Resolution& out);
  bool name_matches_probe_list(const dnscore::Name& qname) const;
  bool zone_whitelisted(const dnscore::Name& qname) const;
  bool caching_disabled_for(const dnscore::Name& qname) const;

  ResolverConfig config_;
  netsim::Network& network_;
  IpAddress own_address_;
  std::vector<IpAddress> root_hints_;

  EcsCache cache_;
  struct NsEntry {
    std::vector<IpAddress> addresses;
    SimTime expiry = 0;
  };
  std::unordered_map<dnscore::Name, NsEntry, dnscore::NameHash> ns_cache_;

  // Negative cache (RFC 2308): NXDOMAIN / NoData answers are remembered so
  // repeated misses do not hammer the authoritatives. Negative answers are
  // never client-tailored, so entries are global.
  struct NegativeKey {
    dnscore::Name qname;
    RRType qtype;
    bool operator==(const NegativeKey&) const = default;
  };
  struct NegativeKeyHash {
    std::size_t operator()(const NegativeKey& k) const noexcept {
      return dnscore::hash_combine(k.qname.hash(),
                                   static_cast<std::size_t>(k.qtype));
    }
  };
  struct NegativeEntry {
    dnscore::RCode rcode = dnscore::RCode::NXDOMAIN;
    SimTime expiry = 0;
  };
  std::unordered_map<NegativeKey, NegativeEntry, NegativeKeyHash> negative_cache_;

  // Per-SLD learned authoritative scope (adapt_source_to_scope extension).
  std::unordered_map<dnscore::Name, int, dnscore::NameHash> learned_scope_;

  SimTime last_probe_ = -1;
  std::uint16_t next_id_ = 1;
  ResolverCounters counters_;

  // Registry mirrors (see src/obs): `counters_` stays the per-instance
  // view the tests and experiments read, while the global registry
  // aggregates the same events across every resolver for --metrics-out.
  struct Metrics {
    obs::CounterHandle client_queries;
    obs::CounterHandle upstream_queries;
    obs::CounterHandle upstream_ecs_queries;
    obs::CounterHandle cache_hits;
    obs::CounterHandle negative_cache_hits;
    obs::CounterHandle edns_fallbacks;
    obs::CounterHandle servfails;
    obs::CounterHandle referrals_followed;
    obs::CounterHandle cname_restarts;
  };
  Metrics metrics_;

  // Smoothed per-nameserver RTT (BIND-style server selection): candidates
  // are tried fastest-first, unknown servers optimistically early, and
  // timeouts penalize heavily. Only meaningful when the network runs in
  // serial-clock mode; otherwise every sample is 0 and selection degrades
  // gracefully to referral order.
  std::unordered_map<IpAddress, double, dnscore::IpAddressHash> srtt_us_;
  void note_rtt(const IpAddress& server, double sample_us);
  std::vector<IpAddress> order_by_srtt(std::vector<IpAddress> servers) const;
};

}  // namespace ecsdns::resolver
