// CNAME flattening (§8.4): a DNS provider's authoritative server that, for
// selected names (typically the zone apex), resolves the CDN CNAME target
// itself on the backend and returns the final A records, hiding the CNAME
// from external queriers.
//
// The pitfall the paper demonstrates: if the backend query carries no ECS
// (or the provider is not whitelisted by the CDN), the CDN maps the answer
// to the *DNS provider's* location — which has no relation to the client —
// and the client eats a cross-country HTTP redirect to recover.
#pragma once

#include <optional>
#include <unordered_map>

#include "authoritative/server.h"

namespace ecsdns::authoritative {

struct FlatteningConfig {
  // Forward the ECS option from the incoming query onto the backend query
  // toward the CDN. The real-world setup the paper tested did not.
  bool forward_ecs = false;
  std::uint32_t flattened_ttl = 30;
};

class FlatteningAuthServer {
 public:
  // `base` serves the static zone content (www CNAMEs, NS, ...). The
  // flattener consults it for everything it does not flatten.
  FlatteningAuthServer(FlatteningConfig config, AuthConfig base_config,
                       netsim::Network& network, IpAddress own_address);

  AuthServer& base() noexcept { return base_; }

  // Declares that A queries for `name` must be answered by resolving
  // `target` against the authoritative server at `target_auth`.
  void flatten(const Name& name, const Name& target, const IpAddress& target_auth);

  std::optional<Message> handle(const Message& query, const IpAddress& sender,
                                SimTime now);

  void attach(const netsim::GeoPoint& location);

  // Backend queries issued (each flattened answer costs one).
  std::uint64_t backend_queries() const noexcept { return backend_queries_; }

 private:
  FlatteningConfig config_;
  AuthServer base_;
  netsim::Network& network_;
  IpAddress own_address_;
  struct Target {
    Name target;
    IpAddress auth;
  };
  std::unordered_map<Name, Target, dnscore::NameHash> targets_;
  std::uint64_t backend_queries_ = 0;
  std::uint16_t next_id_ = 1;
};

}  // namespace ecsdns::authoritative
