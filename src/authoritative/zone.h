// Zone data: the record sets an authoritative server serves for one apex.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/name.h"
#include "dnscore/record.h"
#include "dnscore/types.h"

namespace ecsdns::authoritative {

using dnscore::Name;
using dnscore::NameHash;
using dnscore::ResourceRecord;
using dnscore::RRType;

// Result of a zone lookup, before any ECS-dependent tailoring.
struct ZoneLookup {
  enum class Kind {
    kAnswer,      // records of the requested type at the name
    kCname,       // a CNAME exists at the name (records holds it)
    kDelegation,  // the name falls under a delegated child zone (NS + glue)
    kNoData,      // name exists, no records of this type
    kNxDomain,    // name does not exist in the zone
    kNotInZone,   // qname is outside this zone entirely
  };
  Kind kind = Kind::kNxDomain;
  std::vector<ResourceRecord> records;  // answer/cname/delegation NS set
  std::vector<ResourceRecord> glue;     // A/AAAA for delegation NS names
};

// Allocation-free view of a lookup: pointers into the zone's own storage,
// valid until the zone is mutated. For kAnswer, `records` is the full
// bucket at the name — the caller filters by qtype while copying out,
// which preserves ZoneLookup's record order. The dispatch hot path uses
// this so answering a query never clones record sets.
struct ZoneLookupRef {
  ZoneLookup::Kind kind = ZoneLookup::Kind::kNxDomain;
  const std::vector<ResourceRecord>* records = nullptr;  // bucket / NS set
  const std::vector<ResourceRecord>* glue = nullptr;     // delegation glue
  const ResourceRecord* cname = nullptr;                 // kCname only
};

class Zone {
 public:
  explicit Zone(Name apex);

  const Name& apex() const noexcept { return apex_; }

  void add(ResourceRecord rr);
  // Marks a child zone as delegated: NS records (and glue) at the cut.
  void delegate(const Name& child, const std::vector<ResourceRecord>& ns_records,
                const std::vector<ResourceRecord>& glue);

  ZoneLookup lookup(const Name& qname, RRType qtype) const;
  // The non-copying core lookup() is built on; see ZoneLookupRef.
  ZoneLookupRef lookup_ref(const Name& qname, RRType qtype) const;

  // True if the zone contains any record at the exact name.
  bool contains(const Name& name) const;

  std::size_t record_count() const noexcept { return record_count_; }

 private:
  Name apex_;
  std::unordered_map<Name, std::vector<ResourceRecord>, NameHash> records_;
  struct Delegation {
    std::vector<ResourceRecord> ns;
    std::vector<ResourceRecord> glue;
  };
  std::unordered_map<Name, Delegation, NameHash> delegations_;
  std::size_t record_count_ = 0;
};

}  // namespace ecsdns::authoritative
