#include "authoritative/flattening.h"

namespace ecsdns::authoritative {

FlatteningAuthServer::FlatteningAuthServer(FlatteningConfig config,
                                           AuthConfig base_config,
                                           netsim::Network& network,
                                           IpAddress own_address)
    : config_(config),
      base_(std::move(base_config), nullptr),
      network_(network),
      own_address_(std::move(own_address)) {}

void FlatteningAuthServer::flatten(const Name& name, const Name& target,
                                   const IpAddress& target_auth) {
  targets_[name] = Target{target, target_auth};
}

std::optional<Message> FlatteningAuthServer::handle(const Message& query,
                                                    const IpAddress& sender,
                                                    SimTime now) {
  if (query.questions.empty()) return base_.handle(query, sender, now);
  const Question& q = query.question();
  const auto it = targets_.find(q.qname);
  if (it == targets_.end() || q.qtype != RRType::A) {
    return base_.handle(query, sender, now);
  }

  // Resolve the CDN name on the backend. Note what is (not) forwarded: the
  // whole point of §8.4 is that this backend transaction typically carries
  // no client subnet information.
  Message backend = Message::make_query(next_id_++, it->second.target, RRType::A);
  backend.opt = dnscore::OptRecord{};
  if (config_.forward_ecs) {
    if (auto ecs = query.ecs()) {
      if (auto prefix = ecs->source_prefix()) {
        backend.set_ecs(dnscore::EcsOption::for_query(*prefix));
      }
    }
  }
  ++backend_queries_;
  auto backend_wire = network_.buffer_pool().acquire();
  {
    dnscore::WireWriter writer(backend_wire);
    backend.serialize_into(writer);
  }
  auto wire = network_.round_trip(own_address_, it->second.auth, backend_wire);
  network_.buffer_pool().release(std::move(backend_wire));
  Message response = Message::make_response(query);
  response.header.aa = true;
  if (wire) {
    try {
      const Message backend_response = Message::parse({wire->data(), wire->size()});
      for (const auto& rr : backend_response.answers) {
        if (rr.type != RRType::A) continue;
        response.answers.push_back(dnscore::ResourceRecord::make_a(
            q.qname, config_.flattened_ttl,
            std::get<dnscore::ARdata>(rr.rdata).address));
      }
    } catch (const dnscore::WireFormatError&) {
      response.header.rcode = RCode::SERVFAIL;
    }
    network_.buffer_pool().release(std::move(*wire));
  } else {
    response.header.rcode = RCode::SERVFAIL;
  }
  if (response.answers.empty() && response.header.rcode == RCode::NOERROR) {
    response.header.rcode = RCode::SERVFAIL;
  }
  return response;
}

void FlatteningAuthServer::attach(const netsim::GeoPoint& location) {
  network_.attach(own_address_, location,
                  [this](const netsim::Datagram& dgram)
                      -> std::optional<std::vector<std::uint8_t>> {
                    Message query;
                    try {
                      query = Message::parse(
                          {dgram.payload.data(), dgram.payload.size()});
                    } catch (const dnscore::WireFormatError&) {
                      return std::nullopt;
                    }
                    auto response = handle(query, dgram.src, network_.now());
                    if (!response) return std::nullopt;
                    auto wire = network_.buffer_pool().acquire();
                    dnscore::WireWriter writer(wire);
                    response->serialize_into(writer);
                    return wire;
                  });
}

}  // namespace ecsdns::authoritative
