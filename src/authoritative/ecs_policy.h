// Authoritative-side ECS policies: given a question, the query's ECS option
// (if any), and the sender, decide whether to include an ECS option in the
// response, with what scope, and whether to tailor the answer addresses.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cdn/mapping.h"
#include "dnscore/ecs.h"
#include "dnscore/ip.h"
#include "dnscore/record.h"

namespace ecsdns::authoritative {

using dnscore::EcsOption;
using dnscore::IpAddress;
using dnscore::Question;
using dnscore::RRType;

struct EcsDecision {
  // Include an ECS option in the response (signals ECS support).
  bool include_option = false;
  int scope = 0;
  // When set, replaces the zone's static A/AAAA answer with these
  // addresses (the CDN tailoring path).
  std::optional<std::vector<IpAddress>> tailored_addresses;
};

class EcsPolicy {
 public:
  virtual ~EcsPolicy() = default;
  virtual EcsDecision decide(const Question& question,
                             const std::optional<EcsOption>& ecs,
                             const IpAddress& sender) const = 0;
};

// A nameserver that has not adopted ECS: options are silently ignored and
// responses carry no ECS (per the RFC, this is what non-adopters do).
class NoEcsPolicy : public EcsPolicy {
 public:
  EcsDecision decide(const Question&, const std::optional<EcsOption>&,
                     const IpAddress&) const override {
    return {};
  }
};

// The scan-experiment policy from §4: answer ECS queries with
// scope = max(source - delta, 0); no option for non-ECS queries. Address
// queries only; NS and other types get scope 0 per RFC 7871 §7.4.
class ScopeDeltaPolicy : public EcsPolicy {
 public:
  explicit ScopeDeltaPolicy(int delta) : delta_(delta) {}
  EcsDecision decide(const Question& question, const std::optional<EcsOption>& ecs,
                     const IpAddress& sender) const override;

 private:
  int delta_;
};

// Always returns the same scope for ECS queries (e.g. a CDN that maps at
// /16 granularity everywhere).
class FixedScopePolicy : public EcsPolicy {
 public:
  explicit FixedScopePolicy(int scope) : scope_(scope) {}
  EcsDecision decide(const Question& question, const std::optional<EcsOption>& ecs,
                     const IpAddress& sender) const override;

 private:
  int scope_;
};

// The major-CDN behavior from the CDN dataset (§4): only pre-approved
// resolvers get ECS treatment; everyone else sees a non-adopter. When a
// `fallback` policy is supplied, non-whitelisted senders still get its
// answer tailoring (a real CDN keeps mapping them by resolver IP) but with
// the ECS option stripped and never echoed.
class WhitelistPolicy : public EcsPolicy {
 public:
  WhitelistPolicy(std::unique_ptr<EcsPolicy> inner, std::vector<IpAddress> whitelist,
                  std::unique_ptr<EcsPolicy> fallback = nullptr)
      : inner_(std::move(inner)),
        fallback_(std::move(fallback)),
        whitelist_(std::move(whitelist)) {}

  EcsDecision decide(const Question& question, const std::optional<EcsOption>& ecs,
                     const IpAddress& sender) const override;

  bool is_whitelisted(const IpAddress& sender) const;
  void add(const IpAddress& resolver) { whitelist_.push_back(resolver); }

 private:
  std::unique_ptr<EcsPolicy> inner_;
  std::unique_ptr<EcsPolicy> fallback_;
  std::vector<IpAddress> whitelist_;
};

// Full CDN tailoring: delegates edge selection to a cdn::MappingPolicy and
// answers with the tailored addresses and the mapping's scope.
class CdnMappingPolicy : public EcsPolicy {
 public:
  explicit CdnMappingPolicy(const cdn::MappingPolicy& mapping) : mapping_(mapping) {}

  EcsDecision decide(const Question& question, const std::optional<EcsOption>& ecs,
                     const IpAddress& sender) const override;

 private:
  const cdn::MappingPolicy& mapping_;
};

}  // namespace ecsdns::authoritative
