#include "authoritative/server.h"

#include <algorithm>

#include "dnscore/message_view.h"

namespace ecsdns::authoritative {
namespace {

// Issues that make an ECS option unusable rather than merely non-compliant;
// RFC 7871 §7.1.2 directs servers to FORMERR these.
bool is_malformed(const std::vector<dnscore::EcsIssue>& issues) {
  for (const auto issue : issues) {
    switch (issue) {
      case dnscore::EcsIssue::kUnknownFamily:
      case dnscore::EcsIssue::kSourceLengthTooLong:
      case dnscore::EcsIssue::kAddressLengthMismatch:
      case dnscore::EcsIssue::kNonZeroTrailingBits:
        return true;
      case dnscore::EcsIssue::kScopeLengthTooLong:
      case dnscore::EcsIssue::kScopeNonZeroInQuery:
        // Tolerated: treated as scope 0 on input.
        break;
    }
  }
  return false;
}

// make_response semantics applied to a retained message: headers and
// sections are reset, but vector capacity (including the response OPT's
// option slots) survives for the next packet.
void reset_response(const Message& query, Message& r) {
  r.header = dnscore::Header{};
  r.header.id = query.header.id;
  r.header.qr = true;
  r.header.opcode = query.header.opcode;
  r.header.rd = query.header.rd;
  r.header.ra = true;
  r.questions.assign(query.questions.begin(), query.questions.end());
  r.answers.clear();
  r.authorities.clear();
  r.additional.clear();
  if (query.opt) {
    if (!r.opt) r.opt = dnscore::OptRecord{};
    r.opt->udp_payload_size = 4096;
    r.opt->extended_rcode = 0;
    r.opt->version = 0;
    r.opt->dnssec_ok = false;
    // The option list is deliberately NOT cleared here: answer_into ends by
    // set_ecs (overwriting the retained slot in place) or clear_ecs, so the
    // slot's payload capacity is reused instead of freed per packet.
  } else {
    r.opt.reset();
  }
}

}  // namespace

AuthServer::AuthServer(AuthConfig config, std::unique_ptr<EcsPolicy> policy)
    : config_(std::move(config)), policy_(std::move(policy)) {
  if (!policy_) policy_ = std::make_unique<NoEcsPolicy>();
  auto& registry = obs::MetricsRegistry::global();
  metrics_.queries = obs::CounterHandle(registry.counter("auth.queries"));
  metrics_.ecs_queries = obs::CounterHandle(registry.counter("auth.ecs_queries"));
  metrics_.ecs_responses = obs::CounterHandle(registry.counter("auth.ecs_responses"));
  metrics_.dropped = obs::CounterHandle(registry.counter("auth.dropped"));
}

Zone& AuthServer::add_zone(const Name& apex) {
  zones_.push_back(std::make_unique<Zone>(apex));
  return *zones_.back();
}

Zone* AuthServer::find_zone(const Name& qname) {
  Zone* best = nullptr;
  for (const auto& z : zones_) {
    if (!qname.is_subdomain_of(z->apex())) continue;
    if (best == nullptr || z->apex().label_count() > best->apex().label_count()) {
      best = z.get();
    }
  }
  return best;
}

std::optional<Message> AuthServer::handle(const Message& query,
                                          const IpAddress& sender, SimTime now) {
  Message response;
  std::optional<EcsOption> ecs_scratch;
  if (!handle_into(query, sender, now, response, ecs_scratch)) return std::nullopt;
  return response;
}

bool AuthServer::handle_into(const Message& query, const IpAddress& sender,
                             SimTime now, Message& response,
                             std::optional<EcsOption>& ecs_scratch) {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  metrics_.queries.inc();

  // Decode the query ECS once, into the caller's retained slot. A payload
  // too short for its own declared lengths is flagged instead of letting
  // WireFormatError escape into the socket loop.
  bool ecs_present = false;
  bool ecs_unparseable = false;
  if (query.opt) {
    if (const auto* raw = query.opt->find_option(dnscore::EdnsOptionCode::ECS)) {
      try {
        if (!ecs_scratch) ecs_scratch.emplace();
        ecs_scratch->assign_from_payload({raw->payload.data(), raw->payload.size()});
        ecs_present = true;
      } catch (const dnscore::WireFormatError&) {
        ecs_unparseable = true;
      }
    }
  }
  if (!ecs_present) ecs_scratch.reset();
  std::optional<EcsOption>& ecs = ecs_scratch;
  if (ecs_present || ecs_unparseable) metrics_.ecs_queries.inc();

  // The log entry (and its ECS copy) is only materialized when logging is
  // on; the zero-alloc live path runs with log_queries=false.
  QueryLogEntry entry;
  if (config_.log_queries) {
    entry.time = now;
    entry.sender = sender;
    if (!query.questions.empty()) {
      entry.qname = query.question().qname;
      entry.qtype = query.question().qtype;
    }
    // Captured before answer_into, which stamps the decision scope onto the
    // scratch option for the response echo.
    entry.query_ecs = ecs;
  }

  if (config_.drop_ecs_queries && (ecs_present || ecs_unparseable)) {
    metrics_.dropped.inc();
    if (config_.log_queries) log_.push_back(std::move(entry));
    return false;  // the buggy silent drop
  }

  answer_into(query, sender, ecs, ecs_unparseable, response);

  if (response.has_ecs()) metrics_.ecs_responses.inc();
  if (config_.log_queries) {
    entry.rcode = response.header.rcode;
    entry.response_ecs = response.ecs();
    log_.push_back(std::move(entry));
  }
  return true;
}

void AuthServer::answer_into(const Message& query, const IpAddress& sender,
                             std::optional<EcsOption>& ecs, bool ecs_unparseable,
                             Message& response) {
  reset_response(query, response);
  response.header.ra = false;  // authoritative servers do not offer recursion

  if (query.questions.empty() || query.header.opcode != dnscore::Opcode::QUERY) {
    response.header.rcode = query.questions.empty() ? RCode::FORMERR : RCode::NOTIMP;
    response.clear_ecs();
    return;
  }
  if (query.opt && !config_.edns_supported) {
    // A pre-EDNS server sees unknown trailing data and rejects the query.
    response.opt.reset();
    response.header.rcode = RCode::FORMERR;
    return;
  }
  if (query.opt && query.opt->version != 0) {
    response.header.rcode = RCode::BADVERS;
    response.clear_ecs();
    return;
  }
  if (ecs_unparseable ||
      (ecs && is_malformed(ecs->validate(/*in_query=*/true)))) {
    response.header.rcode = RCode::FORMERR;
    response.clear_ecs();
    return;
  }

  const Question& q = query.question();
  Zone* zone = find_zone(q.qname);
  if (zone == nullptr) {
    response.header.rcode = RCode::REFUSED;
    response.clear_ecs();
    return;
  }

  const EcsDecision decision = policy_->decide(q, ecs, sender);

  response.header.aa = true;
  Name current = q.qname;
  // Chase in-zone CNAME chains the way production servers do, bounded to
  // avoid loops in malformed zones.
  for (int hop = 0; hop < 8; ++hop) {
    const ZoneLookupRef result = zone->lookup_ref(current, q.qtype);
    switch (result.kind) {
      case ZoneLookup::Kind::kAnswer:
        if (decision.tailored_addresses && q.qtype == RRType::A) {
          for (const auto& addr : *decision.tailored_addresses) {
            if (!addr.is_v4()) continue;
            response.answers.push_back(
                dnscore::ResourceRecord::make_a(current, config_.tailored_ttl, addr));
          }
        } else {
          for (const auto& rr : *result.records) {
            if (rr.type == q.qtype || q.qtype == RRType::ANY) {
              response.answers.push_back(rr);
            }
          }
        }
        hop = 8;
        break;
      case ZoneLookup::Kind::kCname: {
        response.answers.push_back(*result.cname);
        const auto& target =
            std::get<dnscore::CnameRdata>(result.cname->rdata).target;
        if (!target.is_subdomain_of(zone->apex())) {
          hop = 8;  // out-of-zone target: the resolver restarts resolution
          break;
        }
        current = target;
        break;
      }
      case ZoneLookup::Kind::kDelegation:
        response.header.aa = false;
        response.authorities.assign(result.records->begin(), result.records->end());
        response.additional.assign(result.glue->begin(), result.glue->end());
        hop = 8;
        break;
      case ZoneLookup::Kind::kNoData: {
        // RFC 2308: attach the zone SOA so resolvers can negative-cache.
        const ZoneLookupRef soa = zone->lookup_ref(zone->apex(), dnscore::RRType::SOA);
        if (soa.kind == ZoneLookup::Kind::kAnswer) {
          for (const auto& rr : *soa.records) {
            if (rr.type == dnscore::RRType::SOA) {
              response.authorities.push_back(rr);
              break;
            }
          }
        }
        hop = 8;
        break;
      }
      case ZoneLookup::Kind::kNxDomain:
        // Tailoring policies synthesize address answers for any name in the
        // zone (a CDN's wildcard-style hostnames); static zones NXDOMAIN.
        if (decision.tailored_addresses && q.qtype == RRType::A) {
          for (const auto& addr : *decision.tailored_addresses) {
            if (!addr.is_v4()) continue;
            response.answers.push_back(
                dnscore::ResourceRecord::make_a(current, config_.tailored_ttl, addr));
          }
        } else {
          response.header.rcode = RCode::NXDOMAIN;
          const ZoneLookupRef soa =
              zone->lookup_ref(zone->apex(), dnscore::RRType::SOA);
          if (soa.kind == ZoneLookup::Kind::kAnswer) {
            for (const auto& rr : *soa.records) {
              if (rr.type == dnscore::RRType::SOA) {
                response.authorities.push_back(rr);
                break;
              }
            }
          }
        }
        hop = 8;
        break;
      case ZoneLookup::Kind::kNotInZone:
        response.header.rcode = RCode::REFUSED;
        hop = 8;
        break;
    }
  }

  if (ecs && decision.include_option && response.opt) {
    // Echo the (validated) query option with the policy's scope. Only the
    // scope byte differs from what the client sent, so stamping it onto the
    // scratch option and re-encoding in place is byte-identical to building
    // a fresh for_response() option — without its allocations.
    ecs->set_scope_prefix_length(static_cast<std::uint8_t>(decision.scope));
    response.set_ecs(*ecs);
  } else {
    response.clear_ecs();
  }
}

bool AuthServer::serve_wire(std::span<const std::uint8_t> wire,
                            const IpAddress& sender, SimTime now, bool via_tcp,
                            DispatchScratch& scratch,
                            std::vector<std::uint8_t>& out) {
  // Zero-copy decode: MessageView validates and indexes the packet in
  // place, and only the slices handle_into() actually reads — header, the
  // question, OPT fields, the ECS payload — are materialized into the
  // scratch query (whose buffers are reused across packets). Multi-question
  // messages (which no client of ours produces) take the full-parse
  // fallback.
  Message& query = scratch.query;
  try {
    const dnscore::MessageView view(wire);
    if (view.question_count() <= 1) {
      query.header.id = view.id();
      query.header.qr = view.qr();
      query.header.opcode = view.opcode();
      query.header.aa = view.aa();
      query.header.tc = view.tc();
      query.header.rd = view.rd();
      query.header.ra = view.ra();
      query.header.ad = view.ad();
      query.header.cd = view.cd();
      query.header.rcode = view.rcode();
      query.questions.clear();
      if (view.question_count() == 1) {
        query.questions.push_back(
            dnscore::Question{view.qname(), view.qtype(), view.qclass()});
      }
      query.answers.clear();
      query.authorities.clear();
      query.additional.clear();
      if (view.has_opt()) {
        if (!query.opt) query.opt = dnscore::OptRecord{};
        query.opt->udp_payload_size = view.udp_payload_size();
        query.opt->extended_rcode = view.extended_rcode();
        query.opt->version = view.edns_version();
        query.opt->dnssec_ok = view.dnssec_ok();
        if (view.has_ecs()) {
          const auto ecs_raw = view.ecs_payload();
          auto& slot = query.opt->ensure_option(dnscore::EdnsOptionCode::ECS);
          slot.payload.assign(ecs_raw.begin(), ecs_raw.end());
        } else {
          query.opt->remove_option(dnscore::EdnsOptionCode::ECS);
        }
      } else {
        query.opt.reset();
      }
    } else {
      query = view.to_message();
    }
  } catch (const dnscore::WireFormatError&) {
    return false;  // unparseable datagram: drop
  }

  if (!handle_into(query, sender, now, scratch.response, scratch.ecs)) {
    return false;
  }
  {
    dnscore::WireWriter writer(out);
    scratch.response.serialize_into(writer, scratch.table);
  }
  // UDP truncation (RFC 1035 §4.2.1 / RFC 6891 §6.2.5): responses beyond
  // the requestor's buffer come back empty with TC set, inviting a TCP
  // retry.
  const std::size_t limit = query.opt ? query.opt->udp_payload_size : 512;
  if (!via_tcp && out.size() > limit) {
    Message truncated = Message::make_response(query);
    truncated.header.aa = scratch.response.header.aa;
    truncated.header.rcode = scratch.response.header.rcode;
    truncated.header.tc = true;
    dnscore::WireWriter writer(out);
    truncated.serialize_into(writer, scratch.table);
  }
  return true;
}

void AuthServer::attach(netsim::Network& network, const IpAddress& addr,
                        const netsim::GeoPoint& location) {
  // One scratch per attachment, owned by the service closure — the same
  // reuse discipline as a live socket shard.
  auto scratch = std::make_shared<DispatchScratch>();
  network.attach(addr, location,
                 [this, &network, scratch](const netsim::Datagram& dgram)
                     -> std::optional<std::vector<std::uint8_t>> {
                   auto wire = network.buffer_pool().acquire();
                   if (!serve_wire(dgram.payload, dgram.src, network.now(),
                                   dgram.via_tcp, *scratch, wire)) {
                     network.buffer_pool().release(std::move(wire));
                     return std::nullopt;
                   }
                   return wire;
                 });
}

}  // namespace ecsdns::authoritative
