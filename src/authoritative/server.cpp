#include "authoritative/server.h"

#include <algorithm>

#include "dnscore/message_view.h"

namespace ecsdns::authoritative {
namespace {

// Issues that make an ECS option unusable rather than merely non-compliant;
// RFC 7871 §7.1.2 directs servers to FORMERR these.
bool is_malformed(const std::vector<dnscore::EcsIssue>& issues) {
  for (const auto issue : issues) {
    switch (issue) {
      case dnscore::EcsIssue::kUnknownFamily:
      case dnscore::EcsIssue::kSourceLengthTooLong:
      case dnscore::EcsIssue::kAddressLengthMismatch:
      case dnscore::EcsIssue::kNonZeroTrailingBits:
        return true;
      case dnscore::EcsIssue::kScopeLengthTooLong:
      case dnscore::EcsIssue::kScopeNonZeroInQuery:
        // Tolerated: treated as scope 0 on input.
        break;
    }
  }
  return false;
}

}  // namespace

AuthServer::AuthServer(AuthConfig config, std::unique_ptr<EcsPolicy> policy)
    : config_(std::move(config)), policy_(std::move(policy)) {
  if (!policy_) policy_ = std::make_unique<NoEcsPolicy>();
  auto& registry = obs::MetricsRegistry::global();
  metrics_.queries = obs::CounterHandle(registry.counter("auth.queries"));
  metrics_.ecs_queries = obs::CounterHandle(registry.counter("auth.ecs_queries"));
  metrics_.ecs_responses = obs::CounterHandle(registry.counter("auth.ecs_responses"));
  metrics_.dropped = obs::CounterHandle(registry.counter("auth.dropped"));
}

Zone& AuthServer::add_zone(const Name& apex) {
  zones_.push_back(std::make_unique<Zone>(apex));
  return *zones_.back();
}

Zone* AuthServer::find_zone(const Name& qname) {
  Zone* best = nullptr;
  for (const auto& z : zones_) {
    if (!qname.is_subdomain_of(z->apex())) continue;
    if (best == nullptr || z->apex().label_count() > best->apex().label_count()) {
      best = z.get();
    }
  }
  return best;
}

std::optional<Message> AuthServer::handle(const Message& query,
                                          const IpAddress& sender, SimTime now) {
  ++queries_served_;
  metrics_.queries.inc();
  QueryLogEntry entry;
  entry.time = now;
  entry.sender = sender;
  if (!query.questions.empty()) {
    entry.qname = query.question().qname;
    entry.qtype = query.question().qtype;
  }
  entry.query_ecs = query.opt ? query.ecs() : std::nullopt;
  if (entry.query_ecs) metrics_.ecs_queries.inc();

  if (config_.drop_ecs_queries && entry.query_ecs) {
    metrics_.dropped.inc();
    if (config_.log_queries) log_.push_back(std::move(entry));
    return std::nullopt;  // the buggy silent drop
  }

  Message response = answer(query, sender);
  entry.rcode = response.header.rcode;
  entry.response_ecs = response.ecs();
  if (entry.response_ecs) metrics_.ecs_responses.inc();
  if (config_.log_queries) log_.push_back(std::move(entry));
  return response;
}

Message AuthServer::answer(const Message& query, const IpAddress& sender) {
  Message response = Message::make_response(query);
  response.header.ra = false;  // authoritative servers do not offer recursion

  if (query.questions.empty() || query.header.opcode != dnscore::Opcode::QUERY) {
    response.header.rcode = query.questions.empty() ? RCode::FORMERR : RCode::NOTIMP;
    return response;
  }
  if (query.opt && !config_.edns_supported) {
    // A pre-EDNS server sees unknown trailing data and rejects the query.
    response.opt.reset();
    response.header.rcode = RCode::FORMERR;
    return response;
  }
  if (query.opt && query.opt->version != 0) {
    response.header.rcode = RCode::BADVERS;
    return response;
  }

  std::optional<EcsOption> ecs = query.ecs();
  if (ecs && is_malformed(ecs->validate(/*in_query=*/true))) {
    response.header.rcode = RCode::FORMERR;
    return response;
  }

  const Question& q = query.question();
  Zone* zone = find_zone(q.qname);
  if (zone == nullptr) {
    response.header.rcode = RCode::REFUSED;
    return response;
  }

  const EcsDecision decision = policy_->decide(q, ecs, sender);

  response.header.aa = true;
  Name current = q.qname;
  // Chase in-zone CNAME chains the way production servers do, bounded to
  // avoid loops in malformed zones.
  for (int hop = 0; hop < 8; ++hop) {
    const ZoneLookup result = zone->lookup(current, q.qtype);
    switch (result.kind) {
      case ZoneLookup::Kind::kAnswer:
        if (decision.tailored_addresses && q.qtype == RRType::A) {
          for (const auto& addr : *decision.tailored_addresses) {
            if (!addr.is_v4()) continue;
            response.answers.push_back(
                dnscore::ResourceRecord::make_a(current, config_.tailored_ttl, addr));
          }
        } else {
          for (const auto& rr : result.records) response.answers.push_back(rr);
        }
        hop = 8;
        break;
      case ZoneLookup::Kind::kCname: {
        response.answers.push_back(result.records.front());
        const auto& target =
            std::get<dnscore::CnameRdata>(result.records.front().rdata).target;
        if (!target.is_subdomain_of(zone->apex())) {
          hop = 8;  // out-of-zone target: the resolver restarts resolution
          break;
        }
        current = target;
        break;
      }
      case ZoneLookup::Kind::kDelegation:
        response.header.aa = false;
        response.authorities = result.records;
        response.additional = result.glue;
        hop = 8;
        break;
      case ZoneLookup::Kind::kNoData: {
        // RFC 2308: attach the zone SOA so resolvers can negative-cache.
        const auto soa = zone->lookup(zone->apex(), dnscore::RRType::SOA);
        if (soa.kind == ZoneLookup::Kind::kAnswer) {
          response.authorities.push_back(soa.records.front());
        }
        hop = 8;
        break;
      }
      case ZoneLookup::Kind::kNxDomain:
        // Tailoring policies synthesize address answers for any name in the
        // zone (a CDN's wildcard-style hostnames); static zones NXDOMAIN.
        if (decision.tailored_addresses && q.qtype == RRType::A) {
          for (const auto& addr : *decision.tailored_addresses) {
            if (!addr.is_v4()) continue;
            response.answers.push_back(
                dnscore::ResourceRecord::make_a(current, config_.tailored_ttl, addr));
          }
        } else {
          response.header.rcode = RCode::NXDOMAIN;
          const auto soa = zone->lookup(zone->apex(), dnscore::RRType::SOA);
          if (soa.kind == ZoneLookup::Kind::kAnswer) {
            response.authorities.push_back(soa.records.front());
          }
        }
        hop = 8;
        break;
      case ZoneLookup::Kind::kNotInZone:
        response.header.rcode = RCode::REFUSED;
        hop = 8;
        break;
    }
  }

  if (ecs && decision.include_option && response.opt) {
    if (auto src = ecs->source_prefix()) {
      response.set_ecs(EcsOption::for_response(*src, decision.scope));
    } else {
      // Echo the raw option with our scope when the prefix is unusable.
      EcsOption echo = *ecs;
      echo.set_scope_prefix_length(static_cast<std::uint8_t>(decision.scope));
      response.set_ecs(echo);
    }
  }
  return response;
}

void AuthServer::attach(netsim::Network& network, const IpAddress& addr,
                        const netsim::GeoPoint& location) {
  network.attach(addr, location,
                 [this, &network](const netsim::Datagram& dgram)
                     -> std::optional<std::vector<std::uint8_t>> {
                   // Zero-copy dispatch: MessageView validates and indexes
                   // the packet in place, and only the slices handle()
                   // actually reads — header, the question, OPT fields, the
                   // ECS payload — are materialized. Multi-question
                   // messages (which no client of ours produces) take the
                   // full-parse fallback.
                   Message query;
                   try {
                     const dnscore::MessageView view(dgram.payload);
                     if (view.question_count() <= 1) {
                       query.header.id = view.id();
                       query.header.qr = view.qr();
                       query.header.opcode = view.opcode();
                       query.header.aa = view.aa();
                       query.header.tc = view.tc();
                       query.header.rd = view.rd();
                       query.header.ra = view.ra();
                       query.header.ad = view.ad();
                       query.header.cd = view.cd();
                       query.header.rcode = view.rcode();
                       if (view.question_count() == 1) {
                         query.questions.push_back(dnscore::Question{
                             view.qname(), view.qtype(), view.qclass()});
                       }
                       if (view.has_opt()) {
                         dnscore::OptRecord opt;
                         opt.udp_payload_size = view.udp_payload_size();
                         opt.extended_rcode = view.extended_rcode();
                         opt.version = view.edns_version();
                         opt.dnssec_ok = view.dnssec_ok();
                         if (view.has_ecs()) {
                           const auto ecs_raw = view.ecs_payload();
                           opt.options.push_back(dnscore::EdnsOption{
                               static_cast<std::uint16_t>(
                                   dnscore::EdnsOptionCode::ECS),
                               {ecs_raw.begin(), ecs_raw.end()}});
                         }
                         query.opt = std::move(opt);
                       }
                     } else {
                       query = view.to_message();
                     }
                   } catch (const dnscore::WireFormatError&) {
                     return std::nullopt;  // unparseable datagram: drop
                   }
                   auto response = handle(query, dgram.src, network.now());
                   if (!response) return std::nullopt;
                   auto wire = network.buffer_pool().acquire();
                   {
                     dnscore::WireWriter writer(wire);
                     response->serialize_into(writer);
                   }
                   // UDP truncation (RFC 1035 §4.2.1 / RFC 6891 §6.2.5):
                   // responses beyond the requestor's buffer come back
                   // empty with TC set, inviting a TCP retry.
                   const std::size_t limit =
                       query.opt ? query.opt->udp_payload_size : 512;
                   if (!dgram.via_tcp && wire.size() > limit) {
                     Message truncated = Message::make_response(query);
                     truncated.header.aa = response->header.aa;
                     truncated.header.rcode = response->header.rcode;
                     truncated.header.tc = true;
                     dnscore::WireWriter writer(wire);
                     truncated.serialize_into(writer);
                   }
                   return wire;
                 });
}

}  // namespace ecsdns::authoritative
