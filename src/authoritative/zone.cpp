#include "authoritative/zone.h"

#include <stdexcept>

#include "dnscore/contracts.h"

namespace ecsdns::authoritative {

Zone::Zone(Name apex) : apex_(std::move(apex)) {}

void Zone::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(apex_)) {
    throw std::invalid_argument("record " + rr.name.to_string() + " outside zone " +
                                apex_.to_string());
  }
  records_[rr.name].push_back(std::move(rr));
  ++record_count_;
}

void Zone::delegate(const Name& child, const std::vector<ResourceRecord>& ns_records,
                    const std::vector<ResourceRecord>& glue) {
  if (!child.is_subdomain_of(apex_) || child == apex_) {
    throw std::invalid_argument("delegation " + child.to_string() +
                                " not below zone apex " + apex_.to_string());
  }
  delegations_[child] = Delegation{ns_records, glue};
}

ZoneLookup Zone::lookup(const Name& qname, RRType qtype) const {
  const ZoneLookupRef ref = lookup_ref(qname, qtype);
  ZoneLookup out;
  out.kind = ref.kind;
  switch (ref.kind) {
    case ZoneLookup::Kind::kAnswer:
      for (const auto& rr : *ref.records) {
        if (rr.type == qtype || qtype == RRType::ANY) out.records.push_back(rr);
      }
      break;
    case ZoneLookup::Kind::kCname:
      out.records.push_back(*ref.cname);
      break;
    case ZoneLookup::Kind::kDelegation:
      out.records = *ref.records;
      out.glue = *ref.glue;
      break;
    case ZoneLookup::Kind::kNoData:
    case ZoneLookup::Kind::kNxDomain:
    case ZoneLookup::Kind::kNotInZone:
      break;
  }
  return out;
}

ZoneLookupRef Zone::lookup_ref(const Name& qname, RRType qtype) const {
  ZoneLookupRef out;
  if (!qname.is_subdomain_of(apex_)) {
    out.kind = ZoneLookup::Kind::kNotInZone;
    return out;
  }

  // Check delegation cuts between the apex and the qname (walking from the
  // qname up so the deepest cut wins; there is at most one in practice).
  Name walk = qname;
  while (walk != apex_) {
    // The walk stays inside the zone: qname passed the subdomain check and
    // parent() only ever strips leading labels.
    ECSDNS_DCHECK(walk.is_subdomain_of(apex_));
    const auto dit = delegations_.find(walk);
    if (dit != delegations_.end()) {
      out.kind = ZoneLookup::Kind::kDelegation;
      out.records = &dit->second.ns;
      out.glue = &dit->second.glue;
      return out;
    }
    if (walk.is_root()) break;
    walk = walk.parent();
  }

  const auto it = records_.find(qname);
  if (it == records_.end()) {
    out.kind = ZoneLookup::Kind::kNxDomain;
    return out;
  }
  // CNAME takes precedence unless the query asks for CNAME (or ANY).
  if (qtype != RRType::CNAME && qtype != RRType::ANY) {
    for (const auto& rr : it->second) {
      if (rr.type == RRType::CNAME) {
        out.kind = ZoneLookup::Kind::kCname;
        out.cname = &rr;
        return out;
      }
    }
  }
  bool any_of_type = false;
  for (const auto& rr : it->second) {
    // add() rejects out-of-zone records, so the bucket only ever holds
    // records owned by the exact name it is keyed under.
    ECSDNS_DCHECK(rr.name == qname);
    if (rr.type == qtype || qtype == RRType::ANY) any_of_type = true;
  }
  out.records = &it->second;
  out.kind = any_of_type ? ZoneLookup::Kind::kAnswer : ZoneLookup::Kind::kNoData;
  return out;
}

bool Zone::contains(const Name& name) const {
  return records_.find(name) != records_.end();
}

}  // namespace ecsdns::authoritative
