#include "authoritative/zone_text.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace ecsdns::authoritative {
namespace {

using dnscore::IpAddress;
using dnscore::Name;
using dnscore::ResourceRecord;
using dnscore::RRType;

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("zone text line " + std::to_string(line_no) + ": " +
                              what);
}

// Splits a line into whitespace-separated tokens; a quoted token keeps its
// spaces (for TXT strings). Comments (';') end the line.
std::vector<std::string> tokenize(const std::string& line, std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == ';') break;
    if (line[i] == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string::npos) fail(line_no, "unterminated quote");
      tokens.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
      continue;
    }
    std::size_t j = i;
    while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j])) &&
           line[j] != ';') {
      ++j;
    }
    tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

// The documented contract of parse_zone_text is that every rejection is a
// std::invalid_argument carrying a line number, so name errors
// (WireFormatError) are translated rather than allowed to escape.
Name resolve_name(const std::string& token, const Name& origin,
                  std::size_t line_no) {
  try {
    if (token == "@") return origin;
    if (!token.empty() && token.back() == '.') {
      return Name::from_string(token.substr(0, token.size() - 1));
    }
    // Relative: append the origin.
    Name relative = Name::from_string(token);
    Name out = origin;
    for (std::size_t i = relative.label_count(); i-- > 0;) {
      out = out.prepend(relative.label(i));
    }
    return out;
  } catch (const dnscore::WireFormatError& e) {
    fail(line_no, std::string("bad name '") + token + "': " + e.what());
  }
}

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::uint32_t to_u32(const std::string& s, std::size_t line_no) {
  if (!is_number(s)) fail(line_no, "expected a number, got '" + s + "'");
  // Accumulate with an explicit range check: std::stoul would throw
  // std::out_of_range (not the documented std::invalid_argument) on inputs
  // like a 25-digit TTL, and silently accept values above 2^32 on LP64.
  std::uint64_t value = 0;
  for (const char c : s) {
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xffffffffull) fail(line_no, "number out of range: '" + s + "'");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

std::vector<ResourceRecord> parse_zone_text(const Name& origin,
                                            const std::string& text,
                                            std::uint32_t default_ttl) {
  std::vector<ResourceRecord> records;
  std::uint32_t ttl_default = default_ttl;
  Name previous_owner = origin;
  bool have_previous = false;

  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    auto tokens = tokenize(line, line_no);
    if (tokens.empty()) continue;

    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2) fail(line_no, "$TTL takes one argument");
      ttl_default = to_u32(tokens[1], line_no);
      continue;
    }
    if (!tokens[0].empty() && tokens[0][0] == '$') {
      fail(line_no, "unsupported directive " + tokens[0]);
    }

    // Grammar: [owner] [ttl] [IN] TYPE rdata...
    std::size_t cursor = 0;
    Name owner = previous_owner;
    // A line starting with whitespace reuses the previous owner; otherwise
    // the first token is the owner unless it is a TTL/class/type.
    const bool starts_indented =
        !line.empty() && std::isspace(static_cast<unsigned char>(line[0]));
    const auto looks_like_type = [](const std::string& t) {
      try {
        (void)dnscore::rrtype_from_string(t);
        return true;
      } catch (const std::invalid_argument&) {
        return false;
      }
    };
    if (!starts_indented && !is_number(tokens[0]) && tokens[0] != "IN" &&
        !looks_like_type(tokens[0])) {
      owner = resolve_name(tokens[0], origin, line_no);
      cursor = 1;
    } else if (!have_previous && starts_indented) {
      fail(line_no, "first record needs an owner name");
    }
    previous_owner = owner;
    have_previous = true;

    std::uint32_t ttl = ttl_default;
    if (cursor < tokens.size() && is_number(tokens[cursor])) {
      ttl = to_u32(tokens[cursor], line_no);
      ++cursor;
    }
    if (cursor < tokens.size() && tokens[cursor] == "IN") ++cursor;
    if (cursor >= tokens.size()) fail(line_no, "missing record type");
    RRType type;
    try {
      type = dnscore::rrtype_from_string(tokens[cursor]);
    } catch (const std::invalid_argument&) {
      fail(line_no, "unknown record type '" + tokens[cursor] + "'");
    }
    ++cursor;
    const auto need = [&](std::size_t n) {
      if (tokens.size() - cursor < n) fail(line_no, "too few rdata fields");
    };

    switch (type) {
      case RRType::A: {
        need(1);
        records.push_back(ResourceRecord::make_a(owner, ttl,
                                                 IpAddress::parse(tokens[cursor])));
        break;
      }
      case RRType::AAAA: {
        need(1);
        records.push_back(
            ResourceRecord::make_aaaa(owner, ttl, IpAddress::parse(tokens[cursor])));
        break;
      }
      case RRType::NS: {
        need(1);
        records.push_back(
            ResourceRecord::make_ns(owner, ttl, resolve_name(tokens[cursor], origin, line_no)));
        break;
      }
      case RRType::CNAME: {
        need(1);
        records.push_back(ResourceRecord::make_cname(
            owner, ttl, resolve_name(tokens[cursor], origin, line_no)));
        break;
      }
      case RRType::PTR: {
        need(1);
        records.push_back(
            ResourceRecord{owner, RRType::PTR, dnscore::RRClass::IN, ttl,
                           dnscore::PtrRdata{resolve_name(tokens[cursor], origin, line_no)}});
        break;
      }
      case RRType::MX: {
        need(2);
        const std::uint32_t pref = to_u32(tokens[cursor], line_no);
        if (pref > 0xffff) fail(line_no, "MX preference out of range");
        records.push_back(ResourceRecord{
            owner, RRType::MX, dnscore::RRClass::IN, ttl,
            dnscore::MxRdata{static_cast<std::uint16_t>(pref),
                             resolve_name(tokens[cursor + 1], origin, line_no)}});
        break;
      }
      case RRType::TXT: {
        need(1);
        // Reject here rather than handing back a record whose wire
        // serialization would throw later (TXT strings are length-prefixed
        // by a single octet).
        if (tokens[cursor].size() > 255) {
          fail(line_no, "TXT string exceeds 255 octets");
        }
        records.push_back(ResourceRecord::make_txt(owner, ttl, tokens[cursor]));
        break;
      }
      case RRType::SOA: {
        need(7);
        records.push_back(ResourceRecord{
            owner, RRType::SOA, dnscore::RRClass::IN, ttl,
            dnscore::SoaRdata{resolve_name(tokens[cursor], origin, line_no),
                              resolve_name(tokens[cursor + 1], origin, line_no),
                              to_u32(tokens[cursor + 2], line_no),
                              to_u32(tokens[cursor + 3], line_no),
                              to_u32(tokens[cursor + 4], line_no),
                              to_u32(tokens[cursor + 5], line_no),
                              to_u32(tokens[cursor + 6], line_no)}});
        break;
      }
      default:
        fail(line_no, "type " + dnscore::to_string(type) + " not supported in zone text");
    }
  }
  return records;
}

void load_zone_text(Zone& zone, const std::string& text, std::uint32_t default_ttl) {
  for (auto& rr : parse_zone_text(zone.apex(), text, default_ttl)) {
    zone.add(std::move(rr));
  }
}

}  // namespace ecsdns::authoritative
