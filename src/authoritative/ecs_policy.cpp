#include "authoritative/ecs_policy.h"

#include <algorithm>

namespace ecsdns::authoritative {
namespace {

bool is_address_query(const Question& q) {
  return q.qtype == RRType::A || q.qtype == RRType::AAAA;
}

}  // namespace

EcsDecision ScopeDeltaPolicy::decide(const Question& question,
                                     const std::optional<EcsOption>& ecs,
                                     const IpAddress&) const {
  if (!ecs) return {};
  EcsDecision d;
  d.include_option = true;
  if (!is_address_query(question)) {
    d.scope = 0;  // RFC 7871 §7.4: non-address queries answered with scope 0
    return d;
  }
  d.scope = std::max(0, static_cast<int>(ecs->source_prefix_length()) - delta_);
  return d;
}

EcsDecision FixedScopePolicy::decide(const Question& question,
                                     const std::optional<EcsOption>& ecs,
                                     const IpAddress&) const {
  if (!ecs) return {};
  EcsDecision d;
  d.include_option = true;
  d.scope = is_address_query(question) ? scope_ : 0;
  return d;
}

bool WhitelistPolicy::is_whitelisted(const IpAddress& sender) const {
  return std::find(whitelist_.begin(), whitelist_.end(), sender) != whitelist_.end();
}

EcsDecision WhitelistPolicy::decide(const Question& question,
                                    const std::optional<EcsOption>& ecs,
                                    const IpAddress& sender) const {
  if (is_whitelisted(sender)) return inner_->decide(question, ecs, sender);
  if (fallback_ != nullptr) {
    // Pre-ECS treatment: map by the sender, ignore the option, stay silent.
    EcsDecision d = fallback_->decide(question, std::nullopt, sender);
    d.include_option = false;
    d.scope = 0;
    return d;
  }
  return {};  // behave as a non-adopter
}

EcsDecision CdnMappingPolicy::decide(const Question& question,
                                     const std::optional<EcsOption>& ecs,
                                     const IpAddress& sender) const {
  if (!is_address_query(question)) {
    EcsDecision d;
    d.include_option = ecs.has_value();
    d.scope = 0;
    return d;
  }
  cdn::MappingRequest request;
  if (ecs) request.ecs = ecs->source_prefix();
  request.resolver = sender;
  const cdn::MappingResult result = mapping_.map(request);
  EcsDecision d;
  d.include_option = ecs.has_value();
  d.scope = result.scope;
  d.tailored_addresses = result.addresses;
  return d;
}

}  // namespace ecsdns::authoritative
