// The authoritative nameserver engine.
//
// Serves one or more zones with a pluggable ECS policy, answers real wire
// format queries, and keeps the query log that the paper's passive analyses
// (CDN dataset, scan dataset) are computed from.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "authoritative/ecs_policy.h"
#include "authoritative/zone.h"
#include "dnscore/message.h"
#include "netsim/network.h"
#include "obs/metrics.h"

namespace ecsdns::authoritative {

using dnscore::EcsOption;
using dnscore::IpAddress;
using dnscore::Message;
using dnscore::Name;
using dnscore::RCode;
using netsim::SimTime;

// One line of the authoritative query log — the raw material of the CDN and
// Scan datasets.
struct QueryLogEntry {
  SimTime time = 0;
  IpAddress sender;
  Name qname;
  RRType qtype = RRType::A;
  std::optional<EcsOption> query_ecs;
  std::optional<EcsOption> response_ecs;
  RCode rcode = RCode::NOERROR;
};

struct AuthConfig {
  std::string label = "auth";
  // TTL for answers synthesized from a mapping policy (the paper's CDN uses
  // 20 seconds).
  std::uint32_t tailored_ttl = 20;
  // False models a pre-EDNS implementation: any query with an OPT record
  // gets FORMERR (§6.1 cites RFC 6891-unaware servers doing this).
  bool edns_supported = true;
  // True models the buggy implementations that silently drop ECS queries.
  bool drop_ecs_queries = false;
  bool log_queries = true;
};

// Per-caller dispatch state reused across packets: the query/response
// messages, the decoded-ECS slot, and the name-compression table all retain
// their capacity, so a steady stream of same-shaped queries is served with
// zero heap allocations (pinned by tests/test_noalloc_contracts.cpp). One
// scratch per attached service or live socket shard; never shared across
// threads.
struct DispatchScratch {
  Message query;
  Message response;
  // Engaged while ECS queries flow; the option's address buffer is reused
  // in place, so uniform ECS traffic decodes without allocating.
  std::optional<EcsOption> ecs;
  Name::CompressionTable table;
};

class AuthServer {
 public:
  AuthServer(AuthConfig config, std::unique_ptr<EcsPolicy> policy);

  // Zones are looked up deepest-apex-first, so a server may host both
  // "example.com" and "sub.example.com".
  Zone& add_zone(const Name& apex);
  Zone* find_zone(const Name& qname);

  // Core entry point: answer `query` from `sender` at virtual time `now`.
  // nullopt means the query is dropped (timeout at the sender).
  std::optional<Message> handle(const Message& query, const IpAddress& sender,
                                SimTime now);

  // Allocation-aware core handle() wraps: answers into `response`, reusing
  // its buffers, with `ecs_scratch` holding the decoded query ECS. Returns
  // false when the query is dropped. A structurally unparseable ECS payload
  // answers FORMERR (RFC 7871 §7.1.2) instead of throwing.
  bool handle_into(const Message& query, const IpAddress& sender, SimTime now,
                   Message& response, std::optional<EcsOption>& ecs_scratch);

  // Wire-to-wire dispatch shared by the simulated attach() service and the
  // live UDP shards: validates `wire` through MessageView (decoding straight
  // out of the receive buffer), answers via handle_into, serializes into
  // `out` (contents replaced, capacity reused), and applies RFC 1035 §4.2.1
  // UDP truncation against the requestor's EDNS buffer size. Returns false
  // when the datagram is dropped (unparseable, or a configured silent-drop
  // behavior); `out` is unspecified in that case.
  bool serve_wire(std::span<const std::uint8_t> wire, const IpAddress& sender,
                  SimTime now, bool via_tcp, DispatchScratch& scratch,
                  std::vector<std::uint8_t>& out);

  // Registers this server on the network at `addr`; the service parses and
  // serializes real DNS packets through serve_wire, so the simulated and
  // live paths emit byte-identical responses by construction.
  void attach(netsim::Network& network, const IpAddress& addr,
              const netsim::GeoPoint& location);

  // The query log is single-writer: serving from multiple live shards
  // requires log_queries=false (see docs/live_wire.md).
  const std::vector<QueryLogEntry>& log() const noexcept { return log_; }
  void clear_log() { log_.clear(); }
  std::uint64_t queries_served() const noexcept {
    return queries_served_.load(std::memory_order_relaxed);
  }

  const AuthConfig& config() const noexcept { return config_; }
  void set_policy(std::unique_ptr<EcsPolicy> policy) { policy_ = std::move(policy); }

 private:
  // Answers into `response` (buffers reused). `ecs` is the decoded query
  // option in the caller's scratch (disengaged when absent);
  // `ecs_unparseable` marks a present-but-undecodable option. Every exit
  // path either installs a fresh ECS option or clears the retained slot, so
  // stale state never leaks between packets.
  void answer_into(const Message& query, const IpAddress& sender,
                   std::optional<EcsOption>& ecs, bool ecs_unparseable,
                   Message& response);

  // Registry mirrors (see src/obs): `queries_served_` and the query log
  // remain the per-server API; the registry aggregates across the fleet.
  struct Metrics {
    obs::CounterHandle queries;
    obs::CounterHandle ecs_queries;
    obs::CounterHandle ecs_responses;
    obs::CounterHandle dropped;
  };

  AuthConfig config_;
  std::unique_ptr<EcsPolicy> policy_;
  std::vector<std::unique_ptr<Zone>> zones_;
  std::vector<QueryLogEntry> log_;
  // Relaxed atomic: live shards on separate threads bump this concurrently;
  // exact cross-thread ordering is irrelevant, only the total.
  std::atomic<std::uint64_t> queries_served_{0};
  Metrics metrics_;
};

}  // namespace ecsdns::authoritative
