// The authoritative nameserver engine.
//
// Serves one or more zones with a pluggable ECS policy, answers real wire
// format queries, and keeps the query log that the paper's passive analyses
// (CDN dataset, scan dataset) are computed from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "authoritative/ecs_policy.h"
#include "authoritative/zone.h"
#include "dnscore/message.h"
#include "netsim/network.h"
#include "obs/metrics.h"

namespace ecsdns::authoritative {

using dnscore::EcsOption;
using dnscore::IpAddress;
using dnscore::Message;
using dnscore::Name;
using dnscore::RCode;
using netsim::SimTime;

// One line of the authoritative query log — the raw material of the CDN and
// Scan datasets.
struct QueryLogEntry {
  SimTime time = 0;
  IpAddress sender;
  Name qname;
  RRType qtype = RRType::A;
  std::optional<EcsOption> query_ecs;
  std::optional<EcsOption> response_ecs;
  RCode rcode = RCode::NOERROR;
};

struct AuthConfig {
  std::string label = "auth";
  // TTL for answers synthesized from a mapping policy (the paper's CDN uses
  // 20 seconds).
  std::uint32_t tailored_ttl = 20;
  // False models a pre-EDNS implementation: any query with an OPT record
  // gets FORMERR (§6.1 cites RFC 6891-unaware servers doing this).
  bool edns_supported = true;
  // True models the buggy implementations that silently drop ECS queries.
  bool drop_ecs_queries = false;
  bool log_queries = true;
};

class AuthServer {
 public:
  AuthServer(AuthConfig config, std::unique_ptr<EcsPolicy> policy);

  // Zones are looked up deepest-apex-first, so a server may host both
  // "example.com" and "sub.example.com".
  Zone& add_zone(const Name& apex);
  Zone* find_zone(const Name& qname);

  // Core entry point: answer `query` from `sender` at virtual time `now`.
  // nullopt means the query is dropped (timeout at the sender).
  std::optional<Message> handle(const Message& query, const IpAddress& sender,
                                SimTime now);

  // Registers this server on the network at `addr`; the service parses and
  // serializes real DNS packets.
  void attach(netsim::Network& network, const IpAddress& addr,
              const netsim::GeoPoint& location);

  const std::vector<QueryLogEntry>& log() const noexcept { return log_; }
  void clear_log() { log_.clear(); }
  std::uint64_t queries_served() const noexcept { return queries_served_; }

  const AuthConfig& config() const noexcept { return config_; }
  void set_policy(std::unique_ptr<EcsPolicy> policy) { policy_ = std::move(policy); }

 private:
  Message answer(const Message& query, const IpAddress& sender);

  // Registry mirrors (see src/obs): `queries_served_` and the query log
  // remain the per-server API; the registry aggregates across the fleet.
  struct Metrics {
    obs::CounterHandle queries;
    obs::CounterHandle ecs_queries;
    obs::CounterHandle ecs_responses;
    obs::CounterHandle dropped;
  };

  AuthConfig config_;
  std::unique_ptr<EcsPolicy> policy_;
  std::vector<std::unique_ptr<Zone>> zones_;
  std::vector<QueryLogEntry> log_;
  std::uint64_t queries_served_ = 0;
  Metrics metrics_;
};

}  // namespace ecsdns::authoritative
