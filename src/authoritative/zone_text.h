// A minimal RFC 1035 §5 zone-file dialect, so experiments and users can
// declare zone content as text instead of record-constructor calls.
//
// Supported, per line:
//   $TTL <seconds>
//   [owner] [ttl] [IN] TYPE rdata      ; comment
//
// Owner rules: "@" is the origin; names without a trailing dot are
// relative to the origin; an omitted owner repeats the previous line's.
// Types: A, AAAA, NS, CNAME, PTR, MX, TXT (one quoted string), SOA.
#pragma once

#include <string>
#include <vector>

#include "authoritative/zone.h"

namespace ecsdns::authoritative {

// Parses the text into records; throws std::invalid_argument (with a line
// number) on anything it does not understand.
std::vector<dnscore::ResourceRecord> parse_zone_text(const dnscore::Name& origin,
                                                     const std::string& text,
                                                     std::uint32_t default_ttl = 300);

// Convenience: parse and add everything to `zone` (origin = zone apex).
void load_zone_text(Zone& zone, const std::string& text,
                    std::uint32_t default_ttl = 300);

}  // namespace ecsdns::authoritative
