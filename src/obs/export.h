// Serialization of the observability state into the BENCH_*.json-style
// documents the bench binaries drop via --metrics-out / --trace-out.
#pragma once

#include <string>
#include <string_view>

namespace ecsdns::obs {

class MetricsRegistry;
class TraceRing;

// The full metrics document: run identity, wall-clock timing, and every
// counter/gauge/histogram in the registry.
std::string metrics_json(const MetricsRegistry& registry, std::string_view run_name,
                         double wall_ms);

// The trace document for a ring (schema ecsdns.trace.v1).
std::string trace_json(const TraceRing& ring);

// Writes `content` to `path`; returns false (and leaves any partial file)
// on I/O failure. Deliberately tiny — no tempfile dance, benches are the
// only writers.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace ecsdns::obs
