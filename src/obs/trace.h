// A bounded ring-buffer event tracer for resolution chains.
//
// The simulated topologies route one client query through forwarders,
// hidden resolvers, egress resolvers, and authoritative servers (§5's
// discovery machinery); when an experiment misbehaves, the question is
// always "what did hop N actually send". The tracer records virtual-time
// stamped hop events into a fixed ring — oldest events are overwritten, so
// memory stays bounded no matter how long a fleet runs — and serializes to
// JSON for the --trace-out bench flag. Tracing is opt-in: when disabled
// (the default) record() is a single predicted branch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dnscore/ip.h"

namespace ecsdns::obs {

class JsonWriter;

enum class TraceKind : std::uint8_t {
  kClientQuery,     // a stub/forwarded query arrived at a resolver
  kCacheHit,        // answered from the ECS-aware cache
  kNegativeHit,     // answered from the RFC 2308 negative cache
  kUpstreamQuery,   // resolver -> authoritative query sent
  kDatagram,        // one network round trip (any hop)
  kTimeout,         // a round trip that ended in a drop/timeout
  kClientResponse,  // response handed back toward the client
  kNote,            // free-form annotation
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  std::int64_t time = 0;  // virtual microseconds (netsim::SimTime)
  TraceKind kind = TraceKind::kNote;
  dnscore::IpAddress src;
  dnscore::IpAddress dst;
  std::uint32_t bytes = 0;   // payload size where meaningful
  std::string note;          // qname or detail; empty when irrelevant
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 8192);

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  // Drops existing events and resizes the ring.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const noexcept { return capacity_; }

  // Appends an event, overwriting the oldest once full. No-op while
  // disabled, so call sites can record unconditionally — but sites that
  // build a note string should check enabled() first to skip the
  // formatting work.
  void record(TraceEvent event);

  // Events oldest-first; at most capacity() of the recorded() total.
  std::vector<TraceEvent> events() const;
  std::uint64_t recorded() const noexcept { return recorded_; }
  // How many events fell off the ring.
  std::uint64_t overwritten() const noexcept {
    return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
  }
  void clear();

  void write_json(JsonWriter& w) const;

  static TraceRing& global();

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::size_t next_ = 0;        // ring slot for the next event
  std::uint64_t recorded_ = 0;  // lifetime total
  std::vector<TraceEvent> ring_;
  mutable std::mutex mu_;
};

}  // namespace ecsdns::obs
