#include "obs/alloc_counter.h"

#include <atomic>

namespace ecsdns::obs {
namespace {

// Zero-initialized before any dynamic initialization runs, so hooks firing
// from early static constructors are counted too.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

std::uint64_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

void count_allocation() noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ecsdns::obs
