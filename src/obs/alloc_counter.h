// Process-wide heap-allocation counter.
//
// The perf-regression harness (scripts/bench_report.py) tracks how many
// heap allocations an experiment performs, because the zero-allocation
// hot-path work lives or dies by that number. The counter itself is always
// present (one relaxed atomic), but it only advances when the counting
// operator new/delete overrides in bench/alloc_hooks.cpp are linked into
// the binary — bench executables link them, libraries and tests do not, so
// sanitizer builds and unit tests keep the default allocator behavior.
#pragma once

#include <cstdint>

namespace ecsdns::obs {

// Number of operator-new calls observed since process start (0 unless the
// counting hooks are linked). Monotonic; never reset.
std::uint64_t allocation_count() noexcept;

// Called by the allocation hooks. Relaxed — the count is a run statistic,
// not a synchronization point.
void count_allocation() noexcept;

}  // namespace ecsdns::obs
