#include "obs/trace.h"

#include "obs/json.h"

namespace ecsdns::obs {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kClientQuery: return "client_query";
    case TraceKind::kCacheHit: return "cache_hit";
    case TraceKind::kNegativeHit: return "negative_hit";
    case TraceKind::kUpstreamQuery: return "upstream_query";
    case TraceKind::kDatagram: return "datagram";
    case TraceKind::kTimeout: return "timeout";
    case TraceKind::kClientResponse: return "client_response";
    case TraceKind::kNote: return "note";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRing::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  recorded_ = 0;
}

void TraceRing::record(TraceEvent event) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    // Ring not yet wrapped: slots [0, size) are already oldest-first.
    out.assign(ring_.begin(), ring_.end());
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

void TraceRing::write_json(JsonWriter& w) const {
  const auto snapshot = events();
  w.begin_object();
  w.key("schema").value("ecsdns.trace.v1");
  w.key("recorded").value(recorded());
  w.key("overwritten").value(overwritten());
  w.key("events").begin_array();
  for (const auto& e : snapshot) {
    w.begin_object();
    w.key("t_us").value(static_cast<std::int64_t>(e.time));
    w.key("kind").value(to_string(e.kind));
    w.key("src").value(e.src.to_string());
    w.key("dst").value(e.dst.to_string());
    if (e.bytes != 0) w.key("bytes").value(static_cast<std::uint64_t>(e.bytes));
    if (!e.note.empty()) w.key("note").value(e.note);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

TraceRing& TraceRing::global() {
  static TraceRing ring;
  return ring;
}

}  // namespace ecsdns::obs
