#include "obs/export.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecsdns::obs {

std::string metrics_json(const MetricsRegistry& registry, std::string_view run_name,
                         double wall_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("ecsdns.metrics.v1");
  w.key("run").value(run_name);
  w.key("wall_ms").value(wall_ms);

  w.key("counters").begin_object();
  for (const auto& [name, value] : registry.counters()) {
    w.key(name).value(value);
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, gv] : registry.gauges()) {
    w.key(name).begin_object();
    w.key("value").value(gv.value);
    w.key("max").value(gv.max);
    w.end_object();
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, hist] : registry.histograms()) {
    w.key(name).begin_object();
    w.key("count").value(hist->count());
    w.key("sum").value(hist->sum());
    w.key("min").value(hist->min());
    w.key("max").value(hist->max());
    w.key("mean").value(hist->mean());
    w.key("p50").value(hist->percentile(0.50));
    w.key("p90").value(hist->percentile(0.90));
    w.key("p99").value(hist->percentile(0.99));
    // Sparse bucket dump: [bit_width, count] pairs for non-empty buckets,
    // enough to rebuild the full log-scale distribution.
    w.key("log2_buckets").begin_array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = hist->bucket(b);
      if (n == 0) continue;
      w.begin_array().value(b).value(n).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

std::string trace_json(const TraceRing& ring) {
  JsonWriter w;
  ring.write_json(w);
  return w.take();
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  return written == content.size() && close_rc == 0;
}

}  // namespace ecsdns::obs
