#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace ecsdns::obs {

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its separator
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += json_quote(name);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += json_quote(text);
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view{text});
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t n) {
  comma();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  comma();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

}  // namespace ecsdns::obs
