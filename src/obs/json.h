// A minimal, dependency-free JSON writer.
//
// The observability layer emits machine-readable metrics and trace
// documents (the BENCH_*.json trajectory files) without pulling a JSON
// library into the build. The writer tracks nesting and comma placement so
// call sites read linearly; it never allocates beyond the output string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ecsdns::obs {

// Escapes `text` per RFC 8259 (quotes, backslash, control characters) and
// returns it wrapped in double quotes.
std::string json_quote(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Emits an object key; the next value/begin_* call supplies its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(bool b);
  JsonWriter& value(std::uint64_t n);
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  // Doubles print with enough precision to round-trip; non-finite values
  // (invalid JSON) degrade to null.
  JsonWriter& value(double d);
  JsonWriter& null();

  // The document so far. Call once nesting is closed; unbalanced documents
  // are the caller's bug, not detected here.
  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  // One flag per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace ecsdns::obs
