#include "obs/metrics.h"

namespace ecsdns::obs {

std::uint64_t Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based; walk buckets until reached.
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) return bucket_upper_bound(b);
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::merge_from(const Histogram& other) noexcept {
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.bucket(b);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() != 0) {
    note_bound(min_, other.min(), /*want_lower=*/true);
    note_bound(max_, other.max(), /*want_lower=*/false);
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, MetricsRegistry::GaugeValue>>
MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, GaugeValue>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, GaugeValue{g->value(), g->max()});
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> MetricsRegistry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (&other == this) return;  // self-merge would double-lock and double-count
  // Lock both registries together; scoped_lock orders acquisition so two
  // concurrent cross-merges cannot deadlock.
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, c] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    it->second->merge_from(*c);
  }
  for (const auto& [name, g] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    }
    it->second->merge_from(*g);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    }
    it->second->merge_from(*h);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void preregister_core_metrics(MetricsRegistry& registry) {
  registry.counter("cache.hits");
  registry.counter("cache.misses");
  registry.counter("cache.insertions");
  registry.counter("cache.expired_evictions");
  registry.counter("cache.capacity_evictions");
  registry.counter("cache.capacity_evictions.lru");
  registry.counter("cache.capacity_evictions.lfu");
  registry.counter("cache.capacity_evictions.sieve");
  registry.counter("cache.capacity_evictions.scope");
  registry.counter("cache.cleared_entries");
  registry.counter("cache.replacements");
  registry.counter("cache.ttl_zero_skips");
  registry.histogram("cache.eviction_age_s");
  registry.gauge("cache.live_entries");
  registry.counter("resolver.client_queries");
  registry.counter("resolver.upstream_queries");
  registry.counter("resolver.upstream_ecs_queries");
  registry.counter("resolver.cache_hits");
  registry.counter("resolver.negative_cache_hits");
  registry.counter("resolver.edns_fallbacks");
  registry.counter("resolver.servfails");
  registry.counter("resolver.referrals_followed");
  registry.counter("resolver.cname_restarts");
  registry.counter("auth.queries");
  registry.counter("auth.ecs_queries");
  registry.counter("auth.ecs_responses");
  registry.counter("auth.dropped");
  registry.counter("net.round_trips");
  registry.counter("net.timeouts");
  registry.counter("net.tcp_round_trips");
  registry.counter("net.bytes_sent");
  registry.counter("net.bytes_received");
  registry.histogram("net.rtt_us");
  // Live-wire mode (src/live): per-shard server loop and the live client.
  registry.counter("live.rx_batches");
  registry.counter("live.rx_packets");
  registry.counter("live.tx_batches");
  registry.counter("live.tx_packets");
  registry.counter("live.drops");
  registry.counter("live.truncated");
  registry.counter("live.eagain");
  registry.counter("live.eintr");
  registry.counter("live.tx_eagain");
  registry.counter("live.send_drops");
  registry.counter("live.socket_errors");
  registry.counter("live.client.queries");
  registry.counter("live.client.responses");
  registry.counter("live.client.retries");
  registry.counter("live.client.timeouts");
  registry.counter("live.client.unmatched");
  registry.counter("live.client.send_eagain");
  registry.counter("live.client.eintr");
  registry.histogram("live.client.latency_us");
}

}  // namespace ecsdns::obs
