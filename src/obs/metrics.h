// The central metrics registry: named counters, gauges, and log-scale
// histograms.
//
// The paper's contribution is measurement, and the reproduction needs to
// measure *itself*: cache hit rates (§7), upstream query amplification
// (§6.3), and network round-trip distributions are all first-class outputs
// of every experiment binary. Components own cheap handles bound to
// registry-owned metrics; updates are single relaxed atomic operations, so
// instrumentation stays well under the 5% overhead budget the micro_obs
// benchmark enforces. Registration takes a mutex; the hot path never does.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ecsdns::obs {

// Global kill switch for the registry mirrors. Instrumented components
// check it through their handles; flipping it off turns every handle into
// a predicted-not-taken branch, which is what micro_obs measures the cost
// of resolution with and without.
inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
inline bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// A monotonically increasing event count.
// alignas(64) on Counter/Gauge: the registry heap-allocates each metric
// individually, and without the alignment two hot counters (or a counter
// and an unrelated allocation) can land on one cache line — false sharing
// between shard threads that each own "their" metric. One line per metric
// makes the relaxed fetch_adds genuinely independent.
class alignas(64) Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  // Folds another counter in (sharded runs merge per-shard registries).
  void merge_from(const Counter& other) noexcept { inc(other.value()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// A signed level that can move both ways; tracks its high-water mark (the
// cache blow-up analyses care about peaks, not endpoints).
class alignas(64) Gauge {
 public:
  void add(std::int64_t delta) noexcept {
    const std::int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    note_max(now);
  }
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    note_max(v);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  // Merge rule for sharded runs: levels add, high-water marks take the
  // larger per-shard peak. The sum of per-shard peaks is NOT the combined
  // peak (shards peak at different times), so a merged max is a lower
  // bound; exact cross-shard peaks must be computed by the simulation
  // itself (as the sharded cache replay does).
  void merge_from(const Gauge& other) noexcept {
    value_.fetch_add(other.value(), std::memory_order_relaxed);
    note_max(other.max());
  }

 private:
  void note_max(std::int64_t candidate) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

// A log-scale histogram: bucket b counts samples whose bit width is b, i.e.
// values in [2^(b-1), 2^b), with bucket 0 reserved for zero. Covers the
// full uint64 range in 65 fixed slots — microsecond RTTs, byte counts, and
// cache sizes all fit without configuration.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(std::uint64_t sample) noexcept {
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    note_bound(min_, sample, /*want_lower=*/true);
    note_bound(max_, sample, /*want_lower=*/false);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const noexcept {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  std::uint64_t bucket(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  // Upper bound of the bucket holding the q-quantile (0 <= q <= 1): an
  // estimate within a factor of two, which is what a log-scale histogram
  // promises.
  std::uint64_t percentile(double q) const noexcept;

  void reset() noexcept;

  static int bucket_of(std::uint64_t sample) noexcept {
    int width = 0;
    while (sample != 0) {
      ++width;
      sample >>= 1;
    }
    return width;
  }
  // Inclusive upper edge of bucket b (0 for the zero bucket).
  static std::uint64_t bucket_upper_bound(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= 64) return ~0ull;
    return (1ull << b) - 1;
  }

  // Bucket-wise fold of another histogram. Exact: the merged histogram is
  // identical to one that observed the union of both sample multisets, so
  // sharded exports are byte-identical to serial ones.
  void merge_from(const Histogram& other) noexcept;

 private:
  static void note_bound(std::atomic<std::uint64_t>& slot, std::uint64_t sample,
                         bool want_lower) noexcept {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while ((want_lower ? sample < seen : sample > seen) &&
           !slot.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// Cheap bound handles components keep as members. Null handles and the
// global kill switch both degrade updates to a no-op branch.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter& c) noexcept : counter_(&c) {}
  void inc(std::uint64_t n = 1) const noexcept {
    if (counter_ != nullptr && enabled()) counter_->inc(n);
  }

 private:
  Counter* counter_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge& g) noexcept : gauge_(&g) {}
  void add(std::int64_t delta) const noexcept {
    if (gauge_ != nullptr && enabled()) gauge_->add(delta);
  }
  void set(std::int64_t v) const noexcept {
    if (gauge_ != nullptr && enabled()) gauge_->set(v);
  }

 private:
  Gauge* gauge_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram& h) noexcept : histogram_(&h) {}
  void observe(std::uint64_t sample) const noexcept {
    if (histogram_ != nullptr && enabled()) histogram_->observe(sample);
  }

 private:
  Histogram* histogram_ = nullptr;
};

// Owns every named metric. Lookup-or-create is mutex-guarded and intended
// for construction time; returned references stay valid for the registry's
// lifetime (metrics are heap-allocated and never removed).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Zeroes every metric, keeping registrations (and thus bound handles)
  // intact. Bench binaries call this at startup so exports cover one run.
  void reset();

  // Folds every metric of `other` into this registry, creating any metric
  // not yet registered here. Counters and histograms merge exactly; gauges
  // follow the Gauge::merge_from rule. Sharded engines merge per-shard
  // registries in shard-index order, but every merge rule is commutative
  // and associative, so the merged export does not depend on the partition.
  void merge_from(const MetricsRegistry& other);

  // Sorted snapshots for export; histogram pointers remain valid.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  struct GaugeValue {
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  std::vector<std::pair<std::string, GaugeValue>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  // The process-wide registry every instrumented component binds to.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Touches the well-known metric names every component family emits, so an
// exported document always carries the cache, resolver, auth, and network
// keys even when a given experiment never exercised that component.
void preregister_core_metrics(MetricsRegistry& registry);

}  // namespace ecsdns::obs
