// Paper-scale streaming pipeline: generate -> simulate -> aggregate for a
// million-resolver fleet without ever materializing the trace. The three
// numbers that matter: sustained queries/second through the fold, peak RSS
// (bounded by live cache entries, not query count), and the sampled-digest
// equivalence of the sharded replay against the serial fold.
//
// Gates (all off by default, enabled by CI): --min-qps=N fails the run if
// the fold sustains less, --max-peak-rss-mb=N fails it if VmHWM exceeds N.
// --oracle=1 additionally replays the stream at shard counts 2/4/8 — and
// across worker threads 1/2/4/8, pinned and unpinned — requiring every
// sampled digest to equal the serial one. --sweep=1 times those
// thread-count runs into a q/s-vs-cores scaling curve (scale.sweep.*
// gauges); --min-speedup-pct=N gates the 4-thread run against the 1-thread
// run (200 = "at least 2x"), auto-skipped with a warning on machines with
// fewer than 4 online CPUs where the comparison is physically meaningless.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

#include "measurement/cache_sim.h"
#include "measurement/prefix_census.h"
#include "measurement/trace_stream.h"
#include "netsim/topology.h"
#include "obs/metrics.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

namespace {

// Per-resolver load scaled way down from the Figure 1 defaults: at 1M+
// resolvers the interesting axis is fleet width, not per-member qps, and
// total query volume must stay single-core friendly.
PublicResolverCdnConfig scale_config(std::uint32_t resolvers,
                                     netsim::SimTime duration) {
  PublicResolverCdnConfig config;
  config.resolvers = resolvers;
  config.min_clients_per_resolver = 2;
  config.max_clients_per_resolver = 64;
  config.min_qps = 0.02;
  config.max_qps = 0.5;
  config.hostnames = 1000;
  config.duration = duration;
  config.seed = 1;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv, "scale_streaming");
  const auto resolvers =
      static_cast<std::uint32_t>(bench::flag(argc, argv, "resolvers", 1000000));
  const auto duration_s = bench::flag(argc, argv, "duration-s", 30);
  const long min_qps = bench::flag(argc, argv, "min-qps", 0);
  const long max_rss_mb = bench::flag(argc, argv, "max-peak-rss-mb", 0);
  const bool oracle = bench::flag(argc, argv, "oracle", 0) != 0;
  const bool sweep = bench::flag(argc, argv, "sweep", 0) != 0;
  const long min_speedup_pct = bench::flag(argc, argv, "min-speedup-pct", 0);

  bench::banner("scale_streaming: 1M+ resolver streaming pipeline",
                "the full-population extrapolation the paper's datasets "
                "subsample (2370 egress resolvers -> whole fleet)");

  const auto config =
      scale_config(resolvers, duration_s * netsim::kSecond);

  // ---- streaming fold: generator -> cache sim + client-prefix census ----
  const auto start = std::chrono::steady_clock::now();
  PublicResolverCdnStream stream(config);
  StreamingCacheSim sim(resolvers, {});
  ClientPrefixCensus census(resolvers);
  std::size_t peak_live = 0;
  TraceQuery q;
  while (stream.next(q)) {
    sim.observe(q);
    census.observe(q);
    peak_live = std::max(peak_live, sim.live_entries());
  }
  const std::uint64_t queries = sim.queries();
  const auto result = sim.finish();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double qps = wall_s > 0 ? static_cast<double>(queries) / wall_s : 0.0;
  const std::uint64_t rss = bench::peak_rss_bytes();
  // What the retired pipeline would have held: the full query vector plus
  // the per-query client addresses (Trace::queries alone; the clients
  // vector and the sort buffer come on top).
  const std::uint64_t materialized = queries * sizeof(TraceQuery);

  std::printf("  fleet %u resolvers, %" PRIu64 " queries over %llds sim time\n",
              resolvers, queries, static_cast<long long>(duration_s));
  std::printf("  sustained fold rate: %.0f queries/s (wall %.1fs)\n", qps,
              wall_s);
  std::printf("  peak live cache entries: %zu\n", peak_live);
  std::printf("  distinct (resolver, block) pairs: %" PRIu64 "\n",
              census.distinct_pairs());
  std::printf("  peak RSS: %.1f MiB; materialized trace alone would be "
              "%.1f MiB (%.1fx)\n",
              static_cast<double>(rss) / (1024.0 * 1024.0),
              static_cast<double>(materialized) / (1024.0 * 1024.0),
              rss > 0 ? static_cast<double>(materialized) /
                            static_cast<double>(rss)
                      : 0.0);

  auto& registry = obs::MetricsRegistry::global();
  registry.gauge("scale.resolvers").set(static_cast<std::int64_t>(resolvers));
  registry.gauge("scale.queries").set(static_cast<std::int64_t>(queries));
  registry.gauge("scale.sustained_qps").set(static_cast<std::int64_t>(qps));
  registry.gauge("scale.peak_live_entries")
      .set(static_cast<std::int64_t>(peak_live));

  bool ok = true;
  const std::uint64_t expect = sampled_result_digest(result, 64, config.seed);

  // ---- sampled-digest oracle across shard counts ----
  if (oracle) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}}) {
      CacheSimOptions options;
      options.shards = shards;
      const auto sharded =
          simulate_cache_stream(cdn_stream_factory(config), options);
      const std::uint64_t digest = sampled_result_digest(sharded, 64, config.seed);
      std::printf("  oracle shards=%zu sampled digest %016" PRIx64 " %s\n",
                  shards, digest, digest == expect ? "ok" : "MISMATCH");
      if (digest != expect) ok = false;
    }
  }

  // ---- thread/pin matrix: digests + q/s-vs-cores scaling curve ----
  // Fixed shard count (8) so every cell replays the identical partition;
  // only worker threads and pinning vary — exactly the axes the
  // determinism contract says cannot matter. Each cell's digest must equal
  // the serial fold's.
  if (oracle || sweep) {
    const std::size_t matrix_shards =
        resolvers >= 8 ? 8 : std::max<std::size_t>(1, resolvers);
    double qps_t1 = 0;
    double qps_t4 = 0;
    std::printf("\n  scaling matrix (shards=%zu):\n", matrix_shards);
    for (const bool pinned : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}, std::size_t{8}}) {
        CacheSimOptions options;
        options.shards = matrix_shards;
        options.threads = threads;
        options.pin_threads = pinned;
        options.runtime_metrics = true;
        const auto cell_start = std::chrono::steady_clock::now();
        const auto sharded =
            simulate_cache_stream(cdn_stream_factory(config), options);
        const double cell_wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          cell_start)
                .count();
        const std::uint64_t digest =
            sampled_result_digest(sharded, 64, config.seed);
        const double cell_qps =
            cell_wall > 0 ? static_cast<double>(queries) / cell_wall : 0.0;
        std::printf("    threads=%zu %-8s %10.0f q/s  digest %016" PRIx64
                    " %s\n",
                    threads, pinned ? "pinned" : "unpinned", cell_qps, digest,
                    digest == expect ? "ok" : "MISMATCH");
        if (digest != expect) ok = false;
        if (sweep) {
          const std::string gauge = "scale.sweep.t" + std::to_string(threads) +
                                    (pinned ? ".pinned.qps" : ".qps");
          registry.gauge(gauge).set(static_cast<std::int64_t>(cell_qps));
        }
        if (!pinned && threads == 1) qps_t1 = cell_qps;
        if (!pinned && threads == 4) qps_t4 = cell_qps;
      }
    }
    if (min_speedup_pct > 0) {
      const std::size_t online = netsim::Topology::detect().online_cpus();
      if (online < 4) {
        std::fprintf(stderr,
                     "warning: only %zu online CPU(s); skipping the "
                     "--min-speedup-pct gate (a multi-core speedup cannot "
                     "be measured here)\n",
                     online);
      } else if (qps_t4 * 100.0 <
                 qps_t1 * static_cast<double>(min_speedup_pct)) {
        std::fprintf(stderr,
                     "FAIL: 4-thread run %.0f q/s is below %ld%% of the "
                     "1-thread run %.0f q/s\n",
                     qps_t4, min_speedup_pct, qps_t1);
        ok = false;
      } else {
        std::printf("  speedup gate: 4 threads %.2fx 1 thread (>= %ld%%)\n",
                    qps_t1 > 0 ? qps_t4 / qps_t1 : 0.0, min_speedup_pct);
      }
    }
  }

  // ---- gates ----
  if (min_qps > 0 && qps < static_cast<double>(min_qps)) {
    std::fprintf(stderr, "FAIL: sustained %.0f qps < --min-qps=%ld\n", qps,
                 min_qps);
    ok = false;
  }
  if (max_rss_mb > 0 && rss > static_cast<std::uint64_t>(max_rss_mb) * 1024 * 1024) {
    std::fprintf(stderr, "FAIL: peak RSS %.1f MiB > --max-peak-rss-mb=%ld\n",
                 static_cast<double>(rss) / (1024.0 * 1024.0), max_rss_mb);
    ok = false;
  }
  std::printf("\n%s\n", ok ? "scale_streaming: PASS" : "scale_streaming: FAIL");
  return ok ? 0 : 1;
}
