// Engineering microbenchmarks: end-to-end resolution and scan throughput —
// the numbers that bound how large a fleet the experiment binaries can
// drive per wall-clock second.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "authoritative/ecs_policy.h"
#include "measurement/scanner.h"
#include "measurement/testbed.h"

namespace {

using namespace ecsdns;
using dnscore::IpAddress;
using dnscore::Name;

struct Rig {
  measurement::Testbed bed;
  resolver::RecursiveResolver* resolver;
  Name host = Name::from_string("www.example.com");

  Rig() {
    auto& auth = bed.add_auth("auth", Name::from_string("example.com"), "Ashburn",
                              std::make_unique<authoritative::ScopeDeltaPolicy>(0));
    auth.find_zone(Name::from_string("example.com"))
        ->add(dnscore::ResourceRecord::make_a(host, 60,
                                              IpAddress::parse("1.1.1.1")));
    resolver = &bed.add_resolver(resolver::ResolverConfig::correct(), "Chicago");
    bed.network().set_advance_clock(false);  // steady-state: no TTL churn
  }
};

void BM_ResolveCacheHit(benchmark::State& state) {
  Rig rig;
  const auto client = IpAddress::parse("100.64.1.5");
  dnscore::Message q = dnscore::Message::make_query(1, rig.host, dnscore::RRType::A);
  q.opt = dnscore::OptRecord{};
  (void)rig.resolver->handle_client_query(q, client);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.resolver->handle_client_query(q, client));
  }
}
BENCHMARK(BM_ResolveCacheHit);

void BM_ResolveColdPerSubnet(benchmark::State& state) {
  Rig rig;
  dnscore::Message q = dnscore::Message::make_query(1, rig.host, dnscore::RRType::A);
  q.opt = dnscore::OptRecord{};
  std::uint32_t subnet = 0;
  for (auto _ : state) {
    // A fresh /24 every time: full upstream fetch through the hierarchy
    // (NS caches warm after the first iteration).
    const auto client = IpAddress::v4((100u << 24) | (++subnet << 8) | 5u);
    benchmark::DoNotOptimize(rig.resolver->handle_client_query(q, client));
  }
}
BENCHMARK(BM_ResolveColdPerSubnet);

void BM_ScanProbe(benchmark::State& state) {
  measurement::Testbed bed;
  measurement::Scanner scanner(bed);
  auto& egress = bed.add_resolver(resolver::ResolverConfig::google_like(), "Miami");
  std::vector<IpAddress> targets;
  for (int i = 0; i < 8; ++i) {
    targets.push_back(
        bed.add_forwarder("Santiago", egress.address()).address());
  }
  bed.network().set_advance_clock(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(targets));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ScanProbe);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the obs flags
// (--metrics-out/--trace-out) are not google-benchmark flags, so they are
// consumed by ObsSession before Initialize() sees argv.
int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "micro_resolution");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) continue;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) continue;
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
