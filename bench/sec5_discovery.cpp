// §5: discovering ECS-enabled resolvers — passive observation at a busy
// authoritative vs active scanning through open forwarders. The passive
// method sees every resolver whose clients touch the zone; the active scan
// only sees resolvers reachable through open ingress forwarders.
#include <cstdio>
#include <set>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/scanner.h"
#include "measurement/stats.h"
#include "measurement/workload.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec5_discovery");
  bench::banner("sec5_discovery",
                "Section 5 - passive vs active discovery of ECS resolvers");

  Testbed bed;
  Scanner scanner(bed);
  // Two populations: resolvers reachable through open forwarders (the scan
  // can find these) and a much larger crowd reachable by nobody — closed
  // ISP resolvers whose existence only the passive vantage point reveals.
  ScanFleetOptions options;
  options.scale = static_cast<int>(bench::flag(argc, argv, "scale", 8));
  Fleet fleet = build_scan_dataset_fleet(bed, options);
  CdnFleetOptions closed_options;
  closed_options.scale = static_cast<int>(bench::flag(argc, argv, "closed-scale", 4));
  Fleet closed_fleet = build_cdn_dataset_fleet(bed, closed_options);

  // Passive vantage point: a busy CDN-style zone every resolver's clients
  // touch. Drive a short workload through the whole fleet.
  const auto zone = dnscore::Name::from_string("busy.example");
  auto& cdn = bed.add_auth("busy", zone, "Ashburn",
                           std::make_unique<authoritative::FixedScopePolicy>(24));
  const auto host = zone.prepend("www");
  cdn.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
      host, 20, dnscore::IpAddress::parse("203.0.113.9")));
  WorkloadOptions wl;
  wl.hostnames = {host};
  wl.duration = 30 * netsim::kMinute;
  wl.mean_query_gap = 5 * netsim::kMinute;
  drive_fleet(bed, fleet, wl);
  drive_fleet(bed, closed_fleet, wl);

  std::set<std::string> passive;
  for (const auto& e : cdn.log()) {
    if (e.query_ecs) passive.insert(e.sender.to_string());
  }

  // Active vantage point: scan the open forwarders.
  std::vector<dnscore::IpAddress> targets;
  for (const auto& m : fleet.members) {
    for (const auto* f : m.forwarders) targets.push_back(f->address());
  }
  const ScanResults results = scanner.scan(targets);
  std::set<std::string> active;
  for (const auto& a : results.ecs_egress_addresses()) active.insert(a.to_string());

  std::size_t overlap = 0;
  for (const auto& a : active) {
    if (passive.count(a) != 0) ++overlap;
  }

  TextTable table({"method", "ECS egress resolvers found"});
  table.add_row({"passive (busy authoritative log)", std::to_string(passive.size())});
  table.add_row({"active (scan via open forwarders)", std::to_string(active.size())});
  table.add_row({"active resolvers also seen passively", std::to_string(overlap)});
  std::printf(
      "fleets: %zu scan-reachable + %zu closed egress resolvers, %zu open "
      "forwarders\n\n",
      fleet.members.size(), closed_fleet.members.size(), targets.size());
  std::printf("%s\n", table.render().c_str());

  bench::compare("passive finds more than active", "4147 vs 278 (non-Google)",
                 passive.size() > active.size() ? "reproduced" : "NOT reproduced");
  bench::compare("active mostly contained in passive", "234 of 278",
                 (std::to_string(overlap) + " of " + std::to_string(active.size()))
                     .c_str());
  return 0;
}
