// §6.3: caching behavior of ECS resolvers, measured with the paper's
// two-query technique (crafted client ECS where accepted, two open
// forwarders in different /24s of one /16 otherwise) against a controlled
// authoritative that returns scopes 24, 16, and 0.
#include <cstdio>

#include "bench_common.h"
#include "measurement/caching_prober.h"
#include "measurement/fleet.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec63_caching_behavior");
  bench::banner("sec63_caching_behavior",
                "Section 6.3 - caching behavior classes (76/103/15/8/1)");
  const int scale = static_cast<int>(bench::flag(argc, argv, "scale", 1));

  Testbed bed;
  ScanFleetOptions options;
  options.scale = scale;
  Fleet fleet = build_scan_dataset_fleet(bed, options);

  CachingProber prober(bed);
  // The paper studies the 278 non-Google resolvers (plus one reachable
  // Google egress); we probe every non-MP member plus one MP member.
  std::vector<CachingVerdict> verdicts;
  bool probed_mp = false;
  for (const auto& m : fleet.members) {
    if (m.behavior == "AS-MP") {
      if (probed_mp || m.forwarders.empty()) continue;
      probed_mp = true;
    }
    verdicts.push_back(prober.probe(m));
  }
  const auto histogram = CachingProber::histogram(verdicts);
  const auto count = [&](CachingClass c) -> std::size_t {
    const auto it = histogram.find(c);
    return it == histogram.end() ? 0 : it->second;
  };

  TextTable table({"caching behavior", "paper", "measured"});
  table.add_row({"correct (honors scope, <= 24 bits)", "76",
                 std::to_string(count(CachingClass::kCorrect))});
  table.add_row({"ignores scope entirely", "103",
                 std::to_string(count(CachingClass::kIgnoresScope))});
  table.add_row({"accepts/caches prefixes > 24", "15",
                 std::to_string(count(CachingClass::kAcceptsLongPrefixes))});
  table.add_row({"clamps source and scope at 22", "8",
                 std::to_string(count(CachingClass::kClamp22))});
  table.add_row({"private-block misconfiguration", "1",
                 std::to_string(count(CachingClass::kPrivatePrefixBug))});
  table.add_row({"not studiable (no delivery path)", "75 (64+12-1)",
                 std::to_string(count(CachingClass::kUnstudied))});
  std::printf("probed %zu resolvers (scale 1/%d)\n\n%s\n", verdicts.size(), scale,
              table.render().c_str());

  const std::size_t studied = verdicts.size() - count(CachingClass::kUnstudied);
  bench::compare("scope-ignorers among studied", "103/203 (over half)",
                 (std::to_string(count(CachingClass::kIgnoresScope)) + "/" +
                  std::to_string(studied))
                     .c_str());
  bench::compare("every deviant class observed", "yes",
                 count(CachingClass::kIgnoresScope) &&
                         count(CachingClass::kAcceptsLongPrefixes) &&
                         count(CachingClass::kClamp22) &&
                         count(CachingClass::kPrivatePrefixBug)
                     ? "yes"
                     : "no");
  return 0;
}
