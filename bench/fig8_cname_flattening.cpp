// Figure 8 / §8.4: the CNAME-flattening timeline. Accessing the zone apex
// (flattened by the DNS provider, whose backend query carries no ECS) maps
// the client to a far-away edge and costs an HTTP redirect; accessing www
// (regular CNAME, resolved by the ECS-speaking public resolver) does not.
#include <cstdio>
#include <memory>
#include <vector>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/flattening_exp.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig8_cname_flattening");
  bench::banner("fig8_cname_flattening",
                "Figure 8 / section 8.4 - CNAME flattening penalty");
  (void)argc;
  (void)argv;

  {
    Testbed bed;
    FlatteningOptions options;  // provider does NOT forward ECS (the pitfall)
    const auto t = run_cname_flattening_experiment(bed, options);

    std::printf("client: %s   resolver egress: %s   DNS provider: %s\n\n",
                options.client_city.c_str(), options.resolver_city.c_str(),
                options.provider_city.c_str());
    TextTable table({"step (Figure 8)", "duration", "detail"});
    table.add_row({"1-6  resolve customer.com (flattened)",
                   netsim::format_duration(t.apex_dns),
                   "edge E1 = " + t.apex_edge.to_string() + " (" + t.apex_edge_city +
                       ")"});
    table.add_row({"7    TCP handshake with E1",
                   netsim::format_duration(t.apex_handshake), "mis-mapped edge"});
    table.add_row({"7-8  HTTP request -> 302 redirect",
                   netsim::format_duration(t.redirect), "to www.customer.com"});
    table.add_row({"9-14 resolve www.customer.com",
                   netsim::format_duration(t.www_dns),
                   "edge E2 = " + t.www_edge.to_string() + " (" + t.www_edge_city +
                       ")"});
    table.add_row({"     TCP handshake with E2",
                   netsim::format_duration(t.www_handshake), "correct edge"});
    std::printf("%s\n", table.render().c_str());
    std::printf("apex access total : %s\n",
                netsim::format_duration(t.apex_total()).c_str());
    std::printf("www access total  : %s\n",
                netsim::format_duration(t.www_total()).c_str());
    std::printf("flattening penalty: %s\n\n",
                netsim::format_duration(t.penalty()).c_str());

    bench::compare("handshake to mis-mapped edge E1", "125 ms",
                   netsim::format_duration(t.apex_handshake).c_str());
    bench::compare("handshake to correct edge E2", "45 ms",
                   netsim::format_duration(t.www_handshake).c_str());
    bench::compare("overall penalty of apex access", "~650 ms",
                   netsim::format_duration(t.penalty()).c_str());
  }

  // The counterfactual the paper discusses: the provider forwards ECS.
  {
    Testbed bed;
    FlatteningOptions options;
    options.provider_forwards_ecs = true;
    const auto t = run_cname_flattening_experiment(bed, options);
    std::printf("\ncounterfactual (provider forwards ECS on backend):\n");
    std::printf("  apex now maps to %s; handshake %s (penalty only the redirect)\n",
                t.apex_edge_city.c_str(),
                netsim::format_duration(t.apex_handshake).c_str());
  }

  // --- steady-state packet-path sweep (perf gauge, not a paper figure) ---
  // The timelines above are single accesses, so this binary's wall time and
  // run.allocations gauge would be ~all topology construction. This section
  // drives the same apex+www access pair from one client per catalog city
  // over several rounds against one shared topology, so the fig8 gauges in
  // BENCH_PR5.json track the per-access packet path (serialize, per-hop
  // relay, parse) rather than setup cost.
  {
    Testbed bed;
    FlatteningOptions options;
    auto& fleet = bed.add_global_fleet();
    cdn::ProximityMappingConfig cdn_config;
    cdn_config.label = "major-cdn";
    cdn_config.min_ecs_bits = 16;
    cdn_config.effective_bits = 24;
    cdn_config.fallback = cdn::Fallback::kResolverProxy;
    auto& mapping = bed.add_mapping(cdn_config, fleet);
    const auto cdn_zone = dnscore::Name::from_string("cdn.net");
    const auto cdn_host = dnscore::Name::from_string("customer.cdn.net");
    auto& cdn_auth = bed.add_auth(
        "cdn-auth", cdn_zone, "Ashburn",
        std::make_unique<authoritative::CdnMappingPolicy>(mapping),
        authoritative::AuthConfig{.label = "cdn",
                                  .tailored_ttl = options.cdn_ttl});
    cdn_auth.find_zone(cdn_zone)->add(dnscore::ResourceRecord::make_a(
        cdn_host, options.cdn_ttl, fleet.servers().front().address));
    const auto customer_zone = dnscore::Name::from_string("customer.com");
    const auto www_host = dnscore::Name::from_string("www.customer.com");
    authoritative::FlatteningConfig fconfig;
    fconfig.forward_ecs = options.provider_forwards_ecs;
    auto& provider = bed.add_flattening_auth(fconfig, customer_zone,
                                             options.provider_city);
    provider.flatten(customer_zone, cdn_host, bed.auth_address(cdn_auth));
    provider.base().find_zone(customer_zone)->add(
        dnscore::ResourceRecord::make_cname(www_host, 300, cdn_host));
    auto& pub_resolver = bed.add_resolver(
        resolver::ResolverConfig::google_like(), options.resolver_city);
    std::vector<resolver::StubClient*> clients;
    for (const auto& city : bed.world().cities()) {
      clients.push_back(&bed.add_client(city.name));
    }
    std::size_t accesses = 0;
    std::size_t failures = 0;
    for (int round = 0; round < 4; ++round) {
      for (auto* client : clients) {
        const auto apex = client->query(pub_resolver.address(), customer_zone,
                                        dnscore::RRType::A);
        const auto www = client->query(pub_resolver.address(), www_host,
                                       dnscore::RRType::A);
        accesses += 2;
        if (!apex || !apex->first_address()) ++failures;
        if (!www || !www->first_address()) ++failures;
      }
    }
    std::printf(
        "\nsteady-state sweep: %zu accesses (%zu clients x 4 rounds), "
        "%zu failures\n",
        accesses, clients.size(), failures);
  }
  return 0;
}
