// Figure 8 / §8.4: the CNAME-flattening timeline. Accessing the zone apex
// (flattened by the DNS provider, whose backend query carries no ECS) maps
// the client to a far-away edge and costs an HTTP redirect; accessing www
// (regular CNAME, resolved by the ECS-speaking public resolver) does not.
#include <cstdio>

#include "bench_common.h"
#include "measurement/flattening_exp.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig8_cname_flattening");
  bench::banner("fig8_cname_flattening",
                "Figure 8 / section 8.4 - CNAME flattening penalty");
  (void)argc;
  (void)argv;

  {
    Testbed bed;
    FlatteningOptions options;  // provider does NOT forward ECS (the pitfall)
    const auto t = run_cname_flattening_experiment(bed, options);

    std::printf("client: %s   resolver egress: %s   DNS provider: %s\n\n",
                options.client_city.c_str(), options.resolver_city.c_str(),
                options.provider_city.c_str());
    TextTable table({"step (Figure 8)", "duration", "detail"});
    table.add_row({"1-6  resolve customer.com (flattened)",
                   netsim::format_duration(t.apex_dns),
                   "edge E1 = " + t.apex_edge.to_string() + " (" + t.apex_edge_city +
                       ")"});
    table.add_row({"7    TCP handshake with E1",
                   netsim::format_duration(t.apex_handshake), "mis-mapped edge"});
    table.add_row({"7-8  HTTP request -> 302 redirect",
                   netsim::format_duration(t.redirect), "to www.customer.com"});
    table.add_row({"9-14 resolve www.customer.com",
                   netsim::format_duration(t.www_dns),
                   "edge E2 = " + t.www_edge.to_string() + " (" + t.www_edge_city +
                       ")"});
    table.add_row({"     TCP handshake with E2",
                   netsim::format_duration(t.www_handshake), "correct edge"});
    std::printf("%s\n", table.render().c_str());
    std::printf("apex access total : %s\n",
                netsim::format_duration(t.apex_total()).c_str());
    std::printf("www access total  : %s\n",
                netsim::format_duration(t.www_total()).c_str());
    std::printf("flattening penalty: %s\n\n",
                netsim::format_duration(t.penalty()).c_str());

    bench::compare("handshake to mis-mapped edge E1", "125 ms",
                   netsim::format_duration(t.apex_handshake).c_str());
    bench::compare("handshake to correct edge E2", "45 ms",
                   netsim::format_duration(t.www_handshake).c_str());
    bench::compare("overall penalty of apex access", "~650 ms",
                   netsim::format_duration(t.penalty()).c_str());
  }

  // The counterfactual the paper discusses: the provider forwards ECS.
  {
    Testbed bed;
    FlatteningOptions options;
    options.provider_forwards_ecs = true;
    const auto t = run_cname_flattening_experiment(bed, options);
    std::printf("\ncounterfactual (provider forwards ECS on backend):\n");
    std::printf("  apex now maps to %s; handshake %s (penalty only the redirect)\n",
                t.apex_edge_city.c_str(),
                netsim::format_duration(t.apex_handshake).c_str());
  }
  return 0;
}
