// Figure 6: TCP-connect-latency CDFs per ECS source prefix length (16-24)
// for a hostname accelerated by CDN-1 — which uses ECS for proximity
// mapping only at exactly /24. Expect a cliff between /23 and /24.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/mapping_quality.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig6_cdn1_prefixlen");
  bench::banner("fig6_cdn1_prefixlen",
                "Figure 6 - mapping quality vs source prefix length (CDN-1)");

  Testbed bed;
  auto& fleet = bed.add_global_fleet();
  auto& mapping = bed.add_mapping(cdn::ProximityMapping::cdn1_config(), fleet);
  const auto zone = dnscore::Name::from_string("cdn1.example");
  auto& auth = bed.add_auth("cdn1", zone, "Ashburn",
                            std::make_unique<authoritative::CdnMappingPolicy>(mapping));
  const auto host = zone.prepend("www");
  auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
      host, 20, dnscore::IpAddress::parse("203.0.113.1")));

  const auto probe_count =
      static_cast<std::size_t>(bench::flag(argc, argv, "probes", 800));
  const auto probes = make_probe_sites(bed, probe_count, 5);
  std::printf("%zu Atlas-style probes (paper: 800)\n\n", probes.size());

  const auto results = run_prefix_length_sweep(
      bed, bed.auth_address(auth), host, probes, {16, 17, 18, 19, 20, 21, 22, 23, 24});

  TextTable table(
      {"source len", "unique first answers", "median connect ms", "p90 ms"});
  CsvWriter csv("fig6_cdn1_prefixlen", {"source_len", "connect_ms", "cdf"});
  std::vector<std::pair<std::string, Cdf>> curves;
  for (const auto& r : results) {
    for (const auto& [x, p] : r.connect_ms.series(100)) {
      csv.row({std::to_string(r.prefix_length), TextTable::num(x, 3),
               TextTable::num(p, 4)});
    }
    table.add_row({std::to_string(r.prefix_length),
                   std::to_string(r.unique_first_answers),
                   TextTable::num(r.connect_ms.median(), 1),
                   TextTable::num(r.connect_ms.percentile(0.9), 1)});
    if (r.prefix_length >= 22) {
      curves.emplace_back("/" + std::to_string(r.prefix_length), r.connect_ms);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n",
              render_cdf_plot(curves, "time to connect (ms)", 72, 16, true).c_str());

  const auto& at23 = results[results.size() - 2];
  const auto& at24 = results.back();
  bench::compare("unique answers at /24", "400",
                 std::to_string(at24.unique_first_answers).c_str());
  bench::compare("unique answers at /16../23", "5-14",
                 std::to_string(at23.unique_first_answers).c_str());
  bench::compare("latency cliff between /23 and /24", "huge degradation at /23",
                 at23.connect_ms.median() > 2 * at24.connect_ms.median()
                     ? "reproduced (>2x median)"
                     : "NOT reproduced");
  return 0;
}
