// Ablation: the privacy cost of each probing strategy (§6.1's argument,
// quantified). Against an authoritative that does NOT support ECS, count
// how many queries leak real client-subnet bits per strategy — including
// the paper's recommendation (probe with the resolver's own address),
// which leaks nothing while still detecting ECS support.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/stats.h"
#include "measurement/workload.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "ablation_probe_privacy");
  bench::banner("ablation_probe_privacy",
                "ablation - client bits leaked to a non-ECS authoritative");
  const long minutes = bench::flag(argc, argv, "minutes", 240);

  Testbed bed;
  const auto zone = dnscore::Name::from_string("plain.example");
  // A non-adopter: ignores ECS, answers everything (what most of the
  // Internet's authoritatives look like).
  auto& auth = bed.add_auth("plain", zone, "Ashburn", nullptr);
  std::vector<dnscore::Name> hostnames;
  for (int i = 0; i < 6; ++i) {
    const auto host = zone.prepend("h" + std::to_string(i));
    auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
        host, 60, dnscore::IpAddress::v4(203, 0, 113, static_cast<std::uint8_t>(i))));
    hostnames.push_back(host);
  }

  struct Strategy {
    const char* label;
    resolver::ResolverConfig config;
  };
  std::vector<Strategy> strategies;
  {
    Strategy s{"always-send /24", resolver::ResolverConfig::correct()};
    strategies.push_back(s);
  }
  {
    Strategy s{"always-send jammed /32", resolver::ResolverConfig::jammed_32()};
    strategies.push_back(s);
  }
  {
    Strategy s{"hostname probe, caching disabled",
               resolver::ResolverConfig::hostname_prober_nocache()};
    s.config.probe_hostnames = {hostnames[0]};
    strategies.push_back(s);
  }
  {
    Strategy s{"hostname probe on miss",
               resolver::ResolverConfig::hostname_prober_onmiss()};
    s.config.probe_hostnames = {hostnames[0]};
    strategies.push_back(s);
  }
  {
    Strategy s{"30-min loopback probe",
               resolver::ResolverConfig::periodic_loopback_prober()};
    strategies.push_back(s);
  }
  {
    // The paper's recommendation: probe with the resolver's own public
    // address, never with client data, toward unknown authoritatives.
    Strategy s{"RECOMMENDED: probe with own address",
               resolver::ResolverConfig::periodic_loopback_prober()};
    s.config.label = "recommended";
    s.config.self_identification = resolver::SelfIdentification::kOwnPublicAddress;
    strategies.push_back(s);
  }

  Fleet fleet;
  for (auto& s : strategies) {
    FleetMember m;
    auto& r = bed.add_resolver(s.config, "Chicago");
    m.resolver = &r;
    m.address = r.address();
    fleet.members.push_back(std::move(m));
  }

  WorkloadOptions wl;
  wl.hostnames = hostnames;
  wl.duration = minutes * netsim::kMinute;
  wl.mean_query_gap = 2 * netsim::kMinute;
  const auto stats = drive_fleet(bed, fleet, wl);

  TextTable table({"strategy", "queries", "w/ client bits", "leak rate",
                   "notes"});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    std::uint64_t total = 0, leaking = 0, harmless = 0;
    for (const auto& e : auth.log()) {
      if (!(e.sender == fleet.members[i].address)) continue;
      ++total;
      if (!e.query_ecs) continue;
      const auto src = e.query_ecs->source_prefix();
      if (!src) continue;
      if (src->address().is_loopback() ||
          src->contains(fleet.members[i].address)) {
        ++harmless;  // loopback or the resolver's own identity
      } else {
        ++leaking;
      }
    }
    const double rate =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(leaking) / static_cast<double>(total);
    table.add_row({strategies[i].label, std::to_string(total),
                   std::to_string(leaking), TextTable::num(rate, 1) + "%",
                   harmless != 0 ? "probes carry no client data" : ""});
  }
  std::printf("drove %llu client queries against a non-ECS authoritative\n\n%s\n",
              static_cast<unsigned long long>(stats.client_queries),
              table.render().c_str());

  bench::compare("always-send leaks on every query", "yes (the §6.1 critique)",
                 "see table");
  bench::compare("own-address probing leaks", "0 client bits", "see last row");
  return 0;
}
