// micro_live: loopback throughput/latency gate for the live-wire mode.
//
// Stands up a real UdpServer on an ephemeral 127.0.0.1 port and drives it
// with a pipelined LiveClient (uniform no-ECS A queries, the strict
// zero-alloc traffic class), then reports:
//
//   run.qps                 completed queries per second over the wall
//   run.steady_allocations  heap allocations during the measured window
//                           (alloc_hooks.cpp counts; warm-up excluded)
//   live.client.latency_us  per-query latency histogram
//
// Gates (for CI perf-smoke):
//   --min-qps=N             exit 1 if run.qps < N           (default 0: off)
//   --max-steady-allocs=N   exit 1 if steady allocations > N (default -1: off)
//
// Sizing: --queries=N --warmup=N --in-flight=N --batch=N --shards=N.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"

#include "authoritative/ecs_policy.h"
#include "authoritative/server.h"
#include "dnscore/message.h"
#include "live/client.h"
#include "live/udp_server.h"
#include "obs/alloc_counter.h"

using namespace ecsdns;
using dnscore::IpAddress;
using dnscore::Message;
using dnscore::Name;
using dnscore::RRType;

namespace {

std::unique_ptr<authoritative::AuthServer> make_auth() {
  authoritative::AuthConfig config;
  config.label = "micro-live";
  config.log_queries = false;
  auto auth = std::make_unique<authoritative::AuthServer>(
      config, std::make_unique<authoritative::ScopeDeltaPolicy>(4));
  const Name zone = Name::from_string("bench.example");
  auth->add_zone(zone).add(dnscore::ResourceRecord::make_a(
      zone.prepend("www"), 300, IpAddress::v4(203, 0, 113, 10)));
  return auth;
}

// Per-slot query buffers and the completion scratch, built once before the
// warm-up so the measured window starts with every capacity converged.
struct QueryStream {
  QueryStream(const std::vector<std::uint8_t>& wire, int in_flight)
      : queries(static_cast<std::size_t>(in_flight), wire) {
    done.reserve(static_cast<std::size_t>(in_flight));
  }
  std::vector<std::vector<std::uint8_t>> queries;
  std::vector<live::Completion> done;
};

// Runs `count` queries through the pipelined client; returns completions
// that timed out.
long run_window(live::LiveClient& client, QueryStream& stream, long count,
                int in_flight) {
  // One reusable query buffer per concurrent slot; only the ID bytes vary.
  auto& queries = stream.queries;
  auto& done = stream.done;
  long submitted = 0;
  long completed = 0;
  long failed = 0;
  while (completed < count) {
    while (submitted < count && client.in_flight() < in_flight) {
      auto& q = queries[static_cast<std::size_t>(submitted) %
                        static_cast<std::size_t>(in_flight)];
      // Distinct IDs within any in-flight window (1..60000 cycle).
      const auto id = static_cast<std::uint16_t>(submitted % 60000 + 1);
      q[0] = static_cast<std::uint8_t>(id >> 8);
      q[1] = static_cast<std::uint8_t>(id & 0xff);
      if (!client.submit(q, static_cast<std::uint64_t>(submitted + 1))) break;
      ++submitted;
    }
    done.clear();
    client.poll(done, /*max_wait_ms=*/100);
    for (auto& c : done) {
      ++completed;
      if (!c.ok) ++failed;
      client.pool().release(std::move(c.response));
    }
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession session(argc, argv, "micro_live");
  const long queries = bench::flag(argc, argv, "queries", 30000);
  const long warmup = bench::flag(argc, argv, "warmup", 2000);
  const long in_flight = bench::flag(argc, argv, "in-flight", 64);
  const long batch = bench::flag(argc, argv, "batch", 32);
  const long min_qps = bench::flag(argc, argv, "min-qps", 0);
  const long max_steady_allocs = bench::flag(argc, argv, "max-steady-allocs", -1);

  bench::banner("micro_live: loopback live-wire throughput",
                "engineering gate (no paper artifact): real-socket serving path");

  auto auth = make_auth();
  live::LiveServerConfig server_config;
  server_config.shards = static_cast<int>(session.shards());
  server_config.batch = static_cast<int>(batch);
  server_config.pin_threads = session.pin();
  live::UdpServer server(server_config, *auth);
  server.start();

  live::LiveClientConfig client_config;
  client_config.server = server.address();
  client_config.max_in_flight = static_cast<int>(in_flight);
  client_config.batch = static_cast<int>(batch);
  live::LiveClient client(client_config);

  const auto wire =
      Message::make_query(1, Name::from_string("www.bench.example"), RRType::A)
          .serialize();

  // Warm-up converges every retained capacity (client slots, pool buffers,
  // server scratch, socket batch arrays) before the measured window.
  QueryStream stream(wire, static_cast<int>(in_flight));
  run_window(client, stream, warmup, static_cast<int>(in_flight));

  const auto allocs_before = obs::allocation_count();
  const auto t0 = std::chrono::steady_clock::now();
  const long failed = run_window(client, stream, queries, static_cast<int>(in_flight));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto steady_allocs =
      static_cast<long>(obs::allocation_count() - allocs_before);

  const double qps = wall_s > 0 ? static_cast<double>(queries) / wall_s : 0.0;
  auto& registry = obs::MetricsRegistry::global();
  registry.gauge("run.qps").set(static_cast<std::int64_t>(qps));
  registry.gauge("run.steady_allocations").set(steady_allocs);

  server.stop();

  char measured[64];
  std::snprintf(measured, sizeof(measured), "%.0f qps", qps);
  bench::compare("loopback throughput (pipelined)", ">= 25000 qps", measured);
  std::snprintf(measured, sizeof(measured), "%ld", steady_allocs);
  bench::compare("steady-state heap allocations", "0", measured);
  std::snprintf(measured, sizeof(measured), "%ld", failed);
  bench::compare("query timeouts", "0", measured);

  int rc = 0;
  if (min_qps > 0 && qps < static_cast<double>(min_qps)) {
    std::fprintf(stderr, "micro_live: FAIL qps %.0f < --min-qps=%ld\n", qps,
                 min_qps);
    rc = 1;
  }
  if (max_steady_allocs >= 0 && steady_allocs > max_steady_allocs) {
    std::fprintf(stderr,
                 "micro_live: FAIL steady allocations %ld > "
                 "--max-steady-allocs=%ld\n",
                 steady_allocs, max_steady_allocs);
    rc = 1;
  }
  return rc;
}
