// Shared helpers for the experiment binaries: flag parsing, the
// paper-vs-measured report format every bench prints, and the ObsSession
// wrapper that exports the run's metrics/trace when asked to.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "dnscore/annotations.h"
#include "obs/alloc_counter.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecsdns::bench {

// Parses "--name=value" integer flags; returns `fallback` when absent. A
// malformed value — empty, trailing garbage ("--shards=4x"), or out of
// range — is a hard error (exit 2): silently truncating would run the
// bench with a number the user never asked for.
inline long flag(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) continue;
    const char* text = argv[i] + prefix.size();
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "error: %s: expected an integer, got \"%s\"\n",
                   argv[i], text);
      std::exit(2);
    }
    if (errno == ERANGE) {
      std::fprintf(stderr, "error: %s: value out of range\n", argv[i]);
      std::exit(2);
    }
    return value;
  }
  return fallback;
}

// The shared default for every bench's --threads flag: the
// ECSDNS_BENCH_THREADS environment variable when set (strict integer, the
// same no-silent-truncation rule as flag()), else hardware_concurrency,
// never less than 1. One definition instead of per-bench ad-hoc defaults,
// so a CI runner can cap every bench at once.
inline long default_thread_count() {
  if (const char* env = std::getenv("ECSDNS_BENCH_THREADS")) {
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || value < 1) {
      std::fprintf(stderr,
                   "error: ECSDNS_BENCH_THREADS: expected a positive "
                   "integer, got \"%s\"\n",
                   env);
      std::exit(2);
    }
    return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<long>(hw);
}

// Parses "--name=value" string flags; returns "" when absent.
inline std::string str_flag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return {};
}

// High-water-mark resident set size of this process in bytes (VmHWM from
// /proc/self/status), or 0 where procfs is unavailable. A property of the
// run environment like wall_ms — never simulation state — so it is exempt
// from the cross-shard byte-identity contract.
ECSDNS_NONDETERMINISTIC_OK inline std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::uint64_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kib)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

// Per-run observability scope. Construct at the top of main(); on
// destruction it writes the global registry to --metrics-out=FILE and the
// trace ring to --trace-out=FILE (tracing is only switched on when a trace
// destination was requested, so untraced runs pay one cold branch per event).
class ObsSession {
 public:
  ObsSession(int argc, char** argv, const char* run_name)
      : run_name_(run_name),
        metrics_path_(str_flag(argc, argv, "metrics-out")),
        trace_path_(str_flag(argc, argv, "trace-out")),
        shards_(flag(argc, argv, "shards", 1)),
        threads_(flag(argc, argv, "threads", 0)),
        pin_(flag(argc, argv, "pin", 0) != 0),
        start_(std::chrono::steady_clock::now()) {
    if (shards_ < 1) shards_ = 1;
    if (threads_ < 1) threads_ = default_thread_count();
    auto& registry = obs::MetricsRegistry::global();
    registry.reset();
    obs::preregister_core_metrics(registry);
    // Every bench records its shard count so an exported metrics document
    // says how the run was parallelized (wall_ms is only comparable within
    // one shard count; the simulation metrics must not differ at all).
    // Threads and pinning are the same kind of run metadata.
    registry.gauge("run.shards").set(shards_);
    registry.gauge("run.threads").set(threads_);
    registry.gauge("run.pinned").set(pin_ ? 1 : 0);
    auto& tracer = obs::TraceRing::global();
    tracer.clear();
    tracer.set_enabled(!trace_path_.empty());
  }

  // The validated --shards=N value (>= 1, default 1).
  long shards() const { return shards_; }
  // The validated --threads=N value; absent or < 1 resolves to
  // default_thread_count().
  long threads() const { return threads_; }
  // --pin=1 requests core pinning (warn-and-run-unpinned on denial).
  bool pin() const { return pin_; }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() { finish(); }

  void finish() {
    if (finished_) return;
    finished_ = true;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (!metrics_path_.empty()) {
      // Heap allocations observed during this run (see obs/alloc_counter.h;
      // non-zero only in binaries linking bench/alloc_hooks.cpp). A run
      // property like wall_ms, not simulation state, so it is exempt from
      // the cross-shard byte-identity contract.
      obs::MetricsRegistry::global().gauge("run.allocations").set(
          static_cast<std::int64_t>(obs::allocation_count() - start_allocations_));
      // Peak RSS at export time: every bench reports memory, not just the
      // perf harness's getrusage wrapper. Run metadata like wall_ms.
      obs::MetricsRegistry::global().gauge("run.peak_rss_bytes").set(
          static_cast<std::int64_t>(peak_rss_bytes()));
      const std::string doc = obs::metrics_json(obs::MetricsRegistry::global(),
                                                run_name_, wall_ms);
      if (obs::write_text_file(metrics_path_, doc)) {
        std::fprintf(stderr, "[obs] metrics written to %s\n",
                     metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "[obs] failed to write %s\n",
                     metrics_path_.c_str());
      }
    }
    auto& tracer = obs::TraceRing::global();
    if (!trace_path_.empty()) {
      const std::string doc = obs::trace_json(tracer);
      if (obs::write_text_file(trace_path_, doc)) {
        std::fprintf(stderr, "[obs] trace written to %s (%llu events)\n",
                     trace_path_.c_str(),
                     static_cast<unsigned long long>(tracer.recorded()));
      } else {
        std::fprintf(stderr, "[obs] failed to write %s\n",
                     trace_path_.c_str());
      }
    }
    tracer.set_enabled(false);
  }

 private:
  std::string run_name_;
  std::string metrics_path_;
  std::string trace_path_;
  long shards_ = 1;
  long threads_ = 0;
  bool pin_ = false;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t start_allocations_ = obs::allocation_count();
  bool finished_ = false;
};

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("================================================================\n");
}

inline void compare(const char* metric, const char* paper, const char* measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", metric, paper, measured);
}

}  // namespace ecsdns::bench
