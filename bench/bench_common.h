// Shared helpers for the experiment binaries: flag parsing and the
// paper-vs-measured report format every bench prints.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ecsdns::bench {

// Parses "--name=value" integer flags; returns `fallback` when absent.
inline long flag(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtol(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("================================================================\n");
}

inline void compare(const char* metric, const char* paper, const char* measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", metric, paper, measured);
}

}  // namespace ecsdns::bench
