// Figure 2: cache blow-up factor vs fraction of the client population, on
// the All-Names Resolver trace (single busy resolver, all ECS zones).
// Three random samples per fraction, averaged, as in the paper.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig2_blowup_vs_population");
  bench::banner("fig2_blowup_vs_population",
                "Figure 2 - cache blow-up vs client population fraction");

  const auto shards = static_cast<std::size_t>(obs_session.shards());
  AllNamesConfig config;
  config.duration = bench::flag(argc, argv, "minutes", 60) * netsim::kMinute;
  config.queries_per_second =
      static_cast<double>(bench::flag(argc, argv, "qps", 128));
  config.seed = static_cast<std::uint64_t>(bench::flag(argc, argv, "seed", 2));
  // --clients scales the population (keeping the ~5 clients-per-subnet
  // ratio of the defaults) for large sharded runs.
  const long clients = bench::flag(argc, argv, "clients", 0);
  if (clients > 0) {
    config.clients = static_cast<std::uint32_t>(clients);
    config.client_subnets = static_cast<std::uint32_t>(std::max(1L, clients / 5));
  }
  const Trace trace = generate_all_names_trace(config);
  std::printf(
      "trace: %zu queries, %zu clients, %u hostnames, %zu replay shard(s) "
      "(paper: 11.1M / 76.2K / 134,925)\n\n",
      trace.queries.size(), trace.clients.size(), trace.hostnames, shards);

  TextTable table({"% of clients", "blow-up (avg of 3 runs)"});
  CsvWriter csv("fig2_blowup_vs_population", {"client_pct", "blowup"});
  double at10 = 0, at100 = 0;
  for (int pct = 10; pct <= 100; pct += 10) {
    double sum = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Trace sampled = sample_clients(trace, pct / 100.0, seed * 101);
      const auto factors =
          blowup_factors(sampled, std::nullopt, shards,
                         static_cast<std::size_t>(obs_session.threads()),
                         obs_session.pin());
      sum += factors.empty() ? 0.0 : factors.front();
    }
    const double avg = sum / 3.0;
    if (pct == 10) at10 = avg;
    if (pct == 100) at100 = avg;
    table.add_row({std::to_string(pct), TextTable::num(avg)});
    csv.row({std::to_string(pct), TextTable::num(avg, 4)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("blow-up at full population", "4.3",
                 TextTable::num(at100).c_str());
  bench::compare("monotone growth with population", "~1.8 @10% -> 4.3 @100%",
                 (TextTable::num(at10) + " -> " + TextTable::num(at100)).c_str());
  bench::compare("curve flattens at 100%?", "no (keeps rising)",
                 at100 > at10 ? "no (keeps rising)" : "UNEXPECTED");
  return 0;
}
