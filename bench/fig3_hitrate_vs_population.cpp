// Figure 3: resolver cache hit rate with and without ECS as the client
// population grows (All-Names Resolver trace; averages of three samples).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig3_hitrate_vs_population");
  bench::banner("fig3_hitrate_vs_population",
                "Figure 3 - cache hit rate with/without ECS vs population");

  const auto shards = static_cast<std::size_t>(obs_session.shards());
  AllNamesConfig config;
  config.duration = bench::flag(argc, argv, "minutes", 60) * netsim::kMinute;
  config.queries_per_second =
      static_cast<double>(bench::flag(argc, argv, "qps", 128));
  config.seed = static_cast<std::uint64_t>(bench::flag(argc, argv, "seed", 2));
  // --clients scales the population (keeping the ~5 clients-per-subnet
  // ratio of the defaults) for large sharded runs.
  const long clients = bench::flag(argc, argv, "clients", 0);
  if (clients > 0) {
    config.clients = static_cast<std::uint32_t>(clients);
    config.client_subnets = static_cast<std::uint32_t>(std::max(1L, clients / 5));
  }
  const Trace trace = generate_all_names_trace(config);
  std::printf("trace: %zu queries, %zu clients, %zu replay shard(s)\n\n",
              trace.queries.size(), trace.clients.size(), shards);

  CacheSimOptions with_ecs_options;
  with_ecs_options.with_ecs = true;
  with_ecs_options.shards = shards;
  with_ecs_options.threads = static_cast<std::size_t>(obs_session.threads());
  with_ecs_options.pin_threads = obs_session.pin();
  CacheSimOptions no_ecs_options;
  no_ecs_options.with_ecs = false;
  no_ecs_options.shards = shards;
  no_ecs_options.threads = with_ecs_options.threads;
  no_ecs_options.pin_threads = with_ecs_options.pin_threads;

  TextTable table({"% of clients", "hit rate no ECS (%)", "hit rate with ECS (%)"});
  CsvWriter csv("fig3_hitrate_vs_population",
                {"client_pct", "hitrate_no_ecs_pct", "hitrate_ecs_pct"});
  double no_ecs_full = 0, with_ecs_full = 0;
  for (int pct = 10; pct <= 100; pct += 10) {
    double sum_with = 0, sum_without = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Trace sampled = sample_clients(trace, pct / 100.0, seed * 101);
      sum_with += simulate_cache(sampled, with_ecs_options).overall_hit_rate();
      sum_without += simulate_cache(sampled, no_ecs_options).overall_hit_rate();
    }
    const double with_ecs = 100 * sum_with / 3.0;
    const double without_ecs = 100 * sum_without / 3.0;
    if (pct == 100) {
      no_ecs_full = without_ecs;
      with_ecs_full = with_ecs;
    }
    table.add_row({std::to_string(pct), TextTable::num(without_ecs, 1),
                   TextTable::num(with_ecs, 1)});
    csv.row({std::to_string(pct), TextTable::num(without_ecs, 3),
             TextTable::num(with_ecs, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("hit rate at 100%, no ECS", "~76%",
                 (TextTable::num(no_ecs_full, 1) + "%").c_str());
  bench::compare("hit rate at 100%, with ECS", "~30%",
                 (TextTable::num(with_ecs_full, 1) + "%").c_str());
  bench::compare("ECS cuts hit rate by", "more than half",
                 with_ecs_full < no_ecs_full / 2 ? "more than half" : "less than half");
  return 0;
}
