// Ablation: how does the authoritative's mapping granularity (the scope it
// returns) drive the resolver-side cache cost? The paper measures the cost
// at the CDN's actual /24 granularity; this sweep shows what operators on
// both sides trade when choosing coarser scopes — the §7 discussion's
// "TTL and scope" levers made explicit.
#include <cstdio>

#include "bench_common.h"
#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "ablation_scope_granularity");
  bench::banner("ablation_scope_granularity",
                "ablation - cache blow-up and hit rate vs authoritative scope");

  PublicResolverCdnConfig config;
  config.resolvers = static_cast<std::uint32_t>(bench::flag(argc, argv, "resolvers", 60));
  config.duration = bench::flag(argc, argv, "minutes", 4) * netsim::kMinute;
  config.seed = 3;

  TextTable table({"scope", "median blow-up", "max blow-up", "hit rate (%)"});
  for (const int scope : {8, 12, 16, 20, 22, 24}) {
    // Force every zone to the swept granularity.
    config.scope24_weight = scope == 24 ? 1.0 : 0.0;
    config.scope16_weight = scope == 16 ? 1.0 : 0.0;
    config.scope8_weight = scope == 8 ? 1.0 : 0.0;
    Trace trace = generate_public_resolver_cdn_trace(config);
    if (config.scope24_weight + config.scope16_weight + config.scope8_weight == 0.0) {
      // Intermediate scopes are not in the generator's zone mix; rewrite
      // the per-query scope directly.
      config.scope24_weight = 1.0;
      trace = generate_public_resolver_cdn_trace(config);
      for (auto& q : trace.queries) q.scope = scope;
      config.scope24_weight = 0.0;
    }
    auto factors = blowup_factors(trace, std::nullopt);
    const Cdf cdf(std::move(factors));
    const auto sim = simulate_cache(trace, CacheSimOptions{true, std::nullopt, std::nullopt});
    table.add_row({"/" + std::to_string(scope), TextTable::num(cdf.median()),
                   TextTable::num(cdf.max()),
                   TextTable::num(100 * sim.overall_hit_rate(), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "reading: a CDN that can answer at /16 instead of /24 cuts the\n"
      "resolver-side cache cost severalfold at the price of coarser user\n"
      "mapping. The paper's measured CDNs sit at the expensive end (/24,\n"
      "/21), which is exactly why section 7's numbers are as large as they\n"
      "are.\n");
  return 0;
}
