// Figure 5: the Figure 4 analysis restricted to non-MP egress resolvers,
// whose China-skewed footprint produces the characteristic ~1000 km and
// ~2000 km ridges (Beijing / Shanghai / Guangzhou separations).
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/hidden.h"
#include "measurement/scanner.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig5_hidden_resolvers_nonmp");
  bench::banner(
      "fig5_hidden_resolvers_nonmp",
      "Figure 5 - distances forwarder->hidden vs forwarder->egress (non-MP)");

  Testbed bed;
  Scanner scanner(bed);
  ScanFleetOptions options;
  options.scale = static_cast<int>(bench::flag(argc, argv, "scale", 1));
  options.forwarders_per_egress =
      static_cast<int>(bench::flag(argc, argv, "forwarders", 8));
  options.hidden_chain_fraction = 0.6;
  options.hidden_farther_fraction = 0.16;  // tuned so ~7.8% land below the diagonal
  options.hidden_at_egress_fraction = 0.18;
  Fleet fleet = build_scan_dataset_fleet(bed, options);

  std::vector<dnscore::IpAddress> targets;
  std::set<std::string> nonmp_addresses;
  for (const auto& m : fleet.members) {
    if (m.behavior != "AS-MP") nonmp_addresses.insert(m.address.to_string());
    for (const auto* f : m.forwarders) targets.push_back(f->address());
  }
  const ScanResults results = scanner.scan(targets);
  const auto all_combos = find_hidden_combinations(results, bed.geodb());

  std::vector<HiddenCombination> combos;
  for (const auto& c : all_combos) {
    if (nonmp_addresses.count(c.egress.to_string()) != 0) combos.push_back(c);
  }
  std::printf("%zu (F,H,R) combos via non-MP egress resolvers\n\n", combos.size());

  const auto analysis = analyze_hidden(combos);
  std::printf("%s\n",
              analysis.scatter.render("forwarder-hidden km", "forwarder-egress km")
                  .c_str());

  bench::compare("hidden farther than egress (below diag)", "7.8%",
                 (TextTable::num(100 * analysis.below_diagonal_fraction, 1) + "%")
                     .c_str());
  bench::compare("equidistant (on diag)", "19.5%",
                 (TextTable::num(100 * analysis.on_diagonal_fraction, 1) + "%")
                     .c_str());
  bench::compare("ECS improves location understanding", "72.7% of combos",
                 (TextTable::num(100 * analysis.above_diagonal_fraction, 1) + "%")
                     .c_str());
  return 0;
}
