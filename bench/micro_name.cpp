// Engineering microbenchmarks for dnscore::Name — the packed small-buffer
// representation every cache key and wire message flows through. Three name
// shapes bracket the design space: a short CDN hostname (inline storage),
// a deep QNAME-minimization-style chain (inline, many labels), and a
// maximal 255-octet name (heap spill).
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "dnscore/name.h"
#include "dnscore/wire.h"

namespace {

using namespace ecsdns;
using dnscore::Name;
using dnscore::WireReader;
using dnscore::WireWriter;

// Presentation-form inputs for the three shapes.
std::string shape_text(int shape) {
  switch (shape) {
    case 0:  // short: the common CDN hostname, packs to 17 octets (inline)
      return "www.example.com";
    case 1: {  // deep: 12 labels, packs to 43 octets (inline, label-heavy)
      std::string text = "a";
      for (char c = 'b'; c <= 'l'; ++c) {
        text += '.';
        text += c;
      }
      text += ".example.com";
      return text;
    }
    default: {  // max: 4 x 61-octet labels + "ex" = 251 packed octets (heap)
      std::string text;
      for (int i = 0; i < 4; ++i) {
        if (!text.empty()) text += '.';
        text += std::string(61, static_cast<char>('a' + i));
      }
      text += ".ex";
      return text;
    }
  }
}

const char* shape_label(int shape) {
  return shape == 0 ? "short" : shape == 1 ? "deep" : "max255";
}

void BM_NameFromString(benchmark::State& state) {
  const std::string text = shape_text(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Name::from_string(text));
  }
  state.SetLabel(shape_label(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_NameFromString)->Arg(0)->Arg(1)->Arg(2);

void BM_NameSerialize(benchmark::State& state) {
  const Name name = Name::from_string(shape_text(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    WireWriter writer;
    name.serialize(writer);
    benchmark::DoNotOptimize(writer.data());
  }
  state.SetLabel(shape_label(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_NameSerialize)->Arg(0)->Arg(1)->Arg(2);

void BM_NameParse(benchmark::State& state) {
  const Name name = Name::from_string(shape_text(static_cast<int>(state.range(0))));
  WireWriter writer;
  name.serialize(writer);
  const auto wire = writer.data();
  for (auto _ : state) {
    WireReader reader(wire);
    benchmark::DoNotOptimize(Name::parse(reader));
  }
  state.SetLabel(shape_label(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_NameParse)->Arg(0)->Arg(1)->Arg(2);

// Worst case for the lazy hash cache: a fresh Name per iteration, so every
// hash() walks the octets. The cached path is BM_NameHashCached.
void BM_NameHashCold(benchmark::State& state) {
  const std::string text = shape_text(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const Name name = Name::from_string(text);
    benchmark::DoNotOptimize(name.hash());
  }
  state.SetLabel(shape_label(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_NameHashCold)->Arg(0)->Arg(1)->Arg(2);

// The cache-probe path: the same Name hashed repeatedly — after the first
// call this is one relaxed atomic load.
void BM_NameHashCached(benchmark::State& state) {
  const Name name = Name::from_string(shape_text(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(name.hash());
  }
  state.SetLabel(shape_label(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_NameHashCached)->Arg(0)->Arg(1)->Arg(2);

// Case-insensitive equality of equal names — the full-buffer compare that
// open-addressing probes pay on every hash match.
void BM_NameCompareEqual(benchmark::State& state) {
  const std::string text = shape_text(static_cast<int>(state.range(0)));
  std::string upper = text;
  for (char& c : upper) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  const Name a = Name::from_string(text);
  const Name b = Name::from_string(upper);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
  }
  state.SetLabel(shape_label(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_NameCompareEqual)->Arg(0)->Arg(1)->Arg(2);

// Copying is what keying containers on Name costs: inline names are a flat
// 64-byte copy, the max shape adds one heap block.
void BM_NameCopy(benchmark::State& state) {
  const Name name = Name::from_string(shape_text(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    Name copy = name;
    benchmark::DoNotOptimize(copy);
  }
  state.SetLabel(shape_label(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_NameCopy)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the obs flags
// (--metrics-out/--trace-out) are not google-benchmark flags, so they are
// consumed by ObsSession before Initialize() sees argv.
int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "micro_name");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) continue;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) continue;
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
