// Capacity lab: hit rate vs memory bound, per eviction policy.
//
// The paper's §7 experiments assume an unbounded cache and report how much
// bigger ECS forces it to grow (Figure 1's 1x-16x blow-up CDF) and how far
// the hit rate falls (Figure 3). This experiment asks the operational
// follow-up the paper leaves open: if the cache *cannot* grow — it is
// bounded at a multiple of the typical pre-ECS working set — how much hit
// rate does each eviction policy recover? Victim choice is where the
// blow-up cost lands, so LRU, LFU, SIEVE, and the ECS-specific scope-aware
// policy (collapse the most specific overlapping prefixes first) sweep the
// same bounds side by side, on the same Public-Resolver/CDN trace whose
// scope mix (/24 with /16 and /8 zones) produced Figure 1.
//
// Bounded replays shard by whole resolvers and are bit-deterministic, so
// the emitted CSV is identical for any --shards value.
#include <cstdio>

#include "bench_common.h"
#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"
#include "resolver/eviction.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

namespace {

std::uint64_t total_premature(const CacheSimResult& sim) {
  std::uint64_t total = 0;
  for (const auto& row : sim.per_resolver) total += row.premature_evictions;
  return total;
}

std::size_t mean_peak(const CacheSimResult& sim) {
  std::size_t sum = 0;
  for (const auto& row : sim.per_resolver) sum += row.max_cache_size;
  return sum / sim.per_resolver.size();
}

}  // namespace

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig_hitrate_vs_capacity");
  bench::banner("fig_hitrate_vs_capacity",
                "hit rate vs cache memory bound, per eviction policy");

  const auto shards = static_cast<std::size_t>(obs_session.shards());
  PublicResolverCdnConfig config;
  // A 1:8 slice of fig1's trace (fewer resolvers, shorter window): the
  // bounded replay runs 24 policy/bound sweeps, and per-resolver dynamics
  // don't depend on how many resolvers ride along.
  config.resolvers = static_cast<std::uint32_t>(
      bench::flag(argc, argv, "resolvers", 32));
  config.duration = bench::flag(argc, argv, "minutes", 2) * netsim::kMinute;
  const Trace trace = generate_public_resolver_cdn_trace(config);
  std::printf("trace: %zu queries, %u resolvers, %zu replay shard(s)\n\n",
              trace.queries.size(), trace.resolvers, shards);

  // The sweep is anchored at the mean per-resolver no-ECS peak: the cache
  // an operator sized before ECS arrived. Unbounded-with-ECS is the
  // paper's baseline.
  const auto threads = static_cast<std::size_t>(obs_session.threads());
  const bool pin = obs_session.pin();
  CacheSimOptions unbounded_no_ecs;
  unbounded_no_ecs.with_ecs = false;
  unbounded_no_ecs.shards = shards;
  unbounded_no_ecs.threads = threads;
  unbounded_no_ecs.pin_threads = pin;
  CacheSimOptions unbounded_ecs;
  unbounded_ecs.with_ecs = true;
  unbounded_ecs.shards = shards;
  unbounded_ecs.threads = threads;
  unbounded_ecs.pin_threads = pin;
  const auto no_ecs_sim = simulate_cache(trace, unbounded_no_ecs);
  const auto ecs_sim = simulate_cache(trace, unbounded_ecs);
  const std::size_t anchor = mean_peak(no_ecs_sim);
  const double unbounded_rate = 100 * ecs_sim.overall_hit_rate();
  std::printf(
      "mean per-resolver peak: %zu entries without ECS, %zu with;\n"
      "unbounded ECS hit rate: %s%%\n\n",
      anchor, mean_peak(ecs_sim), TextTable::num(unbounded_rate, 1).c_str());

  TextTable table({"policy", "bound (x no-ECS peak)", "entries", "hit rate (%)",
                   "premature evictions"});
  CsvWriter csv("fig_hitrate_vs_capacity",
                {"policy", "capacity_frac", "capacity_entries", "hitrate_pct",
                 "premature_evictions"});
  double best_tight_rate = 0;
  std::string best_tight_policy;
  for (const auto policy : resolver::kAllEvictionPolicies) {
    for (const double fraction : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      CacheSimOptions options;
      options.with_ecs = true;
      options.max_entries_per_resolver =
          static_cast<std::size_t>(fraction * static_cast<double>(anchor));
      options.policy = policy;
      options.shards = shards;
      options.threads = threads;
      options.pin_threads = pin;
      const auto sim = simulate_cache(trace, options);
      const double rate = 100 * sim.overall_hit_rate();
      const std::uint64_t premature = total_premature(sim);
      if (fraction == 1.0 && rate > best_tight_rate) {
        best_tight_rate = rate;
        best_tight_policy = resolver::to_string(policy);
      }
      table.add_row({resolver::to_string(policy), TextTable::num(fraction, 2),
                     std::to_string(*options.max_entries_per_resolver),
                     TextTable::num(rate, 1), std::to_string(premature)});
      csv.row({resolver::to_string(policy), TextTable::num(fraction, 2),
               std::to_string(*options.max_entries_per_resolver),
               TextTable::num(rate, 3), std::to_string(premature)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Paper-vs-measured notes. Figure 1 puts most resolvers below 16x
  // blow-up, so a bound well inside that range must still cost hit rate;
  // by 8x the curves should be close to the unbounded baseline.
  bench::compare("hit rate at 1x pre-ECS size",
                 "well below the unbounded ECS rate (the §7 warning)",
                 (best_tight_policy + " best at " +
                  TextTable::num(best_tight_rate, 1) + "% vs unbounded " +
                  TextTable::num(unbounded_rate, 1) + "%")
                     .c_str());
  bench::compare("unbounded ECS hit rate recovered at 8x", "nearly",
                 "see 8x rows vs unbounded above");
  return 0;
}
