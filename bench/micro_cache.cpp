// Engineering microbenchmarks: the ECS cache and the trace-driven cache
// simulator that Figures 1-3 are built on.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "measurement/cache_sim.h"
#include "measurement/tracegen.h"
#include "resolver/cache.h"

namespace {

using namespace ecsdns;
using dnscore::IpAddress;
using dnscore::Name;
using dnscore::Prefix;

void BM_CacheInsert(benchmark::State& state) {
  resolver::EcsCache cache;
  const Name qname = Name::from_string("www.example.com");
  std::uint32_t i = 0;
  std::vector<dnscore::ResourceRecord> records{
      dnscore::ResourceRecord::make_a(qname, 20, IpAddress::parse("1.1.1.1"))};
  for (auto _ : state) {
    cache.insert(qname, dnscore::RRType::A, Prefix{IpAddress::v4(i++ << 8), 24}, 24,
                 records, 0, 60 * netsim::kSecond);
  }
}
BENCHMARK(BM_CacheInsert);

// Steady-state cost of a bounded insert: every insert past the bound also
// runs pick_victim + erase. One series per policy (see kAllEvictionPolicies
// for the Arg order).
void BM_CacheInsertBounded(benchmark::State& state) {
  resolver::CacheConfig config;
  config.capacity_entries = 512;
  config.policy =
      resolver::kAllEvictionPolicies[static_cast<std::size_t>(state.range(0))];
  resolver::EcsCache cache(config);
  const Name qname = Name::from_string("www.example.com");
  std::uint32_t i = 0;
  std::vector<dnscore::ResourceRecord> records{
      dnscore::ResourceRecord::make_a(qname, 20, IpAddress::parse("1.1.1.1"))};
  for (auto _ : state) {
    cache.insert(qname, dnscore::RRType::A, Prefix{IpAddress::v4(i++ << 8), 24}, 24,
                 records, 0, 60 * netsim::kSecond);
  }
  state.SetLabel(resolver::to_string(config.policy));
}
BENCHMARK(BM_CacheInsertBounded)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_CacheLookupHit(benchmark::State& state) {
  resolver::EcsCache cache;
  const Name qname = Name::from_string("www.example.com");
  std::vector<dnscore::ResourceRecord> records{
      dnscore::ResourceRecord::make_a(qname, 20, IpAddress::parse("1.1.1.1"))};
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    cache.insert(qname, dnscore::RRType::A, Prefix{IpAddress::v4(i << 8), 24}, 24,
                 records, 0, 60 * netsim::kSecond);
  }
  const auto client = IpAddress::v4((static_cast<std::uint32_t>(state.range(0)) / 2)
                                    << 8 | 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(qname, dnscore::RRType::A, client, 1));
  }
}
BENCHMARK(BM_CacheLookupHit)->Arg(8)->Arg(64)->Arg(512);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    measurement::PublicResolverCdnConfig config;
    config.resolvers = 16;
    config.duration = 2 * netsim::kMinute;
    benchmark::DoNotOptimize(measurement::generate_public_resolver_cdn_trace(config));
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_CacheSimulation(benchmark::State& state) {
  measurement::PublicResolverCdnConfig config;
  config.resolvers = 16;
  config.duration = 5 * netsim::kMinute;
  const auto trace = measurement::generate_public_resolver_cdn_trace(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measurement::simulate_cache(trace, {true, std::nullopt, std::nullopt}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.queries.size()));
}
BENCHMARK(BM_CacheSimulation);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the obs flags
// (--metrics-out/--trace-out) are not google-benchmark flags, so they are
// consumed by ObsSession before Initialize() sees argv.
int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "micro_cache");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) continue;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) continue;
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
