// Table 1: census of ECS source prefix lengths per resolver, from both
// vantage points — the active scan (Scan dataset) and the passive CDN logs
// (CDN dataset).
#include <cstdio>
#include <map>
#include <set>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/prefix_census.h"
#include "measurement/scanner.h"
#include "measurement/stats.h"
#include "measurement/workload.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "table1_source_prefix_census");
  bench::banner("table1_source_prefix_census",
                "Table 1 - ECS source prefix lengths (Scan + CDN datasets)");
  const int scan_scale = static_cast<int>(bench::flag(argc, argv, "scan-scale", 1));
  const int cdn_scale = static_cast<int>(bench::flag(argc, argv, "cdn-scale", 4));

  // ---- Scan column ----
  Testbed scan_bed;
  Scanner scanner(scan_bed);
  ScanFleetOptions scan_options;
  scan_options.scale = scan_scale;
  Fleet scan_fleet = build_scan_dataset_fleet(scan_bed, scan_options);
  std::vector<dnscore::IpAddress> targets;
  for (const auto& m : scan_fleet.members) {
    for (const auto* f : m.forwarders) targets.push_back(f->address());
  }
  std::printf("scan: %zu egress resolvers, %zu open forwarders probed\n",
              scan_fleet.members.size(), targets.size());
  const ScanResults results = scanner.scan(targets);
  const auto scan_census = results.source_length_census();

  // ---- CDN column ----
  Testbed cdn_bed;
  const auto zone = dnscore::Name::from_string("cdn.example");
  auto& cdn = cdn_bed.add_auth(
      "cdn", zone, "Ashburn",
      std::make_unique<authoritative::WhitelistPolicy>(
          std::make_unique<authoritative::FixedScopePolicy>(24),
          std::vector<dnscore::IpAddress>{}));
  std::vector<dnscore::Name> hostnames;
  for (int i = 0; i < 6; ++i) {
    const auto host = zone.prepend("h" + std::to_string(i));
    cdn.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
        host, 20, dnscore::IpAddress::v4(203, 0, 113, static_cast<std::uint8_t>(i))));
    hostnames.push_back(host);
  }
  CdnFleetOptions cdn_options;
  cdn_options.scale = cdn_scale;
  cdn_options.probe_names = {hostnames[0], hostnames[1]};
  Fleet cdn_fleet = build_cdn_dataset_fleet(cdn_bed, cdn_options);
  WorkloadOptions wl;
  wl.hostnames = hostnames;
  wl.duration = 90 * netsim::kMinute;
  wl.mean_query_gap = 3 * netsim::kMinute;
  // The driver always uses per-member RNG streams, so the traffic below is
  // independent of --shards (see WorkloadOptions::seed).
  drive_fleet(cdn_bed, cdn_fleet, wl);
  std::printf("cdn: %zu resolvers drove %llu logged queries (scale 1/%d)\n\n",
              cdn_fleet.members.size(),
              static_cast<unsigned long long>(cdn.queries_served()), cdn_scale);
  const auto cdn_census = source_prefix_census(cdn.log());

  // ---- merged table ----
  std::map<std::string, std::pair<std::size_t, std::size_t>> merged;
  for (const auto& [key, members] : scan_census) merged[key].first = members.size();
  for (const auto& row : cdn_census) merged[row.lengths].second = row.resolver_count;

  TextTable table({"Source Prefix Length", "# Resolvers (Scan)", "# Resolvers (CDN)"});
  for (const auto& [key, counts] : merged) {
    table.add_row({key, std::to_string(counts.first), std::to_string(counts.second)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("dominant scan row", "24 (1384, mostly Google)",
                 ("24 (" + std::to_string(merged["24"].first) + ")").c_str());
  bench::compare("dominant CDN row", "32/jammed last byte (~3002)",
                 ("32/jammed (" +
                  std::to_string(merged["32/jammed last byte"].second) + ")")
                     .c_str());
  bench::compare("RFC violations (>24 bits) present", "yes (25, 32 rows)",
                 merged.count("25") || merged.count("32") ? "yes" : "no");

  // §6.2: "the vast majority of these (118 out of the 130) are in Chinese
  // ASes" — recover the country split of the scan's jammed-/32 senders.
  std::size_t jammed_total = 0, jammed_cn = 0;
  {
    std::map<std::string, const FleetMember*> by_address;
    for (const auto& m : scan_fleet.members) by_address[m.address.to_string()] = &m;
    for (const auto& [key, members] : scan_census) {
      if (key != "32/jammed last byte") continue;
      for (const auto& addr : members) {
        ++jammed_total;
        const auto it = by_address.find(addr.to_string());
        if (it != by_address.end() && it->second->country == "CN") ++jammed_cn;
      }
    }
  }
  bench::compare("jammed /32 senders in Chinese ASes", "118 of 130",
                 (std::to_string(jammed_cn) + " of " + std::to_string(jammed_total))
                     .c_str());

  // §4-style AS attribution of everything the scan discovered, via the
  // testbed's whois-equivalent database.
  std::set<std::uint32_t> asns;
  std::set<std::string> countries;
  for (const auto& addr : results.ecs_egress_addresses()) {
    if (const auto info = scan_bed.asndb().lookup(addr)) {
      asns.insert(info->asn);
      countries.insert(info->country);
    }
  }
  bench::compare("distinct ASes among scan-found egress", "46 (45 + Google)",
                 std::to_string(asns.size()).c_str());
  (void)countries;
  std::printf(
      "\nnote: CDN counts are at scale 1/%d of the paper's 4147 resolvers;\n"
      "      combination rows (e.g. \"25,32/jammed\") appear when a resolver\n"
      "      alternates lengths across queries, as in the paper.\n",
      cdn_scale);
  return 0;
}
