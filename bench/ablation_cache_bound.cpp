// Ablation: §7's closing warning made concrete. The paper assumes caches
// never evict before TTL and reports how much *bigger* they must be under
// ECS; the operational flip side is what happens when an operator keeps
// the old cache size: premature evictions and a hit rate that degrades
// even further. This sweep bounds the per-resolver cache at fractions of
// the no-ECS peak and measures the damage.
#include <cstdio>

#include "bench_common.h"
#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "ablation_cache_bound");
  bench::banner("ablation_cache_bound",
                "ablation - premature evictions when the cache is not resized");

  AllNamesConfig config;
  config.duration = bench::flag(argc, argv, "minutes", 45) * netsim::kMinute;
  config.seed = 4;
  const Trace trace = generate_all_names_trace(config);

  // Baseline peaks.
  const auto unbounded_no_ecs =
      simulate_cache(trace, CacheSimOptions{false, {}, {}});
  const auto unbounded_ecs = simulate_cache(trace, CacheSimOptions{true, {}, {}});
  const std::size_t no_ecs_peak = unbounded_no_ecs.per_resolver[0].max_cache_size;
  const std::size_t ecs_peak = unbounded_ecs.per_resolver[0].max_cache_size;
  std::printf("peak cache entries: %zu without ECS, %zu with (%.1fx)\n\n",
              no_ecs_peak, ecs_peak,
              static_cast<double>(ecs_peak) / static_cast<double>(no_ecs_peak));

  TextTable table({"cache bound", "hit rate (%)", "premature evictions",
                   "vs unbounded hit rate"});
  const double unbounded_rate = unbounded_ecs.overall_hit_rate();
  for (const double fraction : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    CacheSimOptions options;
    options.with_ecs = true;
    options.max_entries_per_resolver =
        static_cast<std::size_t>(fraction * static_cast<double>(no_ecs_peak));
    const auto sim = simulate_cache(trace, options);
    char label[64];
    std::snprintf(label, sizeof(label), "%.2gx no-ECS peak (%zu)", fraction,
                  *options.max_entries_per_resolver);
    table.add_row({label, TextTable::num(100 * sim.overall_hit_rate(), 1),
                   std::to_string(sim.per_resolver[0].premature_evictions),
                   TextTable::num(
                       100 * (unbounded_rate - sim.overall_hit_rate()), 1) +
                       " pts lost"});
  }
  table.add_row({"unbounded", TextTable::num(100 * unbounded_rate, 1), "0", "-"});
  std::printf("%s\n", table.render().c_str());

  bench::compare("keeping the pre-ECS cache size is viable", "no (the §7 warning)",
                 "no - evictions and hit-rate loss until the cache is resized");
  return 0;
}
