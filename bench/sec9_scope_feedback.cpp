// §9 (future work): "engage the same resolver repeatedly in a more
// systematic manner and explore if changing the scope in authoritative
// responses would affect the source prefix length of subsequent queries."
//
// We run exactly that experiment against (a) every stock behavior class
// the paper found in the wild, and (b) our adapt-to-scope extension — a
// resolver that learns each zone's demonstrated granularity. The harness
// reports the source length per round as the authoritative's scope varies.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/stats.h"
#include "measurement/testbed.h"

using namespace ecsdns;
using namespace ecsdns::measurement;
using dnscore::Name;

namespace {

// An EcsPolicy whose scope follows a per-round schedule.
class ScheduledScopePolicy : public authoritative::EcsPolicy {
 public:
  explicit ScheduledScopePolicy(std::shared_ptr<int> scope) : scope_(std::move(scope)) {}
  authoritative::EcsDecision decide(const dnscore::Question&,
                                    const std::optional<dnscore::EcsOption>& ecs,
                                    const dnscore::IpAddress&) const override {
    authoritative::EcsDecision d;
    if (!ecs) return d;
    d.include_option = true;
    d.scope = std::min<int>(*scope_, ecs->source_prefix_length());
    return d;
  }

 private:
  std::shared_ptr<int> scope_;
};

}  // namespace

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec9_scope_feedback");
  bench::banner("sec9_scope_feedback",
                "Section 9 future work - does returned scope steer source length?");
  (void)argc;
  (void)argv;

  Testbed bed;
  const Name zone = Name::from_string("feedback.example");
  auto scope_knob = std::make_shared<int>(24);
  auto& auth = bed.add_auth("feedback", zone, "Ashburn",
                            std::make_unique<ScheduledScopePolicy>(scope_knob));
  auto& client = bed.add_client("Cleveland");

  struct Subject {
    const char* label;
    resolver::ResolverConfig config;
  };
  std::vector<Subject> subjects;
  subjects.push_back({"correct (stock)", resolver::ResolverConfig::correct()});
  subjects.push_back({"jammed /32 (stock)", resolver::ResolverConfig::jammed_32()});
  subjects.push_back({"clamp-22 (stock)", resolver::ResolverConfig::clamp22()});
  {
    resolver::ResolverConfig adaptive = resolver::ResolverConfig::correct();
    adaptive.adapt_source_to_scope = true;
    adaptive.label = "adaptive";
    subjects.push_back({"adapt-to-scope (extension)", adaptive});
  }

  // Scope schedule: generous, then coarse, then generous again — the last
  // phase exposes the adaptation ratchet.
  const int schedule[] = {24, 24, 16, 16, 16, 24, 24};

  TextTable table({"resolver", "round scopes returned", "source lengths sent",
                   "adapts?"});
  for (auto& subject : subjects) {
    auto& resolver = bed.add_resolver(subject.config, "Chicago");
    std::string scopes, sources;
    const std::size_t log_mark = auth.log().size();
    int round = 0;
    for (const int scope : schedule) {
      *scope_knob = scope;
      // A fresh hostname each round defeats caching; fresh client subnets
      // keep identities distinct.
      const Name host = zone.prepend("r" + std::to_string(round++) + "-" +
                                     std::to_string(auth.log().size()));
      auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
          host, 20, dnscore::IpAddress::parse("203.0.113.1")));
      dnscore::Message q = dnscore::Message::make_query(1, host, dnscore::RRType::A);
      q.opt = dnscore::OptRecord{};
      resolver.handle_client_query(q, client.address());
      if (!scopes.empty()) scopes += " ";
      scopes += std::to_string(scope);
    }
    int first_len = -1, last_len = -1;
    for (std::size_t i = log_mark; i < auth.log().size(); ++i) {
      const auto& e = auth.log()[i];
      if (!e.query_ecs) continue;
      if (!sources.empty()) sources += " ";
      sources += std::to_string(e.query_ecs->source_prefix_length());
      if (first_len < 0) first_len = e.query_ecs->source_prefix_length();
      last_len = e.query_ecs->source_prefix_length();
    }
    table.add_row({subject.label, scopes, sources,
                   first_len != last_len ? "YES" : "no"});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("stock resolvers adapt source to scope",
                 "unknown (the open question)", "no - lengths are static policy");
  bench::compare("adapt-to-scope extension", "n/a (our extension)",
                 "adapts downward; note the ratchet: scope can never exceed "
                 "the source, so learning only tightens");
  return 0;
}
