// §9 (future work): "future work should focus on the fraction of DNS
// responses that carry ECS options today and attempt to predict what that
// fraction will be as ECS support grows. From such a study, it would be
// possible to predict the overall cache blow-up factor for recursive
// resolvers at both present levels of ECS deployment by authoritative
// nameservers and future increases in deployment."
//
// We run that projection: sweep the fraction of zones that adopt ECS and
// measure the resolver's *overall* cache blow-up and hit rate — not just
// the ECS-bearing slice the paper's §7 was restricted to.
#include <cstdio>

#include "bench_common.h"
#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec9_adoption_projection");
  bench::banner("sec9_adoption_projection",
                "Section 9 future work - overall cache cost vs ECS deployment");

  AllNamesConfig config;
  config.duration = bench::flag(argc, argv, "minutes", 45) * netsim::kMinute;
  config.seed = 9;

  TextTable table({"ECS-adopting zones", "overall blow-up", "overall hit rate (%)",
                   "ECS responses (%)"});
  CsvWriter csv("sec9_adoption_projection",
                {"adoption_pct", "blowup", "hitrate_pct", "ecs_responses_pct"});
  double blowup_full = 0, blowup_low = 0;
  for (const int pct : {0, 10, 25, 50, 75, 100}) {
    config.ecs_zone_fraction = pct / 100.0;
    const Trace trace = generate_all_names_trace(config);
    const auto factors = blowup_factors(trace, std::nullopt);
    const double blowup = factors.empty() ? 1.0 : factors.front();
    const auto sim = simulate_cache(trace, CacheSimOptions{true, {}, {}});
    std::uint64_t ecs_responses = 0;
    for (const auto& q : trace.queries) {
      if (q.scope > 0) ++ecs_responses;
    }
    const double ecs_pct = trace.queries.empty()
                               ? 0.0
                               : 100.0 * static_cast<double>(ecs_responses) /
                                     static_cast<double>(trace.queries.size());
    if (pct == 10) blowup_low = blowup;
    if (pct == 100) blowup_full = blowup;
    table.add_row({std::to_string(pct) + "%", TextTable::num(blowup),
                   TextTable::num(100 * sim.overall_hit_rate(), 1),
                   TextTable::num(ecs_pct, 1)});
    csv.row({std::to_string(pct), TextTable::num(blowup, 4),
             TextTable::num(100 * sim.overall_hit_rate(), 2),
             TextTable::num(ecs_pct, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("blow-up confined to the ECS slice at low adoption",
                 "§7 caveat: 'the blow-up factor on the overall resolver cache "
                 "may be smaller'",
                 (TextTable::num(blowup_low) + " at 10% adoption").c_str());
  bench::compare("full-adoption ceiling", "the §7 per-slice measurement (4.3)",
                 TextTable::num(blowup_full).c_str());
  std::printf(
      "\nreading: the paper's per-slice factors are the asymptote; at today's\n"
      "partial adoption the overall cache pays proportionally less, growing\n"
      "toward the §7 numbers as more zones adopt ECS.\n");
  return 0;
}
