// §6.1 (closing paragraph): resolvers that violate the RFC outright by
// sending ECS queries to root DNS servers. The paper analyzed 24 hours of
// A-root DITL data and found 15 such resolvers; we drive a mixed fleet
// against our simulated root and analyze its query log the same way.
#include <cstdio>
#include <set>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/stats.h"
#include "measurement/workload.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec61_root_ecs");
  bench::banner("sec61_root_ecs",
                "Section 6.1 - resolvers sending ECS to root servers (DITL)");
  const int violators = static_cast<int>(bench::flag(argc, argv, "violators", 15));
  const int compliant = static_cast<int>(bench::flag(argc, argv, "compliant", 200));

  Testbed bed;
  const auto zone = dnscore::Name::from_string("cdn.example");
  auto& cdn = bed.add_auth("cdn", zone, "Ashburn",
                           std::make_unique<authoritative::FixedScopePolicy>(24));
  const auto host = zone.prepend("www");
  cdn.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
      host, 20, dnscore::IpAddress::parse("203.0.113.1")));

  // A mixed fleet: mostly compliant resolvers plus a few that attach ECS
  // even on infrastructure hops.
  Fleet fleet;
  for (int i = 0; i < compliant + violators; ++i) {
    resolver::ResolverConfig config = resolver::ResolverConfig::correct();
    config.label = (i < violators ? "root-violator-" : "compliant-") +
                   std::to_string(i);
    config.ecs_to_root_servers = i < violators;
    FleetMember m;
    auto& r = bed.add_resolver(config, "Chicago");
    m.resolver = &r;
    m.address = r.address();
    fleet.members.push_back(std::move(m));
  }

  // Every resolver resolves fresh names so the walk hits the root (NS
  // referrals are cached; unique SLD names keep the roots busy anyway).
  WorkloadOptions wl;
  wl.hostnames = {host};
  wl.duration = 30 * netsim::kMinute;
  wl.mean_query_gap = 5 * netsim::kMinute;
  drive_fleet(bed, fleet, wl);

  // The DITL-style analysis: distinct senders whose root queries carried an
  // ECS option.
  std::set<std::string> offenders;
  std::uint64_t root_queries = 0;
  for (const auto& e : bed.root_server().log()) {
    ++root_queries;
    if (e.query_ecs) offenders.insert(e.sender.to_string());
  }

  TextTable table({"metric", "value"});
  table.add_row({"root queries analyzed", std::to_string(root_queries)});
  table.add_row({"resolvers in population", std::to_string(compliant + violators)});
  table.add_row({"resolvers sending ECS to the root",
                 std::to_string(offenders.size())});
  std::printf("%s\n", table.render().c_str());

  bench::compare("ECS-to-root offenders found", "15 (in 24h of A-root DITL)",
                 std::to_string(offenders.size()).c_str());
  bench::compare("compliant majority stays clean", "yes",
                 offenders.size() == static_cast<std::size_t>(violators)
                     ? "yes (exact match with planted violators)"
                     : "no");
  return 0;
}
