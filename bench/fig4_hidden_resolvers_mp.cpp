// Figure 4: forwarder-to-hidden vs forwarder-to-egress distances for
// resolution chains of the major public (MP) resolver. Points below the
// diagonal are cases where ECS *worsens* the CDN's view of client location.
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/hidden.h"
#include "measurement/scanner.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig4_hidden_resolvers_mp");
  bench::banner("fig4_hidden_resolvers_mp",
                "Figure 4 - distances forwarder->hidden vs forwarder->egress (MP)");

  Testbed bed;
  Scanner scanner(bed);
  ScanFleetOptions options;
  options.scale = static_cast<int>(bench::flag(argc, argv, "scale", 1));
  options.forwarders_per_egress =
      static_cast<int>(bench::flag(argc, argv, "forwarders", 8));
  options.hidden_chain_fraction = 0.5;
  options.hidden_farther_fraction = 0.19;  // tuned so ~8% land below the diagonal
  options.hidden_at_egress_fraction = 0.02;
  Fleet fleet = build_scan_dataset_fleet(bed, options);

  std::vector<dnscore::IpAddress> targets;
  std::set<std::string> mp_addresses;
  for (const auto& m : fleet.members) {
    if (m.behavior == "AS-MP") mp_addresses.insert(m.address.to_string());
    for (const auto* f : m.forwarders) targets.push_back(f->address());
  }
  const ScanResults results = scanner.scan(targets);
  const auto all_combos = find_hidden_combinations(results, bed.geodb());

  std::vector<HiddenCombination> mp_combos;
  for (const auto& c : all_combos) {
    if (mp_addresses.count(c.egress.to_string()) != 0) mp_combos.push_back(c);
  }
  std::printf("scan found %zu hidden prefixes; %zu (F,H,R) combos, %zu via MP\n\n",
              results.hidden_prefixes().size(), all_combos.size(), mp_combos.size());

  const auto analysis = analyze_hidden(mp_combos);
  std::printf("%s\n",
              analysis.scatter.render("forwarder-hidden km", "forwarder-egress km")
                  .c_str());

  bench::compare("combos with hidden farther (below diag)", "8%",
                 (TextTable::num(100 * analysis.below_diagonal_fraction, 1) + "%")
                     .c_str());
  bench::compare("equidistant combos (on diag)", "1.3%",
                 (TextTable::num(100 * analysis.on_diagonal_fraction, 1) + "%")
                     .c_str());
  bench::compare("worst-case extra distance", "~12,000 km (Santiago via Italy)",
                 (TextTable::num(analysis.max_penalty_km, 0) + " km").c_str());
  return 0;
}
