// Figure 7: the Figure 6 sweep against CDN-2, which honors ECS down to /21
// and falls back to resolver-proxy mapping below that — so the cliff moves
// from /24 to /21, and short-prefix queries all map near the lab machine.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/mapping_quality.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig7_cdn2_prefixlen");
  bench::banner("fig7_cdn2_prefixlen",
                "Figure 7 - mapping quality vs source prefix length (CDN-2)");

  Testbed bed;
  auto& fleet = bed.add_global_fleet();
  auto& mapping = bed.add_mapping(cdn::ProximityMapping::cdn2_config(), fleet);
  const auto zone = dnscore::Name::from_string("cdn2.example");
  auto& auth = bed.add_auth("cdn2", zone, "Ashburn",
                            std::make_unique<authoritative::CdnMappingPolicy>(mapping));
  const auto host = zone.prepend("www");
  auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
      host, 20, dnscore::IpAddress::parse("203.0.113.1")));

  const auto probe_count =
      static_cast<std::size_t>(bench::flag(argc, argv, "probes", 800));
  const auto probes = make_probe_sites(bed, probe_count, 6);
  std::printf("%zu Atlas-style probes, lab in Cleveland\n\n", probes.size());

  const auto results = run_prefix_length_sweep(
      bed, bed.auth_address(auth), host, probes, {16, 18, 20, 21, 22, 23, 24});

  TextTable table(
      {"source len", "unique first answers", "median connect ms", "p90 ms"});
  CsvWriter csv("fig7_cdn2_prefixlen", {"source_len", "connect_ms", "cdf"});
  std::vector<std::pair<std::string, Cdf>> curves;
  for (const auto& r : results) {
    for (const auto& [x, p] : r.connect_ms.series(100)) {
      csv.row({std::to_string(r.prefix_length), TextTable::num(x, 3),
               TextTable::num(p, 4)});
    }
    table.add_row({std::to_string(r.prefix_length),
                   std::to_string(r.unique_first_answers),
                   TextTable::num(r.connect_ms.median(), 1),
                   TextTable::num(r.connect_ms.percentile(0.9), 1)});
    if (r.prefix_length >= 20) {
      curves.emplace_back("/" + std::to_string(r.prefix_length), r.connect_ms);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n",
              render_cdf_plot(curves, "time to connect (ms)", 72, 16, true).c_str());

  const auto find = [&](int len) -> const PrefixLengthResult& {
    for (const auto& r : results) {
      if (r.prefix_length == len) return r;
    }
    throw std::logic_error("missing length");
  };
  bench::compare("answers at /16../20", "1 (resolver-proxy, near lab)",
                 std::to_string(find(20).unique_first_answers).c_str());
  bench::compare("answers at /21 and longer", "41-42",
                 std::to_string(find(21).unique_first_answers).c_str());
  bench::compare("cliff between /20 and /21", "dramatic penalty at /20",
                 find(20).connect_ms.median() > 2 * find(21).connect_ms.median()
                     ? "reproduced (>2x median)"
                     : "NOT reproduced");
  bench::compare("/21../24 quality identical", "yes",
                 std::abs(find(21).connect_ms.median() -
                          find(24).connect_ms.median()) < 5.0
                     ? "yes"
                     : "no");
  return 0;
}
