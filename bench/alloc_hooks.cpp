// Counting allocator hooks, linked into bench executables only.
//
// Every global operator new funnels through here and bumps the obs
// allocation counter that ObsSession exports as the run.allocations gauge;
// scripts/bench_report.py diffs that gauge against the checked-in baseline
// to catch allocation regressions on the hot path. Libraries and tests do
// NOT link this translation unit, so sanitizer interceptors and unit tests
// see the stock allocator.
//
// The hooks add one relaxed atomic increment per allocation — noise next to
// the allocation itself — and deliberately do not track frees or bytes:
// the harness cares about allocation *count* (how often the hot path hits
// the heap), which a single monotonic counter answers robustly.
#include <cstdlib>
#include <new>

#include "obs/alloc_counter.h"

namespace {

void* counted_alloc(std::size_t size) {
  ecsdns::obs::count_allocation();
  // malloc(0) may return nullptr legally; operator new must not.
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ecsdns::obs::count_allocation();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ecsdns::obs::count_allocation();
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
