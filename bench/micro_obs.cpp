// Microbenchmarks for the observability layer itself: what one counter
// bump, histogram observation, or trace record costs, and — the number that
// justifies leaving instrumentation always-on — the end-to-end overhead the
// obs mirrors add to a cache-hit resolution. The acceptance bar is <5%
// overhead on BM_ResolveCacheHit with metrics enabled vs disabled.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"

#include "authoritative/ecs_policy.h"
#include "measurement/testbed.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace ecsdns;
using dnscore::IpAddress;
using dnscore::Name;

void BM_CounterInc(benchmark::State& state) {
  obs::CounterHandle c(obs::MetricsRegistry::global().counter("micro.counter"));
  for (auto _ : state) {
    c.inc();
  }
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncDisabled(benchmark::State& state) {
  obs::CounterHandle c(obs::MetricsRegistry::global().counter("micro.counter"));
  obs::set_enabled(false);
  for (auto _ : state) {
    c.inc();
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_CounterIncDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  obs::HistogramHandle h(
      obs::MetricsRegistry::global().histogram("micro.histogram"));
  std::uint64_t v = 0;
  for (auto _ : state) {
    h.observe(++v & 0xFFFFF);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceRecordDisabled(benchmark::State& state) {
  auto& tracer = obs::TraceRing::global();
  tracer.set_enabled(false);
  for (auto _ : state) {
    if (tracer.enabled()) {
      tracer.record({0, obs::TraceKind::kNote, {}, {}, 0, "never"});
    }
  }
}
BENCHMARK(BM_TraceRecordDisabled);

void BM_TraceRecordEnabled(benchmark::State& state) {
  obs::TraceRing tracer(1024);
  tracer.set_enabled(true);
  const auto src = IpAddress::parse("10.0.0.1");
  const auto dst = IpAddress::parse("10.0.0.2");
  std::int64_t t = 0;
  for (auto _ : state) {
    tracer.record({++t, obs::TraceKind::kDatagram, src, dst, 64, {}});
  }
}
BENCHMARK(BM_TraceRecordEnabled);

void BM_MetricsSnapshot(benchmark::State& state) {
  auto& registry = obs::MetricsRegistry::global();
  obs::preregister_core_metrics(registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::metrics_json(registry, "micro_obs", 0.0));
  }
}
BENCHMARK(BM_MetricsSnapshot);

// The same cache-hit loop as micro_resolution's BM_ResolveCacheHit, run with
// the obs mirrors live and dead. google-benchmark prints both; the custom
// main below computes the overhead ratio from a direct timed comparison.
struct Rig {
  measurement::Testbed bed;
  resolver::RecursiveResolver* resolver;
  Name host = Name::from_string("www.example.com");

  Rig() {
    auto& auth = bed.add_auth("auth", Name::from_string("example.com"), "Ashburn",
                              std::make_unique<authoritative::ScopeDeltaPolicy>(0));
    auth.find_zone(Name::from_string("example.com"))
        ->add(dnscore::ResourceRecord::make_a(host, 60,
                                              IpAddress::parse("1.1.1.1")));
    resolver = &bed.add_resolver(resolver::ResolverConfig::correct(), "Chicago");
    bed.network().set_advance_clock(false);
  }
};

void resolve_cache_hit_loop(benchmark::State& state, bool obs_on) {
  Rig rig;
  const auto client = IpAddress::parse("100.64.1.5");
  dnscore::Message q = dnscore::Message::make_query(1, rig.host, dnscore::RRType::A);
  q.opt = dnscore::OptRecord{};
  (void)rig.resolver->handle_client_query(q, client);  // warm the cache
  obs::set_enabled(obs_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.resolver->handle_client_query(q, client));
  }
  obs::set_enabled(true);
}

void BM_ResolveCacheHitObsOn(benchmark::State& state) {
  resolve_cache_hit_loop(state, true);
}
BENCHMARK(BM_ResolveCacheHitObsOn);

void BM_ResolveCacheHitObsOff(benchmark::State& state) {
  resolve_cache_hit_loop(state, false);
}
BENCHMARK(BM_ResolveCacheHitObsOff);

// Direct A/B measurement outside google-benchmark: interleaved batches so
// frequency scaling hits both arms equally, median-of-batches so one noisy
// batch can't skew the ratio.
double timed_batch(resolver::RecursiveResolver& r, const dnscore::Message& q,
                   const IpAddress& client, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(r.handle_client_query(q, client));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void report_overhead() {
  Rig rig;
  const auto client = IpAddress::parse("100.64.1.5");
  dnscore::Message q = dnscore::Message::make_query(1, rig.host, dnscore::RRType::A);
  q.opt = dnscore::OptRecord{};
  (void)rig.resolver->handle_client_query(q, client);

  constexpr int kIters = 20000;
  constexpr int kBatches = 9;
  std::vector<double> on, off;
  timed_batch(*rig.resolver, q, client, kIters);  // warm-up
  for (int b = 0; b < kBatches; ++b) {
    obs::set_enabled(false);
    off.push_back(timed_batch(*rig.resolver, q, client, kIters));
    obs::set_enabled(true);
    on.push_back(timed_batch(*rig.resolver, q, client, kIters));
  }
  std::sort(on.begin(), on.end());
  std::sort(off.begin(), off.end());
  const double on_med = on[kBatches / 2], off_med = off[kBatches / 2];
  const double overhead_pct = (on_med / off_med - 1.0) * 100.0;
  std::printf("\nobs overhead on cache-hit resolution (median of %d batches):\n",
              kBatches);
  std::printf("  obs enabled : %.1f ns/op\n", on_med / kIters * 1e9);
  std::printf("  obs disabled: %.1f ns/op\n", off_med / kIters * 1e9);
  std::printf("  overhead    : %+.2f%% (target < 5%%)\n", overhead_pct);
}

}  // namespace

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "micro_obs");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) continue;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) continue;
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  report_overhead();
  benchmark::Shutdown();
  return 0;
}
