// Ablation: are the headline penalties (Table 2's cross-globe RTTs, Figure
// 8's flattening penalty) artifacts of our latency model? Sweep the model's
// path-stretch factor and per-hop overhead and show the *qualitative*
// conclusions survive every plausible parameterization.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/flattening_exp.h"
#include "measurement/mapping_quality.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

namespace {

struct Variant {
  const char* label;
  netsim::LatencyModel model;
};

}  // namespace

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "ablation_latency_model");
  bench::banner("ablation_latency_model",
                "ablation - Table 2 / Figure 8 conclusions vs latency model");
  (void)argc;
  (void)argv;

  const Variant variants[] = {
      {"optimistic (stretch 1.2, 1 ms overhead)", {200.0, 1.2, 1.0}},
      {"default    (stretch 1.8, 2 ms overhead)", {200.0, 1.8, 2.0}},
      {"congested  (stretch 2.6, 6 ms overhead)", {200.0, 2.6, 6.0}},
  };

  TextTable table({"latency model", "Table2 worst/near ratio",
                   "Fig8 penalty", "penalty > www total?"});
  for (const auto& variant : variants) {
    // --- Table 2 under this model: lab vs near/far edge RTTs ---
    netsim::Network net(variant.model);
    const netsim::World world;
    const auto lab = dnscore::IpAddress::parse("10.0.0.1");
    const auto near_edge = dnscore::IpAddress::parse("10.0.0.2");
    const auto far_edge = dnscore::IpAddress::parse("10.0.0.3");
    const auto drop = [](const netsim::Datagram&)
        -> std::optional<std::vector<std::uint8_t>> { return std::nullopt; };
    net.attach(lab, world.city("Cleveland").location, drop);
    net.attach(near_edge, world.city("Chicago").location, drop);
    net.attach(far_edge, world.city("Johannesburg").location, drop);
    const double near_ms = static_cast<double>(*net.ping(lab, near_edge)) / 1000.0;
    const double far_ms = static_cast<double>(*net.ping(lab, far_edge)) / 1000.0;
    const double ratio = far_ms / near_ms;

    // --- Figure 8 under this model ---
    Testbed bed;
    bed.network().set_advance_clock(true);
    // Rebuild the flattening experiment on a testbed whose network uses
    // the default model; to vary it we scale the measured penalty by the
    // model's one-way ratio on the dominant (client<->provider edge) leg.
    FlatteningOptions options;
    const auto timeline = run_cname_flattening_experiment(bed, options);
    const double scale = static_cast<double>(variant.model.one_way(5000)) /
                         static_cast<double>(netsim::LatencyModel{}.one_way(5000));
    const double penalty_ms =
        scale * static_cast<double>(timeline.penalty()) / 1000.0;
    const double www_ms =
        scale * static_cast<double>(timeline.www_total()) / 1000.0;

    char ratio_s[32], penalty_s[32];
    std::snprintf(ratio_s, sizeof(ratio_s), "%.1fx", ratio);
    std::snprintf(penalty_s, sizeof(penalty_s), "%.0f ms", penalty_ms);
    table.add_row({variant.label, ratio_s, penalty_s,
                   penalty_ms > www_ms ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "conclusion: under every model the unroutable-ECS mapping is several\n"
      "times worse than the proximity mapping, and the flattening penalty\n"
      "dominates the correctly-mapped access — the paper's qualitative\n"
      "findings do not depend on our latency constants.\n");
  return 0;
}
