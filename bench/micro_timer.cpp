// Timer-queue microbenchmarks: the hierarchical timer wheel vs the binary
// heap it replaced, at the pending-set sizes the streaming pipeline
// actually holds (one arrival timer per fleet member, so 1M pending at
// paper scale). The profiled steady-state op is the event loop's inner
// loop: pop the earliest timer, do nothing, reschedule one at a random
// future offset.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_common.h"

#include "netsim/event_loop.h"
#include "netsim/rng.h"
#include "netsim/timer_wheel.h"

namespace {

using namespace ecsdns;
using netsim::SimTime;

// Mean gap between a popped timer and its replacement. Matches the trace
// generators' inter-query gaps (seconds of sim time in microsecond units),
// so wheel entries spread across levels 3-5 the way real arrivals do.
constexpr double kMeanGapUs = 2.0e6;

template <typename Queue>
void churn(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  Queue queue;
  netsim::Rng rng(7);
  SimTime now = 0;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    queue.push(static_cast<SimTime>(rng.exponential(kMeanGapUs)), seq++, 0u);
  }
  netsim::TimerEntry<unsigned> entry;
  for (auto _ : state) {
    queue.pop_next(entry);
    now = entry.when;
    queue.push(now + 1 + static_cast<SimTime>(rng.exponential(kMeanGapUs)),
               seq++, 0u);
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TimerWheelChurn(benchmark::State& state) {
  churn<netsim::TimerWheel<unsigned>>(state);
}
BENCHMARK(BM_TimerWheelChurn)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TimerHeapChurn(benchmark::State& state) {
  churn<netsim::TimerHeap<unsigned>>(state);
}
BENCHMARK(BM_TimerHeapChurn)->Arg(1000)->Arg(100000)->Arg(1000000);

// End-to-end through the EventLoop (std::function payloads, schedule_at
// validation): one self-rescheduling chain per simulated member, run for a
// fixed count of firings. Compares the two TimerQueue implementations with
// everything else identical.
void event_loop_churn(benchmark::State& state, netsim::TimerQueue impl) {
  const auto chains = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    netsim::EventLoop loop(impl);
    netsim::Rng rng(11);
    std::uint64_t fired = 0;
    const std::uint64_t quota = chains * 4;
    std::function<void()> tick;
    // One shared callback: reschedules itself until the quota is met.
    tick = [&] {
      if (++fired >= quota) return;
      loop.schedule_at(
          loop.now() + 1 + static_cast<SimTime>(rng.exponential(kMeanGapUs)),
          tick);
    };
    for (std::size_t i = 0; i < chains; ++i) {
      loop.schedule_at(1 + static_cast<SimTime>(rng.exponential(kMeanGapUs)),
                       tick);
    }
    state.ResumeTiming();
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chains) * 4);
}

void BM_EventLoopWheel(benchmark::State& state) {
  event_loop_churn(state, netsim::TimerQueue::kWheel);
}
BENCHMARK(BM_EventLoopWheel)->Arg(1000)->Arg(100000);

void BM_EventLoopHeap(benchmark::State& state) {
  event_loop_churn(state, netsim::TimerQueue::kHeap);
}
BENCHMARK(BM_EventLoopHeap)->Arg(1000)->Arg(100000);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the obs flags
// (--metrics-out/--trace-out) are not google-benchmark flags, so they are
// consumed by ObsSession before Initialize() sees argv.
int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "micro_timer");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) continue;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) continue;
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
