// §9 (future work): "a comparative analysis of whitelisted vs
// non-whitelisted resolvers ... and consequences of ECS on caching."
//
// Same resolver code, same clients, same CDN — the only difference is
// whether the CDN whitelists the resolver for ECS. We measure what each
// side gains and pays: client-to-edge RTT (mapping quality), resolver
// cache size, and upstream query volume.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/stats.h"
#include "measurement/testbed.h"
#include "netsim/rng.h"

using namespace ecsdns;
using namespace ecsdns::measurement;
using dnscore::Name;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec9_whitelist_comparison");
  bench::banner("sec9_whitelist_comparison",
                "Section 9 future work - whitelisted vs non-whitelisted resolver");
  const int clients = static_cast<int>(bench::flag(argc, argv, "clients", 48));
  const int rounds = static_cast<int>(bench::flag(argc, argv, "rounds", 3));

  Testbed bed;
  auto& fleet = bed.add_global_fleet();
  auto& mapping = bed.add_mapping(cdn::ProximityMapping::cdn2_config(), fleet);
  const Name zone = Name::from_string("cdn.example");
  const Name host = zone.prepend("www");

  // Two resolvers, identical config and location.
  auto& whitelisted = bed.add_resolver(resolver::ResolverConfig::google_like(),
                                       "Ashburn");
  auto& plain = bed.add_resolver(resolver::ResolverConfig::google_like(), "Ashburn");

  // Non-whitelisted senders still get CDN mapping — by their own address,
  // with the ECS option ignored (the fallback policy).
  auto policy = std::make_unique<authoritative::WhitelistPolicy>(
      std::make_unique<authoritative::CdnMappingPolicy>(mapping),
      std::vector<dnscore::IpAddress>{whitelisted.address()},
      std::make_unique<authoritative::CdnMappingPolicy>(mapping));
  auto& auth = bed.add_auth("cdn", zone, "Ashburn", std::move(policy));
  auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
      host, 20, dnscore::IpAddress::parse("203.0.113.1")));

  // A worldwide client population querying both resolvers.
  netsim::Rng rng(17);
  struct ClientSite {
    resolver::StubClient* stub;
  };
  std::vector<ClientSite> sites;
  for (int i = 0; i < clients; ++i) {
    sites.push_back(ClientSite{&bed.add_client(bed.world().random_city(rng).name)});
  }

  struct Outcome {
    std::vector<double> rtts_ms;
    std::uint64_t upstream = 0;
    std::size_t cache_entries = 0;
  };
  const auto run = [&](resolver::RecursiveResolver& resolver) {
    Outcome out;
    const auto upstream_before = auth.queries_served();
    for (int round = 0; round < rounds; ++round) {
      for (auto& site : sites) {
        const auto response =
            site.stub->query(resolver.address(), host, dnscore::RRType::A);
        if (!response || !response->first_address()) continue;
        const auto rtt =
            bed.network().ping(site.stub->address(), *response->first_address());
        if (rtt) {
          out.rtts_ms.push_back(static_cast<double>(*rtt) /
                                static_cast<double>(netsim::kMillisecond));
        }
      }
      // Let answers expire between rounds so cache cost shows up.
      bed.network().loop().advance(25 * netsim::kSecond);
    }
    out.upstream = auth.queries_served() - upstream_before;
    out.cache_entries = resolver.cache().stats().max_entries;
    return out;
  };

  const Outcome with = run(whitelisted);
  const Outcome without = run(plain);

  const Cdf with_cdf(with.rtts_ms);
  const Cdf without_cdf(without.rtts_ms);

  TextTable table({"metric", "whitelisted (ECS)", "non-whitelisted"});
  table.add_row({"median client-edge RTT",
                 TextTable::num(with_cdf.median(), 1) + " ms",
                 TextTable::num(without_cdf.median(), 1) + " ms"});
  table.add_row({"p90 client-edge RTT",
                 TextTable::num(with_cdf.percentile(0.9), 1) + " ms",
                 TextTable::num(without_cdf.percentile(0.9), 1) + " ms"});
  table.add_row({"upstream queries to the CDN", std::to_string(with.upstream),
                 std::to_string(without.upstream)});
  table.add_row({"peak resolver cache entries", std::to_string(with.cache_entries),
                 std::to_string(without.cache_entries)});
  std::printf("%d clients x %d rounds against one CDN hostname\n\n%s\n", clients,
              rounds, table.render().c_str());

  bench::compare("mapping quality gain from whitelisting",
                 "~50% latency cut (Chen et al., cited in §2)",
                 (TextTable::num(100 * (1 - with_cdf.median() /
                                                without_cdf.median()),
                                 0) +
                  "% median RTT cut")
                     .c_str());
  bench::compare("the cost: upstream query amplification",
                 "~8x (Chen et al.)",
                 (TextTable::num(static_cast<double>(with.upstream) /
                                     static_cast<double>(std::max<std::uint64_t>(
                                         without.upstream, 1)),
                                 1) +
                  "x")
                     .c_str());
  return 0;
}
