// Table 2: authoritative responses to queries carrying unroutable ECS
// prefixes, against a Google-like CDN that hashes unrecognized prefixes
// onto arbitrary edges. Lab machine in Cleveland, as in the paper.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/mapping_quality.h"
#include "measurement/stats.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "table2_unroutable_prefixes");
  bench::banner("table2_unroutable_prefixes",
                "Table 2 - mapping quality under unroutable ECS prefixes");
  (void)argc;
  (void)argv;

  Testbed bed;
  // A Google-like footprint with no Cleveland edge: the lab's nearest edge
  // is Chicago, as in the paper.
  auto& fleet = bed.add_fleet_in_cities(
      {"Chicago", "New York", "Mountain View", "Zurich", "Johannesburg",
       "Sao Paulo", "Tokyo", "Singapore", "Sydney", "Frankfurt", "London",
       "Mumbai", "Taipei", "Moscow", "Cape Town", "Buenos Aires"});
  auto& mapping = bed.add_mapping(cdn::ProximityMapping::google_like_config(), fleet);
  const auto zone = dnscore::Name::from_string("video.example");
  auto& auth = bed.add_auth("google-like", zone, "Mountain View",
                            std::make_unique<authoritative::CdnMappingPolicy>(mapping));
  const auto host = zone.prepend("www");
  auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
      host, 20, dnscore::IpAddress::parse("203.0.113.1")));

  const auto rows =
      run_unroutable_experiment(bed, bed.auth_address(auth), host, "Cleveland");

  TextTable table({"ECS Prefix", "First answer", "RTT", "Location"});
  for (const auto& row : rows) {
    table.add_row({row.ecs_label, row.first_answer.to_string(),
                   TextTable::num(row.rtt_ms, 0) + " ms", row.location});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("no-ECS RTT", "35 ms (Chicago)",
                 (TextTable::num(rows[0].rtt_ms, 0) + " ms (" + rows[0].location + ")")
                     .c_str());
  bench::compare("/24-of-source RTT", "35 ms (Chicago)",
                 (TextTable::num(rows[1].rtt_ms, 0) + " ms (" + rows[1].location + ")")
                     .c_str());
  const double worst = std::max({rows[2].rtt_ms, rows[3].rtt_ms, rows[4].rtt_ms});
  bench::compare("worst unroutable RTT", "285 ms (South Africa)",
                 (TextTable::num(worst, 0) + " ms").c_str());
  bench::compare("unroutable answers differ from routable", "yes (disjoint sets)",
                 rows[2].first_answer != rows[0].first_answer ? "yes" : "no");
  return 0;
}
