// §6.1: ECS probing strategies of the 4147 non-whitelisted resolvers seen
// by the CDN, recovered by classifying the authoritative-side query log.
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/probing_classifier.h"
#include "measurement/stats.h"
#include "measurement/workload.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec61_probing_strategies");
  bench::banner("sec61_probing_strategies",
                "Section 6.1 - probing strategies (3382/258/32/88/387 mix)");
  const int scale = static_cast<int>(bench::flag(argc, argv, "scale", 4));
  const long minutes = bench::flag(argc, argv, "minutes", 150);

  Testbed bed;
  const auto zone = dnscore::Name::from_string("cdn.example");
  // The CDN whitelists nobody in this log slice (the dataset is the
  // non-whitelisted resolvers), so ECS options are silently ignored.
  auto& cdn = bed.add_auth(
      "cdn", zone, "Ashburn",
      std::make_unique<authoritative::WhitelistPolicy>(
          std::make_unique<authoritative::FixedScopePolicy>(24),
          std::vector<dnscore::IpAddress>{}));
  std::vector<dnscore::Name> hostnames;
  for (int i = 0; i < 10; ++i) {
    const auto host = zone.prepend("h" + std::to_string(i));
    cdn.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
        host, 20, dnscore::IpAddress::v4(203, 0, 113, static_cast<std::uint8_t>(i))));
    hostnames.push_back(host);
  }

  CdnFleetOptions fleet_options;
  fleet_options.scale = scale;
  fleet_options.probe_names = {hostnames[0], hostnames[1]};
  Fleet fleet = build_cdn_dataset_fleet(bed, fleet_options);

  WorkloadOptions wl;
  wl.hostnames = hostnames;
  wl.duration = minutes * netsim::kMinute;
  wl.mean_query_gap = 3 * netsim::kMinute;
  const auto stats = drive_fleet(bed, fleet, wl);
  std::printf("fleet: %zu resolvers (scale 1/%d), %llu client queries over %ld min\n\n",
              fleet.members.size(), scale,
              static_cast<unsigned long long>(stats.client_queries), minutes);

  const auto verdicts = classify_probing(cdn.log(), ProbingClassifierOptions{});
  const auto histogram = probing_histogram(verdicts);

  const auto count = [&](ProbingClass c) -> std::size_t {
    const auto it = histogram.find(c);
    return it == histogram.end() ? 0 : it->second;
  };
  const auto scale_note = [&](int paper) {
    return std::to_string(paper) + "/" + std::to_string(scale) + " ~ " +
           std::to_string(paper / scale);
  };

  TextTable table({"probing strategy", "paper (full)", "expected (scaled)",
                   "classified"});
  table.add_row({"100% ECS on A/AAAA", "3382", scale_note(3382),
                 std::to_string(count(ProbingClass::kAlwaysEcs))});
  table.add_row({"specific hostnames, caching disabled", "258", scale_note(258),
                 std::to_string(count(ProbingClass::kHostnameNoCache))});
  table.add_row({"30-minute loopback probes", "32", scale_note(32),
                 std::to_string(count(ProbingClass::kPeriodicLoopback))});
  table.add_row({"specific hostnames, on cache miss", "88", scale_note(88),
                 std::to_string(count(ProbingClass::kHostnameOnMiss))});
  table.add_row({"no discernible pattern", "387", scale_note(387),
                 std::to_string(count(ProbingClass::kIrregular))});
  table.add_row({"(unclassifiable: too few queries)", "-", "-",
                 std::to_string(count(ProbingClass::kTooFewQueries))});
  std::printf("%s\n", table.render().c_str());

  bench::compare("largest class", "always-ECS (82%)",
                 count(ProbingClass::kAlwaysEcs) > verdicts.size() / 2
                     ? "always-ECS (majority)"
                     : "NOT reproduced");
  bench::compare("all five classes observed", "yes",
                 count(ProbingClass::kAlwaysEcs) && count(ProbingClass::kHostnameNoCache) &&
                         count(ProbingClass::kPeriodicLoopback) &&
                         count(ProbingClass::kHostnameOnMiss) &&
                         count(ProbingClass::kIrregular)
                     ? "yes"
                     : "no");
  return 0;
}
