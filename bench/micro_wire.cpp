// Engineering microbenchmarks (google-benchmark): the DNS wire codec and
// ECS option paths that every simulated packet crosses.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "dnscore/message.h"
#include "dnscore/message_view.h"
#include "netsim/buffer_pool.h"

namespace {

using namespace ecsdns::dnscore;

Message sample_response() {
  Message q = Message::make_query(42, Name::from_string("www.example.com"), RRType::A);
  q.set_ecs(EcsOption::for_query(Prefix::parse("100.64.7.0/24")));
  Message r = Message::make_response(q);
  r.header.aa = true;
  for (int i = 0; i < 4; ++i) {
    r.answers.push_back(ResourceRecord::make_a(
        Name::from_string("www.example.com"), 20,
        IpAddress::v4(95, 0, 0, static_cast<std::uint8_t>(i + 1))));
  }
  r.set_ecs(EcsOption::for_response(Prefix::parse("100.64.7.0/24"), 24));
  return r;
}

void BM_MessageSerialize(benchmark::State& state) {
  const Message m = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.serialize());
  }
}
BENCHMARK(BM_MessageSerialize);

void BM_MessageParse(benchmark::State& state) {
  const auto wire = sample_response().serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Message::parse({wire.data(), wire.size()}));
  }
}
BENCHMARK(BM_MessageParse);

void BM_QueryRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Message q = Message::make_query(7, Name::from_string("a.b.example.com"), RRType::A);
    q.set_ecs(EcsOption::for_query(Prefix::parse("10.1.2.0/24")));
    const auto wire = q.serialize();
    benchmark::DoNotOptimize(Message::parse({wire.data(), wire.size()}));
  }
}
BENCHMARK(BM_QueryRoundTrip);

void BM_MessageViewConstruct(benchmark::State& state) {
  const auto wire = sample_response().serialize();
  for (auto _ : state) {
    // Full validation walk, zero materialization — the lazy counterpart of
    // BM_MessageParse over the same bytes.
    benchmark::DoNotOptimize(MessageView({wire.data(), wire.size()}));
  }
}
BENCHMARK(BM_MessageViewConstruct);

void BM_MessageViewDispatch(benchmark::State& state) {
  // What the authoritative front-end reads per query: header, question,
  // and the decoded ECS option.
  Message q = Message::make_query(42, Name::from_string("www.example.com"), RRType::A);
  q.set_ecs(EcsOption::for_query(Prefix::parse("100.64.7.0/24")));
  const auto wire = q.serialize();
  for (auto _ : state) {
    const MessageView view({wire.data(), wire.size()});
    benchmark::DoNotOptimize(view.qname());
    benchmark::DoNotOptimize(view.qtype());
    benchmark::DoNotOptimize(view.has_ecs());
    benchmark::DoNotOptimize(view.ecs());
  }
}
BENCHMARK(BM_MessageViewDispatch);

void BM_MessageSerializeIntoPooled(benchmark::State& state) {
  const Message m = sample_response();
  ecsdns::netsim::BufferPool pool;
  for (auto _ : state) {
    auto buf = pool.acquire();
    {
      WireWriter writer(buf);
      m.serialize_into(writer);
    }
    benchmark::DoNotOptimize(buf.data());
    pool.release(std::move(buf));
  }
}
BENCHMARK(BM_MessageSerializeIntoPooled);

void BM_NameParseCompressed(benchmark::State& state) {
  WireWriter w;
  Name::from_string("example.com").serialize(w);
  const std::size_t www_at = w.size();
  w.u8(3);
  w.u8('w');
  w.u8('w');
  w.u8('w');
  w.u16(0xc000);
  const auto buf = std::move(w).take();
  for (auto _ : state) {
    WireReader r({buf.data(), buf.size()});
    r.seek(www_at);
    benchmark::DoNotOptimize(Name::parse(r));
  }
}
BENCHMARK(BM_NameParseCompressed);

void BM_EcsEncodeDecode(benchmark::State& state) {
  const auto prefix = Prefix::parse("203.119.87.0/24");
  for (auto _ : state) {
    const auto opt = EcsOption::for_query(prefix).to_edns();
    benchmark::DoNotOptimize(EcsOption::from_edns(opt));
  }
}
BENCHMARK(BM_EcsEncodeDecode);

void BM_EcsValidate(benchmark::State& state) {
  const auto ecs = EcsOption::for_query(Prefix::parse("203.119.87.0/21"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecs.validate(true));
  }
}
BENCHMARK(BM_EcsValidate);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the obs flags
// (--metrics-out/--trace-out) are not google-benchmark flags, so they are
// consumed by ObsSession before Initialize() sees argv.
int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "micro_wire");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) continue;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) continue;
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
