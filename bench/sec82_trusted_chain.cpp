// §8.2's proposed mitigation, built and measured: "develop trust between
// hidden and egress resolvers so that hidden resolvers would include ECS
// prefixes based on end-client subnets, and egress resolvers would pass
// this information (provided it comes from trusted senders) to the
// authoritative nameservers, rather than replacing it with prefixes based
// on the sender IP addresses."
//
// Topology: the paper's verified worst case — client and forwarder in
// Santiago, hidden resolver in Milan, egress in Santiago. Three regimes:
//   1. no ECS anywhere (pre-ECS baseline: mapping by egress location);
//   2. status quo ECS (egress derives ECS from the hidden resolver's IP:
//      the §8.2 pathology — mapping lands in Italy);
//   3. the trusted chain (hidden stamps the forwarder's subnet, egress
//      trusts it: mapping returns to Santiago).
#include <cstdio>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/stats.h"
#include "measurement/testbed.h"

using namespace ecsdns;
using namespace ecsdns::measurement;
using dnscore::Name;

namespace {

struct Regime {
  const char* label;
  dnscore::IpAddress edge;
  std::string edge_city;
  double rtt_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec82_trusted_chain");
  bench::banner("sec82_trusted_chain",
                "Section 8.2 mitigation - trusted hidden-resolver chains");
  (void)argc;
  (void)argv;

  std::vector<Regime> regimes;
  for (int regime = 0; regime < 3; ++regime) {
    Testbed bed;
    auto& fleet = bed.add_global_fleet();
    auto& mapping = bed.add_mapping(cdn::ProximityMapping::cdn2_config(), fleet);
    const Name zone = Name::from_string("cdn.example");
    const Name host = zone.prepend("www");
    auto& auth = bed.add_auth(
        "cdn", zone, "Ashburn",
        std::make_unique<authoritative::CdnMappingPolicy>(mapping));
    auth.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
        host, 20, dnscore::IpAddress::parse("203.0.113.1")));
    (void)auth;

    resolver::ResolverConfig egress_config = resolver::ResolverConfig::google_like();
    if (regime == 0) egress_config.probing = resolver::ProbingStrategy::kNever;
    auto& egress = bed.add_resolver(egress_config, "Santiago");
    if (regime == 2) {
      // Trust the hidden resolver's announcements.
      egress.mutable_config().accept_client_ecs = true;
    }

    resolver::ForwarderConfig hidden_config;
    if (regime == 2) hidden_config.stamp_sender_subnet = true;  // the mitigation
    auto& hidden = bed.add_forwarder_at(dnscore::IpAddress::parse("70.1.0.25"),
                                        "Milan", egress.address(), hidden_config);
    auto& fwd = bed.add_forwarder_at(dnscore::IpAddress::parse("60.1.0.25"),
                                     "Santiago", hidden.address());
    auto& client = bed.add_client("Santiago");

    const auto response = client.query(fwd.address(), host, dnscore::RRType::A);
    Regime r;
    r.label = regime == 0   ? "1. no ECS (map by egress)"
              : regime == 1 ? "2. status quo (ECS = hidden resolver)"
                            : "3. trusted chain (ECS = forwarder subnet)";
    if (response && response->first_address()) {
      r.edge = *response->first_address();
      if (const auto where = bed.network().location_of(r.edge)) {
        r.edge_city = bed.world().nearest(*where).name;
      }
      if (const auto rtt = bed.network().ping(client.address(), r.edge)) {
        r.rtt_ms = static_cast<double>(*rtt) /
                   static_cast<double>(netsim::kMillisecond);
      }
    }
    regimes.push_back(std::move(r));
  }

  TextTable table({"regime", "edge chosen", "edge city", "client RTT"});
  for (const auto& r : regimes) {
    table.add_row({r.label, r.edge.to_string(), r.edge_city,
                   TextTable::num(r.rtt_ms, 1) + " ms"});
  }
  std::printf("client+forwarder: Santiago; hidden resolver: Milan; egress: "
              "Santiago\n\n%s\n",
              table.render().c_str());

  bench::compare("status quo ECS vs no ECS", "ECS *worsens* mapping (8% of combos)",
                 regimes[1].rtt_ms > regimes[0].rtt_ms ? "worsens (reproduced)"
                                                       : "no effect");
  bench::compare("trusted chain restores mapping", "the paper's proposal",
                 regimes[2].edge_city == "Santiago" ? "yes - edge back in Santiago"
                                                    : "NO");
  return 0;
}
