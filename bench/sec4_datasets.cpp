// §4: the four datasets. This binary builds our synthetic equivalent of
// each and prints its shape next to the paper's published numbers, making
// the calibration (and the scaling factors) auditable in one place.
#include <cstdio>
#include <set>

#include "authoritative/ecs_policy.h"
#include "bench_common.h"
#include "measurement/fleet.h"
#include "measurement/scanner.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"
#include "measurement/workload.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "sec4_datasets");
  bench::banner("sec4_datasets", "Section 4 - the four datasets, calibrated shapes");
  const int scale = static_cast<int>(bench::flag(argc, argv, "scale", 4));

  // ---- CDN dataset ----
  {
    Testbed bed;
    const auto zone = dnscore::Name::from_string("cdn.example");
    auto& cdn = bed.add_auth(
        "cdn", zone, "Ashburn",
        std::make_unique<authoritative::WhitelistPolicy>(
            std::make_unique<authoritative::FixedScopePolicy>(24),
            std::vector<dnscore::IpAddress>{}));
    const auto host = zone.prepend("www");
    cdn.find_zone(zone)->add(dnscore::ResourceRecord::make_a(
        host, 20, dnscore::IpAddress::parse("203.0.113.1")));
    CdnFleetOptions options;
    options.scale = scale;
    Fleet fleet = build_cdn_dataset_fleet(bed, options);
    WorkloadOptions wl;
    wl.hostnames = {host};
    wl.duration = 30 * netsim::kMinute;
    wl.mean_query_gap = 3 * netsim::kMinute;
    drive_fleet(bed, fleet, wl);

    std::set<std::uint32_t> asns;
    std::set<std::string> countries;
    std::uint64_t ecs_queries = 0;
    for (const auto& e : cdn.log()) {
      if (!e.query_ecs) continue;
      ++ecs_queries;
      if (const auto info = bed.asndb().lookup(e.sender)) {
        asns.insert(info->asn);
        countries.insert(info->country);
      }
    }
    std::printf("CDN dataset (scale 1/%d):\n", scale);
    bench::compare("  ECS-enabled non-whitelisted resolvers", "4147",
                   std::to_string(fleet.members.size()).c_str());
    bench::compare("  distinct ASes", "83", std::to_string(asns.size()).c_str());
    bench::compare("  queries carrying ECS", "847M (of 1.5B)",
                   (std::to_string(ecs_queries) + " of " +
                    std::to_string(cdn.log().size()))
                       .c_str());
  }

  // ---- Scan dataset ----
  {
    Testbed bed;
    Scanner scanner(bed);
    ScanFleetOptions options;
    options.scale = scale;
    Fleet fleet = build_scan_dataset_fleet(bed, options);
    std::vector<dnscore::IpAddress> targets;
    for (const auto& m : fleet.members) {
      for (const auto* f : m.forwarders) targets.push_back(f->address());
    }
    const ScanResults results = scanner.scan(targets);
    std::set<std::string> countries;
    for (const auto& o : results.observations) {
      if (const auto info = bed.asndb().lookup(o.egress)) {
        countries.insert(info->country);
      }
    }
    std::printf("\nScan dataset (scale 1/%d):\n", scale);
    bench::compare("  open ingress resolvers probed", "2.743M",
                   std::to_string(results.probes_sent).c_str());
    bench::compare("  ingress with ECS-enabled egress", "1.53M",
                   std::to_string(results.ecs_ingress_count()).c_str());
    bench::compare("  ECS-enabled egress addresses", "1534",
                   std::to_string(results.ecs_egress_addresses().size()).c_str());
    bench::compare("  hidden resolver prefixes", "32170",
                   std::to_string(results.hidden_prefixes().size()).c_str());
  }

  // ---- Public Resolver/CDN dataset ----
  {
    PublicResolverCdnConfig config;
    config.resolvers = 2370 / static_cast<std::uint32_t>(scale);
    config.duration = 3 * netsim::kMinute;
    const Trace trace = generate_public_resolver_cdn_trace(config);
    std::printf("\nPublic Resolver/CDN dataset (scale 1/%d, compressed time):\n",
                scale);
    bench::compare("  egress resolver IPs", "2370",
                   std::to_string(trace.resolvers).c_str());
    bench::compare("  A/AAAA queries", "3.8B over 3h",
                   (std::to_string(trace.queries.size()) + " over 3 min").c_str());
    bench::compare("  all responses carry non-zero scope", "yes", "yes");
  }

  // ---- All-Names Resolver dataset ----
  {
    AllNamesConfig config;
    config.duration = 10 * netsim::kMinute;
    const Trace trace = generate_all_names_trace(config);
    std::size_t v4 = 0, v6 = 0;
    std::set<dnscore::Prefix> v4_subnets, v6_subnets;
    for (const auto& c : trace.clients) {
      if (c.is_v4()) {
        ++v4;
        v4_subnets.insert(dnscore::Prefix{c, 24});
      } else {
        ++v6;
        v6_subnets.insert(dnscore::Prefix{c, 48});
      }
    }
    std::printf("\nAll-Names Resolver dataset (scale 1/10):\n");
    bench::compare("  client IP addresses (v4 + v6)", "76.2K (37.4K + 38.8K)",
                   (std::to_string(v4 + v6) + " (" + std::to_string(v4) + " + " +
                    std::to_string(v6) + ")")
                       .c_str());
    bench::compare("  client subnets (/24 + /48)", "15.1K (12.3K + 2.8K)",
                   (std::to_string(v4_subnets.size() + v6_subnets.size()) + " (" +
                    std::to_string(v4_subnets.size()) + " + " +
                    std::to_string(v6_subnets.size()) + ")")
                       .c_str());
    bench::compare("  unique hostnames", "134,925",
                   std::to_string(trace.hostnames).c_str());
  }
  return 0;
}
