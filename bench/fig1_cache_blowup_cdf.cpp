// Figure 1: CDF of the per-resolver cache blow-up factor (peak cache size
// with ECS / without ECS) on the Public Resolver/CDN trace, for answer TTLs
// of 20, 40, and 60 seconds.
#include <cstdio>

#include "bench_common.h"
#include "measurement/cache_sim.h"
#include "measurement/stats.h"
#include "measurement/tracegen.h"

using namespace ecsdns;
using namespace ecsdns::measurement;

int main(int argc, char** argv) {
  ecsdns::bench::ObsSession obs_session(argc, argv, "fig1_cache_blowup_cdf");
  bench::banner("fig1_cache_blowup_cdf",
                "Figure 1 - cache blow-up CDF, TTL in {20, 40, 60} s");

  const auto shards = static_cast<std::size_t>(obs_session.shards());
  PublicResolverCdnConfig config;
  config.resolvers = static_cast<std::uint32_t>(bench::flag(argc, argv, "resolvers", 160));
  config.duration = bench::flag(argc, argv, "minutes", 4) * netsim::kMinute;
  config.seed = static_cast<std::uint64_t>(bench::flag(argc, argv, "seed", 1));
  std::printf(
      "trace: %u resolvers (paper: 2370), %.0f-%.0f qps each (log-uniform), "
      "%lld min, %zu replay shard(s)\n",
      config.resolvers, config.min_qps, config.max_qps,
      static_cast<long long>(config.duration / netsim::kMinute), shards);
  const Trace trace = generate_public_resolver_cdn_trace(config);
  std::printf("generated %zu queries, %zu clients\n\n", trace.queries.size(),
              trace.clients.size());

  std::vector<std::pair<std::string, Cdf>> curves;
  TextTable table({"TTL", "median blow-up", "p90", "max", "frac > 4x"});
  CsvWriter csv("fig1_cache_blowup_cdf", {"ttl_s", "blowup", "cdf"});
  double max20 = 0;
  double median20 = 0;
  for (const std::uint32_t ttl : {20u, 40u, 60u}) {
    auto factors = blowup_factors(trace, ttl, shards,
                                  static_cast<std::size_t>(obs_session.threads()),
                                  obs_session.pin());
    Cdf cdf(std::move(factors));
    for (const auto& [x, p] : cdf.series(100)) {
      csv.row({std::to_string(ttl), TextTable::num(x, 4), TextTable::num(p, 4)});
    }
    table.add_row({std::to_string(ttl) + " s", TextTable::num(cdf.median()),
                   TextTable::num(cdf.percentile(0.9)), TextTable::num(cdf.max()),
                   TextTable::num(1.0 - cdf.fraction_at_most(4.0))});
    if (ttl == 20) {
      max20 = cdf.max();
      median20 = cdf.median();
    }
    curves.emplace_back(std::to_string(ttl) + " Sec. TTL", std::move(cdf));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", render_cdf_plot(curves, "cache blow-up factor").c_str());

  bench::compare("max blow-up at TTL 20", "15.95",
                 TextTable::num(max20).c_str());
  bench::compare("median blow-up at TTL 20", ">= 4 (50% of resolvers)",
                 TextTable::num(median20).c_str());
  bench::compare("blow-up grows with TTL", "max 23.68 @40s, 29.85 @60s",
                 "see table above");
  return 0;
}
