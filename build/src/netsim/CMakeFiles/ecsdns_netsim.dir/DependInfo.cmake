
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/asndb.cpp" "src/netsim/CMakeFiles/ecsdns_netsim.dir/asndb.cpp.o" "gcc" "src/netsim/CMakeFiles/ecsdns_netsim.dir/asndb.cpp.o.d"
  "/root/repo/src/netsim/event_loop.cpp" "src/netsim/CMakeFiles/ecsdns_netsim.dir/event_loop.cpp.o" "gcc" "src/netsim/CMakeFiles/ecsdns_netsim.dir/event_loop.cpp.o.d"
  "/root/repo/src/netsim/geo.cpp" "src/netsim/CMakeFiles/ecsdns_netsim.dir/geo.cpp.o" "gcc" "src/netsim/CMakeFiles/ecsdns_netsim.dir/geo.cpp.o.d"
  "/root/repo/src/netsim/geodb.cpp" "src/netsim/CMakeFiles/ecsdns_netsim.dir/geodb.cpp.o" "gcc" "src/netsim/CMakeFiles/ecsdns_netsim.dir/geodb.cpp.o.d"
  "/root/repo/src/netsim/network.cpp" "src/netsim/CMakeFiles/ecsdns_netsim.dir/network.cpp.o" "gcc" "src/netsim/CMakeFiles/ecsdns_netsim.dir/network.cpp.o.d"
  "/root/repo/src/netsim/rng.cpp" "src/netsim/CMakeFiles/ecsdns_netsim.dir/rng.cpp.o" "gcc" "src/netsim/CMakeFiles/ecsdns_netsim.dir/rng.cpp.o.d"
  "/root/repo/src/netsim/world.cpp" "src/netsim/CMakeFiles/ecsdns_netsim.dir/world.cpp.o" "gcc" "src/netsim/CMakeFiles/ecsdns_netsim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnscore/CMakeFiles/ecsdns_dnscore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
