file(REMOVE_RECURSE
  "CMakeFiles/ecsdns_netsim.dir/asndb.cpp.o"
  "CMakeFiles/ecsdns_netsim.dir/asndb.cpp.o.d"
  "CMakeFiles/ecsdns_netsim.dir/event_loop.cpp.o"
  "CMakeFiles/ecsdns_netsim.dir/event_loop.cpp.o.d"
  "CMakeFiles/ecsdns_netsim.dir/geo.cpp.o"
  "CMakeFiles/ecsdns_netsim.dir/geo.cpp.o.d"
  "CMakeFiles/ecsdns_netsim.dir/geodb.cpp.o"
  "CMakeFiles/ecsdns_netsim.dir/geodb.cpp.o.d"
  "CMakeFiles/ecsdns_netsim.dir/network.cpp.o"
  "CMakeFiles/ecsdns_netsim.dir/network.cpp.o.d"
  "CMakeFiles/ecsdns_netsim.dir/rng.cpp.o"
  "CMakeFiles/ecsdns_netsim.dir/rng.cpp.o.d"
  "CMakeFiles/ecsdns_netsim.dir/world.cpp.o"
  "CMakeFiles/ecsdns_netsim.dir/world.cpp.o.d"
  "libecsdns_netsim.a"
  "libecsdns_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsdns_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
