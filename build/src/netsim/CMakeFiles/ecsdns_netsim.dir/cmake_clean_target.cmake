file(REMOVE_RECURSE
  "libecsdns_netsim.a"
)
