# Empty dependencies file for ecsdns_netsim.
# This may be replaced when dependencies are built.
