# CMake generated Testfile for 
# Source directory: /root/repo/src/resolver
# Build directory: /root/repo/build/src/resolver
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
