file(REMOVE_RECURSE
  "libecsdns_resolver.a"
)
