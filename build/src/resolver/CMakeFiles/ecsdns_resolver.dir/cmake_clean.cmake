file(REMOVE_RECURSE
  "CMakeFiles/ecsdns_resolver.dir/cache.cpp.o"
  "CMakeFiles/ecsdns_resolver.dir/cache.cpp.o.d"
  "CMakeFiles/ecsdns_resolver.dir/client.cpp.o"
  "CMakeFiles/ecsdns_resolver.dir/client.cpp.o.d"
  "CMakeFiles/ecsdns_resolver.dir/config.cpp.o"
  "CMakeFiles/ecsdns_resolver.dir/config.cpp.o.d"
  "CMakeFiles/ecsdns_resolver.dir/forwarder.cpp.o"
  "CMakeFiles/ecsdns_resolver.dir/forwarder.cpp.o.d"
  "CMakeFiles/ecsdns_resolver.dir/recursive.cpp.o"
  "CMakeFiles/ecsdns_resolver.dir/recursive.cpp.o.d"
  "libecsdns_resolver.a"
  "libecsdns_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsdns_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
