# Empty dependencies file for ecsdns_resolver.
# This may be replaced when dependencies are built.
