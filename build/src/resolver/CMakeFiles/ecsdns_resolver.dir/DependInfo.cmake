
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/cache.cpp" "src/resolver/CMakeFiles/ecsdns_resolver.dir/cache.cpp.o" "gcc" "src/resolver/CMakeFiles/ecsdns_resolver.dir/cache.cpp.o.d"
  "/root/repo/src/resolver/client.cpp" "src/resolver/CMakeFiles/ecsdns_resolver.dir/client.cpp.o" "gcc" "src/resolver/CMakeFiles/ecsdns_resolver.dir/client.cpp.o.d"
  "/root/repo/src/resolver/config.cpp" "src/resolver/CMakeFiles/ecsdns_resolver.dir/config.cpp.o" "gcc" "src/resolver/CMakeFiles/ecsdns_resolver.dir/config.cpp.o.d"
  "/root/repo/src/resolver/forwarder.cpp" "src/resolver/CMakeFiles/ecsdns_resolver.dir/forwarder.cpp.o" "gcc" "src/resolver/CMakeFiles/ecsdns_resolver.dir/forwarder.cpp.o.d"
  "/root/repo/src/resolver/recursive.cpp" "src/resolver/CMakeFiles/ecsdns_resolver.dir/recursive.cpp.o" "gcc" "src/resolver/CMakeFiles/ecsdns_resolver.dir/recursive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnscore/CMakeFiles/ecsdns_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ecsdns_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
