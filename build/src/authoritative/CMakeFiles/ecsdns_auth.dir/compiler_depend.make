# Empty compiler generated dependencies file for ecsdns_auth.
# This may be replaced when dependencies are built.
