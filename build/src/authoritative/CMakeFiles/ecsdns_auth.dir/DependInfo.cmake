
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authoritative/ecs_policy.cpp" "src/authoritative/CMakeFiles/ecsdns_auth.dir/ecs_policy.cpp.o" "gcc" "src/authoritative/CMakeFiles/ecsdns_auth.dir/ecs_policy.cpp.o.d"
  "/root/repo/src/authoritative/flattening.cpp" "src/authoritative/CMakeFiles/ecsdns_auth.dir/flattening.cpp.o" "gcc" "src/authoritative/CMakeFiles/ecsdns_auth.dir/flattening.cpp.o.d"
  "/root/repo/src/authoritative/server.cpp" "src/authoritative/CMakeFiles/ecsdns_auth.dir/server.cpp.o" "gcc" "src/authoritative/CMakeFiles/ecsdns_auth.dir/server.cpp.o.d"
  "/root/repo/src/authoritative/zone.cpp" "src/authoritative/CMakeFiles/ecsdns_auth.dir/zone.cpp.o" "gcc" "src/authoritative/CMakeFiles/ecsdns_auth.dir/zone.cpp.o.d"
  "/root/repo/src/authoritative/zone_text.cpp" "src/authoritative/CMakeFiles/ecsdns_auth.dir/zone_text.cpp.o" "gcc" "src/authoritative/CMakeFiles/ecsdns_auth.dir/zone_text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnscore/CMakeFiles/ecsdns_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ecsdns_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/ecsdns_cdn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
