file(REMOVE_RECURSE
  "libecsdns_auth.a"
)
