file(REMOVE_RECURSE
  "CMakeFiles/ecsdns_auth.dir/ecs_policy.cpp.o"
  "CMakeFiles/ecsdns_auth.dir/ecs_policy.cpp.o.d"
  "CMakeFiles/ecsdns_auth.dir/flattening.cpp.o"
  "CMakeFiles/ecsdns_auth.dir/flattening.cpp.o.d"
  "CMakeFiles/ecsdns_auth.dir/server.cpp.o"
  "CMakeFiles/ecsdns_auth.dir/server.cpp.o.d"
  "CMakeFiles/ecsdns_auth.dir/zone.cpp.o"
  "CMakeFiles/ecsdns_auth.dir/zone.cpp.o.d"
  "CMakeFiles/ecsdns_auth.dir/zone_text.cpp.o"
  "CMakeFiles/ecsdns_auth.dir/zone_text.cpp.o.d"
  "libecsdns_auth.a"
  "libecsdns_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsdns_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
