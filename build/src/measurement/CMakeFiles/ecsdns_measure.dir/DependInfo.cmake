
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measurement/cache_sim.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/cache_sim.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/cache_sim.cpp.o.d"
  "/root/repo/src/measurement/caching_prober.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/caching_prober.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/caching_prober.cpp.o.d"
  "/root/repo/src/measurement/flattening_exp.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/flattening_exp.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/flattening_exp.cpp.o.d"
  "/root/repo/src/measurement/fleet.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/fleet.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/fleet.cpp.o.d"
  "/root/repo/src/measurement/hidden.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/hidden.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/hidden.cpp.o.d"
  "/root/repo/src/measurement/mapping_quality.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/mapping_quality.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/mapping_quality.cpp.o.d"
  "/root/repo/src/measurement/prefix_census.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/prefix_census.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/prefix_census.cpp.o.d"
  "/root/repo/src/measurement/probing_classifier.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/probing_classifier.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/probing_classifier.cpp.o.d"
  "/root/repo/src/measurement/scanner.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/scanner.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/scanner.cpp.o.d"
  "/root/repo/src/measurement/stats.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/stats.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/stats.cpp.o.d"
  "/root/repo/src/measurement/testbed.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/testbed.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/testbed.cpp.o.d"
  "/root/repo/src/measurement/tracegen.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/tracegen.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/tracegen.cpp.o.d"
  "/root/repo/src/measurement/workload.cpp" "src/measurement/CMakeFiles/ecsdns_measure.dir/workload.cpp.o" "gcc" "src/measurement/CMakeFiles/ecsdns_measure.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnscore/CMakeFiles/ecsdns_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ecsdns_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/ecsdns_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/authoritative/CMakeFiles/ecsdns_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/ecsdns_cdn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
