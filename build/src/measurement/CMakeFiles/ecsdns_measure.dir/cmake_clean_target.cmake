file(REMOVE_RECURSE
  "libecsdns_measure.a"
)
