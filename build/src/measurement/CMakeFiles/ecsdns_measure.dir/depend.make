# Empty dependencies file for ecsdns_measure.
# This may be replaced when dependencies are built.
