file(REMOVE_RECURSE
  "CMakeFiles/ecsdns_measure.dir/cache_sim.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/cache_sim.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/caching_prober.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/caching_prober.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/flattening_exp.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/flattening_exp.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/fleet.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/fleet.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/hidden.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/hidden.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/mapping_quality.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/mapping_quality.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/prefix_census.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/prefix_census.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/probing_classifier.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/probing_classifier.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/scanner.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/scanner.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/stats.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/stats.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/testbed.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/testbed.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/tracegen.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/tracegen.cpp.o.d"
  "CMakeFiles/ecsdns_measure.dir/workload.cpp.o"
  "CMakeFiles/ecsdns_measure.dir/workload.cpp.o.d"
  "libecsdns_measure.a"
  "libecsdns_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsdns_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
