file(REMOVE_RECURSE
  "CMakeFiles/ecsdns_cdn.dir/edge.cpp.o"
  "CMakeFiles/ecsdns_cdn.dir/edge.cpp.o.d"
  "CMakeFiles/ecsdns_cdn.dir/mapping.cpp.o"
  "CMakeFiles/ecsdns_cdn.dir/mapping.cpp.o.d"
  "libecsdns_cdn.a"
  "libecsdns_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsdns_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
