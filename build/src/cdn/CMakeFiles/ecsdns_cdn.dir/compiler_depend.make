# Empty compiler generated dependencies file for ecsdns_cdn.
# This may be replaced when dependencies are built.
