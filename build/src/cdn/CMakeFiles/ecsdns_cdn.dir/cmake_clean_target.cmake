file(REMOVE_RECURSE
  "libecsdns_cdn.a"
)
