file(REMOVE_RECURSE
  "libecsdns_dnscore.a"
)
