
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnscore/ecs.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/ecs.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/ecs.cpp.o.d"
  "/root/repo/src/dnscore/edns.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/edns.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/edns.cpp.o.d"
  "/root/repo/src/dnscore/ip.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/ip.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/ip.cpp.o.d"
  "/root/repo/src/dnscore/message.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/message.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/message.cpp.o.d"
  "/root/repo/src/dnscore/name.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/name.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/name.cpp.o.d"
  "/root/repo/src/dnscore/rdata.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/rdata.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/rdata.cpp.o.d"
  "/root/repo/src/dnscore/record.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/record.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/record.cpp.o.d"
  "/root/repo/src/dnscore/types.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/types.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/types.cpp.o.d"
  "/root/repo/src/dnscore/wire.cpp" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/wire.cpp.o" "gcc" "src/dnscore/CMakeFiles/ecsdns_dnscore.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
