file(REMOVE_RECURSE
  "CMakeFiles/ecsdns_dnscore.dir/ecs.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/ecs.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/edns.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/edns.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/ip.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/ip.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/message.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/message.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/name.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/name.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/rdata.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/rdata.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/record.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/record.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/types.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/types.cpp.o.d"
  "CMakeFiles/ecsdns_dnscore.dir/wire.cpp.o"
  "CMakeFiles/ecsdns_dnscore.dir/wire.cpp.o.d"
  "libecsdns_dnscore.a"
  "libecsdns_dnscore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsdns_dnscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
