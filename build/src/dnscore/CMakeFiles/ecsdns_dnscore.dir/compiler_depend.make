# Empty compiler generated dependencies file for ecsdns_dnscore.
# This may be replaced when dependencies are built.
