# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_resolver_audit "/root/repo/build/examples/resolver_audit")
set_tests_properties(example_resolver_audit PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cdn_mapping_explorer "/root/repo/build/examples/cdn_mapping_explorer")
set_tests_properties(example_cdn_mapping_explorer PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_open_resolver_scan "/root/repo/build/examples/open_resolver_scan")
set_tests_properties(example_open_resolver_scan PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_cost_estimator "/root/repo/build/examples/cache_cost_estimator")
set_tests_properties(example_cache_cost_estimator PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_inspector "/root/repo/build/examples/packet_inspector")
set_tests_properties(example_packet_inspector PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ecsdig "/root/repo/build/examples/ecsdig")
set_tests_properties(example_ecsdig PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_study "/root/repo/build/examples/full_study")
set_tests_properties(example_full_study PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
