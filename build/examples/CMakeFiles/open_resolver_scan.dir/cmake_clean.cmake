file(REMOVE_RECURSE
  "CMakeFiles/open_resolver_scan.dir/open_resolver_scan.cpp.o"
  "CMakeFiles/open_resolver_scan.dir/open_resolver_scan.cpp.o.d"
  "open_resolver_scan"
  "open_resolver_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_resolver_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
