# Empty dependencies file for open_resolver_scan.
# This may be replaced when dependencies are built.
