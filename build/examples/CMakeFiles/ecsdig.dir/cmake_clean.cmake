file(REMOVE_RECURSE
  "CMakeFiles/ecsdig.dir/ecsdig.cpp.o"
  "CMakeFiles/ecsdig.dir/ecsdig.cpp.o.d"
  "ecsdig"
  "ecsdig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsdig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
