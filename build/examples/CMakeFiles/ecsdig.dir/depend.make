# Empty dependencies file for ecsdig.
# This may be replaced when dependencies are built.
