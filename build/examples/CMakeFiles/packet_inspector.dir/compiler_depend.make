# Empty compiler generated dependencies file for packet_inspector.
# This may be replaced when dependencies are built.
