file(REMOVE_RECURSE
  "CMakeFiles/packet_inspector.dir/packet_inspector.cpp.o"
  "CMakeFiles/packet_inspector.dir/packet_inspector.cpp.o.d"
  "packet_inspector"
  "packet_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
