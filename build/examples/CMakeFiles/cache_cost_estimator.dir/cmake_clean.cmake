file(REMOVE_RECURSE
  "CMakeFiles/cache_cost_estimator.dir/cache_cost_estimator.cpp.o"
  "CMakeFiles/cache_cost_estimator.dir/cache_cost_estimator.cpp.o.d"
  "cache_cost_estimator"
  "cache_cost_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_cost_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
