# Empty compiler generated dependencies file for cache_cost_estimator.
# This may be replaced when dependencies are built.
