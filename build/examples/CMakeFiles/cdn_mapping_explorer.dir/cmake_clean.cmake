file(REMOVE_RECURSE
  "CMakeFiles/cdn_mapping_explorer.dir/cdn_mapping_explorer.cpp.o"
  "CMakeFiles/cdn_mapping_explorer.dir/cdn_mapping_explorer.cpp.o.d"
  "cdn_mapping_explorer"
  "cdn_mapping_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_mapping_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
