# Empty dependencies file for cdn_mapping_explorer.
# This may be replaced when dependencies are built.
