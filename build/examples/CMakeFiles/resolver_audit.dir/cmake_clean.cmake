file(REMOVE_RECURSE
  "CMakeFiles/resolver_audit.dir/resolver_audit.cpp.o"
  "CMakeFiles/resolver_audit.dir/resolver_audit.cpp.o.d"
  "resolver_audit"
  "resolver_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
