# Empty compiler generated dependencies file for resolver_audit.
# This may be replaced when dependencies are built.
