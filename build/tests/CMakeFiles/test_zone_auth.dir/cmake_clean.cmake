file(REMOVE_RECURSE
  "CMakeFiles/test_zone_auth.dir/test_zone_auth.cpp.o"
  "CMakeFiles/test_zone_auth.dir/test_zone_auth.cpp.o.d"
  "test_zone_auth"
  "test_zone_auth.pdb"
  "test_zone_auth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
