# Empty compiler generated dependencies file for test_zone_auth.
# This may be replaced when dependencies are built.
