# Empty compiler generated dependencies file for test_tracegen_cachesim.
# This may be replaced when dependencies are built.
