file(REMOVE_RECURSE
  "CMakeFiles/test_tracegen_cachesim.dir/test_tracegen_cachesim.cpp.o"
  "CMakeFiles/test_tracegen_cachesim.dir/test_tracegen_cachesim.cpp.o.d"
  "test_tracegen_cachesim"
  "test_tracegen_cachesim.pdb"
  "test_tracegen_cachesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracegen_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
