# Empty dependencies file for test_scanner_census.
# This may be replaced when dependencies are built.
