file(REMOVE_RECURSE
  "CMakeFiles/test_scanner_census.dir/test_scanner_census.cpp.o"
  "CMakeFiles/test_scanner_census.dir/test_scanner_census.cpp.o.d"
  "test_scanner_census"
  "test_scanner_census.pdb"
  "test_scanner_census[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scanner_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
