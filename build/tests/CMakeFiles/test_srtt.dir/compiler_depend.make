# Empty compiler generated dependencies file for test_srtt.
# This may be replaced when dependencies are built.
