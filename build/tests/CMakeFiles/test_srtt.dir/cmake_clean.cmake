file(REMOVE_RECURSE
  "CMakeFiles/test_srtt.dir/test_srtt.cpp.o"
  "CMakeFiles/test_srtt.dir/test_srtt.cpp.o.d"
  "test_srtt"
  "test_srtt.pdb"
  "test_srtt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
