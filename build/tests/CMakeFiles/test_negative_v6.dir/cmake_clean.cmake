file(REMOVE_RECURSE
  "CMakeFiles/test_negative_v6.dir/test_negative_v6.cpp.o"
  "CMakeFiles/test_negative_v6.dir/test_negative_v6.cpp.o.d"
  "test_negative_v6"
  "test_negative_v6.pdb"
  "test_negative_v6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_negative_v6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
