# Empty dependencies file for test_negative_v6.
# This may be replaced when dependencies are built.
