# Empty dependencies file for test_cdn_mapping.
# This may be replaced when dependencies are built.
