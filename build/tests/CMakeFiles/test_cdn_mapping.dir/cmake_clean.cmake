file(REMOVE_RECURSE
  "CMakeFiles/test_cdn_mapping.dir/test_cdn_mapping.cpp.o"
  "CMakeFiles/test_cdn_mapping.dir/test_cdn_mapping.cpp.o.d"
  "test_cdn_mapping"
  "test_cdn_mapping.pdb"
  "test_cdn_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdn_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
