file(REMOVE_RECURSE
  "CMakeFiles/test_resolver.dir/test_resolver.cpp.o"
  "CMakeFiles/test_resolver.dir/test_resolver.cpp.o.d"
  "test_resolver"
  "test_resolver.pdb"
  "test_resolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
