# Empty dependencies file for test_resolver.
# This may be replaced when dependencies are built.
