# Empty dependencies file for test_rdata.
# This may be replaced when dependencies are built.
