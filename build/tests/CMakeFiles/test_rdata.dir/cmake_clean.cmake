file(REMOVE_RECURSE
  "CMakeFiles/test_rdata.dir/test_rdata.cpp.o"
  "CMakeFiles/test_rdata.dir/test_rdata.cpp.o.d"
  "test_rdata"
  "test_rdata.pdb"
  "test_rdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
