# Empty dependencies file for test_model_cache.
# This may be replaced when dependencies are built.
