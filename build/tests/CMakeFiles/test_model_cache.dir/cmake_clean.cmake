file(REMOVE_RECURSE
  "CMakeFiles/test_model_cache.dir/test_model_cache.cpp.o"
  "CMakeFiles/test_model_cache.dir/test_model_cache.cpp.o.d"
  "test_model_cache"
  "test_model_cache.pdb"
  "test_model_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
