file(REMOVE_RECURSE
  "CMakeFiles/test_prober_hidden.dir/test_prober_hidden.cpp.o"
  "CMakeFiles/test_prober_hidden.dir/test_prober_hidden.cpp.o.d"
  "test_prober_hidden"
  "test_prober_hidden.pdb"
  "test_prober_hidden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prober_hidden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
