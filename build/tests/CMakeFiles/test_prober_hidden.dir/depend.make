# Empty dependencies file for test_prober_hidden.
# This may be replaced when dependencies are built.
