# Empty compiler generated dependencies file for test_edns_ecs.
# This may be replaced when dependencies are built.
