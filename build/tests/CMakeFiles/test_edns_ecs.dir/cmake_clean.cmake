file(REMOVE_RECURSE
  "CMakeFiles/test_edns_ecs.dir/test_edns_ecs.cpp.o"
  "CMakeFiles/test_edns_ecs.dir/test_edns_ecs.cpp.o.d"
  "test_edns_ecs"
  "test_edns_ecs.pdb"
  "test_edns_ecs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edns_ecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
