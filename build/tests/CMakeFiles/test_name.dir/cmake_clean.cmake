file(REMOVE_RECURSE
  "CMakeFiles/test_name.dir/test_name.cpp.o"
  "CMakeFiles/test_name.dir/test_name.cpp.o.d"
  "test_name"
  "test_name.pdb"
  "test_name[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
