# Empty compiler generated dependencies file for test_name.
# This may be replaced when dependencies are built.
