file(REMOVE_RECURSE
  "CMakeFiles/test_zone_text.dir/test_zone_text.cpp.o"
  "CMakeFiles/test_zone_text.dir/test_zone_text.cpp.o.d"
  "test_zone_text"
  "test_zone_text.pdb"
  "test_zone_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
