# Empty compiler generated dependencies file for test_resolver_failures.
# This may be replaced when dependencies are built.
