file(REMOVE_RECURSE
  "CMakeFiles/test_resolver_failures.dir/test_resolver_failures.cpp.o"
  "CMakeFiles/test_resolver_failures.dir/test_resolver_failures.cpp.o.d"
  "test_resolver_failures"
  "test_resolver_failures.pdb"
  "test_resolver_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
