# Empty compiler generated dependencies file for test_ip.
# This may be replaced when dependencies are built.
