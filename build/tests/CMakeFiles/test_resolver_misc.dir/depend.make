# Empty dependencies file for test_resolver_misc.
# This may be replaced when dependencies are built.
