file(REMOVE_RECURSE
  "CMakeFiles/test_resolver_misc.dir/test_resolver_misc.cpp.o"
  "CMakeFiles/test_resolver_misc.dir/test_resolver_misc.cpp.o.d"
  "test_resolver_misc"
  "test_resolver_misc.pdb"
  "test_resolver_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
