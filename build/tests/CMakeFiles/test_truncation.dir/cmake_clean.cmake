file(REMOVE_RECURSE
  "CMakeFiles/test_truncation.dir/test_truncation.cpp.o"
  "CMakeFiles/test_truncation.dir/test_truncation.cpp.o.d"
  "test_truncation"
  "test_truncation.pdb"
  "test_truncation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
