# Empty dependencies file for test_truncation.
# This may be replaced when dependencies are built.
