# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_name[1]_include.cmake")
include("/root/repo/build/tests/test_ip[1]_include.cmake")
include("/root/repo/build/tests/test_rdata[1]_include.cmake")
include("/root/repo/build/tests/test_edns_ecs[1]_include.cmake")
include("/root/repo/build/tests/test_message[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_zone_auth[1]_include.cmake")
include("/root/repo/build/tests/test_resolver[1]_include.cmake")
include("/root/repo/build/tests/test_cdn_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_tracegen_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_scanner_census[1]_include.cmake")
include("/root/repo/build/tests/test_prober_hidden[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_zone_text[1]_include.cmake")
include("/root/repo/build/tests/test_negative_v6[1]_include.cmake")
include("/root/repo/build/tests/test_model_cache[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_resolver_failures[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_compression[1]_include.cmake")
include("/root/repo/build/tests/test_truncation[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_srtt[1]_include.cmake")
include("/root/repo/build/tests/test_resolver_misc[1]_include.cmake")
