file(REMOVE_RECURSE
  "CMakeFiles/fig1_cache_blowup_cdf.dir/fig1_cache_blowup_cdf.cpp.o"
  "CMakeFiles/fig1_cache_blowup_cdf.dir/fig1_cache_blowup_cdf.cpp.o.d"
  "fig1_cache_blowup_cdf"
  "fig1_cache_blowup_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cache_blowup_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
