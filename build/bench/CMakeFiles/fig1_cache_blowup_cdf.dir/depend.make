# Empty dependencies file for fig1_cache_blowup_cdf.
# This may be replaced when dependencies are built.
