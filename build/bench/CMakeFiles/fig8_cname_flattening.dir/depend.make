# Empty dependencies file for fig8_cname_flattening.
# This may be replaced when dependencies are built.
