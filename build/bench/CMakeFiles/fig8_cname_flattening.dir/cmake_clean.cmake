file(REMOVE_RECURSE
  "CMakeFiles/fig8_cname_flattening.dir/fig8_cname_flattening.cpp.o"
  "CMakeFiles/fig8_cname_flattening.dir/fig8_cname_flattening.cpp.o.d"
  "fig8_cname_flattening"
  "fig8_cname_flattening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cname_flattening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
