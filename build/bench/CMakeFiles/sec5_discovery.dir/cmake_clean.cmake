file(REMOVE_RECURSE
  "CMakeFiles/sec5_discovery.dir/sec5_discovery.cpp.o"
  "CMakeFiles/sec5_discovery.dir/sec5_discovery.cpp.o.d"
  "sec5_discovery"
  "sec5_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
