# Empty compiler generated dependencies file for sec5_discovery.
# This may be replaced when dependencies are built.
