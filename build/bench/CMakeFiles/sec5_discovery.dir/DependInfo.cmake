
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sec5_discovery.cpp" "bench/CMakeFiles/sec5_discovery.dir/sec5_discovery.cpp.o" "gcc" "bench/CMakeFiles/sec5_discovery.dir/sec5_discovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measurement/CMakeFiles/ecsdns_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/ecsdns_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/authoritative/CMakeFiles/ecsdns_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/ecsdns_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ecsdns_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscore/CMakeFiles/ecsdns_dnscore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
