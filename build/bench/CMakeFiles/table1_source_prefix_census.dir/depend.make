# Empty dependencies file for table1_source_prefix_census.
# This may be replaced when dependencies are built.
