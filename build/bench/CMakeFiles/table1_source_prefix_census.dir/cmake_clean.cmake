file(REMOVE_RECURSE
  "CMakeFiles/table1_source_prefix_census.dir/table1_source_prefix_census.cpp.o"
  "CMakeFiles/table1_source_prefix_census.dir/table1_source_prefix_census.cpp.o.d"
  "table1_source_prefix_census"
  "table1_source_prefix_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_source_prefix_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
