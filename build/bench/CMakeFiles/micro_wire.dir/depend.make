# Empty dependencies file for micro_wire.
# This may be replaced when dependencies are built.
