file(REMOVE_RECURSE
  "CMakeFiles/micro_wire.dir/micro_wire.cpp.o"
  "CMakeFiles/micro_wire.dir/micro_wire.cpp.o.d"
  "micro_wire"
  "micro_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
