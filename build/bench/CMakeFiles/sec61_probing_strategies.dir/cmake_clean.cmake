file(REMOVE_RECURSE
  "CMakeFiles/sec61_probing_strategies.dir/sec61_probing_strategies.cpp.o"
  "CMakeFiles/sec61_probing_strategies.dir/sec61_probing_strategies.cpp.o.d"
  "sec61_probing_strategies"
  "sec61_probing_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec61_probing_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
