# Empty dependencies file for sec61_probing_strategies.
# This may be replaced when dependencies are built.
