# Empty dependencies file for sec63_caching_behavior.
# This may be replaced when dependencies are built.
