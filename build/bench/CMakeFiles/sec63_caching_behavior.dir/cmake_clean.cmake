file(REMOVE_RECURSE
  "CMakeFiles/sec63_caching_behavior.dir/sec63_caching_behavior.cpp.o"
  "CMakeFiles/sec63_caching_behavior.dir/sec63_caching_behavior.cpp.o.d"
  "sec63_caching_behavior"
  "sec63_caching_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_caching_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
