file(REMOVE_RECURSE
  "CMakeFiles/ablation_latency_model.dir/ablation_latency_model.cpp.o"
  "CMakeFiles/ablation_latency_model.dir/ablation_latency_model.cpp.o.d"
  "ablation_latency_model"
  "ablation_latency_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
