# Empty dependencies file for ablation_probe_privacy.
# This may be replaced when dependencies are built.
