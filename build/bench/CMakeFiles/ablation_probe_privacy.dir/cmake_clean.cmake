file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe_privacy.dir/ablation_probe_privacy.cpp.o"
  "CMakeFiles/ablation_probe_privacy.dir/ablation_probe_privacy.cpp.o.d"
  "ablation_probe_privacy"
  "ablation_probe_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
