file(REMOVE_RECURSE
  "CMakeFiles/sec61_root_ecs.dir/sec61_root_ecs.cpp.o"
  "CMakeFiles/sec61_root_ecs.dir/sec61_root_ecs.cpp.o.d"
  "sec61_root_ecs"
  "sec61_root_ecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec61_root_ecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
