# Empty dependencies file for sec61_root_ecs.
# This may be replaced when dependencies are built.
