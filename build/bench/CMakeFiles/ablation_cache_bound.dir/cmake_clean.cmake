file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_bound.dir/ablation_cache_bound.cpp.o"
  "CMakeFiles/ablation_cache_bound.dir/ablation_cache_bound.cpp.o.d"
  "ablation_cache_bound"
  "ablation_cache_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
