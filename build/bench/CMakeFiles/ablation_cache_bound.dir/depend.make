# Empty dependencies file for ablation_cache_bound.
# This may be replaced when dependencies are built.
