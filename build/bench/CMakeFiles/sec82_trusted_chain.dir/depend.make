# Empty dependencies file for sec82_trusted_chain.
# This may be replaced when dependencies are built.
