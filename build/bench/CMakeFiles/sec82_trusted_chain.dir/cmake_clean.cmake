file(REMOVE_RECURSE
  "CMakeFiles/sec82_trusted_chain.dir/sec82_trusted_chain.cpp.o"
  "CMakeFiles/sec82_trusted_chain.dir/sec82_trusted_chain.cpp.o.d"
  "sec82_trusted_chain"
  "sec82_trusted_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec82_trusted_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
