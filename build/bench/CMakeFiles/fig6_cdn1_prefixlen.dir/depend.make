# Empty dependencies file for fig6_cdn1_prefixlen.
# This may be replaced when dependencies are built.
