file(REMOVE_RECURSE
  "CMakeFiles/fig6_cdn1_prefixlen.dir/fig6_cdn1_prefixlen.cpp.o"
  "CMakeFiles/fig6_cdn1_prefixlen.dir/fig6_cdn1_prefixlen.cpp.o.d"
  "fig6_cdn1_prefixlen"
  "fig6_cdn1_prefixlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cdn1_prefixlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
