file(REMOVE_RECURSE
  "CMakeFiles/fig2_blowup_vs_population.dir/fig2_blowup_vs_population.cpp.o"
  "CMakeFiles/fig2_blowup_vs_population.dir/fig2_blowup_vs_population.cpp.o.d"
  "fig2_blowup_vs_population"
  "fig2_blowup_vs_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_blowup_vs_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
