# Empty compiler generated dependencies file for fig2_blowup_vs_population.
# This may be replaced when dependencies are built.
