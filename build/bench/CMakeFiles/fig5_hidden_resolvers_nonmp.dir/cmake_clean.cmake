file(REMOVE_RECURSE
  "CMakeFiles/fig5_hidden_resolvers_nonmp.dir/fig5_hidden_resolvers_nonmp.cpp.o"
  "CMakeFiles/fig5_hidden_resolvers_nonmp.dir/fig5_hidden_resolvers_nonmp.cpp.o.d"
  "fig5_hidden_resolvers_nonmp"
  "fig5_hidden_resolvers_nonmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hidden_resolvers_nonmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
