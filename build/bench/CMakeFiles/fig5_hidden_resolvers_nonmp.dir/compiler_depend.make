# Empty compiler generated dependencies file for fig5_hidden_resolvers_nonmp.
# This may be replaced when dependencies are built.
