# Empty dependencies file for ablation_scope_granularity.
# This may be replaced when dependencies are built.
