file(REMOVE_RECURSE
  "CMakeFiles/ablation_scope_granularity.dir/ablation_scope_granularity.cpp.o"
  "CMakeFiles/ablation_scope_granularity.dir/ablation_scope_granularity.cpp.o.d"
  "ablation_scope_granularity"
  "ablation_scope_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scope_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
