file(REMOVE_RECURSE
  "CMakeFiles/fig7_cdn2_prefixlen.dir/fig7_cdn2_prefixlen.cpp.o"
  "CMakeFiles/fig7_cdn2_prefixlen.dir/fig7_cdn2_prefixlen.cpp.o.d"
  "fig7_cdn2_prefixlen"
  "fig7_cdn2_prefixlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cdn2_prefixlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
