# Empty compiler generated dependencies file for fig7_cdn2_prefixlen.
# This may be replaced when dependencies are built.
