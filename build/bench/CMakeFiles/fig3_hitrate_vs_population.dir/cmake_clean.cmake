file(REMOVE_RECURSE
  "CMakeFiles/fig3_hitrate_vs_population.dir/fig3_hitrate_vs_population.cpp.o"
  "CMakeFiles/fig3_hitrate_vs_population.dir/fig3_hitrate_vs_population.cpp.o.d"
  "fig3_hitrate_vs_population"
  "fig3_hitrate_vs_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hitrate_vs_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
