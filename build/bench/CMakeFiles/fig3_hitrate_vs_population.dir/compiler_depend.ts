# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_hitrate_vs_population.
