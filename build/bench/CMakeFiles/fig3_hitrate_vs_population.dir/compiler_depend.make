# Empty compiler generated dependencies file for fig3_hitrate_vs_population.
# This may be replaced when dependencies are built.
