# Empty dependencies file for micro_resolution.
# This may be replaced when dependencies are built.
