file(REMOVE_RECURSE
  "CMakeFiles/micro_resolution.dir/micro_resolution.cpp.o"
  "CMakeFiles/micro_resolution.dir/micro_resolution.cpp.o.d"
  "micro_resolution"
  "micro_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
