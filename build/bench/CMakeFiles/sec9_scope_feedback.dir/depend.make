# Empty dependencies file for sec9_scope_feedback.
# This may be replaced when dependencies are built.
