file(REMOVE_RECURSE
  "CMakeFiles/sec9_scope_feedback.dir/sec9_scope_feedback.cpp.o"
  "CMakeFiles/sec9_scope_feedback.dir/sec9_scope_feedback.cpp.o.d"
  "sec9_scope_feedback"
  "sec9_scope_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_scope_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
