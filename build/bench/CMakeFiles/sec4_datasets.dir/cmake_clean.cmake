file(REMOVE_RECURSE
  "CMakeFiles/sec4_datasets.dir/sec4_datasets.cpp.o"
  "CMakeFiles/sec4_datasets.dir/sec4_datasets.cpp.o.d"
  "sec4_datasets"
  "sec4_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
