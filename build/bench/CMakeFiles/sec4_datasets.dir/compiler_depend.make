# Empty compiler generated dependencies file for sec4_datasets.
# This may be replaced when dependencies are built.
