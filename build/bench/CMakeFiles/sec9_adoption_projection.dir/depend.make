# Empty dependencies file for sec9_adoption_projection.
# This may be replaced when dependencies are built.
