file(REMOVE_RECURSE
  "CMakeFiles/sec9_adoption_projection.dir/sec9_adoption_projection.cpp.o"
  "CMakeFiles/sec9_adoption_projection.dir/sec9_adoption_projection.cpp.o.d"
  "sec9_adoption_projection"
  "sec9_adoption_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_adoption_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
