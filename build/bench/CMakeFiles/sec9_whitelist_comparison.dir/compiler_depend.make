# Empty compiler generated dependencies file for sec9_whitelist_comparison.
# This may be replaced when dependencies are built.
