file(REMOVE_RECURSE
  "CMakeFiles/sec9_whitelist_comparison.dir/sec9_whitelist_comparison.cpp.o"
  "CMakeFiles/sec9_whitelist_comparison.dir/sec9_whitelist_comparison.cpp.o.d"
  "sec9_whitelist_comparison"
  "sec9_whitelist_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_whitelist_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
