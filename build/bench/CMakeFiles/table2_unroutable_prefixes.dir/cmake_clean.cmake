file(REMOVE_RECURSE
  "CMakeFiles/table2_unroutable_prefixes.dir/table2_unroutable_prefixes.cpp.o"
  "CMakeFiles/table2_unroutable_prefixes.dir/table2_unroutable_prefixes.cpp.o.d"
  "table2_unroutable_prefixes"
  "table2_unroutable_prefixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unroutable_prefixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
