# Empty compiler generated dependencies file for table2_unroutable_prefixes.
# This may be replaced when dependencies are built.
