file(REMOVE_RECURSE
  "CMakeFiles/fig4_hidden_resolvers_mp.dir/fig4_hidden_resolvers_mp.cpp.o"
  "CMakeFiles/fig4_hidden_resolvers_mp.dir/fig4_hidden_resolvers_mp.cpp.o.d"
  "fig4_hidden_resolvers_mp"
  "fig4_hidden_resolvers_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hidden_resolvers_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
