# Empty compiler generated dependencies file for fig4_hidden_resolvers_mp.
# This may be replaced when dependencies are built.
