#!/usr/bin/env python3
"""Compatibility shim — the project lint rules now live in scripts/ecstidy.

The regex rules this script used to implement (wire-codec,
deterministic-rng, bench-metrics) were ported verbatim into
scripts/ecstidy/checks/regex_rules.py, alongside the AST-level checks
(det-iter, det-clock, cache-lifetime, noalloc). Running this script is
equivalent to:

    python3 scripts/ecstidy --checks regex

Use scripts/ecstidy directly for the full suite; see
docs/static_analysis.md. This shim stays so older CI configs and muscle
memory keep working.
"""
from __future__ import annotations

import os
import sys
from pathlib import Path

if __name__ == "__main__":
    ecstidy = Path(__file__).resolve().parent / "ecstidy"
    os.execv(sys.executable,
             [sys.executable, str(ecstidy), "--checks", "regex",
              *sys.argv[1:]])
