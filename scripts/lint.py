#!/usr/bin/env python3
"""Project lint rules that clang-tidy cannot express. Required in CI.

Rules:
  wire-codec    All DNS wire access goes through WireReader/WireWriter:
                no memcpy/memmove and no byte-order intrinsics on packet
                buffers outside src/dnscore/wire.cpp.
  deterministic-rng
                Simulation code must stay reproducible: no std::random_device,
                rand()/srand(), or direct <random> engines outside the seeded
                netsim RNG wrapper. (Tests may use gtest's --gtest_shuffle
                seed machinery, not ad-hoc entropy.)
  bench-metrics Every bench binary constructs an ObsSession so --metrics-out
                and --trace-out work fleet-wide.

Exit status is the number of violation classes hit (0 = clean).
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# (rule, pattern, human message)
FORBIDDEN_WIRE = [
    (re.compile(r"\bmemcpy\s*\("), "raw memcpy on buffers (use WireReader/WireWriter)"),
    (re.compile(r"\bmemmove\s*\("), "raw memmove on buffers (use WireReader/WireWriter)"),
    (re.compile(r"\b(htons|ntohs|htonl|ntohl)\s*\("),
     "byte-order intrinsics (WireReader/WireWriter are already big-endian)"),
]
WIRE_EXEMPT = {Path("src/dnscore/wire.cpp")}

FORBIDDEN_RNG = [
    (re.compile(r"\bstd::random_device\b"), "nondeterministic std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine)\b"),
     "direct <random> engine (use netsim::Rng with an explicit seed)"),
]
RNG_EXEMPT = {Path("src/netsim/rng.h"), Path("src/netsim/rng.cpp")}

COMMENT = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    return COMMENT.sub("", line)


def scan(path: Path, rules, exempt) -> list[str]:
    rel = path.relative_to(REPO)
    if rel in exempt:
        return []
    problems = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        code = strip_comment(line)
        for pattern, message in rules:
            if pattern.search(code):
                problems.append(f"{rel}:{lineno}: {message}")
    return problems


def main() -> int:
    sources = []
    for top in ("src", "bench", "examples", "fuzz", "tests"):
        sources.extend(sorted((REPO / top).rglob("*.cpp")))
        sources.extend(sorted((REPO / top).rglob("*.h")))

    failures = 0

    wire_hits = []
    for path in sources:
        wire_hits.extend(scan(path, FORBIDDEN_WIRE, WIRE_EXEMPT))
    if wire_hits:
        failures += 1
        print("[wire-codec] wire access outside the bounds-checked codec:")
        print("\n".join(f"  {p}" for p in wire_hits))

    rng_hits = []
    for path in sources:
        rng_hits.extend(scan(path, FORBIDDEN_RNG, RNG_EXEMPT))
    if rng_hits:
        failures += 1
        print("[deterministic-rng] nondeterministic randomness:")
        print("\n".join(f"  {p}" for p in rng_hits))

    bench_hits = []
    for path in sorted((REPO / "bench").glob("*.cpp")):
        text = path.read_text(encoding="utf-8")
        if "ObsSession" not in text:
            bench_hits.append(f"{path.relative_to(REPO)}: no ObsSession "
                              "(every bench must support --metrics-out)")
    if bench_hits:
        failures += 1
        print("[bench-metrics] bench binaries without observability wiring:")
        print("\n".join(f"  {p}" for p in bench_hits))

    if failures == 0:
        print(f"lint: {len(sources)} files clean")
    return failures


if __name__ == "__main__":
    sys.exit(main())
