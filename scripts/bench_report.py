#!/usr/bin/env python3
"""Perf-regression harness: run the benches, emit a machine-readable report.

Measures two layers and writes them to one JSON document:

  * google-benchmark micro benches (micro_name, micro_cache, micro_wire,
    micro_resolution): per-benchmark real ns/op from --benchmark_out JSON;
  * end-to-end experiments (fig1_cache_blowup_cdf, table1_source_prefix_census,
    fig4_hidden_resolvers_mp, fig8_cname_flattening, micro_live, ...):
    wall-clock ms (from the run's --metrics-out export), heap allocation
    count (the run.allocations gauge fed by bench/alloc_hooks.cpp), and
    peak RSS in KiB (ru_maxrss via os.wait4).

Modes:
  bench_report.py --build-dir build --out BENCH_PR10.json     # measure
  bench_report.py --build-dir build --check [--baseline F]    # CI gate
  bench_report.py --compare OLD NEW                           # offline diff

--check re-measures and compares against the checked-in baseline
(BENCH_PR10.json by default) with deliberately generous thresholds — CI
machines are noisy, so the gate only catches step-function regressions
(2-3x), not percent-level drift. Allocation counts are near-deterministic,
so their threshold is tighter. See docs/perf.md for how to refresh the
baselines.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MICRO_BENCHES = ["micro_name", "micro_cache", "micro_wire", "micro_resolution",
                 "micro_timer"]
EXPERIMENTS = ["fig1_cache_blowup_cdf", "table1_source_prefix_census",
               "fig4_hidden_resolvers_mp", "fig8_cname_flattening",
               "fig_hitrate_vs_capacity", "micro_live", "scale_streaming"]

# Extra flags for experiments whose defaults target a bigger machine than a
# CI runner: the harness runs scale_streaming at a 100K-member fleet (the
# 1M-member run is the manually documented number in docs/perf.md).
# --sweep=1 times the thread/pin matrix and exports the scale.sweep.*
# q/s-vs-cores gauges that land in the report's "sweep_qps" block.
EXPERIMENT_ARGS = {
    "scale_streaming": ["--resolvers=100000", "--duration-s=20", "--sweep=1"],
}

# --check thresholds: fresh measurement may not exceed baseline * factor.
WALL_FACTOR = 3.0       # wall time: very generous, CI boxes differ wildly
MICRO_FACTOR = 3.0      # ns/op of each micro benchmark
ALLOC_FACTOR = 1.5      # allocation counts barely vary between runs
# Ignore micro benchmarks faster than this: a 2 ns timer-bound loop can
# triple on scheduler noise alone without meaning anything.
MICRO_FLOOR_NS = 5.0

# Plain double, no unit suffix: the pinned google-benchmark rejects "0.1s".
MICRO_MIN_TIME = "0.1"


def run_with_rusage(cmd, cwd):
    """Run cmd, return (returncode, peak_rss_kb)."""
    proc = subprocess.Popen(cmd, cwd=cwd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    _, status, rusage = os.wait4(proc.pid, 0)
    proc.returncode = status  # keep Popen bookkeeping consistent
    code = os.waitstatus_to_exitcode(status)
    return code, int(rusage.ru_maxrss)


def measure_experiment(bench_dir, name):
    binary = os.path.join(bench_dir, name)
    if not os.path.exists(binary):
        print(f"[bench_report] skip {name}: {binary} not built", file=sys.stderr)
        return None
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        metrics_path = tmp.name
    try:
        code, peak_rss_kb = run_with_rusage(
            [binary, f"--metrics-out={metrics_path}"]
            + EXPERIMENT_ARGS.get(name, []), cwd=bench_dir)
        if code != 0:
            print(f"[bench_report] {name} exited {code}", file=sys.stderr)
            return None
        with open(metrics_path) as f:
            metrics = json.load(f)
    finally:
        os.unlink(metrics_path)
    gauges = metrics.get("gauges", {})
    allocations = gauges.get("run.allocations", {}).get("value")
    result = {
        "wall_ms": round(float(metrics["wall_ms"]), 1),
        "allocations": allocations,
        "peak_rss_kb": peak_rss_kb,
    }
    # The q/s-vs-cores scaling curve (scale_streaming --sweep=1). Recorded,
    # not gated: absolute throughput moves with the runner, and the
    # multi-core speedup gate lives in the bench itself (--min-speedup-pct).
    sweep = {key: g.get("value") for key, g in gauges.items()
             if key.startswith("scale.sweep.")}
    if sweep:
        result["sweep_qps"] = sweep
    return result


def measure_micro(bench_dir, name):
    binary = os.path.join(bench_dir, name)
    if not os.path.exists(binary):
        print(f"[bench_report] skip {name}: {binary} not built", file=sys.stderr)
        return None
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        code = subprocess.call(
            [binary, f"--benchmark_out={out_path}",
             "--benchmark_out_format=json",
             f"--benchmark_min_time={MICRO_MIN_TIME}"],
            cwd=bench_dir, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        if code != 0:
            print(f"[bench_report] {name} exited {code}", file=sys.stderr)
            return None
        with open(out_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(out_path)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue
        # google-benchmark reports in the unit it chose; normalize to ns.
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[bench["name"]] = {
            "real_ns": round(float(bench["real_time"]) * scale, 2),
        }
    return out


def measure(build_dir):
    bench_dir = os.path.join(os.path.abspath(build_dir), "bench")
    report = {
        "schema": "ecsdns.bench_report.v1",
        "benchmarks": {},
        "experiments": {},
    }
    for name in MICRO_BENCHES:
        result = measure_micro(bench_dir, name)
        if result is not None:
            report["benchmarks"][name] = result
    for name in EXPERIMENTS:
        result = measure_experiment(bench_dir, name)
        if result is not None:
            report["experiments"][name] = result
    return report


def merge_best(reports):
    """Fold N repeat runs into one report, keeping the best of each metric.

    Best-of-N filters scheduler noise: min for times and allocation counts
    (allocations are near-deterministic anyway), max for peak RSS (a high
    -water mark is only meaningful as an upper bound).
    """
    merged = reports[0]
    for other in reports[1:]:
        for suite, benches in other["benchmarks"].items():
            target = merged["benchmarks"].setdefault(suite, {})
            for bench, m in benches.items():
                if bench not in target or m["real_ns"] < target[bench]["real_ns"]:
                    target[bench] = m
        for exp, m in other["experiments"].items():
            base = merged["experiments"].setdefault(exp, m)
            base["wall_ms"] = min(base["wall_ms"], m["wall_ms"])
            if base.get("allocations") and m.get("allocations"):
                base["allocations"] = min(base["allocations"], m["allocations"])
            base["peak_rss_kb"] = max(base["peak_rss_kb"], m["peak_rss_kb"])
            if m.get("sweep_qps"):
                best = base.setdefault("sweep_qps", {})
                for cell, qps in m["sweep_qps"].items():
                    best[cell] = max(best.get(cell, 0), qps)
    return merged


def check(baseline, fresh):
    """Compare a fresh measurement against the baseline; return violations."""
    violations = []
    for exp, base in baseline.get("experiments", {}).items():
        now = fresh.get("experiments", {}).get(exp)
        if now is None:
            violations.append(f"{exp}: missing from fresh run")
            continue
        if now["wall_ms"] > base["wall_ms"] * WALL_FACTOR:
            violations.append(
                f"{exp}: wall_ms {now['wall_ms']} > {WALL_FACTOR}x baseline "
                f"{base['wall_ms']}")
        if (base.get("allocations") and now.get("allocations") and
                now["allocations"] > base["allocations"] * ALLOC_FACTOR):
            violations.append(
                f"{exp}: allocations {now['allocations']} > {ALLOC_FACTOR}x "
                f"baseline {base['allocations']}")
    for suite, benches in baseline.get("benchmarks", {}).items():
        fresh_suite = fresh.get("benchmarks", {}).get(suite)
        if fresh_suite is None:
            violations.append(f"{suite}: missing from fresh run")
            continue
        for bench, base in benches.items():
            now = fresh_suite.get(bench)
            if now is None:
                violations.append(f"{suite}/{bench}: missing from fresh run")
                continue
            if base["real_ns"] < MICRO_FLOOR_NS:
                continue
            if now["real_ns"] > base["real_ns"] * MICRO_FACTOR:
                violations.append(
                    f"{suite}/{bench}: {now['real_ns']} ns > {MICRO_FACTOR}x "
                    f"baseline {base['real_ns']} ns")
    return violations


def compare(old, new):
    """Human-readable old-vs-new summary (speedups > 1 mean new is faster)."""
    lines = []
    for exp in sorted(set(old.get("experiments", {})) |
                      set(new.get("experiments", {}))):
        a = old.get("experiments", {}).get(exp)
        b = new.get("experiments", {}).get(exp)
        if not a or not b:
            continue
        speedup = a["wall_ms"] / b["wall_ms"] if b["wall_ms"] else float("inf")
        lines.append(f"{exp}: wall {a['wall_ms']} -> {b['wall_ms']} ms "
                     f"({speedup:.2f}x)")
        if a.get("allocations") and b.get("allocations"):
            ratio = a["allocations"] / b["allocations"]
            lines.append(f"{exp}: allocations {a['allocations']} -> "
                         f"{b['allocations']} ({ratio:.2f}x fewer)")
        if a.get("peak_rss_kb") and b.get("peak_rss_kb"):
            lines.append(f"{exp}: peak RSS {a['peak_rss_kb']} -> "
                         f"{b['peak_rss_kb']} KiB")
        for cell in sorted(set(a.get("sweep_qps", {})) |
                           set(b.get("sweep_qps", {}))):
            qa = a.get("sweep_qps", {}).get(cell)
            qb = b.get("sweep_qps", {}).get(cell)
            if qa and qb:
                lines.append(f"{exp}: {cell} {qa} -> {qb} q/s "
                             f"({qb / qa:.2f}x)")
    for suite in sorted(set(old.get("benchmarks", {})) |
                        set(new.get("benchmarks", {}))):
        sa = old.get("benchmarks", {}).get(suite, {})
        sb = new.get("benchmarks", {}).get(suite, {})
        for bench in sorted(set(sa) | set(sb)):
            a, b = sa.get(bench), sb.get(bench)
            if not a or not b:
                continue
            speedup = a["real_ns"] / b["real_ns"] if b["real_ns"] else float("inf")
            lines.append(f"{suite}/{bench}: {a['real_ns']} -> {b['real_ns']} ns "
                         f"({speedup:.2f}x)")
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    parser.add_argument("--out", help="write the measured report to this file")
    parser.add_argument("--check", action="store_true",
                        help="measure and gate against the baseline")
    parser.add_argument("--baseline",
                        default=os.path.join(REPO, "BENCH_PR10.json"))
    parser.add_argument("--repeat", type=int, default=1,
                        help="measure N times and keep the best of each metric")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="diff two report files and exit")
    args = parser.parse_args()

    if args.compare:
        with open(args.compare[0]) as f:
            old = json.load(f)
        with open(args.compare[1]) as f:
            new = json.load(f)
        print("\n".join(compare(old, new)))
        return 0

    report = merge_best([measure(args.build_dir)
                         for _ in range(max(1, args.repeat))])
    if not report["benchmarks"] and not report["experiments"]:
        print("[bench_report] nothing measured — wrong --build-dir?",
              file=sys.stderr)
        return 2

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[bench_report] wrote {args.out}")

    if args.check:
        with open(args.baseline) as f:
            baseline = json.load(f)
        violations = check(baseline, report)
        if violations:
            print("[bench_report] PERF REGRESSION:")
            for v in violations:
                print(f"  {v}")
            return 1
        print(f"[bench_report] OK within thresholds of {args.baseline}")

    if not args.out and not args.check:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
