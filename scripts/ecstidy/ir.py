"""Backend-neutral IR: what every check consumes.

Both the text indexer (`index.py`) and the libclang frontend
(`clang_backend.py`) lower translation units into these structures, so
check logic is written exactly once and fixture goldens pin the behavior
of both backends.

Positions (`pos`) are an opaque monotonically increasing measure within a
file — token index for the text backend, a line/column encoding for the
clang backend. Checks only ever compare positions, never interpret them.
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class CallSite:
    name: str            # simple callee name ("lookup", "push_back")
    qualifier: str       # textual qualifier/receiver chain ("cache_.", "std::")
    recv: str | None     # receiver expression text for member calls, else None
    line: int
    col: int
    pos: int
    in_throw: bool = False  # inside a throw-expression (the abort path)


@dataclass
class VarDecl:
    name: str
    type_text: str       # raw declared type ("const CacheEntry *", "auto &")
    init_text: str       # raw initializer text ("" when none)
    line: int
    col: int
    pos: int
    is_ptr_or_ref: bool = False


@dataclass
class LoopInfo:
    kind: str            # "range" | "iter"
    container_text: str  # raw container expression ("map_", "cache.entries()")
    container_type: str  # resolved type text ("" when the backend knows it)
    body_span: tuple[int, int]  # pos range of the loop body
    line: int
    col: int
    var_name: str = ""   # range-for loop variable ("" for structured bindings)


@dataclass
class Ident:
    text: str
    pos: int
    line: int
    col: int


@dataclass
class StreamWrite:
    recv: str            # "cout", "out", "csv_"
    pos: int
    line: int
    col: int


@dataclass
class FunctionInfo:
    qname: str           # "ecsdns::resolver::EcsCache::lookup"
    name: str            # "lookup"
    cls: str             # enclosing class qname, "" for free functions
    file: str            # repo-relative path
    line: int
    return_type: str
    annotations: set[str] = field(default_factory=set)
    has_body: bool = False
    # The following are only populated for definitions.
    calls: list[CallSite] = field(default_factory=list)
    locals: list[VarDecl] = field(default_factory=list)
    loops: list[LoopInfo] = field(default_factory=list)
    new_exprs: list[tuple[int, int, int]] = field(default_factory=list)  # (line, col, pos)
    idents: list[Ident] = field(default_factory=list)
    stream_writes: list[StreamWrite] = field(default_factory=list)
    body_span: tuple[int, int] = (0, 0)


@dataclass
class FileIR:
    path: str                              # repo-relative
    functions: list[FunctionInfo] = field(default_factory=list)
    # member/global variable name -> declared type text; keys are both the
    # bare field name and "Class::field" for disambiguation.
    var_types: dict[str, str] = field(default_factory=dict)
    comments: dict[int, str] = field(default_factory=dict)
    lines: list[str] = field(default_factory=list)
    tokens: list = field(default_factory=list)  # lexer Tokens (always text-lexed)


class ProgramIR:
    """The whole indexed program plus name-resolution helpers."""

    def __init__(self, files: list[FileIR]):
        self.files = files
        self.functions: list[FunctionInfo] = [
            f for fir in files for f in fir.functions
        ]
        # simple name -> all functions with that name
        self.by_name: dict[str, list[FunctionInfo]] = {}
        # qname -> declarations/definitions (several TUs may see one header)
        self.by_qname: dict[str, list[FunctionInfo]] = {}
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
            self.by_qname.setdefault(fn.qname, []).append(fn)
        # Annotations declared on a header prototype apply to the
        # out-of-line definition with the same qualified name.
        for fns in self.by_qname.values():
            merged: set[str] = set()
            for fn in fns:
                merged |= fn.annotations
            if merged:
                for fn in fns:
                    fn.annotations |= merged
        # var name -> type text, program-wide (member decls usually live in
        # headers while method bodies live in .cpp files).
        self.var_types: dict[str, str] = {}
        for fir in files:
            self.var_types.update(fir.var_types)

    def definitions(self) -> list[FunctionInfo]:
        return [f for f in self.functions if f.has_body]

    def resolve_calls(self, call: CallSite, recv_type: str = "") -> list[FunctionInfo]:
        """Best-effort project-local call resolution: every *definition*
        the call may reach. Method calls resolve through the receiver type
        when it names a project class; otherwise a globally unique
        qualified name resolves (covering overload sets of one function)."""
        candidates = self.by_name.get(call.name, [])
        defs = [c for c in candidates if c.has_body]
        if not defs:
            return []
        if recv_type:
            typed = [d for d in defs if d.cls and d.cls.split("::")[-1] in recv_type]
            if typed:
                return typed
        if len({d.qname for d in defs}) == 1:
            return defs
        # Unqualified same-class call (implicit this) from a method.
        return []

    def resolve_calls_from(self, fn: FunctionInfo, call: CallSite) -> list[FunctionInfo]:
        """resolve_calls plus implicit-this resolution within fn's class."""
        recv_type = ""
        if call.recv is not None:
            recv_type = self.type_of_expr(call.recv, fn)
        out = self.resolve_calls(call, recv_type)
        if out:
            return out
        if call.recv is None and fn.cls:
            sibling = f"{fn.cls}::{call.name}"
            return [d for d in self.by_qname.get(sibling, []) if d.has_body]
        return []

    def type_of_var(self, name: str, fn: FunctionInfo | None = None) -> str:
        if fn is not None:
            for v in fn.locals:
                if v.name == name:
                    return v.type_text
            # Range-for variables take the container's element type.
            for loop in fn.loops:
                if loop.kind == "range" and loop.var_name == name:
                    cty = loop.container_type or \
                        self.type_of_expr(loop.container_text, fn)
                    elem = _element_type(cty)
                    if elem:
                        return elem
            if fn.cls:
                qualified = f"{fn.cls.split('::')[-1]}::{name}"
                if qualified in self.var_types:
                    return self.var_types[qualified]
        return self.var_types.get(name, "")

    def type_of_expr(self, expr_text: str, fn: FunctionInfo | None) -> str:
        """Resolve the type of a simple expression: a variable chain or a
        call like `registry.counters()` (resolved through return types)."""
        expr = expr_text.strip()
        if not expr:
            return ""
        if expr.endswith("()"):
            callee = expr[:-2].split(".")[-1].split("->")[-1].split("::")[-1]
            recv = ""
            base = expr[: -(len(callee) + 2)].rstrip(".->:")
            if base:
                recv = self.type_of_expr(base, fn)
            fns = self.by_name.get(callee, [])
            if recv:
                typed = [f for f in fns if f.cls and f.cls.split("::")[-1] in recv]
                fns = typed or fns
            rets = {f.return_type for f in fns if f.return_type}
            if len(rets) == 1:
                return next(iter(rets))
            return ""
        last = expr.split(".")[-1].split("->")[-1].split("::")[-1]
        last = last.strip("()*&[] ")
        return self.type_of_var(last, fn)


_SEQ_ELEM_RE = re.compile(
    r"\b(?:vector|array|span|deque|list|set|multiset|FlatHashSet|"
    r"unordered_set|unordered_multiset)\s*<\s*(.+?)\s*(?:,[^<>]*)?>\s*&?$"
)


def _element_type(container_type: str) -> str:
    """Element type of a sequence container's type text; "" when the
    container is unknown or keyed (map elements are pairs — a range-for
    over one uses structured bindings, which we don't type)."""
    m = _SEQ_ELEM_RE.search(container_type.strip())
    return m.group(1) if m else ""
