"""`python3 scripts/ecstidy` / `python3 -m ecstidy` entry point."""
import sys

if __package__ in (None, ""):  # executed as `python3 scripts/ecstidy`
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from ecstidy.driver import main
else:
    from .driver import main

sys.exit(main())
