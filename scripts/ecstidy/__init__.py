"""ecstidy — AST-level invariant checker for the ecsdns reproduction.

Three check families that `scripts/lint.py` regexes cannot express:

  determinism   range-for / iterator loops over unordered containers whose
                bodies reach an output sink (CSV / metrics JSON / trace /
                log writers), and wall-clock calls outside annotated
                exemptions.
  lifetime      pointers or references obtained from cache accessors
                (EcsCache::lookup, FlatHashMap::find) that stay live across
                a call that can mutate the same container — the PR 6
                CNAME-restart dangling-pointer class, generalized.
  noalloc       the transitive call graph of every ECSDNS_NOALLOC-annotated
                function must not reach operator new, container growers
                (push_back and friends), or std::string construction.

Plus the legacy regex rules (wire-codec, deterministic-rng, bench-metrics)
folded into the same driver, finding format, and exit-code contract.

Backends: `clang` (python clang.cindex over compile_commands.json, used
when libclang is importable — CI installs it) and `text` (a self-contained
C++ lexer/indexer, no dependencies — always available). Both produce the
same IR (`ir.py`); every check runs unchanged on either backend.

Exit codes: 0 = clean, 1 = unsuppressed findings, 2 = usage/internal error.
"""

__version__ = "1.0"
