"""The legacy scripts/lint.py rules, folded into the ecstidy driver.

Same semantics as the regex linter they replace (wire-codec,
deterministic-rng, bench-metrics), now with the shared finding format,
suppression syntax, and exit-code contract. scripts/lint.py remains as a
thin compatibility shim over `scripts/ecstidy --checks regex`.
"""
from __future__ import annotations

import re

from ..findings import Finding
from ..ir import ProgramIR

_WIRE_RULES = [
    (re.compile(r"\bmemcpy\s*\("), "raw memcpy on buffers (use WireReader/WireWriter)"),
    (re.compile(r"\bmemmove\s*\("), "raw memmove on buffers (use WireReader/WireWriter)"),
    (re.compile(r"\b(htons|ntohs|htonl|ntohl)\s*\("),
     "byte-order intrinsics (WireReader/WireWriter are already big-endian)"),
]
_WIRE_EXEMPT = {"src/dnscore/wire.cpp"}

_RNG_RULES = [
    (re.compile(r"\bstd::random_device\b"), "nondeterministic std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine)\b"),
     "direct <random> engine (use netsim::Rng with an explicit seed)"),
]
_RNG_EXEMPT = {"src/netsim/rng.h", "src/netsim/rng.cpp"}

_LINE_COMMENT = re.compile(r"//.*$")


def _scan(program: ProgramIR, rules, exempt, check: str) -> list[Finding]:
    out: list[Finding] = []
    for fir in program.files:
        if fir.path in exempt:
            continue
        for lineno, line in enumerate(fir.lines, 1):
            code = _LINE_COMMENT.sub("", line)
            for pattern, message in rules:
                m = pattern.search(code)
                if m:
                    out.append(Finding(check=check, path=fir.path,
                                       line=lineno, col=m.start() + 1,
                                       message=message))
    return out


def check_wire_codec(program: ProgramIR) -> list[Finding]:
    return _scan(program, _WIRE_RULES, _WIRE_EXEMPT, "wire-codec")


def check_deterministic_rng(program: ProgramIR) -> list[Finding]:
    return _scan(program, _RNG_RULES, _RNG_EXEMPT, "deterministic-rng")


def check_bench_metrics(program: ProgramIR) -> list[Finding]:
    out: list[Finding] = []
    for fir in program.files:
        if not (fir.path.startswith("bench/") and fir.path.endswith(".cpp")):
            continue
        if fir.path == "bench/alloc_hooks.cpp":
            continue  # the operator-new override TU, not a bench binary
        if not any("ObsSession" in line for line in fir.lines):
            out.append(Finding(
                check="bench-metrics", path=fir.path, line=1, col=1,
                message="no ObsSession (every bench must support --metrics-out)",
            ))
    return out
