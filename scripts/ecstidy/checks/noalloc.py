"""noalloc: ECSDNS_NOALLOC transitive allocation contract.

The zero-copy packet path (MessageView over pooled BufferPool buffers,
serialize_into) and the bounded cache's eviction path are designed to run
allocation-free in steady state — the perf gate (`run.allocations` in
scripts/bench_report.py) measures it, this check *explains* it: from every
ECSDNS_NOALLOC root, walk the project call graph and flag

  * new-expressions and always-allocating calls (make_unique, malloc,
    to_string, ...),
  * container growers (push_back, resize, reserve, insert, ...) on
    receivers that do not resolve to a project function,
  * std::string / ostringstream construction,
  * calls into ECSDNS_MAY_BLOCK functions (the explicit slow-path
    boundary; the walk does not descend into them).

Throw-expressions are exempt: the noalloc contract governs the hot path,
and a throw IS leaving the hot path — building a WireFormatError
diagnostic on malformed input may allocate freely. (The perf gate agrees:
well-formed traffic never throws, so the allocation counter stays flat.)

Findings land at the violating site, with the annotated root and call
chain in the message, so a justified `// ecstidy:allow(noalloc): ...`
lives next to the allocation it excuses (e.g. amortized growth into a
pooled buffer whose capacity converges).
"""
from __future__ import annotations

from .. import config
from ..findings import Finding
from ..ir import FunctionInfo, ProgramIR


def check_noalloc(program: ProgramIR) -> list[Finding]:
    roots = [f for f in program.definitions()
             if config.ANNOT_NOALLOC in f.annotations]
    out: list[Finding] = []
    reported: set[tuple[str, int, int, str]] = set()
    for root in sorted(roots, key=lambda f: (f.file, f.line)):
        _walk(program, root, [root.name], {root.qname},
              config.NOALLOC_CALL_DEPTH, out, reported)
    return out


def _emit(out, reported, fn: FunctionInfo, line: int, col: int, what: str,
          chain: list[str]) -> None:
    key = (fn.file, line, col, what)
    if key in reported:
        return
    reported.add(key)
    route = " -> ".join(chain)
    out.append(Finding(
        check="noalloc", path=fn.file, line=line, col=col, symbol=fn.qname,
        message=(f"{what} on ECSDNS_NOALLOC path ({route}) — hoist the "
                 f"allocation out of the hot path, preallocate, or justify "
                 f"with ecstidy:allow(noalloc)"),
    ))


def _walk(program: ProgramIR, fn: FunctionInfo, chain: list[str],
          seen: set[str], depth: int, out, reported) -> None:
    for line, col, _pos in fn.new_exprs:
        _emit(out, reported, fn, line, col, "new-expression", chain)
    for var in fn.locals:
        # References/pointers to strings don't construct one.
        if config.STRING_TYPE_RE.search(var.type_text) \
                and "&" not in var.type_text and "*" not in var.type_text:
            _emit(out, reported, fn, var.line, var.col,
                  f"std::string construction (`{var.name}`)", chain)
    for call in fn.calls:
        if call.in_throw:
            continue
        if call.name in config.ALLOC_CALLS:
            _emit(out, reported, fn, call.line, call.col,
                  f"allocating call {call.name}()", chain)
            continue
        if call.name == "string" and call.qualifier.endswith("::"):
            _emit(out, reported, fn, call.line, call.col,
                  "std::string construction", chain)
            continue
        targets = program.resolve_calls_from(fn, call)
        if targets:
            blocked = [t for t in targets
                       if config.ANNOT_MAY_BLOCK in t.annotations]
            if blocked:
                _emit(out, reported, fn, call.line, call.col,
                      f"call into ECSDNS_MAY_BLOCK {blocked[0].name}()",
                      chain)
                continue
            if depth > 0:
                for t in targets:
                    if t.qname in seen:
                        continue
                    seen.add(t.qname)
                    _walk(program, t, chain + [t.name], seen, depth - 1,
                          out, reported)
            continue
        # Unresolved call: flag known growers on member receivers; stay
        # silent on the known-safe vocabulary and everything else (the
        # clang backend resolves more; the text backend documents this
        # in docs/static_analysis.md).
        if call.name in config.GROWER_METHODS and call.recv is not None:
            _emit(out, reported, fn, call.line, call.col,
                  f"container grower {call.recv}.{call.name}()", chain)
